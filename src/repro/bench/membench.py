"""Memory/storage micro-bench: graph-load time and peak RSS per format.

``run_mem_bench`` builds one synthetic graph, persists it as a SNAP
edge list, a compressed NPZ, and a CSR store container, then measures —
**in a fresh subprocess per sample**, so the peak-RSS reading (VmHWM,
reset by exec) is clean — how long each path takes to stand the graph
up and how much resident memory the load peaks at:

- ``edge_list`` — stream-parse + full canonicalization (the portable
  worst case every raw download starts from);
- ``npz`` — decompress + full ``Graph.__init__`` rebuild;
- ``csr_resident`` — container read into heap arrays, no re-sorting;
- ``csr_mmap`` — container memory-mapped read-only; load is
  O(manifest) and only touched pages become resident.

A ``baseline`` subprocess that imports the stack but loads nothing pins
the interpreter+NumPy floor, so every mode also reports
``rss_delta_bytes`` — the memory the *graph* actually cost, which is the
number the ``csr_mmap`` path is designed to collapse.

Schema v1 (``repro-mem-bench/1``). ``compare_reports`` implements
``repro bench-check --suite mem``: like the kernel gate it compares
*ratios* (CSR-vs-edge-list load speedup, mmap RSS fraction), not
absolute seconds, so the committed ``BENCH_mem.json`` checks cleanly on
machines of different speed.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

import numpy as np

SCHEMA = "repro-mem-bench/1"

#: metrics (path into report["speedups"] / report["rss"]) gated by
#: ``repro bench-check --suite mem``. Speedups regress when they DROP,
#: fractions regress when they RISE.
TRACKED_SPEEDUPS = ("csr_mmap_load_vs_edge_list", "csr_resident_load_vs_edge_list")
TRACKED_FRACTIONS = ("csr_mmap_rss_fraction",)

MODES = ("edge_list", "npz", "csr_resident", "csr_mmap")


@dataclass(frozen=True)
class MemWorkload:
    """Synthetic graph size for the bench."""

    n_vertices: int
    avg_degree: int
    reps: int  # fresh subprocesses per mode; min is reported

    @classmethod
    def full(cls) -> "MemWorkload":
        return cls(n_vertices=200_000, avg_degree=20, reps=3)

    @classmethod
    def quick(cls) -> "MemWorkload":
        return cls(n_vertices=20_000, avg_degree=10, reps=2)


def _make_graph(workload: MemWorkload, seed: int):
    from repro.graph.graph import Graph

    rng = np.random.default_rng(seed)
    n = workload.n_vertices
    m = n * workload.avg_degree // 2
    a = rng.integers(0, n, size=int(m * 1.1))
    b = rng.integers(0, n, size=int(m * 1.1))
    ok = a != b
    lo, hi = np.minimum(a[ok], b[ok]), np.maximum(a[ok], b[ok])
    _, idx = np.unique(lo * np.int64(n) + hi, return_index=True)
    idx = idx[:m]
    return Graph(n, np.column_stack([lo, hi])[idx])


# Peak-RSS probe shared by every measurement child. VmHWM is the
# current mm's high-water mark and is reset by exec, unlike
# ru_maxrss, which Linux seeds at fork with the *parent's* peak and
# never resets — a fat parent (pytest, a bench that just built a graph)
# would otherwise put an inherited floor under every child's reading.
PEAK_RSS_SNIPPET = r"""
def _peak_rss_bytes():
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    import resource  # non-Linux fallback: process-lifetime high water
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
"""

# Runs inside the child: import, load by mode, touch a query mix, emit
# JSON with phase times and peak RSS. Kept to stdlib + repro imports.
_CHILD_SCRIPT = PEAK_RSS_SNIPPET + r"""
import json, sys, time
t0 = time.perf_counter()
import numpy as np
from repro.graph import io as gio
mode, path, n_vertices = sys.argv[1], sys.argv[2], int(sys.argv[3])
t1 = time.perf_counter()
g = None
if mode == "edge_list":
    g = gio.load_edge_list(path, n_vertices=n_vertices)
elif mode == "npz":
    g = gio.load_npz(path)
elif mode == "csr_resident":
    g = gio.load_csr(path, provider="resident")
elif mode == "csr_mmap":
    g = gio.load_csr(path, provider="mmap")
elif mode != "baseline":
    raise SystemExit(f"unknown mode {mode!r}")
t2 = time.perf_counter()
if g is not None:
    rng = np.random.default_rng(0)
    vs = rng.integers(0, g.n_vertices, size=256)
    deg = int(g.degrees[vs].sum())
    pairs = np.column_stack([vs, (vs + 1) % g.n_vertices])
    hits = int(g.has_edges(pairs).sum())
    nb = sum(int(g.neighbors(int(v)).size) for v in vs[:16])
t3 = time.perf_counter()
print(json.dumps({
    "import_s": t1 - t0,
    "load_s": t2 - t1,
    "query_s": t3 - t2,
    "maxrss_bytes": _peak_rss_bytes(),
}))
"""


def trim_heap() -> None:
    """Release freed heap pages back to the OS (Linux/glibc best-effort).

    Measurement children are *forked*, and Linux seeds a forked child's
    ``ru_maxrss`` with the parent's resident size at fork time — so a
    parent that just built and serialized a big graph hands every child
    a huge RSS floor that swamps the child's own usage. Calling this
    after dropping the big objects (and before spawning children) pulls
    that floor back down near the interpreter baseline. The residual
    floor is still measured by the ``baseline`` child and subtracted.
    """
    import ctypes
    import gc

    gc.collect()
    try:
        ctypes.CDLL("libc.so.6").malloc_trim(0)
    except (OSError, AttributeError):  # pragma: no cover - non-glibc
        pass


def measure_subprocess(
    script: str, argv: list[str], timeout: float = 600.0
) -> dict[str, float]:
    """Run ``script`` in a fresh interpreter and parse its JSON stdout.

    The child gets ``src/`` on ``PYTHONPATH`` so ``repro`` imports work
    regardless of how the parent was launched. A fresh process per
    sample is what makes the peak-RSS reading trustworthy: the high
    water resets at exec, so it can never be polluted by whatever the
    parent (pytest, the CLI, a prior mode) already touched — scripts
    should report ``PEAK_RSS_SNIPPET``'s ``_peak_rss_bytes()`` rather
    than ``ru_maxrss``, which Linux seeds from the parent's peak.
    Shared by this bench and the servebench storage phase.
    """
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", script, *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench child ({argv[:1]}) failed: {proc.stderr.strip()[-500:]}"
        )
    return json.loads(proc.stdout)


def _measure_child(mode: str, path: str, n_vertices: int) -> dict[str, float]:
    return measure_subprocess(_CHILD_SCRIPT, [mode, path, str(n_vertices)])


def run_mem_bench(
    quick: bool = False, seed: int = 0, workload: Optional[MemWorkload] = None
) -> dict[str, Any]:
    """Run the storage-path bench; returns the JSON-ready report."""
    workload = workload or (MemWorkload.quick() if quick else MemWorkload.full())
    from repro.graph import io as gio

    report: dict[str, Any] = {
        "schema": SCHEMA,
        "quick": bool(quick),
        "seed": int(seed),
        "workload": {
            "n_vertices": workload.n_vertices,
            "avg_degree": workload.avg_degree,
            "reps": workload.reps,
        },
    }
    t_build = time.perf_counter()
    graph = _make_graph(workload, seed)
    report["workload"]["n_edges"] = graph.n_edges
    report["workload"]["build_s"] = time.perf_counter() - t_build

    with tempfile.TemporaryDirectory(prefix="repro-membench-") as tmp:
        tmp = Path(tmp)
        paths = {
            "edge_list": str(tmp / "graph.txt"),
            "npz": str(tmp / "graph.npz"),
            "csr_resident": str(tmp / "graph.csr"),
            "csr_mmap": str(tmp / "graph.csr"),
        }
        gio.save_edge_list(graph, paths["edge_list"])
        gio.save_npz(graph, paths["npz"])
        gio.save_csr(graph, paths["csr_resident"])

        def disk_bytes(p: str) -> int:
            q = Path(p)
            if q.is_dir():
                return sum(f.stat().st_size for f in q.iterdir())
            return q.stat().st_size

        report["workload"]["file_bytes"] = {
            "edge_list": disk_bytes(paths["edge_list"]),
            "npz": disk_bytes(paths["npz"]),
            "csr": disk_bytes(paths["csr_resident"]),
        }

        n_vertices = int(graph.n_vertices)
        del graph  # children fork from this process: shrink their RSS floor
        trim_heap()

        baseline = [
            _measure_child("baseline", paths["npz"], n_vertices)
            for _ in range(workload.reps)
        ]
        base_rss = min(s["maxrss_bytes"] for s in baseline)
        results: dict[str, Any] = {
            "baseline": {
                "load_s": 0.0,
                "maxrss_bytes": base_rss,
                "rss_delta_bytes": 0,
            }
        }
        for mode in MODES:
            samples = [
                _measure_child(mode, paths[mode], n_vertices)
                for _ in range(workload.reps)
            ]
            load_s = min(s["load_s"] for s in samples)
            rss = min(s["maxrss_bytes"] for s in samples)
            results[mode] = {
                "load_s": load_s,
                "query_s": min(s["query_s"] for s in samples),
                "maxrss_bytes": rss,
                "rss_delta_bytes": max(0, rss - base_rss),
            }
    report["results"] = results

    el, mm, res = results["edge_list"], results["csr_mmap"], results["csr_resident"]
    tiny = 1e-9
    report["speedups"] = {
        "csr_mmap_load_vs_edge_list": el["load_s"] / max(mm["load_s"], tiny),
        "csr_resident_load_vs_edge_list": el["load_s"] / max(res["load_s"], tiny),
        "csr_mmap_load_vs_npz": results["npz"]["load_s"] / max(mm["load_s"], tiny),
    }
    el_delta = max(el["rss_delta_bytes"], 1)
    report["rss"] = {
        "csr_mmap_rss_fraction": mm["rss_delta_bytes"] / el_delta,
        "csr_resident_rss_fraction": res["rss_delta_bytes"] / el_delta,
    }
    report["acceptance"] = {
        # The format exists to make loads cheap: mapped CSR must beat
        # text parsing by a wide margin and must not cost *more*
        # resident memory than the parse path peaked at.
        "csr_mmap_faster_than_edge_list": report["speedups"][
            "csr_mmap_load_vs_edge_list"
        ]
        > 5.0,
        "csr_mmap_rss_not_worse": report["rss"]["csr_mmap_rss_fraction"] <= 1.0,
    }
    return report


def report_rows(report: dict[str, Any]) -> list[str]:
    """Human-readable table lines for the CLI."""
    rows = []
    w = report["workload"]
    rows.append(
        f"graph: N={w['n_vertices']:,} |E|={w.get('n_edges', 0):,} "
        f"(reps={w['reps']}, quick={report['quick']})"
    )
    rows.append(f"{'mode':<14} {'load':>10} {'query':>10} {'rss delta':>12}")
    for mode in MODES:
        r = report["results"][mode]
        rows.append(
            f"{mode:<14} {r['load_s'] * 1e3:>8.1f}ms {r['query_s'] * 1e3:>8.2f}ms "
            f"{r['rss_delta_bytes'] / 1e6:>10.1f}MB"
        )
    for name, val in sorted(report["speedups"].items()):
        rows.append(f"{name}: {val:.1f}x")
    for name, val in sorted(report["rss"].items()):
        rows.append(f"{name}: {val:.3f}")
    return rows


def compare_reports(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    threshold: float = 0.5,
) -> list[dict[str, Any]]:
    """Regression rows for ``bench-check --suite mem``.

    Speedup ratios regress when the fresh value drops below
    ``(1 - threshold) *`` baseline; RSS fractions regress when the fresh
    value rises above ``baseline * (1 + threshold) + 0.05`` (the
    additive slack absorbs jitter when the baseline fraction is ~0).
    The default threshold is looser than the kernel gate's because load
    times fold in disk and page-cache behavior, which varies more across
    machines than pure compute does.
    """
    rows: list[dict[str, Any]] = []
    for name in TRACKED_SPEEDUPS:
        base = baseline.get("speedups", {}).get(name)
        now = fresh.get("speedups", {}).get(name)
        if base is None or now is None:
            continue
        ratio = now / base if base else float("inf")
        rows.append(
            {
                "metric": f"speedups/{name}",
                "baseline": base,
                "fresh": now,
                "ratio": ratio,
                "regressed": ratio < 1.0 - threshold,
            }
        )
    for name in TRACKED_FRACTIONS:
        base = baseline.get("rss", {}).get(name)
        now = fresh.get("rss", {}).get(name)
        if base is None or now is None:
            continue
        limit = base * (1.0 + threshold) + 0.05
        rows.append(
            {
                "metric": f"rss/{name}",
                "baseline": base,
                "fresh": now,
                "ratio": now / base if base else float("inf"),
                "regressed": now > limit,
            }
        )
    return rows


def save_report(report: dict[str, Any], path: str | Path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: str | Path) -> dict[str, Any]:
    report = json.loads(Path(path).read_text())
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, got {report.get('schema')!r}"
        )
    return report
