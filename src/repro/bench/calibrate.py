"""Cost-model calibration against the paper's Table III.

The cost model's constants (``repro.cluster.costmodel.CostModel``) were
fitted to the paper's own stage breakdown for com-Friendster on 65 nodes
with K = 12288. This module documents the derivation and provides
:func:`calibration_report` so the fit can be re-checked after any model
change (``tests/test_costmodel.py`` asserts every stage within 20%).

Derivation of each constant (times from Table III, non-pipelined column):

- ``c_draw_per_vertex = 2.7 us``: draw/deploy is 45.6 ms for M = 16384
  mini-batch vertices; the scatter payload (~16384 * 55 * 8 B of adjacency
  at 6.8 GB/s) accounts for ~1 ms, leaving ~44.5 ms of master-side
  rejection sampling and bookkeeping: 44.5 ms / 16384 = 2.7 us.
- node kernel rate ~ 1.36e9 elem/s: update_phi compute is 74 ms for
  (16384/64) * 32 * 12288 = 100.7e6 kernel elements -> 8.5e7 per core
  over 16 cores (the kernel streams ~24 B/element, well inside the 50
  GB/s node bandwidth).
- ``dkv_read_bw_loaded = 2.08 GB/s``: loading pi moves 256 * 33 rows *
  (K+1) * 4 B = 415 MB per worker per iteration in 205 ms. The gap to the
  6.8 GB/s single-stream roofline (Figure 5) is all-to-all contention: 64
  clients hammer 64 servers while 16 compute threads share each host's
  memory bus.
- ``c_dkv_request = 0.5 us``: requests are posted in deep batches; a
  larger per-request cost would break the flat weak-scaling curve
  (Figure 2), because smaller clusters issue more requests per worker.
- ``c_beta_element = 8.3 ns``: update_beta is 25.9 ms for ~(16384/64)
  edges * 12288 elements; the theta kernel does scattered accumulation,
  an order of magnitude more expensive per element than the streaming phi
  kernel.
- perplexity interval ~ 144: Table III's stage sum (360 ms) vs its
  reported total (450 ms) leaves ~90 ms/iteration unattributed; one full
  held-out pass (|E_h| ~ 2% of edges) costs ~13 s at K = 12288, which
  amortizes to ~90 ms at an interval of ~144 iterations — consistent with
  the paper's "perplexity is not evaluated at every iteration, but at
  regular intervals".
"""

from __future__ import annotations

from repro.bench.figures import TABLE3_PAPER_MS, table3_breakdown


def calibration_report() -> list[dict]:
    """Model-vs-paper rows with relative errors for every Table III stage."""
    rows = table3_breakdown()
    for row in rows:
        paper = row["paper_nonpipelined_ms"]
        model = row["model_nonpipelined_ms"]
        row["rel_error_pct"] = 100.0 * (model - paper) / paper
    return rows


def max_relative_error() -> float:
    """Largest |relative error| across calibrated stages (fraction)."""
    return max(abs(r["rel_error_pct"]) for r in calibration_report()) / 100.0


if __name__ == "__main__":  # pragma: no cover - manual tool
    from repro.bench.harness import format_table

    print(format_table(calibration_report(), title="Table III calibration"))
    print(f"\nmax relative error: {max_relative_error():.1%}")
