"""Kernel-backend benchmark: every registered backend, machine-readable.

``run_kernel_bench`` times the four hot-path kernels (phi gradient, phi
update, weighted theta gradient, link probability) under every registered
backend on the acceptance workloads (m=256, n=32, K=128 for phi; E=8192
for theta; H=8192 pairs for link scoring — each 1,048,576 elements), plus
an end-to-end sequential sampler run per backend, and returns a JSON-ready
report: per-kernel elements/sec and per-backend speedups over
``reference``.

Schema v2 (``repro-kernel-bench/2``): each kernel entry carries one
column per backend plus a ``speedups`` mapping ``{backend: ratio}`` —
the v1 single ``speedup`` (fused/reference) scalar generalized for the
``numba`` JIT backend and whatever registers next. Backends are timed
only if they are registered in the current environment, and
``compare_reports`` gates only on backends present in *both* reports, so
a baseline regenerated on a numba-equipped host still checks cleanly on
a host without numba (and vice versa).

``compare_reports`` implements ``repro bench-check``: given the committed
baseline (``BENCH_kernels.json``) and a fresh run, it flags any speedup
ratio that regressed by more than ``threshold`` (relative). Speedup ratios
— not absolute throughput — are compared, so the check is stable across
machines of different speed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.bench.harness import best_of

SCHEMA = "repro-kernel-bench/2"

#: report paths whose per-backend ``speedups`` are checked by
#: ``repro bench-check``.
TRACKED_SPEEDUPS = (
    ("kernels", "phi_gradient"),
    ("kernels", "phi_update"),
    ("kernels", "theta_gradient"),
    ("kernels", "link_probability"),
    ("sampler", "end_to_end"),
)

#: the denominator backend of every speedup ratio.
BASELINE_BACKEND = "reference"


def _phi_workload(rng: np.random.Generator, m: int, n: int, k: int):
    pi_a = rng.dirichlet(np.ones(k), size=m)
    phi_sum = rng.gamma(5.0, 1.0, size=m) + 1.0
    pi_b = rng.dirichlet(np.ones(k), size=(m, n))
    y = rng.random((m, n)) < 0.1
    beta = rng.uniform(0.1, 0.9, k)
    mask = np.ones((m, n), dtype=bool)
    return pi_a, phi_sum, pi_b, y, beta, mask


def _theta_workload(rng: np.random.Generator, e: int, k: int):
    pi_a = rng.dirichlet(np.ones(k), size=e)
    pi_b = rng.dirichlet(np.ones(k), size=e)
    y = (rng.random(e) < 0.5).astype(np.int64)
    theta = rng.gamma(3.0, 1.0, size=(k, 2)) + 0.5
    weights = rng.uniform(0.5, 50.0, size=e)
    return pi_a, pi_b, y, theta, weights


def _link_workload(rng: np.random.Generator, h: int, k: int):
    pi_a = rng.dirichlet(np.ones(k), size=h)
    pi_b = rng.dirichlet(np.ones(k), size=h)
    beta = rng.uniform(0.1, 0.9, k)
    return pi_a, pi_b, beta


def _bench_kernels(
    backend_names: list[str], quick: bool, seed: int
) -> dict[str, dict[str, Any]]:
    from repro.core import kernels

    rng = np.random.default_rng(seed)
    # Workload sizes are identical in quick and full mode — only the
    # repeat counts differ — so a quick CI run is comparable against a
    # full-mode baseline (speedups shift systematically with size).
    m, n, k = 256, 32, 128
    e = 8192
    h = 8192
    repeats, inner = (3, 5) if quick else (5, 10)

    pi_a, phi_sum, pi_b, y, beta, mask = _phi_workload(rng, m, n, k)
    delta = 1e-4
    t_pi_a, t_pi_b, t_y, theta, t_weights = _theta_workload(rng, e, k)
    l_pi_a, l_pi_b, l_beta = _link_workload(rng, h, k)
    noise = rng.standard_normal((m, k))
    phi = pi_a * phi_sum[:, None]

    report: dict[str, dict[str, Any]] = {
        "phi_gradient": {"elements": m * n * k},
        "phi_update": {"elements": m * k},
        "theta_gradient": {"elements": e * k},
        "link_probability": {"elements": h * k},
    }
    for name in backend_names:
        backend = kernels.get_backend(name)
        backend.warmup()  # JIT compile outside the timed region
        ws = kernels.KernelWorkspace()
        grad = backend.phi_gradient_sum(
            pi_a, phi_sum, pi_b, y, beta, delta, mask=mask, workspace=ws
        ).copy()

        timings = {
            "phi_gradient": best_of(
                lambda: backend.phi_gradient_sum(
                    pi_a, phi_sum, pi_b, y, beta, delta, mask=mask, workspace=ws
                ),
                repeats,
                inner,
            ),
            "phi_update": best_of(
                lambda: backend.update_phi(
                    phi, grad, 0.01, 0.1, 100.0, noise, workspace=ws
                ),
                repeats,
                inner,
            ),
            "theta_gradient": best_of(
                lambda: backend.theta_gradient_weighted(
                    t_pi_a, t_pi_b, t_y, theta, delta,
                    weights=t_weights, workspace=ws,
                ),
                repeats,
                inner,
            ),
            "link_probability": best_of(
                lambda: backend.link_probability(
                    l_pi_a, l_pi_b, l_beta, delta, workspace=ws
                ),
                repeats,
                inner,
            ),
        }
        for kernel, seconds in timings.items():
            report[kernel][name] = {
                "seconds": seconds,
                "elements_per_s": report[kernel]["elements"] / seconds,
            }
    return report


def _bench_sampler(backend_names: list[str], quick: bool, seed: int) -> dict[str, Any]:
    """End-to-end sequential sampler iterations/sec per backend."""
    from dataclasses import replace

    from repro.config import AMMSBConfig, StepSizeConfig
    from repro.core.sampler import AMMSBSampler
    from repro.graph.generators import planted_overlapping_graph

    rng = np.random.default_rng(seed)
    n_vertices = 800
    iters = 8 if quick else 40
    graph, _ = planted_overlapping_graph(
        n_vertices, 8, memberships_per_vertex=2, rng=rng
    )
    # Large enough that the kernels dominate over graph/minibatch sampling.
    base = AMMSBConfig(
        n_communities=64,
        mini_batch_vertices=128,
        neighbor_sample_size=32,
        step_phi=StepSizeConfig(a=0.05),
        step_theta=StepSizeConfig(a=0.05),
        seed=seed,
    )
    passes = 2 if quick else 3
    out: dict[str, Any] = {"iterations": iters, "n_vertices": n_vertices}
    samplers = {}
    for name in backend_names:
        cfg = replace(base, kernel_backend=name)
        samplers[name] = AMMSBSampler(graph, cfg)
        samplers[name].run(2)  # warm caches and workspace buffers
    # Interleave the backends and keep each one's best pass, so a load
    # spike hits all backends instead of biasing whichever ran under it.
    best = {name: float("inf") for name in backend_names}
    for _ in range(passes):
        for name in backend_names:
            start = time.perf_counter()
            samplers[name].run(iters)
            best[name] = min(best[name], time.perf_counter() - start)
    for name in backend_names:
        out[name] = {
            "seconds": best[name],
            "iterations_per_s": iters / best[name],
        }
    return out


def _add_speedups(report: dict[str, Any]) -> None:
    """Attach ``speedups: {backend: reference_s / backend_s}`` per entry."""
    entries = list(report["kernels"].values()) + [report["sampler"]["end_to_end"]]
    for entry in entries:
        base = entry.get(BASELINE_BACKEND)
        if base is None:
            continue
        speedups = {
            name: base["seconds"] / timing["seconds"]
            for name, timing in entry.items()
            if isinstance(timing, dict)
            and "seconds" in timing
            and name != BASELINE_BACKEND
        }
        if speedups:
            entry["speedups"] = speedups


def run_kernel_bench(
    quick: bool = False,
    seed: int = 0,
    backends: list[str] | None = None,
) -> dict[str, Any]:
    """Time every backend on the acceptance workloads; JSON-serializable."""
    from repro.core import kernels

    names = backends if backends is not None else kernels.available_backends()
    report: dict[str, Any] = {
        "schema": SCHEMA,
        "quick": bool(quick),
        "seed": int(seed),
        "backends": list(names),
        "workloads": {
            "phi": {"m": 256, "n": 32, "K": 128},
            "theta": {"E": 8192, "K": 128},
            "link": {"H": 8192, "K": 128},
        },
        "kernels": _bench_kernels(names, quick, seed),
        "sampler": {"end_to_end": _bench_sampler(names, quick, seed)},
    }
    _add_speedups(report)
    return report


def _backend_columns(report: dict[str, Any]) -> list[str]:
    names = report.get("backends")
    if names:
        return list(names)
    found: list[str] = []
    for data in report["kernels"].values():
        for name, value in data.items():
            if isinstance(value, dict) and "seconds" in value and name not in found:
                found.append(name)
    return found


def report_rows(report: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten a report for :func:`repro.bench.harness.format_table`."""
    columns = _backend_columns(report)
    rows = []
    for kernel, data in report["kernels"].items():
        row: dict[str, Any] = {"kernel": kernel}
        for name in columns:
            if name in data:
                row[f"{name}_Melem/s"] = data[name]["elements_per_s"] / 1e6
        for name, value in data.get("speedups", {}).items():
            row[f"{name}_speedup"] = value
        rows.append(row)
    sampler = report["sampler"]["end_to_end"]
    row = {"kernel": "sampler end-to-end"}
    for name in columns:
        if name in sampler:
            row[f"{name}_Melem/s"] = ""
            row[f"{name}_iters/s"] = sampler[name]["iterations_per_s"]
    for name, value in sampler.get("speedups", {}).items():
        row[f"{name}_speedup"] = value
    rows.append(row)
    return rows


def _speedups_at(report: dict[str, Any], path: tuple[str, str]) -> dict[str, float]:
    node = report
    for key in path:
        node = node.get(key, {})
    return {str(k): float(v) for k, v in node.get("speedups", {}).items()}


def compare_reports(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    threshold: float = 0.25,
) -> list[dict[str, Any]]:
    """Regressions: fresh speedup below ``(1 - threshold) *`` baseline.

    One row per tracked (kernel, backend) speedup present in *both*
    reports — a backend missing from either side (not installed in that
    environment) is skipped rather than failed. Rows carry
    baseline/fresh/ratio and a ``regressed`` flag; callers decide what to
    do with them.
    """
    rows = []
    for path in TRACKED_SPEEDUPS:
        base_speedups = _speedups_at(baseline, path)
        fresh_speedups = _speedups_at(fresh, path)
        for backend in sorted(set(base_speedups) & set(fresh_speedups)):
            base = base_speedups[backend]
            now = fresh_speedups[backend]
            ratio = now / base
            rows.append(
                {
                    "metric": "/".join(path) + f":{backend}",
                    "backend": backend,
                    "baseline_speedup": base,
                    "fresh_speedup": now,
                    "ratio": ratio,
                    "regressed": ratio < 1.0 - threshold,
                }
            )
    return rows


def save_report(report: dict[str, Any], path: str | Path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: str | Path) -> dict[str, Any]:
    report = json.loads(Path(path).read_text())
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, got {report.get('schema')!r}"
        )
    return report
