"""Closed-loop streaming bench: warm-start vs cold-retrain, end to end.

``run_stream_bench`` replays one synthetic arrival stream through the
whole ``repro.stream`` loop and prices the claim the tier exists to
make — *a warm-started generation reaches cold-retrain quality in a
fraction of the wall-clock*:

1. build a planted graph, split one held-out set, and cut the arrival
   stream so the warm base holds ~90% of the vertices;
2. **cold** — train the full graph from scratch for the full budget;
3. **warm** — cold-start the base graph (generation 0), then ingest the
   delta and run ONE warm-start generation on a fraction of the budget,
   publishing a serving artifact that a live :class:`~repro.serve
   .server.ModelServer` hot-swaps; the clock from first ingest to the
   first answered query about a *newly arrived* node is the
   arrival-to-servable latency.

Both sides are scored on the SAME held-out split, so the perplexity
ratio is apples-to-apples. Schema v1 (``repro-stream-bench/1``).
``compare_reports`` implements ``repro bench-check --suite stream``:
ratios only (warm-vs-cold speedup, warm/cold perplexity), never absolute
seconds, so the committed ``BENCH_stream.json`` checks cleanly across
machines.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Any, Optional

import numpy as np

SCHEMA = "repro-stream-bench/1"

#: ratios gated by ``repro bench-check --suite stream``. Speedups regress
#: when they DROP, fractions when they RISE.
TRACKED_SPEEDUPS = ("warm_vs_cold_speedup",)
TRACKED_FRACTIONS = ("warm_perplexity_ratio",)


@dataclass(frozen=True)
class StreamWorkload:
    """Synthetic stream sizing for the bench."""

    n_vertices: int
    n_communities: int
    cold_iterations: int
    warm_iterations: int
    base_fraction: float = 0.9

    @classmethod
    def full(cls) -> "StreamWorkload":
        return cls(
            n_vertices=600, n_communities=6, cold_iterations=600,
            warm_iterations=220,
        )

    @classmethod
    def quick(cls) -> "StreamWorkload":
        return cls(
            n_vertices=220, n_communities=4, cold_iterations=240,
            warm_iterations=90,
        )


def run_stream_bench(
    quick: bool = False,
    seed: int = 0,
    workload: Optional[StreamWorkload] = None,
) -> dict[str, Any]:
    """Run the closed-loop stream bench; returns the JSON-ready report."""
    from repro.config import AMMSBConfig
    from repro.core.perplexity import PerplexityEstimator
    from repro.core.sampler import AMMSBSampler
    from repro.graph.generators import planted_overlapping_graph
    from repro.graph.split import split_heldout
    from repro.serve.artifact import load_artifact
    from repro.serve.server import ModelServer
    from repro.stream.source import SyntheticArrivalSource, arrivals_to_arrays
    from repro.stream.trainer import StreamTrainer

    w = workload or (StreamWorkload.quick() if quick else StreamWorkload.full())
    # Warm the lazy scipy.optimize import (first Hungarian alignment):
    # a one-time interpreter cost, not part of any generation's latency.
    from repro.core.estimation import align_communities

    align_communities(np.eye(2), np.eye(2))
    rng = np.random.default_rng(seed)
    graph, _ = planted_overlapping_graph(w.n_vertices, w.n_communities, rng=rng)
    split = split_heldout(
        graph, 0.05, rng=np.random.default_rng(seed + 1), max_links=2000
    )
    config = AMMSBConfig(n_communities=w.n_communities, seed=seed + 2)
    estimator = PerplexityEstimator(
        split.heldout_pairs, split.heldout_labels, config.delta
    )

    # The stream is cut on the *training* graph (held-out links never
    # arrive), so warm and cold train on identical edges.
    source = SyntheticArrivalSource(
        split.train, base_fraction=w.base_fraction, seed=seed + 3
    )
    base = source.base_graph()
    arrivals = source.arrivals()

    report: dict[str, Any] = {
        "schema": SCHEMA,
        "quick": bool(quick),
        "seed": int(seed),
        "workload": {
            "n_vertices": w.n_vertices,
            "n_communities": w.n_communities,
            "cold_iterations": w.cold_iterations,
            "warm_iterations": w.warm_iterations,
            "base_fraction": w.base_fraction,
            "n_base_vertices": base.n_vertices,
            "n_base_edges": base.n_edges,
            "n_arrivals": len(arrivals),
        },
    }

    # -- cold retrain: the full training graph, full budget, from scratch.
    t0 = time.perf_counter()
    cold = AMMSBSampler(split.train, config, heldout=split)
    cold.run(w.cold_iterations)
    cold_s = time.perf_counter() - t0
    cold_perp = estimator.single_sample_value(cold.state.pi, cold.state.beta)

    # -- streaming: generation 0 on the base, one warm generation after
    # the delta, publishing into a live server.
    with TemporaryDirectory(prefix="repro-streambench-") as tmp:
        tmp = Path(tmp)
        publish_path = tmp / "artifact.npz"
        trainer = StreamTrainer(
            base,
            config,
            tmp / "work",
            publish_path=publish_path,
            heldout_fraction=0.05,
        )
        gen0 = trainer.run_generation(n_iterations=w.cold_iterations)
        server = ModelServer(
            load_artifact(publish_path), n_workers=0, drift_window=4
        )
        try:
            swap_s: list[float] = []
            trainer.publish_callback = lambda p, g: swap_s.append(
                _timed(server.publish_path, p)
            )

            # arrival-to-servable clock starts at first ingest...
            t_arrive = time.perf_counter()
            pairs, ts = arrivals_to_arrays(arrivals)
            ingest_report = trainer.overlay.ingest_pairs(pairs, timestamps=ts)
            ingest_s = time.perf_counter() - t_arrive

            t1 = time.perf_counter()
            gen1 = trainer.run_generation(
                n_iterations=w.warm_iterations, heldout=split
            )
            warm_s = time.perf_counter() - t1
            # ...and stops when a query about a newly arrived node answers.
            new_node = split.train.n_vertices - 1
            fut = server.membership(new_node)
            server.process_once()
            fut.result(timeout=30)
            arrival_to_servable_s = time.perf_counter() - t_arrive
            drift_fut = server.membership_drift(new_node)
            server.process_once()
            drift = drift_fut.result(timeout=30)
        finally:
            server.close()
    warm_perp = gen1.perplexity

    tiny = 1e-9
    report["results"] = {
        "ingest": {
            "edges_accepted": ingest_report.accepted,
            "edges_per_second": ingest_report.accepted / max(ingest_s, tiny),
            "new_nodes": gen1.n_vertices - base.n_vertices,
        },
        "cold": {"train_s": cold_s, "perplexity": float(cold_perp)},
        "warm": {
            "train_s": warm_s,
            "perplexity": float(warm_perp),
            "generation0_perplexity": gen0.perplexity,
            "hot_swap_s": swap_s[0] if swap_s else None,
        },
        "arrival_to_servable_s": arrival_to_servable_s,
        "drift_generations_for_new_node": len(drift["generations"]),
    }
    report["speedups"] = {
        "warm_vs_cold_speedup": cold_s / max(warm_s, tiny),
    }
    report["fractions"] = {
        "warm_perplexity_ratio": float(warm_perp) / max(float(cold_perp), tiny),
    }
    report["acceptance"] = {
        # The tier's reason to exist (ISSUE 9 acceptance): one warm
        # generation lands within 2% of cold quality in under half the
        # cold wall-clock.
        "warm_within_2pct": report["fractions"]["warm_perplexity_ratio"] <= 1.02,
        "warm_under_half_cold": warm_s <= 0.5 * cold_s,
    }
    return report


def _timed(fn, *args) -> float:
    t = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t


def report_rows(report: dict[str, Any]) -> list[str]:
    """Human-readable table lines for the CLI."""
    w = report["workload"]
    r = report["results"]
    rows = [
        f"stream: N={w['n_vertices']} K={w['n_communities']} "
        f"base={w['n_base_vertices']} arrivals={w['n_arrivals']} "
        f"(quick={report['quick']})",
        f"ingest: {r['ingest']['edges_accepted']} edges @ "
        f"{r['ingest']['edges_per_second']:,.0f} edges/s, "
        f"{r['ingest']['new_nodes']} new nodes",
        f"cold:   {r['cold']['train_s']:.2f}s  perplexity {r['cold']['perplexity']:.4f}",
        f"warm:   {r['warm']['train_s']:.2f}s  perplexity {r['warm']['perplexity']:.4f}",
        f"arrival-to-servable: {r['arrival_to_servable_s']:.2f}s",
    ]
    for name, val in sorted(report["speedups"].items()):
        rows.append(f"{name}: {val:.1f}x")
    for name, val in sorted(report["fractions"].items()):
        rows.append(f"{name}: {val:.4f}")
    for name, ok in sorted(report["acceptance"].items()):
        rows.append(f"{name}: {'PASS' if ok else 'FAIL'}")
    return rows


def compare_reports(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    threshold: float = 0.5,
) -> list[dict[str, Any]]:
    """Regression rows for ``bench-check --suite stream``.

    The warm-vs-cold speedup regresses when the fresh value drops below
    ``(1 - threshold) *`` baseline; the warm/cold perplexity ratio
    regresses when it rises above ``baseline * (1 + threshold) + 0.05``
    (additive slack for near-1.0 baselines). Thresholds are loose like
    the mem gate's: wall-clock folds in machine speed and SG-MCMC noise.
    """
    rows: list[dict[str, Any]] = []
    for name in TRACKED_SPEEDUPS:
        base = baseline.get("speedups", {}).get(name)
        now = fresh.get("speedups", {}).get(name)
        if base is None or now is None:
            continue
        ratio = now / base if base else float("inf")
        rows.append(
            {
                "metric": f"speedups/{name}",
                "baseline": base,
                "fresh": now,
                "ratio": ratio,
                "regressed": ratio < 1.0 - threshold,
            }
        )
    for name in TRACKED_FRACTIONS:
        base = baseline.get("fractions", {}).get(name)
        now = fresh.get("fractions", {}).get(name)
        if base is None or now is None:
            continue
        limit = base * (1.0 + threshold) + 0.05
        rows.append(
            {
                "metric": f"fractions/{name}",
                "baseline": base,
                "fresh": now,
                "ratio": now / base if base else float("inf"),
                "regressed": now > limit,
            }
        )
    return rows


def save_report(report: dict[str, Any], path: str | Path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: str | Path) -> dict[str, Any]:
    report = json.loads(Path(path).read_text())
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, got {report.get('schema')!r}"
        )
    return report
