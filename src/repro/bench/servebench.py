"""Serving-layer benchmark: seeded closed-loop load generator.

``run_serve_bench`` stands up a :class:`~repro.serve.server.ModelServer`
over a synthetic artifact (acceptance workload: N=10k nodes, K=64) and
drives it with closed-loop client threads issuing Zipf-skewed
link-probability requests (a small hot set dominates, as real query
traffic does — this is what exercises the LRU cache). Each client keeps a
bounded pipeline of outstanding futures, so admission, batching and
scoring overlap like they would behind a real RPC front end.

Mid-run, a perturbed artifact is **hot-swapped** in while the clients
keep hammering; the report proves the swap completed with zero dropped
and zero errored queries — the serving layer's equivalent of the chaos
drill. After the link-probability load drains, a second phase drives
coalesced ``recommend_edges`` traffic (each request scores N-1 candidate
pairs through one kernel call per server micro-batch) and reports
candidate-pairs/sec next to the link-probability numbers.

A third **storage phase** (schema v4) measures what the out-of-core
artifact format buys: cold-start-to-first-answer and peak RSS for the
same model saved as a legacy v1 ``.npz`` versus a v2 store-container
directory, each timed in a fresh subprocess (clean ``ru_maxrss``), plus
client-observed p99 latency immediately after a live
``publish_path`` hot-swap onto the memory-mapped v2 artifact. The
acceptance bar: the mapped v2 cold start must be at least 10x faster
than the v1 decompress-everything path.

The JSON report (``BENCH_serve.json``) embeds the full
:class:`~repro.serve.metrics.ServerMetrics` snapshot (per-endpoint QPS,
p50/p99 latency, cache hit rate, batching stats) plus the acceptance
verdict: sustained batched link-probability queries/sec against the 50k/s
target. Every terminal request outcome is counted in a typed taxonomy
(completed / errored / shed / deadline-exceeded / overloaded /
degraded-answer) so resilience overhead on the happy path stays pinned
next to throughput. Everything is seeded; quick mode shrinks the
workload for CI but keeps the same shape.

``run_chaos_serve`` is the serving counterpart of the training chaos
drill: a seeded :class:`~repro.faults.ServeFaultPlan` (two corrupt
publish payloads, a mid-swap failure, a worker-thread crash, engine
latency spikes) runs against a live server under this load generator,
and the report asserts the recovery invariants the ISSUE demands —
server survives, rolls back to last-known-good, respawns the dead
worker, quarantines the damage, and accounts for every request with a
typed error (zero silent drops).
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.config import AMMSBConfig

SCHEMA = "repro-serve-bench/4"
CHAOS_SCHEMA = "repro-chaos-serve/1"

#: acceptance target: sustained batched link-probability queries/sec.
TARGET_QUERIES_PER_S = 50_000.0

#: acceptance target: v2 (mapped dir) cold-start-to-first-answer must be
#: at least this many times faster than v1 (compressed .npz).
TARGET_COLD_START_SPEEDUP = 10.0


@dataclass(frozen=True)
class ServeWorkload:
    """Sizing of one load-generator run."""

    n_vertices: int = 10_000
    n_communities: int = 64
    n_clients: int = 4
    requests_per_client: int = 1500
    pairs_per_request: int = 64
    pool_size: int = 512  # distinct requests (Zipf-sampled -> cache hits)
    pipeline_depth: int = 8
    zipf_exponent: float = 1.1
    swap_after_fraction: float = 0.5
    # Storage phase: artifact size is independent of the load-gen size —
    # the cold-start gap only shows at sizes where the v1 decompress
    # actually costs something (pi alone is storage_n_vertices * K * 8B).
    storage_n_vertices: int = 50_000
    storage_reps: int = 2
    storage_requests: int = 300

    @property
    def total_requests(self) -> int:
        return self.n_clients * self.requests_per_client

    @property
    def total_queries(self) -> int:
        return self.total_requests * self.pairs_per_request


FULL = ServeWorkload()
QUICK = ServeWorkload(
    n_vertices=2000,
    n_communities=32,
    n_clients=2,
    requests_per_client=300,
    pairs_per_request=32,
    pool_size=128,
    storage_n_vertices=8_000,
    storage_requests=120,
)


def synthetic_artifact(n_vertices: int, n_communities: int, seed: int):
    """A model-shaped artifact without training (random gamma posterior)."""
    from repro.core.state import init_state
    from repro.serve.artifact import build_artifact

    config = AMMSBConfig(n_communities=n_communities, seed=seed)
    state = init_state(n_vertices, config, np.random.default_rng(seed))
    return build_artifact(state, config, iteration=0)


def perturbed_artifact(artifact, seed: int):
    """A distinct-version snapshot of the same shape (the hot-swap payload)."""
    from repro.core.state import ModelState
    from repro.serve.artifact import build_artifact

    rng = np.random.default_rng(seed)
    pi = artifact.pi * rng.uniform(0.9, 1.1, size=artifact.pi.shape)
    state = ModelState(
        pi=pi / pi.sum(axis=1, keepdims=True),
        phi_sum=np.ones(artifact.n_nodes),
        theta=artifact.theta.copy(),
    )
    return build_artifact(state, artifact.config, iteration=artifact.iteration + 1)


def _zipf_indices(
    rng: np.random.Generator, n: int, size: int, exponent: float
) -> np.ndarray:
    """``size`` draws from a Zipf law over ``range(n)`` (rank 0 hottest)."""
    weights = np.arange(1, n + 1, dtype=np.float64) ** -exponent
    weights /= weights.sum()
    return rng.choice(n, size=size, p=weights)


def _request_pool(rng: np.random.Generator, w: ServeWorkload) -> list[np.ndarray]:
    """Distinct (B, 2) pair requests over Zipf-popular nodes."""
    pool = []
    for _ in range(w.pool_size):
        a = _zipf_indices(rng, w.n_vertices, w.pairs_per_request, w.zipf_exponent)
        b = (a + 1 + rng.integers(0, w.n_vertices - 1, size=a.shape)) % w.n_vertices
        pool.append(np.column_stack([a, b]).astype(np.int64))
    return pool


@dataclass
class _ClientResult:
    completed: int = 0
    queries: int = 0
    errors: int = 0
    overloads: int = 0
    sheds: int = 0
    deadline_exceeded: int = 0
    error_types: set = field(default_factory=set)


def _client_loop(
    server,
    schedule: list[np.ndarray],
    depth: int,
    result: _ClientResult,
    answered: threading.Event,
    answer_threshold: int,
    answered_counter: list[int],
    counter_lock: threading.Lock,
) -> None:
    """Closed-loop client: bounded pipeline of outstanding requests.

    Every terminal outcome lands in exactly one taxonomy bucket:
    completed, deadline-exceeded (typed, no retry — the answer is
    already worthless), or errored (with the exception type recorded).
    Backpressure (:class:`ServerOverloaded`) and shedding
    (:class:`RequestShed`) are retried with backoff and *counted*, but a
    request that exhausts its retry budget becomes a counted error —
    never a silent drop.
    """
    from repro.serve.server import DeadlineExceeded, RequestShed, ServerOverloaded

    outstanding: list[tuple] = []

    def drain(block_all: bool = False) -> None:
        while outstanding and (block_all or len(outstanding) >= depth):
            fut, n_pairs = outstanding.pop(0)
            try:
                probs = fut.result(timeout=60.0)
                ok = (
                    len(probs) == n_pairs
                    and bool(np.all(np.isfinite(probs)))
                    and bool(np.all((probs > 0) & (probs < 1)))
                )
                if not ok:
                    result.errors += 1
                    result.error_types.add("BadAnswer")
                    continue
                result.completed += 1
                result.queries += n_pairs
                with counter_lock:
                    answered_counter[0] += 1
                    if answered_counter[0] >= answer_threshold:
                        answered.set()
            except DeadlineExceeded:
                result.deadline_exceeded += 1
            except Exception as exc:  # noqa: BLE001 - counted, not raised
                result.errors += 1
                result.error_types.add(type(exc).__name__)

    for pairs in schedule:
        fut = None
        for _attempt in range(2000):  # bounded: a dead server can't hang us
            try:
                fut = server.link_probability(pairs)
                break
            except ServerOverloaded:
                result.overloads += 1
            except RequestShed:
                result.sheds += 1
            drain(block_all=False)
            time.sleep(0.0005)
        if fut is None:  # retry budget exhausted: counted, not dropped
            result.errors += 1
            result.error_types.add("RetriesExhausted")
            continue
        outstanding.append((fut, len(pairs)))
        drain(block_all=False)
    drain(block_all=True)


def _recommend_phase(server, w: ServeWorkload, seed: int) -> dict[str, Any]:
    """Coalesced recommend_edges throughput over distinct (uncached) nodes.

    Every request scores ``n_vertices - 1`` candidate pairs; the server
    batches concurrent requests into ONE ``link_probability`` kernel call
    per micro-batch (``QueryEngine.recommend_edges_batch``), which is
    what this phase measures. Requests use distinct nodes so the LRU
    cache cannot answer any of them.
    """
    from repro.serve.server import ServerOverloaded

    rng = np.random.default_rng(seed + 7)
    n_requests = min(w.n_vertices, 4 * w.pool_size)
    top_n = 10
    nodes = rng.choice(w.n_vertices, size=n_requests, replace=False)
    pending: deque = deque()
    completed = errors = 0

    def consume(fut) -> None:
        nonlocal completed, errors
        try:
            if len(fut.result(timeout=60.0)) == top_n:
                completed += 1
            else:
                errors += 1
        except Exception:  # noqa: BLE001 - counted, not raised
            errors += 1

    start = time.perf_counter()
    for node in nodes:
        while True:
            try:
                pending.append(server.recommend_edges(int(node), top_n))
                break
            except ServerOverloaded:
                if pending:
                    consume(pending.popleft())
                else:  # pragma: no cover - queue full with nothing in flight
                    time.sleep(0.0005)
        if len(pending) >= 2 * w.pipeline_depth:
            consume(pending.popleft())
    while pending:
        consume(pending.popleft())
    elapsed = time.perf_counter() - start

    candidates_per_request = w.n_vertices - 1
    return {
        "requests": int(n_requests),
        "top_n": top_n,
        "completed": completed,
        "errors": errors,
        "elapsed_seconds": elapsed,
        "requests_per_s": completed / elapsed if elapsed > 0 else 0.0,
        "candidate_pairs_per_s": (
            completed * candidates_per_request / elapsed if elapsed > 0 else 0.0
        ),
    }


# Storage-phase child: load an artifact by path, answer one small
# link-probability batch, report time-to-first-answer and peak RSS
# (VmHWM — exec-fresh, see membench.PEAK_RSS_SNIPPET). ``baseline``
# mode imports the stack but loads nothing, pinning the
# interpreter+NumPy RSS floor so deltas isolate the artifact's cost.
_COLD_SCRIPT_BODY = r"""
import json, sys, time
t0 = time.perf_counter()
import numpy as np
from repro.serve.artifact import load_artifact
from repro.serve.engine import QueryEngine
t1 = time.perf_counter()
path = sys.argv[1]
if path != "baseline":
    art = load_artifact(path)
    eng = QueryEngine(art)
    n = art.n_nodes
    pairs = np.column_stack(
        [np.arange(64) % n, (np.arange(64) + 1) % n]
    ).astype(np.int64)
    probs = eng.link_probability(pairs)
    assert probs.shape == (64,) and np.all((probs > 0) & (probs < 1))
t2 = time.perf_counter()
print(json.dumps({
    "import_s": t1 - t0,
    "first_answer_s": t2 - t1,
    "maxrss_bytes": _peak_rss_bytes(),
}))
"""


def _cold_script() -> str:
    from repro.bench.membench import PEAK_RSS_SNIPPET

    return PEAK_RSS_SNIPPET + _COLD_SCRIPT_BODY


def _storage_phase(w: ServeWorkload, seed: int) -> dict[str, Any]:
    """Cold-start + RSS for v1 ``.npz`` vs v2 container, and post-swap p99.

    Cold start is measured in fresh subprocesses (min over
    ``storage_reps``): time from "imports done" to the first verified
    link-probability answer, which charges v1 for its full decompress
    and v2 only for the pages the answer touches. The post-swap section
    then hot-swaps the v2 directory into a live server via
    ``publish_path`` (full digest verify before the swap) and reports
    client-observed latency percentiles for traffic served *by the
    mapped artifact*.
    """
    from repro.bench.membench import measure_subprocess, trim_heap
    from repro.serve.artifact import load_artifact, save_artifact
    from repro.serve.server import ModelServer

    artifact = synthetic_artifact(w.storage_n_vertices, w.n_communities, seed + 3)
    swap = perturbed_artifact(artifact, seed + 4)
    swap_version = swap.version

    with tempfile.TemporaryDirectory(prefix="repro-servebench-") as tmpdir:
        v1_path = Path(tmpdir) / "model_v1.npz"
        v2_path = Path(tmpdir) / "model_v2"
        swap_path = Path(tmpdir) / "model_swap"
        save_artifact(v1_path, artifact, format="npz")  # same payload both
        save_artifact(v2_path, artifact, format="dir")  # formats: fair race
        save_artifact(swap_path, swap, format="dir")
        v1_bytes = v1_path.stat().st_size
        v2_bytes = sum(f.stat().st_size for f in v2_path.iterdir())

        # cold-start children are forked from this process: drop the
        # in-memory artifacts first so their ru_maxrss floor stays low.
        del artifact, swap
        trim_heap()
        cold_script = _cold_script()

        base_rss = min(
            measure_subprocess(cold_script, ["baseline"])["maxrss_bytes"]
            for _ in range(w.storage_reps)
        )
        cold: dict[str, Any] = {}
        for name, path in (("v1_npz", v1_path), ("v2_dir", v2_path)):
            samples = [
                measure_subprocess(cold_script, [str(path)])
                for _ in range(w.storage_reps)
            ]
            rss = min(s["maxrss_bytes"] for s in samples)
            cold[name] = {
                "first_answer_s": min(s["first_answer_s"] for s in samples),
                "maxrss_bytes": rss,
                "rss_delta_bytes": max(0, rss - base_rss),
            }

        # Post-swap latency: a live server starts on the v1 artifact,
        # hot-swaps to the mapped v2 directory, then serves a sequential
        # burst whose per-request latency we time client-side.
        rng = np.random.default_rng(seed + 5)
        pool = [
            np.column_stack([a, (a + 1 + rng.integers(1, 97)) % w.storage_n_vertices])
            for a in (
                rng.integers(0, w.storage_n_vertices, size=(8, 64)).astype(np.int64)
            )
        ]
        latencies = np.empty(w.storage_requests)
        with ModelServer(load_artifact(v1_path), n_workers=2, max_batch=32,
                         max_delay_ms=0.2) as server:
            t_swap = time.perf_counter()
            generation = server.publish_path(swap_path)
            swap_s = time.perf_counter() - t_swap
            for i in range(w.storage_requests):
                t0 = time.perf_counter()
                server.link_probability(pool[i % len(pool)]).result(timeout=60.0)
                latencies[i] = time.perf_counter() - t0
            swapped_version = server.artifact.version

    tiny = 1e-9
    speedup = cold["v1_npz"]["first_answer_s"] / max(
        cold["v2_dir"]["first_answer_s"], tiny
    )
    return {
        "artifact": {
            "n_vertices": w.storage_n_vertices,
            "n_communities": w.n_communities,
            "v1_npz_bytes": v1_bytes,
            "v2_dir_bytes": v2_bytes,
        },
        "reps": w.storage_reps,
        "baseline_rss_bytes": base_rss,
        "cold_start": cold,
        "cold_start_speedup": speedup,
        # v2 pages touched by one answer, as a fraction of what the v1
        # decompress-everything path held resident.
        "cold_rss_fraction": cold["v2_dir"]["rss_delta_bytes"]
        / max(cold["v1_npz"]["rss_delta_bytes"], 1),
        "post_swap": {
            "swap_installed": swapped_version == swap_version,
            "swap_generation": generation,
            "publish_path_s": swap_s,
            "requests": int(w.storage_requests),
            "p50_ms": float(np.percentile(latencies, 50) * 1e3),
            "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        },
    }


def run_serve_bench(
    quick: bool = False,
    seed: int = 0,
    workload: Optional[ServeWorkload] = None,
    faults=None,
    shed_policy=None,
    default_deadline_ms: Optional[float] = None,
) -> dict[str, Any]:
    """Run the load generator; returns the JSON-ready report.

    ``faults`` / ``shed_policy`` / ``default_deadline_ms`` pass straight
    through to :class:`~repro.serve.server.ModelServer`; the defaults
    keep the happy-path bench bit-identical to a plain server.
    """
    from repro.serve.server import ModelServer

    w = workload if workload is not None else (QUICK if quick else FULL)
    rng = np.random.default_rng(seed)
    artifact = synthetic_artifact(w.n_vertices, w.n_communities, seed)
    swap_artifact = perturbed_artifact(artifact, seed + 1)

    pool = _request_pool(rng, w)
    schedules = [
        [
            pool[i]
            for i in _zipf_indices(
                np.random.default_rng(seed + 100 + c),
                w.pool_size,
                w.requests_per_client,
                w.zipf_exponent,
            )
        ]
        for c in range(w.n_clients)
    ]

    results = [_ClientResult() for _ in range(w.n_clients)]
    answered = threading.Event()
    answered_counter = [0]
    counter_lock = threading.Lock()
    swap_threshold = max(1, int(w.total_requests * w.swap_after_fraction))

    server = ModelServer(
        artifact,
        n_workers=2,
        max_batch=max(16, 4 * w.n_clients),
        max_delay_ms=0.2,
        queue_limit=max(256, 4 * w.n_clients * w.pipeline_depth),
        cache_size=2 * w.pool_size,
        faults=faults,
        shed_policy=shed_policy,
        default_deadline_ms=default_deadline_ms,
    )
    swap_info: dict[str, Any] = {"performed": False}

    def swapper() -> None:
        if answered.wait(timeout=120.0):
            gen = server.publish(swap_artifact)
            swap_info.update(
                performed=True,
                generation=gen,
                at_request=answered_counter[0],
                new_version=swap_artifact.version,
            )

    threads = [
        threading.Thread(
            target=_client_loop,
            args=(
                server, schedules[c], w.pipeline_depth, results[c],
                answered, swap_threshold, answered_counter, counter_lock,
            ),
            name=f"client-{c}",
        )
        for c in range(w.n_clients)
    ]
    swap_thread = threading.Thread(target=swapper, name="publisher")

    start = time.perf_counter()
    swap_thread.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    swap_thread.join(timeout=5.0)
    recommend = _recommend_phase(server, w, seed)
    stats = server.stats()
    server.close()
    storage = _storage_phase(w, seed)

    completed = sum(r.completed for r in results)
    queries = sum(r.queries for r in results)
    errors = sum(r.errors for r in results)
    overloads = sum(r.overloads for r in results)
    sheds = sum(r.sheds for r in results)
    deadline_exceeded = sum(r.deadline_exceeded for r in results)
    error_types = sorted(set().union(*(r.error_types for r in results)))
    dropped = w.total_requests - completed - errors - deadline_exceeded
    queries_per_s = queries / elapsed if elapsed > 0 else 0.0
    lp = stats["endpoints"].get("link_probability", {})

    from repro.core import kernels as _kernels

    return {
        "schema": SCHEMA,
        "quick": bool(quick),
        "seed": int(seed),
        # The backend the serving engines actually resolved (artifact
        # configs may name a backend this host lacks; they fall soft).
        "kernel_backend": _kernels.resolve_backend(
            artifact.config.kernel_backend, allow_fallback=True
        ).name,
        "workload": {
            "n_vertices": w.n_vertices,
            "n_communities": w.n_communities,
            "n_clients": w.n_clients,
            "requests_per_client": w.requests_per_client,
            "pairs_per_request": w.pairs_per_request,
            "pool_size": w.pool_size,
            "pipeline_depth": w.pipeline_depth,
            "zipf_exponent": w.zipf_exponent,
        },
        "results": {
            "elapsed_seconds": elapsed,
            "requests_completed": completed,
            "queries_completed": queries,
            "requests_per_s": completed / elapsed if elapsed > 0 else 0.0,
            "queries_per_s": queries_per_s,
            "errors": errors,
            "error_types": error_types,
            "dropped": dropped,
            "overload_rejections": overloads,
            "shed_rejections": sheds,
            "deadline_exceeded": deadline_exceeded,
            "degraded_answers": stats["resilience"]["degraded_answers"],
            "p50_ms": lp.get("p50_ms", 0.0),
            "p99_ms": lp.get("p99_ms", 0.0),
            "cache_hit_rate": stats["cache"]["hit_rate"],
        },
        "recommend_edges": recommend,
        "storage": storage,
        "hot_swap": {
            **swap_info,
            "errors_after_swap": errors,  # zero-total implies zero after swap
            "zero_dropped_or_errored": errors == 0 and dropped == 0,
        },
        "server": stats,
        "acceptance": {
            "target_queries_per_s": TARGET_QUERIES_PER_S,
            "achieved_queries_per_s": queries_per_s,
            "meets_target": queries_per_s >= TARGET_QUERIES_PER_S,
            "target_cold_start_speedup": TARGET_COLD_START_SPEEDUP,
            "achieved_cold_start_speedup": storage["cold_start_speedup"],
            "meets_cold_start_target": (
                storage["cold_start_speedup"] >= TARGET_COLD_START_SPEEDUP
            ),
        },
    }


def report_rows(report: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten for :func:`repro.bench.harness.format_table`."""
    r = report["results"]
    hs = report["hot_swap"]
    return [
        {"metric": "queries/s", "value": r["queries_per_s"]},
        {"metric": "requests/s", "value": r["requests_per_s"]},
        {"metric": "p50 latency (ms)", "value": r["p50_ms"]},
        {"metric": "p99 latency (ms)", "value": r["p99_ms"]},
        {"metric": "cache hit rate", "value": r["cache_hit_rate"]},
        {"metric": "errors", "value": r["errors"]},
        {"metric": "dropped", "value": r["dropped"]},
        {"metric": "overload rejections", "value": r["overload_rejections"]},
        {"metric": "shed rejections", "value": r["shed_rejections"]},
        {"metric": "deadline exceeded", "value": r["deadline_exceeded"]},
        {"metric": "degraded answers", "value": r["degraded_answers"]},
        {
            "metric": "recommend candidate pairs/s",
            "value": report.get("recommend_edges", {}).get(
                "candidate_pairs_per_s", 0.0
            ),
        },
        {"metric": "hot-swap clean", "value": str(hs["zero_dropped_or_errored"])},
        {
            "metric": f"meets {TARGET_QUERIES_PER_S:.0f} q/s target",
            "value": str(report["acceptance"]["meets_target"]),
        },
    ]
    st = report.get("storage")
    if st:
        rows += [
            {
                "metric": "cold start v1 npz (ms)",
                "value": st["cold_start"]["v1_npz"]["first_answer_s"] * 1e3,
            },
            {
                "metric": "cold start v2 dir (ms)",
                "value": st["cold_start"]["v2_dir"]["first_answer_s"] * 1e3,
            },
            {"metric": "cold start speedup", "value": st["cold_start_speedup"]},
            {"metric": "cold RSS fraction (v2/v1)", "value": st["cold_rss_fraction"]},
            {"metric": "post-swap p99 (ms)", "value": st["post_swap"]["p99_ms"]},
            {
                "metric": f"meets {TARGET_COLD_START_SPEEDUP:.0f}x cold-start target",
                "value": str(report["acceptance"]["meets_cold_start_target"]),
            },
        ]
    return rows


def compare_reports(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    threshold: float = 0.5,
) -> list[dict[str, Any]]:
    """Regression rows for ``repro bench-check --suite serve``.

    Only *ratio* metrics are gated (the cold-start speedup is v1-time
    over v2-time on the same machine), so the committed full-size
    ``BENCH_serve.json`` checks cleanly against a quick CI run on
    different hardware. Absolute throughput and latency stay informative
    but ungated — they move with core count and clock speed.
    """
    rows: list[dict[str, Any]] = []
    base = baseline.get("storage", {}).get("cold_start_speedup")
    now = fresh.get("storage", {}).get("cold_start_speedup")
    if base is not None and now is not None:
        # The speedup grows with artifact size (v1 decompression is
        # O(bytes), the v2 map is O(manifest)), so the ratio gate only
        # applies between runs of the same storage workload size. A
        # quick CI run against the committed full-size baseline is
        # instead held to the absolute acceptance target.
        b_n = baseline.get("storage", {}).get("artifact", {}).get("n_vertices")
        f_n = fresh.get("storage", {}).get("artifact", {}).get("n_vertices")
        if b_n == f_n:
            ratio = now / base if base else float("inf")
            rows.append(
                {
                    "metric": "storage/cold_start_speedup",
                    "baseline": base,
                    "fresh": now,
                    "ratio": ratio,
                    "regressed": ratio < 1.0 - threshold,
                }
            )
        else:
            target = float(
                baseline.get("acceptance", {}).get(
                    "target_cold_start_speedup", TARGET_COLD_START_SPEEDUP
                )
            )
            rows.append(
                {
                    "metric": "storage/cold_start_speedup (vs target; "
                    f"workload {f_n} != baseline {b_n})",
                    "baseline": target,
                    "fresh": now,
                    "ratio": now / target if target else float("inf"),
                    "regressed": now < target,
                }
            )
    for flag in ("meets_target", "meets_cold_start_target"):
        b = baseline.get("acceptance", {}).get(flag)
        rows.append(
            {
                "metric": f"acceptance/{flag} (baseline)",
                "baseline": b,
                "fresh": fresh.get("acceptance", {}).get(flag),
                "ratio": 1.0,
                # the committed baseline itself must pass; fresh quick
                # runs on weaker CI hardware are informative only.
                "regressed": b is not True,
            }
        )
    return rows


def run_chaos_serve(quick: bool = True, seed: int = 2026) -> dict[str, Any]:
    """The serving chaos drill: a seeded fault plan against a live server.

    While the closed-loop clients hammer link-probability, the drill
    attempts four publishes: a truncated file (archive-layer corruption),
    a payload-swapped file (only the SHA-256 verify can catch it), a
    clean file whose swap fails mid-flight (rolls back to last-known-
    good), and a clean file that must install. Meanwhile the fault plan
    crashes a worker thread (the watchdog must respawn it) and injects
    engine latency spikes; a post-load burst of microscopic deadlines
    proves deadline enforcement. The report's ``invariants`` section is
    the acceptance contract — ``passed`` is their conjunction.
    """
    from repro.faults import chaos_serve_plan
    from repro.serve.artifact import ArtifactCorrupt, save_artifact
    from repro.serve.server import (
        DeadlineExceeded,
        ModelServer,
        ShedPolicy,
        SwapFailed,
    )

    w = ServeWorkload(
        n_vertices=600 if quick else 2000,
        n_communities=16 if quick else 32,
        n_clients=2,
        requests_per_client=250 if quick else 1000,
        pairs_per_request=16 if quick else 32,
        pool_size=64 if quick else 128,
    )
    plan = chaos_serve_plan(seed=seed, n_workers=2)
    artifact = synthetic_artifact(w.n_vertices, w.n_communities, seed)
    v0 = artifact.version

    rng = np.random.default_rng(seed)
    pool = _request_pool(rng, w)
    schedules = [
        [
            pool[i]
            for i in _zipf_indices(
                np.random.default_rng(seed + 100 + c),
                w.pool_size,
                w.requests_per_client,
                w.zipf_exponent,
            )
        ]
        for c in range(w.n_clients)
    ]
    results = [_ClientResult() for _ in range(w.n_clients)]
    never = threading.Event()  # the drill performs its own swaps

    start = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmpdir:
        server = ModelServer(
            artifact,
            n_workers=2,
            max_batch=16,
            max_delay_ms=0.2,
            queue_limit=512,
            cache_size=4 * w.pool_size,
            faults=plan,
            shed_policy=ShedPolicy(),
            stall_timeout_s=2.0,
            watchdog_interval_s=0.05,
        )
        threads = [
            threading.Thread(
                target=_client_loop,
                args=(
                    server, schedules[c], w.pipeline_depth, results[c],
                    never, w.total_requests + 1, [0], threading.Lock(),
                ),
                name=f"chaos-client-{c}",
            )
            for c in range(w.n_clients)
        ]
        for t in threads:
            t.start()
        time.sleep(0.05)  # let traffic build before the first publish

        outcomes: list[dict[str, Any]] = []
        version_after_rollback = None
        final_version = None
        for attempt in range(4):
            payload = perturbed_artifact(artifact, seed + 10 + attempt)
            path = save_artifact(Path(tmpdir) / f"swap{attempt}.npz", payload)
            mode = plan.artifact_fault(attempt)
            if mode is not None:
                plan.corrupt_file(path, mode)
            try:
                gen = server.publish_path(path)
                outcomes.append(
                    {"attempt": attempt, "outcome": "published", "generation": gen}
                )
                final_version = payload.version
            except ArtifactCorrupt as exc:
                outcomes.append(
                    {
                        "attempt": attempt,
                        "outcome": "quarantined",
                        "mode": mode,
                        "quarantined_as": Path(exc.quarantined).name,
                    }
                )
            except SwapFailed as exc:
                outcomes.append(
                    {
                        "attempt": attempt,
                        "outcome": "rolled_back",
                        "serving_version": exc.serving_version,
                    }
                )
                version_after_rollback = server.artifact.version
            time.sleep(0.05)

        for t in threads:
            t.join()

        # deadline burst: microscopic deadlines on distinct (uncached)
        # membership queries — queue wait alone must expire most of them.
        burst = [
            server.membership(i % w.n_vertices, deadline_ms=0.005)
            for i in range(100)
        ]
        deadline_hits = completed_in_burst = 0
        for fut in burst:
            try:
                fut.result(timeout=30.0)
                completed_in_burst += 1
            except DeadlineExceeded:
                deadline_hits += 1

        health = server.health()
        final_answer_ok = server.query("membership", 0, timeout=30.0) is not None
        stats = server.stats()
        quarantined_files = sorted(
            p.name for p in Path(tmpdir).glob("*.quarantined*")
        )
        server.close()
    elapsed = time.perf_counter() - start

    completed = sum(r.completed for r in results)
    errors = sum(r.errors for r in results)
    deadline_exceeded = sum(r.deadline_exceeded for r in results)
    error_types = sorted(set().union(*(r.error_types for r in results)))
    dropped = w.total_requests - completed - errors - deadline_exceeded
    res = stats["resilience"]

    by_attempt = {o["attempt"]: o["outcome"] for o in outcomes}
    invariants = {
        "server_survived": bool(health["healthy"]) and final_answer_ok,
        "corrupt_publishes_quarantined": (
            by_attempt.get(0) == "quarantined"
            and by_attempt.get(1) == "quarantined"
            and len(quarantined_files) == 2
            and res["quarantines"] == 2
        ),
        "rolled_back_to_last_known_good": (
            by_attempt.get(2) == "rolled_back"
            and version_after_rollback == v0
            and res["rollbacks"] >= 1
        ),
        "final_publish_installed": (
            by_attempt.get(3) == "published"
            and stats["artifact"]["version"] == final_version
        ),
        "worker_respawned": res["worker_respawns"] >= 1,
        "deadline_enforced": deadline_hits >= 1,
        "zero_silent_drops": dropped == 0,
        "typed_errors_only": set(error_types) <= {"WorkerCrashed"},
    }
    return {
        "schema": CHAOS_SCHEMA,
        "quick": bool(quick),
        "seed": int(seed),
        "plan": plan.describe(),
        "elapsed_seconds": elapsed,
        "passed": all(invariants.values()),
        "invariants": invariants,
        "publish_attempts": outcomes,
        "quarantined_files": quarantined_files,
        "client": {
            "requests": w.total_requests,
            "completed": completed,
            "errors": errors,
            "error_types": error_types,
            "deadline_exceeded": deadline_exceeded,
            "shed_rejections": sum(r.sheds for r in results),
            "overload_rejections": sum(r.overloads for r in results),
            "dropped": dropped,
        },
        "deadline_burst": {
            "sent": len(burst),
            "deadline_exceeded": deadline_hits,
            "completed": completed_in_burst,
        },
        "server": stats,
    }


def chaos_report_rows(report: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten the drill verdicts for :func:`repro.bench.harness.format_table`."""
    rows = [
        {"metric": f"invariant: {name}", "value": str(ok)}
        for name, ok in report["invariants"].items()
    ]
    c = report["client"]
    rows += [
        {"metric": "requests completed", "value": c["completed"]},
        {"metric": "typed errors", "value": c["errors"]},
        {"metric": "deadline exceeded", "value": c["deadline_exceeded"]},
        {"metric": "worker respawns", "value": report["server"]["resilience"]["worker_respawns"]},
        {"metric": "drill passed", "value": str(report["passed"])},
    ]
    return rows


def save_report(report: dict[str, Any], path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path) -> dict[str, Any]:
    report = json.loads(Path(path).read_text())
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, got {report.get('schema')!r}"
        )
    return report
