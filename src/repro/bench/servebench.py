"""Serving-layer benchmark: seeded closed-loop load generator.

``run_serve_bench`` stands up a :class:`~repro.serve.server.ModelServer`
over a synthetic artifact (acceptance workload: N=10k nodes, K=64) and
drives it with closed-loop client threads issuing Zipf-skewed
link-probability requests (a small hot set dominates, as real query
traffic does — this is what exercises the LRU cache). Each client keeps a
bounded pipeline of outstanding futures, so admission, batching and
scoring overlap like they would behind a real RPC front end.

Mid-run, a perturbed artifact is **hot-swapped** in while the clients
keep hammering; the report proves the swap completed with zero dropped
and zero errored queries — the serving layer's equivalent of the chaos
drill.

The JSON report (``BENCH_serve.json``) embeds the full
:class:`~repro.serve.metrics.ServerMetrics` snapshot (per-endpoint QPS,
p50/p99 latency, cache hit rate, batching stats) plus the acceptance
verdict: sustained batched link-probability queries/sec against the 50k/s
target. Everything is seeded; quick mode shrinks the workload for CI but
keeps the same shape.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.config import AMMSBConfig

SCHEMA = "repro-serve-bench/1"

#: acceptance target: sustained batched link-probability queries/sec.
TARGET_QUERIES_PER_S = 50_000.0


@dataclass(frozen=True)
class ServeWorkload:
    """Sizing of one load-generator run."""

    n_vertices: int = 10_000
    n_communities: int = 64
    n_clients: int = 4
    requests_per_client: int = 1500
    pairs_per_request: int = 64
    pool_size: int = 512  # distinct requests (Zipf-sampled -> cache hits)
    pipeline_depth: int = 8
    zipf_exponent: float = 1.1
    swap_after_fraction: float = 0.5

    @property
    def total_requests(self) -> int:
        return self.n_clients * self.requests_per_client

    @property
    def total_queries(self) -> int:
        return self.total_requests * self.pairs_per_request


FULL = ServeWorkload()
QUICK = ServeWorkload(
    n_vertices=2000,
    n_communities=32,
    n_clients=2,
    requests_per_client=300,
    pairs_per_request=32,
    pool_size=128,
)


def synthetic_artifact(n_vertices: int, n_communities: int, seed: int):
    """A model-shaped artifact without training (random gamma posterior)."""
    from repro.core.state import init_state
    from repro.serve.artifact import build_artifact

    config = AMMSBConfig(n_communities=n_communities, seed=seed)
    state = init_state(n_vertices, config, np.random.default_rng(seed))
    return build_artifact(state, config, iteration=0)


def perturbed_artifact(artifact, seed: int):
    """A distinct-version snapshot of the same shape (the hot-swap payload)."""
    from repro.core.state import ModelState
    from repro.serve.artifact import build_artifact

    rng = np.random.default_rng(seed)
    pi = artifact.pi * rng.uniform(0.9, 1.1, size=artifact.pi.shape)
    state = ModelState(
        pi=pi / pi.sum(axis=1, keepdims=True),
        phi_sum=np.ones(artifact.n_nodes),
        theta=artifact.theta.copy(),
    )
    return build_artifact(state, artifact.config, iteration=artifact.iteration + 1)


def _zipf_indices(
    rng: np.random.Generator, n: int, size: int, exponent: float
) -> np.ndarray:
    """``size`` draws from a Zipf law over ``range(n)`` (rank 0 hottest)."""
    weights = np.arange(1, n + 1, dtype=np.float64) ** -exponent
    weights /= weights.sum()
    return rng.choice(n, size=size, p=weights)


def _request_pool(rng: np.random.Generator, w: ServeWorkload) -> list[np.ndarray]:
    """Distinct (B, 2) pair requests over Zipf-popular nodes."""
    pool = []
    for _ in range(w.pool_size):
        a = _zipf_indices(rng, w.n_vertices, w.pairs_per_request, w.zipf_exponent)
        b = (a + 1 + rng.integers(0, w.n_vertices - 1, size=a.shape)) % w.n_vertices
        pool.append(np.column_stack([a, b]).astype(np.int64))
    return pool


@dataclass
class _ClientResult:
    completed: int = 0
    queries: int = 0
    errors: int = 0
    overloads: int = 0


def _client_loop(
    server,
    schedule: list[np.ndarray],
    depth: int,
    result: _ClientResult,
    answered: threading.Event,
    answer_threshold: int,
    answered_counter: list[int],
    counter_lock: threading.Lock,
) -> None:
    """Closed-loop client: bounded pipeline of outstanding requests."""
    from repro.serve.server import ServerOverloaded

    outstanding: list[tuple] = []

    def drain(block_all: bool = False) -> None:
        while outstanding and (block_all or len(outstanding) >= depth):
            fut, n_pairs = outstanding.pop(0)
            try:
                probs = fut.result(timeout=60.0)
                ok = (
                    len(probs) == n_pairs
                    and bool(np.all(np.isfinite(probs)))
                    and bool(np.all((probs > 0) & (probs < 1)))
                )
                if not ok:
                    result.errors += 1
                    continue
                result.completed += 1
                result.queries += n_pairs
                with counter_lock:
                    answered_counter[0] += 1
                    if answered_counter[0] >= answer_threshold:
                        answered.set()
            except Exception:  # noqa: BLE001 - counted, not raised
                result.errors += 1

    for pairs in schedule:
        while True:
            try:
                fut = server.link_probability(pairs)
                break
            except ServerOverloaded:
                result.overloads += 1
                drain(block_all=False)
                time.sleep(0.0005)
        outstanding.append((fut, len(pairs)))
        drain(block_all=False)
    drain(block_all=True)


def run_serve_bench(
    quick: bool = False,
    seed: int = 0,
    workload: Optional[ServeWorkload] = None,
) -> dict[str, Any]:
    """Run the load generator; returns the JSON-ready report."""
    from repro.serve.server import ModelServer

    w = workload if workload is not None else (QUICK if quick else FULL)
    rng = np.random.default_rng(seed)
    artifact = synthetic_artifact(w.n_vertices, w.n_communities, seed)
    swap_artifact = perturbed_artifact(artifact, seed + 1)

    pool = _request_pool(rng, w)
    schedules = [
        [
            pool[i]
            for i in _zipf_indices(
                np.random.default_rng(seed + 100 + c),
                w.pool_size,
                w.requests_per_client,
                w.zipf_exponent,
            )
        ]
        for c in range(w.n_clients)
    ]

    results = [_ClientResult() for _ in range(w.n_clients)]
    answered = threading.Event()
    answered_counter = [0]
    counter_lock = threading.Lock()
    swap_threshold = max(1, int(w.total_requests * w.swap_after_fraction))

    server = ModelServer(
        artifact,
        n_workers=2,
        max_batch=max(16, 4 * w.n_clients),
        max_delay_ms=0.2,
        queue_limit=max(256, 4 * w.n_clients * w.pipeline_depth),
        cache_size=2 * w.pool_size,
    )
    swap_info: dict[str, Any] = {"performed": False}

    def swapper() -> None:
        if answered.wait(timeout=120.0):
            gen = server.publish(swap_artifact)
            swap_info.update(
                performed=True,
                generation=gen,
                at_request=answered_counter[0],
                new_version=swap_artifact.version,
            )

    threads = [
        threading.Thread(
            target=_client_loop,
            args=(
                server, schedules[c], w.pipeline_depth, results[c],
                answered, swap_threshold, answered_counter, counter_lock,
            ),
            name=f"client-{c}",
        )
        for c in range(w.n_clients)
    ]
    swap_thread = threading.Thread(target=swapper, name="publisher")

    start = time.perf_counter()
    swap_thread.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    swap_thread.join(timeout=5.0)
    stats = server.stats()
    server.close()

    completed = sum(r.completed for r in results)
    queries = sum(r.queries for r in results)
    errors = sum(r.errors for r in results)
    overloads = sum(r.overloads for r in results)
    dropped = w.total_requests - completed - errors
    queries_per_s = queries / elapsed if elapsed > 0 else 0.0
    lp = stats["endpoints"].get("link_probability", {})

    return {
        "schema": SCHEMA,
        "quick": bool(quick),
        "seed": int(seed),
        "workload": {
            "n_vertices": w.n_vertices,
            "n_communities": w.n_communities,
            "n_clients": w.n_clients,
            "requests_per_client": w.requests_per_client,
            "pairs_per_request": w.pairs_per_request,
            "pool_size": w.pool_size,
            "pipeline_depth": w.pipeline_depth,
            "zipf_exponent": w.zipf_exponent,
        },
        "results": {
            "elapsed_seconds": elapsed,
            "requests_completed": completed,
            "queries_completed": queries,
            "requests_per_s": completed / elapsed if elapsed > 0 else 0.0,
            "queries_per_s": queries_per_s,
            "errors": errors,
            "dropped": dropped,
            "overload_rejections": overloads,
            "p50_ms": lp.get("p50_ms", 0.0),
            "p99_ms": lp.get("p99_ms", 0.0),
            "cache_hit_rate": stats["cache"]["hit_rate"],
        },
        "hot_swap": {
            **swap_info,
            "errors_after_swap": errors,  # zero-total implies zero after swap
            "zero_dropped_or_errored": errors == 0 and dropped == 0,
        },
        "server": stats,
        "acceptance": {
            "target_queries_per_s": TARGET_QUERIES_PER_S,
            "achieved_queries_per_s": queries_per_s,
            "meets_target": queries_per_s >= TARGET_QUERIES_PER_S,
        },
    }


def report_rows(report: dict[str, Any]) -> list[dict[str, Any]]:
    """Flatten for :func:`repro.bench.harness.format_table`."""
    r = report["results"]
    hs = report["hot_swap"]
    return [
        {"metric": "queries/s", "value": r["queries_per_s"]},
        {"metric": "requests/s", "value": r["requests_per_s"]},
        {"metric": "p50 latency (ms)", "value": r["p50_ms"]},
        {"metric": "p99 latency (ms)", "value": r["p99_ms"]},
        {"metric": "cache hit rate", "value": r["cache_hit_rate"]},
        {"metric": "errors", "value": r["errors"]},
        {"metric": "dropped", "value": r["dropped"]},
        {"metric": "overload rejections", "value": r["overload_rejections"]},
        {"metric": "hot-swap clean", "value": str(hs["zero_dropped_or_errored"])},
        {
            "metric": f"meets {TARGET_QUERIES_PER_S:.0f} q/s target",
            "value": str(report["acceptance"]["meets_target"]),
        },
    ]


def save_report(report: dict[str, Any], path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path) -> dict[str, Any]:
    report = json.loads(Path(path).read_text())
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, got {report.get('schema')!r}"
        )
    return report
