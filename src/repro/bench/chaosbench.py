"""Chaos drill for the durable streaming tier: kill it, then prove recovery.

``run_chaos_stream`` replays one deterministic arrival stream through
:class:`~repro.stream.trainer.StreamTrainer` while injecting every fault
class the durability work claims to survive, and asserts the recovery
invariants end to end:

- **kill/resume at every phase** — for each phase in
  :data:`repro.faults.CRASH_PHASES`, a run is killed mid-generation
  (via :class:`~repro.faults.InjectedCrash`), resumed with
  :meth:`StreamTrainer.resume`, re-fed the crashed batch, and driven to
  completion. The final digested CSR must be byte-identical to an
  uninterrupted reference run — same edge-key set, same container
  ``content_version`` — i.e. no accepted edge lost, none duplicated.
- **torn journal write** — a frame is cut mid-write; reopen must
  truncate exactly the torn tail, the re-fed batch must land, and the
  final state must still match the reference.
- **quarantine persistence** — malformed records fed in a clean batch
  must survive crash + resume in the sidecar with their reasons.
- **source supervision** — injected poll I/O faults plus a file
  rotation must be absorbed by :class:`~repro.stream.follow
  .FollowSupervisor` backoff with every edge still ingested.
- **serving** — the artifact recorded by the resumed run's manifest
  must load and answer a membership query about a streamed-in node.

``repro chaos-stream`` runs this drill and exits non-zero when any
invariant fails, which is what makes it a CI gate rather than a demo.
Schema v1 (``repro-chaos-stream/1``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Any, Optional

import numpy as np

SCHEMA = "repro-chaos-stream/1"


def _final_state(workdir: Path) -> tuple[str, frozenset, int]:
    """(content_version, edge-key set, n_vertices) of a run's digested CSR."""
    from repro.graph.io import load_csr
    from repro.store.container import read_manifest
    from repro.stream.trainer import StreamTrainer

    manifest = StreamTrainer.read_manifest(workdir)
    graph_path = Path(manifest["graph_path"])
    if not graph_path.is_absolute():
        graph_path = workdir / graph_path
    version = read_manifest(graph_path)["content_version"]
    graph = load_csr(graph_path, provider="resident")
    return version, frozenset(int(k) for k in graph.keys), graph.n_vertices


def run_chaos_stream(
    quick: bool = False, seed: int = 0, n_iterations: int = 8
) -> dict[str, Any]:
    """Run the full chaos drill; returns the JSON-ready report.

    Args:
        quick: smaller graph and fewer batches (CI-sized; same fault
            coverage — every crash phase still runs).
        seed: master seed for the planted graph and stream.
        n_iterations: per-generation training budget. The invariants are
            about durability, not model quality, so this stays tiny.
    """
    from repro.config import AMMSBConfig, StepSizeConfig
    from repro.faults import CRASH_PHASES, InjectedCrash, JournalTear, \
        SourceFault, StreamFaultPlan, TrainerCrash
    from repro.graph.generators import planted_overlapping_graph
    from repro.serve.artifact import load_artifact
    from repro.serve.server import ModelServer
    from repro.stream.follow import FollowSupervisor, TriggerPolicy, follow_stream
    from repro.stream.source import (
        EdgeArrival,
        FileTailSource,
        SyntheticArrivalSource,
        write_arrival_file,
    )
    from repro.stream.trainer import StreamTrainer

    n_vertices = 160 if quick else 260
    n_batches = 4
    rng = np.random.default_rng(seed)
    graph, _ = planted_overlapping_graph(
        n_vertices, 4, memberships_per_vertex=1, p_in=0.25, p_out=0.004, rng=rng
    )
    source = SyntheticArrivalSource(graph, base_fraction=0.85, seed=seed + 3)
    base = source.base_graph()
    batches = list(source.batches(n_batches))
    config = AMMSBConfig(
        n_communities=4,
        mini_batch_vertices=32,
        neighbor_sample_size=16,
        seed=seed + 2,
        step_phi=StepSizeConfig(a=0.05),
        step_theta=StepSizeConfig(a=0.05),
    )
    # No mangling faults in crash scenarios: RNG-driven corruption does
    # not replay identically across a kill/resume boundary, so equality
    # with the reference would be vacuous. Dirty input is exercised
    # separately (quarantine scenario) with *explicit* bad records.

    invariants: dict[str, bool] = {}
    details: dict[str, Any] = {}
    t0 = time.perf_counter()

    def trainer_kwargs(tmp: Path, **extra) -> dict:
        kw = dict(
            workdir=tmp / "work",
            iterations_per_generation=n_iterations,
            publish_path=tmp / "artifact.npz",
            history_path=tmp / "history.npz",
            heldout_fraction=0.05,
            journal_segment_bytes=1 << 12,  # roll often: GC paths exercised
        )
        kw.update(extra)
        return kw

    # -- reference: the same stream, never interrupted.
    with TemporaryDirectory(prefix="repro-chaos-ref-") as tmp:
        tmp = Path(tmp)
        trainer = StreamTrainer(base, config, **trainer_kwargs(tmp))
        for batch in batches:
            trainer.run_generation(batch)
        ref_version, ref_keys, ref_n = _final_state(tmp / "work")
    details["reference"] = {
        "n_edges": len(ref_keys),
        "n_vertices": ref_n,
        "content_version": ref_version,
        "n_batches": n_batches,
    }

    def run_killed(faults, crash_batch: int, tmp: Path, resume_kwargs=None):
        """Drive batches until the injected crash, resume, finish.

        Returns (resumed_trainer, crash_seen). The crashed batch is
        re-fed after resume — at-least-once delivery the overlay and
        journal must absorb into exactly-once state.
        """
        trainer = StreamTrainer(base, config, **trainer_kwargs(tmp, faults=faults))
        crash_seen = None
        for i, batch in enumerate(batches):
            try:
                trainer.run_generation(batch)
            except InjectedCrash as exc:
                crash_seen = exc.where
                assert i == crash_batch, (i, crash_batch)
                break
        else:  # pragma: no cover - drill misconfiguration
            return trainer, None
        trainer.journal.close()  # the "process" died; release the handle
        resumed = StreamTrainer.resume(
            tmp / "work",
            iterations_per_generation=n_iterations,
            heldout_fraction=0.05,
            **(resume_kwargs or {}),
        )
        for batch in batches[crash_batch:]:
            resumed.run_generation(batch)
        return resumed, crash_seen

    # -- kill/resume at every crash phase.
    crash_batch = 2
    phase_results = {}
    for phase in CRASH_PHASES:
        with TemporaryDirectory(prefix="repro-chaos-kill-") as tmp:
            tmp = Path(tmp)
            faults = StreamFaultPlan(
                seed=seed,
                trainer_crashes=(TrainerCrash(phase=phase, generation=crash_batch),),
            )
            resumed, crash_seen = run_killed(faults, crash_batch, tmp)
            version, keys, n = _final_state(tmp / "work")
            phase_results[phase] = {
                "crashed": crash_seen is not None,
                "no_lost_edges": ref_keys <= keys,
                "no_duplicate_edges": keys <= ref_keys,
                "csr_matches_reference": version == ref_version,
                "generations": resumed.generation,
                "last_known_good_served": (
                    resumed.last_published is not None
                    and Path(resumed.last_published).exists()
                ),
            }
    ok = lambda key: all(r[key] for r in phase_results.values())  # noqa: E731
    invariants["crash_injected_every_phase"] = all(
        r["crashed"] for r in phase_results.values()
    )
    invariants["no_lost_edges"] = ok("no_lost_edges")
    invariants["no_duplicate_edges"] = ok("no_duplicate_edges")
    invariants["csr_matches_reference"] = ok("csr_matches_reference")
    invariants["last_known_good_served"] = ok("last_known_good_served")
    details["kill_resume"] = phase_results

    # -- torn journal write: the frame for batch 1 is cut mid-write.
    with TemporaryDirectory(prefix="repro-chaos-tear-") as tmp:
        tmp = Path(tmp)
        faults = StreamFaultPlan(seed=seed, journal_tears=(JournalTear(append=1),))
        resumed, crash_seen = run_killed(faults, 1, tmp)
        version, keys, _ = _final_state(tmp / "work")
        repaired = resumed.journal.repaired  # (path, offset, reason) or None
        invariants["torn_tail_repaired"] = (
            crash_seen is not None and repaired is not None
            and version == ref_version
        )
        details["torn_write"] = {
            "repaired": (
                {"path": str(repaired[0]), "offset": repaired[1],
                 "reason": repaired[2]}
                if repaired else None
            ),
            "csr_matches_reference": version == ref_version,
        }

    # -- quarantine persistence across a crash.
    with TemporaryDirectory(prefix="repro-chaos-quar-") as tmp:
        tmp = Path(tmp)
        faults = StreamFaultPlan(
            seed=seed,
            trainer_crashes=(TrainerCrash(phase="post-journal-append", generation=1),),
        )
        trainer = StreamTrainer(base, config, **trainer_kwargs(tmp, faults=faults))
        bad = [
            EdgeArrival(timestamp=0.5, src=-4, dst=7),
            EdgeArrival(timestamp=0.6, src=3, dst=3),
        ]
        trainer.run_generation(batches[0] + bad)
        n_quarantined_before = len(trainer.quarantine_log)
        try:
            trainer.run_generation(batches[1])
            crashed = False
        except InjectedCrash:
            crashed = True
        trainer.journal.close()
        resumed = StreamTrainer.resume(
            tmp / "work",
            iterations_per_generation=n_iterations,
            heldout_fraction=0.05,
        )
        records = resumed.quarantine_log.read()
        reasons = {r["reason"] for r in records}
        invariants["quarantine_persisted"] = (
            crashed
            and n_quarantined_before >= 2
            and len(records) == n_quarantined_before
            and len(reasons) >= 2
        )
        details["quarantine"] = {
            "records": len(records),
            "reasons": sorted(reasons),
        }

    # -- supervised source: injected poll faults + a file rotation.
    with TemporaryDirectory(prefix="repro-chaos-follow-") as tmp:
        tmp = Path(tmp)
        arrivals = [a for batch in batches for a in batch]
        # 3/4 then 1/4: the rotated replacement is decidedly smaller than
        # the consumed offset, so the shrink check must fire.
        half = 3 * len(arrivals) // 4
        feed = write_arrival_file(tmp / "feed.txt", arrivals[:half])
        tail = FileTailSource(feed, strict=False)
        trainer = StreamTrainer(base, config, **trainer_kwargs(tmp))
        clock_now = [0.0]
        supervisor = FollowSupervisor(
            tail,
            poll_interval_s=0.0,
            backoff_initial_s=0.01,
            stall_deadline_s=60.0,
            faults=StreamFaultPlan(
                seed=seed, source_faults=(SourceFault(poll=1, errors=2),)
            ),
            seed=seed,
            sleep=lambda s: clock_now.__setitem__(0, clock_now[0] + s),
            clock=lambda: clock_now[0],
        )
        policy = TriggerPolicy(max_edges=max(1, half // 2))
        report1 = follow_stream(
            trainer, supervisor, policy, idle_exit_polls=3,
            n_iterations=n_iterations,
        )
        # Rotate: the feed is atomically replaced by a SHORTER file
        # holding only the tail of the stream.
        write_arrival_file(tmp / "feed.next", arrivals[half:])
        (tmp / "feed.next").replace(feed)
        report2 = follow_stream(
            trainer, supervisor, policy, idle_exit_polls=3,
            n_iterations=n_iterations,
        )
        version, keys, _ = _final_state(tmp / "work")
        invariants["source_retry_recovered"] = (
            supervisor.failures >= 2
            and supervisor.backoffs >= 2
            and tail.n_rotations >= 1
            and keys == ref_keys
            and version == ref_version
        )
        details["follow"] = {
            "polls": supervisor.polls,
            "failures": supervisor.failures,
            "rotations": tail.n_rotations,
            "generations": len(report1.generations) + len(report2.generations),
            "triggers": report1.triggers + report2.triggers,
            "drained": [report1.drained, report2.drained],
            "csr_matches_reference": version == ref_version,
        }

        # -- serving after the follow run: the published artifact answers
        # a query about a node that only exists because the stream ran.
        artifact = load_artifact(tmp / "artifact.npz")
        server = ModelServer(
            artifact, n_workers=0, drift_window=4,
            history_path=tmp / "history.npz",
        )
        try:
            new_node = graph.n_vertices - 1
            fut = server.membership(new_node)
            server.process_once()
            membership = fut.result(timeout=30)
            invariants["artifact_serves_after_resume"] = len(membership) > 0
        finally:
            server.close()
        details["serve"] = {
            "artifact_version": artifact.version,
            "queried_node": int(new_node),
        }

    report = {
        "schema": SCHEMA,
        "quick": bool(quick),
        "seed": int(seed),
        "elapsed_s": time.perf_counter() - t0,
        "invariants": invariants,
        "passed": all(invariants.values()),
        "details": details,
    }
    return report


def report_rows(report: dict[str, Any]) -> list[str]:
    """Human-readable drill summary for the CLI."""
    ref = report["details"]["reference"]
    rows = [
        f"chaos-stream: {ref['n_edges']} edges, {ref['n_vertices']} vertices, "
        f"{ref['n_batches']} batches (quick={report['quick']}, "
        f"{report['elapsed_s']:.1f}s)",
    ]
    for name, ok in sorted(report["invariants"].items()):
        rows.append(f"  {name}: {'PASS' if ok else 'FAIL'}")
    rows.append(f"result: {'PASS' if report['passed'] else 'FAIL'}")
    return rows


def save_report(report: dict[str, Any], path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
