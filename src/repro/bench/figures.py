"""Experiment definitions: one function per paper table/figure.

Every function returns a list of row-dicts ready for
:func:`repro.bench.harness.format_table`; the ``benchmarks/`` files print
them and assert the qualitative shapes the paper reports. Paper-scale
timing experiments (Figs 1-4, Table III) use the analytic mode; the DKV
micro-benchmark (Fig 5) uses the discrete-event simulator; convergence
(Fig 6) runs the real distributed sampler on the synthetic SNAP stand-ins
and maps iteration counts onto a full-scale time axis with the cost model.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cluster.costmodel import CostModel, SingleNodeModel, WorkloadShape
from repro.cluster.spec import DAS5_NODE, HPC_CLOUD_NODE, ClusterSpec, das5
from repro.config import AMMSBConfig, StepSizeConfig
from repro.dist.analytic import analytic_iteration, dataset_shape
from repro.graph.datasets import DATASETS, load_dataset

# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------


def table2(scale: float = 1e-3) -> list[dict]:
    """Table II: the six SNAP datasets, full scale + generated stand-in."""
    rows = []
    for name, spec in DATASETS.items():
        graph, truth, _ = load_dataset(name, scale=scale)
        rows.append(
            {
                "Name": name,
                "#Vertices": spec.n_vertices,
                "#Edges": spec.n_edges,
                "#GT communities": spec.n_ground_truth_communities,
                "standin N": graph.n_vertices,
                "standin |E|": graph.n_edges,
                "standin K": truth.n_communities,
                "Description": spec.description,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 1: strong scaling (com-Friendster, K=1024, M=16384, n=32, 2048 it)
# ---------------------------------------------------------------------------


def fig1_strong_scaling(
    worker_counts: Sequence[int] = (8, 16, 24, 32, 48, 64),
    n_communities: int = 1024,
    n_iterations: int = 2048,
    pipelined: bool = True,
) -> list[dict]:
    shape = dataset_shape("com-Friendster", n_communities)
    rows = []
    for c in worker_counts:
        t = analytic_iteration(shape, cluster=das5(c), pipelined=pipelined)
        rows.append(
            {
                "workers": c,
                "total_s": t.total * n_iterations,
                "update_phi_pi_s": (t.update_phi + t.update_pi) * n_iterations,
                "minibatch_deploy_s": t.draw_deploy * n_iterations,
                "update_beta_theta_s": t.update_beta_theta * n_iterations,
            }
        )
    base = rows[0]["total_s"]
    for r in rows:
        r["speedup_vs_8"] = base / r["total_s"]
    return rows


# ---------------------------------------------------------------------------
# Figure 2: weak scaling (K proportional to cluster size)
# ---------------------------------------------------------------------------


def fig2_weak_scaling(
    worker_counts: Sequence[int] = (8, 16, 24, 32, 48, 64),
    communities_per_worker: int = 128,
) -> list[dict]:
    fr = DATASETS["com-Friendster"]
    rows = []
    for c in worker_counts:
        shape = WorkloadShape(
            n_vertices=fr.n_vertices,
            n_edges=fr.n_edges,
            n_communities=communities_per_worker * c,
            heldout_pairs=0,
        )
        t = analytic_iteration(shape, cluster=das5(c), pipelined=True)
        rows.append(
            {
                "workers": c,
                "communities": shape.n_communities,  # Fig 2-b
                "sec_per_iteration": t.total,  # Fig 2-a
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 3: pipelining gain vs K (64 workers, 1024 iterations)
# ---------------------------------------------------------------------------


def fig3_pipeline(
    k_values: Sequence[int] = (1024, 2048, 4096, 8192, 12288),
    n_workers: int = 64,
    n_iterations: int = 1024,
) -> list[dict]:
    rows = []
    cm = CostModel(das5(n_workers))
    for k in k_values:
        shape = dataset_shape("com-Friendster", k)
        single = cm.iteration(shape, pipelined=False).total * n_iterations
        double = cm.iteration(shape, pipelined=True).total * n_iterations
        rows.append(
            {
                "communities": k,
                "single_buffer_s": single,
                "double_buffer_s": double,
                "gain_s": single - double,
                "gain_pct": 100.0 * (single - double) / single,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table III: stage breakdown (com-Friendster, 65 nodes, K=12288)
# ---------------------------------------------------------------------------

#: Paper's measured values, ms per iteration.
TABLE3_PAPER_MS = {
    "total": (450.0, 365.0),
    "draw_deploy": (45.6, None),
    "update_phi": (285.0, 241.0),
    "update_pi": (3.8, 4.6),
    "update_beta_theta": (25.9, 33.6),
    "load_pi": (205.0, 209.0),
    "update_phi_compute": (74.0, 74.0),
}


def table3_breakdown(n_workers: int = 64, n_communities: int = 12288) -> list[dict]:
    shape = dataset_shape("com-Friendster", n_communities)
    cm = CostModel(das5(n_workers))
    plain = cm.iteration(shape, pipelined=False).as_dict()
    piped = cm.iteration(shape, pipelined=True).as_dict()
    rows = []
    for stage, (paper_np, paper_p) in TABLE3_PAPER_MS.items():
        rows.append(
            {
                "stage": stage,
                "paper_nonpipelined_ms": paper_np,
                "model_nonpipelined_ms": plain[stage] * 1e3,
                "paper_pipelined_ms": paper_p if paper_p is not None else "-",
                "model_pipelined_ms": piped[stage] * 1e3,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 4: horizontal vs vertical scaling
# ---------------------------------------------------------------------------


def fig4a_vertical_dblp(
    k_values: Sequence[int] = (1024, 2048, 4096, 8192, 16384),
) -> list[dict]:
    """Fig 4-a: com-DBLP on HPC Cloud 40/16 cores vs one 16-core DAS5 node."""
    dblp = DATASETS["com-DBLP"]
    rows = []
    for k in k_values:
        shape = WorkloadShape(
            n_vertices=dblp.n_vertices,
            n_edges=dblp.n_edges,
            n_communities=k,
            heldout_pairs=0,
        )
        rows.append(
            {
                "communities": k,
                "hpc_cloud_40c_s": SingleNodeModel(HPC_CLOUD_NODE, 40).iteration(shape).total,
                "hpc_cloud_16c_s": SingleNodeModel(HPC_CLOUD_NODE, 16).iteration(shape).total,
                "das5_16c_s": SingleNodeModel(DAS5_NODE, 16).iteration(shape).total,
            }
        )
    return rows


def fig4b_horizontal_vs_vertical(
    k_values: Sequence[int] = (512, 1024, 2048, 3072),
) -> list[dict]:
    """Fig 4-b: com-Friendster, 64 DAS5 nodes vs the 40-core 1 TB VM.

    K stops at ~3072: above that pi no longer fits in the VM's 1 TB (the
    vertical approach hits its memory wall long before the cluster does).
    """
    rows = []
    for k in k_values:
        shape = dataset_shape("com-Friendster", k, heldout_fraction=0.0)
        dist = analytic_iteration(shape, cluster=das5(64), pipelined=True).total
        single = SingleNodeModel(HPC_CLOUD_NODE, 40).iteration(shape).total
        rows.append(
            {
                "communities": k,
                "das5_64nodes_s": dist,
                "hpc_cloud_40c_s": single,
                "distributed_speedup": single / dist,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 5: DKV store bandwidth vs qperf
# ---------------------------------------------------------------------------


def fig5_dkv_vs_qperf(
    payloads: Sequence[int] = (256, 1024, 4096, 16384, 65536, 262144, 1048576),
    n_ops: int = 128,
) -> list[dict]:
    from repro.cluster.dkv import dkv_bandwidth
    from repro.sim.qperf import run_qperf
    from repro.sim.rdma import RdmaOpType

    rows = []
    for p in payloads:
        qperf_read = run_qperf(p, op_type=RdmaOpType.READ, n_ops=n_ops).bandwidth
        qperf_write = run_qperf(p, op_type=RdmaOpType.WRITE, n_ops=n_ops).bandwidth
        dkv = dkv_bandwidth(p, n_requests=n_ops)
        rows.append(
            {
                "payload_B": p,
                "qperf_read_GBps": qperf_read / 1e9,
                "qperf_write_GBps": qperf_write / 1e9,
                "dkv_read_GBps": dkv / 1e9,
                "dkv_vs_qperf_pct": 100.0 * dkv / qperf_read,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 6: convergence of the six datasets
# ---------------------------------------------------------------------------

#: Paper configuration per sub-figure: (workers, K at full scale).
FIG6_CONFIG = {
    "com-Friendster": (64, 12288),
    "com-LiveJournal": (64, 98304),
    "com-Orkut": (64, 131072),
    "com-Youtube": (13, 8385),
    "com-DBLP": (23, 13477),
    "com-Amazon": (23, 75149),
}


def fig6_convergence(
    dataset: str,
    scale: float = 5e-4,
    n_iterations: int = 3000,
    checkpoint_every: int = 250,
    n_workers: Optional[int] = None,
    seed: int = 0,
) -> list[dict]:
    """Convergence on a stand-in + full-scale simulated time axis.

    The real distributed sampler runs on the scaled stand-in; the
    wall-clock column maps each iteration onto the *full-scale* per-
    iteration time from the cost model under the paper's Fig 6 cluster
    configuration, which is how the 'hours to converge' shape of Figure 6
    is reproduced without a 65-node cluster.
    """
    from repro.cluster.spec import das5 as _das5
    from repro.dist.sampler import DistributedAMMSBSampler
    from repro.graph.split import split_heldout

    workers_full, k_full = FIG6_CONFIG[dataset]
    if n_workers is None:
        n_workers = min(4, workers_full)

    graph, truth, spec = load_dataset(dataset, scale=scale)
    split = split_heldout(graph, 0.02, np.random.default_rng(seed))
    k_standin = truth.n_communities
    cfg = AMMSBConfig(
        n_communities=k_standin,
        mini_batch_vertices=max(128, graph.n_vertices // 16),
        neighbor_sample_size=32,
        seed=seed,
        step_phi=StepSizeConfig(a=0.05),
        step_theta=StepSizeConfig(a=0.05),
    )
    sampler = DistributedAMMSBSampler(
        split.train, cfg, cluster=_das5(n_workers), heldout=split, pipelined=True
    )

    # Full-scale per-iteration time under the paper's configuration.
    shape_full = dataset_shape(dataset, k_full)
    t_full = analytic_iteration(
        shape_full, cluster=_das5(workers_full), pipelined=True
    ).total

    rows = []
    for it in range(0, n_iterations, checkpoint_every):
        sampler.run(checkpoint_every)
        perp = sampler.evaluate_perplexity()
        rows.append(
            {
                "dataset": dataset,
                "iteration": sampler.iteration,
                "standin_perplexity": perp,
                "sim_standin_s": sampler.timing.total_seconds,
                "projected_fullscale_h": sampler.iteration * t_full / 3600.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------


def ablation_pipeline_chunks(
    chunk_counts: Sequence[int] = (1, 2, 4, 9, 16, 32, 64),
    n_communities: int = 12288,
) -> list[dict]:
    """E12: update_phi chunk-count sweep (Section III-D double buffering).

    chunks=1 degenerates to no overlap inside update_phi; large counts
    approach max(load, compute) but pay per-chunk overhead in reality (not
    modeled), so the paper's implementation uses a moderate count.
    """
    shape = dataset_shape("com-Friendster", n_communities)
    rows = []
    for c in chunk_counts:
        cm = CostModel(das5(64), pipeline_chunks=c)
        t = cm.iteration(shape, pipelined=True)
        rows.append(
            {
                "chunks": c,
                "update_phi_ms": t.update_phi * 1e3,
                "total_ms": t.total * 1e3,
            }
        )
    return rows


def ablation_fabric(
    k_values: Sequence[int] = (1024, 4096, 12288),
    n_workers: int = 64,
) -> list[dict]:
    """Ablation: FDR InfiniBand + RDMA vs 10 GbE + kernel TCP.

    The paper leans on RDMA for the DKV store (Section III-B). Replacing
    the fabric with commodity Ethernet inflates load_pi (the dominant
    stage) by the bandwidth ratio and per-message costs, quantifying how
    much of the system's performance is bought by the fabric.
    """
    from repro.sim.network import NetworkParams

    rows = []
    for k in k_values:
        shape = dataset_shape("com-Friendster", k)
        ib = CostModel(das5(n_workers)).iteration(shape, pipelined=True)
        eth_cluster = ClusterSpec(
            n_workers=n_workers, network=NetworkParams.ethernet_10g()
        )
        # Ethernet also lowers the loaded DKV bandwidth proportionally to
        # the line-rate ratio.
        ratio = NetworkParams.ethernet_10g().bandwidth / NetworkParams().bandwidth
        eth_model = CostModel(
            eth_cluster,
            dkv_read_bw_loaded=CostModel(eth_cluster).dkv_read_bw_loaded * ratio,
            c_dkv_request=5e-6,  # kernel TCP per-request cost
        )
        eth = eth_model.iteration(shape, pipelined=True)
        rows.append(
            {
                "communities": k,
                "infiniband_ms": ib.total * 1e3,
                "ethernet_ms": eth.total * 1e3,
                "slowdown": eth.total / ib.total,
                "load_pi_ib_ms": ib.load_pi * 1e3,
                "load_pi_eth_ms": eth.load_pi * 1e3,
            }
        )
    return rows


def ablation_edge_placement(
    worker_counts: Sequence[int] = (8, 16, 32, 64),
    n_communities: int = 1024,
) -> list[dict]:
    """E13: scatter-E-with-minibatch (the paper's design) vs replicating E
    at every worker (Section III-A trade-off).

    Replication removes the per-iteration E-slice scatter but costs every
    worker 13.5 GB of RAM for com-Friendster — RAM that would otherwise
    hold pi shards, raising the minimum cluster size.
    """
    fr = DATASETS["com-Friendster"]
    edge_bytes = fr.n_edges * 2 * 4  # directed representation, 32-bit ids
    shape = dataset_shape("com-Friendster", n_communities)
    rows = []
    for c in worker_counts:
        cluster = das5(c)
        cm = CostModel(cluster)
        scatter = cm.iteration(shape, pipelined=False)
        # Replicated E: deploy drops the adjacency payload (ids only).
        deploy_repl = (
            shape.mini_batch_vertices * cm.c_draw_per_vertex
            + shape.mini_batch_vertices * 8 / cluster.network.bandwidth
            + cluster.network.latency
        )
        total_repl = scatter.total - scatter.draw_deploy + deploy_repl
        pi_budget = cluster.machine.memory_bytes * cluster.memory_fraction
        rows.append(
            {
                "workers": c,
                "scatter_total_ms": scatter.total * 1e3,
                "replicate_total_ms": total_repl * 1e3,
                "saving_pct": 100.0 * (scatter.total - total_repl) / scatter.total,
                "edge_replica_GiB_per_worker": edge_bytes / 2**30,
                "pi_budget_lost_pct": 100.0 * edge_bytes / pi_budget,
            }
        )
    return rows
