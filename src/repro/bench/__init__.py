"""Benchmark harness: experiment definitions behind ``benchmarks/``.

Each figure/table of the paper has a function here that produces its rows
(:mod:`repro.bench.figures`); the pytest-benchmark files under
``benchmarks/`` call these and print the tables. Keeping the logic in the
package makes the experiments importable, unit-testable, and reusable from
the examples.
"""

from repro.bench.harness import format_table, Timer
from repro.bench import figures

__all__ = ["format_table", "Timer", "figures"]
