"""Table formatting and timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Iterable[str] | None = None,
    title: str = "",
) -> str:
    """Render rows of dicts as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    table = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in table)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in table:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


class Timer:
    """Context-manager wall-clock timer."""

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


def best_of(fn, repeats: int = 5, inner: int = 5) -> float:
    """Best-of-``repeats`` mean seconds of ``inner`` calls to ``fn``.

    Taking the minimum over repeats rejects scheduler noise; averaging the
    inner loop amortizes the perf_counter overhead for fast kernels.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best
