"""One-sided RDMA verbs on top of the network model.

The paper builds its DKV store directly on InfiniBand ib-verbs, using
exactly one RDMA read or one RDMA write per key-value operation
(Section III-B). This module models that verb layer:

- an :class:`RdmaEngine` per simulated host owns queue pairs;
- :meth:`QueuePair.post_read` models a one-sided READ: a small request
  packet travels to the responder, whose NIC DMAs the payload back without
  host involvement;
- :meth:`QueuePair.post_write` models a one-sided WRITE: the payload is
  streamed to the responder; completion is raised when the ACK returns.

Operations can be posted back-to-back (pipelined); completions are polled
via the returned events. This is how the DKV client overlaps many reads to
hit the bandwidth roofline (paper Figure 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.core import Event, ProcessGen, Simulator, Timeout, all_of
from repro.sim.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultPlan

#: Size of the request packet an RDMA READ sends to the responder NIC.
READ_REQUEST_BYTES = 28
#: Size of an ACK packet (RDMA WRITE completion / READ response header).
ACK_BYTES = 12
#: A failed op surfaces its error CQE after this many wire latencies —
#: the transport-level retransmission window before the NIC gives up.
FAILURE_TIMEOUT_LATENCIES = 8.0


class RdmaOpType(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass
class RdmaOp:
    """A posted verb; ``completion`` fires when the CQE would be polled."""

    op_type: RdmaOpType
    initiator: int
    target: int
    nbytes: int
    completion: Event
    t_posted: float
    t_completed: float = float("nan")
    #: True when the op surfaced an error CQE (injected transport fault);
    #: the payload never moved and the caller must repost.
    failed: bool = False

    @property
    def elapsed(self) -> float:
        return self.t_completed - self.t_posted


class QueuePair:
    """A reliable-connection queue pair between two hosts.

    ``post_*`` methods return immediately with an :class:`RdmaOp`; the
    payload transfer is simulated asynchronously. Posting costs a small
    CPU overhead at the initiator (WQE write + doorbell), modeled inside
    the network's per-message overhead.
    """

    def __init__(self, engine: "RdmaEngine", local: int, remote: int) -> None:
        self.engine = engine
        self.local = local
        self.remote = remote
        self.ops_posted = 0

    def post_read(self, nbytes: int) -> RdmaOp:
        return self.engine._post(RdmaOpType.READ, self.local, self.remote, nbytes)

    def post_write(self, nbytes: int) -> RdmaOp:
        return self.engine._post(RdmaOpType.WRITE, self.local, self.remote, nbytes)


class RdmaEngine:
    """Factory for queue pairs over one :class:`~repro.sim.network.Network`."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.ops: int = 0
        self.failed_ops: int = 0
        self.faults = None if faults is None or faults.empty else faults

    def queue_pair(self, local: int, remote: int) -> QueuePair:
        return QueuePair(self, local, remote)

    def _post(self, op_type: RdmaOpType, initiator: int, target: int, nbytes: int) -> RdmaOp:
        if nbytes < 0:
            raise ValueError("negative RDMA payload")
        op = RdmaOp(
            op_type=op_type,
            initiator=initiator,
            target=target,
            nbytes=nbytes,
            completion=self.sim.event(f"rdma.{op_type.value}.{initiator}->{target}"),
            t_posted=self.sim.now,
        )
        self.ops += 1
        self.sim.process(self._op_proc(op), name=f"rdma-{op_type.value}")
        return op

    def _op_proc(self, op: RdmaOp) -> ProcessGen:
        net = self.network
        if self.faults is not None and self.faults.rdma_op_fails():
            # Transport fault: the NIC retries internally, then raises an
            # error CQE. The payload never moves; the caller reposts.
            op.failed = True
            self.failed_ops += 1
            yield Timeout(net.params.latency * FAILURE_TIMEOUT_LATENCIES)
            op.t_completed = self.sim.now
            op.completion.trigger(op)
            return op
        if op.op_type is RdmaOpType.READ:
            # Request packet to responder NIC, payload streamed back.
            req = net.transfer(op.initiator, op.target, READ_REQUEST_BYTES, tag="rdma-read-req")
            yield req.done
            resp = net.transfer(op.target, op.initiator, op.nbytes, tag="rdma-read-resp")
            yield resp.done
        else:
            # Payload to responder, hardware ACK back.
            data = net.transfer(op.initiator, op.target, op.nbytes, tag="rdma-write")
            yield data.done
            ack = net.transfer(op.target, op.initiator, ACK_BYTES, tag="rdma-ack")
            yield ack.done
        op.t_completed = self.sim.now
        op.completion.trigger(op)
        return op

    # -- synchronous convenience ------------------------------------------

    def read_sync(self, initiator: int, target: int, nbytes: int) -> ProcessGen:
        """Generator: post one READ and wait for its completion."""
        op = self._post(RdmaOpType.READ, initiator, target, nbytes)
        yield op.completion

    def write_sync(self, initiator: int, target: int, nbytes: int) -> ProcessGen:
        """Generator: post one WRITE and wait for its completion."""
        op = self._post(RdmaOpType.WRITE, initiator, target, nbytes)
        yield op.completion

    def batch(self, ops: list[RdmaOp]) -> Event:
        """Event firing when every op in the batch has completed."""
        return all_of(self.sim, [op.completion for op in ops])


def uncontended_read_time(net: Network, nbytes: int) -> float:
    """Closed-form time of one RDMA READ on an idle fabric."""
    return net.uncontended_transfer_time(READ_REQUEST_BYTES) + net.uncontended_transfer_time(nbytes)


def uncontended_write_time(net: Network, nbytes: int) -> float:
    """Closed-form time of one RDMA WRITE (including ACK) on an idle fabric."""
    return net.uncontended_transfer_time(nbytes) + net.uncontended_transfer_time(ACK_BYTES)
