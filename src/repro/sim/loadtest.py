"""All-to-all DKV load test on the simulated fabric.

The cost model charges mini-batch pi loads at ``dkv_read_bw_loaded``
(~2 GB/s per client), far below the ~6.8 GB/s single-stream roofline of
Figure 5. This experiment separates the two candidate causes:

- **fabric contention** — C clients reading from C servers concurrently
  share NIC ports and links. This module measures exactly that, by
  running the all-to-all pattern on the discrete-event fabric;
- **host-side contention** — server DRAM randomly accessed by NIC DMA
  while 16 compute threads stream the update kernels. The simulator does
  not model host memory buses, so whatever bandwidth the load test
  achieves *above* the calibrated constant is attributed to the host side.

Result (see ``tests/test_loadtest.py``): random targets create transient
server hot-spots (several clients queue on one NIC while other NICs sit
idle), throttling per-client bandwidth to ~2.8-3.1 GB/s at 8-64 hosts —
down from 6.8 GB/s single-stream. That alone accounts for most of the
gap to the calibrated ``dkv_read_bw_loaded`` (2.08 GB/s); the remainder
is host-side (NIC DMA vs compute threads on the memory bus), which the
fabric simulator intentionally does not model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.core import ProcessGen, Simulator
from repro.sim.network import Network, NetworkParams
from repro.sim.rdma import RdmaEngine, RdmaOp


@dataclass(frozen=True)
class LoadTestResult:
    """Outcome of one all-to-all run."""

    n_hosts: int
    payload_bytes: int
    requests_per_client: int
    elapsed: float
    per_client_bandwidth: float  # payload bytes/s delivered to each client
    aggregate_bandwidth: float

    @property
    def fabric_efficiency(self) -> float:
        """Per-client bandwidth over the single-stream NIC bandwidth."""
        return self.per_client_bandwidth / NetworkParams().bandwidth


def run_all_to_all(
    n_hosts: int = 8,
    payload_bytes: int = 49156,  # one pi row at K = 12288
    requests_per_client: int = 64,
    depth: int = 16,
    params: NetworkParams | None = None,
    seed: int = 0,
) -> LoadTestResult:
    """Every host reads ``requests_per_client`` values from random peers.

    Mirrors the update_phi load pattern: each worker is simultaneously a
    DKV client (reading pi rows for its mini-batch) and a DKV server
    (its shard is read by everyone else); targets are uniform random, so
    each server sees ~uniform demand — the (C-1)/C remote fraction of the
    paper's Section IV-C.
    """
    if n_hosts < 2:
        raise ValueError("need at least two hosts")
    params = params or NetworkParams.fdr_infiniband()
    sim = Simulator()
    net = Network(sim, n_nodes=n_hosts, params=params)
    engine = RdmaEngine(sim, net)
    rng = np.random.default_rng(seed)
    # Pre-draw targets so runs are deterministic.
    targets = {
        c: rng.choice([h for h in range(n_hosts) if h != c], size=requests_per_client)
        for c in range(n_hosts)
    }

    def client(c: int) -> ProcessGen:
        inflight: list[RdmaOp] = []
        posted = completed = 0
        plan = targets[c]
        while completed < requests_per_client:
            if posted < requests_per_client and len(inflight) < depth:
                qp = engine.queue_pair(c, int(plan[posted]))
                inflight.append(qp.post_read(payload_bytes))
                posted += 1
                continue
            op = inflight.pop(0)
            yield op.completion
            completed += 1
        return completed

    procs = [sim.process(client(c), name=f"client{c}") for c in range(n_hosts)]
    sim.run()
    if not all(p.finished for p in procs):
        raise RuntimeError("load test deadlocked")
    elapsed = sim.now
    per_client = payload_bytes * requests_per_client / elapsed
    return LoadTestResult(
        n_hosts=n_hosts,
        payload_bytes=payload_bytes,
        requests_per_client=requests_per_client,
        elapsed=elapsed,
        per_client_bandwidth=per_client,
        aggregate_bandwidth=per_client * n_hosts,
    )


def sweep_hosts(
    host_counts: list[int],
    payload_bytes: int = 49156,
    requests_per_client: int = 64,
) -> list[LoadTestResult]:
    """Fabric scalability of the all-to-all pattern (per-client bandwidth
    should stay roughly flat on a non-blocking switch)."""
    return [
        run_all_to_all(n_hosts=c, payload_bytes=payload_bytes,
                       requests_per_client=requests_per_client)
        for c in host_counts
    ]
