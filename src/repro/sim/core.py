"""Minimal deterministic discrete-event simulation engine.

The engine follows the classic event-queue + generator-coroutine design
(similar in spirit to SimPy, but dependency-free and deterministic):

- a :class:`Simulator` owns a priority queue of :class:`Event` objects and a
  simulated clock (``float`` seconds);
- a :class:`Process` wraps a generator; the generator *yields* waitables
  (:class:`Timeout`, :class:`Event`, other :class:`Process` instances, or a
  list of waitables meaning "wait for all") and is resumed when they fire;
- a :class:`Resource` provides FIFO mutual exclusion with ``capacity`` slots
  (used to model NIC serialization, DMA engines, CPU cores).

Determinism: events scheduled for the same timestamp are processed in
insertion order (a monotonically increasing sequence number breaks ties),
so repeated runs produce bit-identical clocks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (double-trigger, etc.)."""


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; :meth:`trigger` marks it fired and schedules
    its callbacks. Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "name", "_fired", "_value", "_callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._fired = False
        self._value: Any = None
        self._callbacks: list[Callable[["Event"], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(f"event {self.name!r} has not fired yet")
        return self._value

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._fired:
            # Fire immediately but asynchronously (same timestamp) to keep
            # callback ordering deterministic.
            self.sim.schedule(0.0, lambda: fn(self))
        else:
            self._callbacks.append(fn)

    def trigger(self, value: Any = None) -> None:
        if self._fired:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._fired = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self.sim.schedule(0.0, lambda fn=fn: fn(self))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self._fired else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout:
    """Waitable representing a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay!r})"


ProcessGen = Generator[Any, Any, Any]


class Process:
    """A simulated process driven by a generator.

    The generator may yield:

    - ``Timeout(dt)`` -- sleep for ``dt`` simulated seconds;
    - ``Event`` -- wait until the event fires; the event's value is sent
      back into the generator;
    - ``Process`` -- wait for another process to finish; its return value
      is sent back;
    - a ``list``/``tuple`` of the above -- wait for *all*; the list of
      values is sent back.

    When the generator returns, the process' completion event fires with
    the generator's return value.
    """

    __slots__ = ("sim", "name", "gen", "done", "_result")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self.gen = gen
        self.done = Event(sim, name=f"{self.name}.done")
        self._result: Any = None
        sim.schedule(0.0, lambda: self._resume(None))

    @property
    def finished(self) -> bool:
        return self.done.fired

    @property
    def result(self) -> Any:
        if not self.done.fired:
            raise SimulationError(f"process {self.name!r} still running")
        return self.done.value

    def _resume(self, send_value: Any) -> None:
        try:
            target = self.gen.send(send_value)
        except StopIteration as stop:
            self.done.trigger(stop.value)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, Timeout):
            self.sim.schedule(target.delay, lambda: self._resume(None))
        elif isinstance(target, Event):
            target.add_callback(lambda ev: self._resume(ev.value))
        elif isinstance(target, Process):
            target.done.add_callback(lambda ev: self._resume(ev.value))
        elif isinstance(target, (list, tuple)):
            self._wait_all(list(target))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported waitable {target!r}"
            )

    def _wait_all(self, targets: list[Any]) -> None:
        events: list[Event] = []
        for t in targets:
            if isinstance(t, Timeout):
                ev = Event(self.sim, name="timeout")
                self.sim.schedule(t.delay, lambda ev=ev: ev.trigger(None))
                events.append(ev)
            elif isinstance(t, Event):
                events.append(t)
            elif isinstance(t, Process):
                events.append(t.done)
            else:
                raise SimulationError(f"unsupported waitable in all-of list: {t!r}")
        if not events:
            self.sim.schedule(0.0, lambda: self._resume([]))
            return
        remaining = {"n": sum(0 if e.fired else 1 for e in events)}
        if remaining["n"] == 0:
            self.sim.schedule(0.0, lambda: self._resume([e.value for e in events]))
            return

        def on_fire(_ev: Event) -> None:
            remaining["n"] -= 1
            if remaining["n"] == 0:
                self._resume([e.value for e in events])

        for e in events:
            if not e.fired:
                e.add_callback(on_fire)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done.fired else "running"
        return f"<Process {self.name!r} {state}>"


@dataclass(order=True)
class _QueuedEvent:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """Deterministic priority queue of timestamped actions."""

    def __init__(self) -> None:
        self._heap: list[_QueuedEvent] = []
        self._seq = 0

    def push(self, time: float, action: Callable[[], None]) -> None:
        heapq.heappush(self._heap, _QueuedEvent(time, self._seq, action))
        self._seq += 1

    def pop(self) -> _QueuedEvent:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def peek_time(self) -> float:
        return self._heap[0].time


class Simulator:
    """Owns the clock and the event queue; drives processes to completion."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self._steps = 0

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action()`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._queue.push(self.now + delay, action)

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def timeout_event(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that fires ``delay`` seconds from now."""
        ev = Event(self, name=name or f"timeout@{self.now + delay:.9f}")
        self.schedule(delay, lambda: ev.trigger(value))
        return ev

    # -- running ---------------------------------------------------------

    def step(self) -> bool:
        """Process one queued action; returns False when the queue is empty."""
        if len(self._queue) == 0:
            return False
        item = self._queue.pop()
        if item.time < self.now - 1e-15:
            raise SimulationError("time went backwards")
        self.now = max(self.now, item.time)
        self._steps += 1
        item.action()
        return True

    def run(self, until: Optional[float] = None, max_steps: int = 50_000_000) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final clock value.
        """
        steps = 0
        while len(self._queue) > 0:
            if until is not None and self._queue.peek_time() > until:
                self.now = until
                break
            if not self.step():
                break
            steps += 1
            if steps > max_steps:
                raise SimulationError(f"exceeded {max_steps} steps; livelock?")
        return self.now

    def run_process(self, gen: ProcessGen, name: str = "") -> Any:
        """Convenience: spawn a process, run to completion, return its result."""
        proc = self.process(gen, name=name)
        self.run()
        if not proc.finished:
            raise SimulationError(f"process {proc.name!r} deadlocked")
        return proc.result

    @property
    def steps_executed(self) -> int:
        return self._steps


class Resource:
    """FIFO resource with ``capacity`` concurrent holders.

    ``request()`` returns an :class:`Event` that fires when a slot is
    granted; the holder must call :meth:`release` exactly once.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: list[Event] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.grant")
        if self._in_use < self.capacity:
            self._in_use += 1
            self.sim.schedule(0.0, lambda: ev.trigger(None))
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            ev = self._waiters.pop(0)
            self.sim.schedule(0.0, lambda: ev.trigger(None))
        else:
            self._in_use -= 1

    def use(self, hold_time: float) -> ProcessGen:
        """Generator helper: acquire, hold for ``hold_time``, release."""
        yield self.request()
        try:
            yield Timeout(hold_time)
        finally:
            self.release()


def any_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that fires with the first input's value (the others are
    left pending). The building block for racing an operation against a
    timeout — how the fault layer models "give up after T seconds"."""
    events = list(events)
    out = Event(sim, name="any_of")
    if not events:
        raise SimulationError("any_of needs at least one event")

    def on_fire(ev: Event) -> None:
        if not out.fired:
            out.trigger(ev.value)

    for e in events:
        e.add_callback(on_fire)
    return out


def all_of(sim: Simulator, events: Iterable[Event]) -> Event:
    """An event that fires (with the list of values) when all inputs fired."""
    events = list(events)
    out = Event(sim, name="all_of")
    remaining = {"n": sum(0 if e.fired else 1 for e in events)}
    if remaining["n"] == 0:
        sim.schedule(0.0, lambda: out.trigger([e.value for e in events]))
        return out

    def on_fire(_ev: Event) -> None:
        remaining["n"] -= 1
        if remaining["n"] == 0:
            out.trigger([e.value for e in events])

    for e in events:
        if not e.fired:
            e.add_callback(on_fire)
    return out
