"""Network model: NICs, links, and a non-blocking switch.

The model matches the DAS5 fabric the paper used (FDR InfiniBand through a
single fat switch): every node owns a full-duplex NIC; the switch core is
non-blocking, so contention happens only at NIC ports. A message therefore
costs:

``wire latency  +  per-message overhead  +  size / bandwidth``

where the ``size / bandwidth`` serialization occupies the sender's TX port
and the receiver's RX port (modeled as FIFO :class:`~repro.sim.core.Resource`
instances), so concurrent transfers through the same NIC queue behind each
other — exactly the effect that makes the master's mini-batch scatter a
serial bottleneck in the paper's strong-scaling curve.

Default constants approximate FDR InfiniBand (56 Gbit/s signaling,
~6.8 GB/s effective payload bandwidth, ~1.7 us one-way small-message
latency, measured by ``qperf`` in the paper's Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.sim.core import Event, Process, ProcessGen, Resource, Simulator, Timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultPlan


@dataclass(frozen=True)
class NetworkParams:
    """Fabric constants.

    Attributes:
        bandwidth: effective payload bandwidth per NIC port, bytes/second.
        latency: one-way wire + switch latency, seconds.
        per_message_overhead: fixed CPU/NIC cost charged per message at the
            initiator (doorbell, WQE processing), seconds.
        duplex: if True, TX and RX ports serialize independently.
    """

    bandwidth: float = 6.8e9
    latency: float = 1.7e-6
    per_message_overhead: float = 0.3e-6
    duplex: bool = True

    def serialization_time(self, nbytes: int) -> float:
        return nbytes / self.bandwidth

    @staticmethod
    def fdr_infiniband() -> "NetworkParams":
        """FDR InfiniBand as deployed on DAS5 (paper's testbed)."""
        return NetworkParams()

    @staticmethod
    def ethernet_10g() -> "NetworkParams":
        """10 GbE with kernel TCP — used by ablations as a slow fabric."""
        return NetworkParams(bandwidth=1.1e9, latency=25e-6, per_message_overhead=2e-6)


@dataclass
class Message:
    """A single transfer recorded by the network."""

    src: int
    dst: int
    nbytes: int
    tag: Any = None
    t_submit: float = 0.0
    t_complete: float = 0.0

    @property
    def transfer_time(self) -> float:
        return self.t_complete - self.t_submit


class Nic:
    """A full-duplex NIC with FIFO TX and RX serialization ports."""

    def __init__(self, sim: Simulator, node: int, params: NetworkParams) -> None:
        self.sim = sim
        self.node = node
        self.params = params
        self.tx = Resource(sim, capacity=1, name=f"nic{node}.tx")
        self.rx = self.tx if not params.duplex else Resource(sim, capacity=1, name=f"nic{node}.rx")
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0

    def busy_fraction(self) -> float:
        """Rough TX utilization proxy: serialized bytes over elapsed time."""
        if self.sim.now <= 0:
            return 0.0
        return min(1.0, self.bytes_sent / self.params.bandwidth / self.sim.now)


class Link:
    """A point-to-point logical link (src NIC TX -> switch -> dst NIC RX)."""

    def __init__(self, network: "Network", src: int, dst: int) -> None:
        self.network = network
        self.src = src
        self.dst = dst


class Network:
    """A cluster fabric of ``n_nodes`` NICs behind a non-blocking switch."""

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        params: Optional[NetworkParams] = None,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.sim = sim
        self.params = params or NetworkParams()
        self.nics = [Nic(sim, i, self.params) for i in range(n_nodes)]
        self.log: list[Message] = []
        self.record_log = False
        # Link degradation windows; None or an empty plan leaves the
        # transfer math untouched (bit-identical clocks).
        self.faults = None if faults is None or faults.empty else faults

    @property
    def n_nodes(self) -> int:
        return len(self.nics)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")

    def transfer(self, src: int, dst: int, nbytes: int, tag: Any = None) -> Process:
        """Start a message transfer; the returned process finishes when the
        last byte is delivered at the destination.

        Local (src == dst) transfers are charged memory-copy time only
        (modeled as bandwidth serialization without latency).
        """
        self._check_node(src)
        self._check_node(dst)
        if nbytes < 0:
            raise ValueError("negative message size")
        msg = Message(src=src, dst=dst, nbytes=nbytes, tag=tag, t_submit=self.sim.now)
        return self.sim.process(self._transfer_proc(msg), name=f"xfer{src}->{dst}")

    def _transfer_proc(self, msg: Message) -> ProcessGen:
        # Cut-through model: the bytes are serialized exactly once, occupying
        # the sender's TX port and the receiver's RX port *concurrently*
        # (acquire TX, then RX, hold both during serialization). The last
        # byte lands `latency` after serialization ends. Many-to-one traffic
        # therefore queues at the destination RX port — the effect behind the
        # DKV server hot-spot and the master's scatter bottleneck.
        #
        # Deadlock safety: ports are FIFO and every message acquires TX
        # before RX; with full-duplex NICs (independent TX/RX resources) no
        # cycle of waits can form.
        p = self.params
        ser = p.serialization_time(msg.nbytes)
        latency = p.latency
        if self.faults is not None:
            # Degradation window sampled at submit time: latency spikes
            # multiply the wire latency, bandwidth loss stretches
            # serialization (and therefore port occupancy — degraded links
            # back up the NIC queues exactly like real congestion).
            lat_f, bw_f = self.faults.link_factors(msg.src, msg.dst, self.sim.now)
            ser /= bw_f
            latency *= lat_f
        if msg.src == msg.dst:
            # Local copy: memcpy time, no wire latency, no port usage.
            yield Timeout(ser * 0.5)
        else:
            src_nic = self.nics[msg.src]
            dst_nic = self.nics[msg.dst]
            yield src_nic.tx.request()
            yield dst_nic.rx.request()
            try:
                yield Timeout(p.per_message_overhead + ser)
            finally:
                src_nic.tx.release()
                dst_nic.rx.release()
            src_nic.bytes_sent += msg.nbytes
            src_nic.messages_sent += 1
            dst_nic.bytes_received += msg.nbytes
            yield Timeout(latency)
        msg.t_complete = self.sim.now
        if self.record_log:
            self.log.append(msg)
        return msg

    # -- simple timing helpers (no queuing) -------------------------------

    def uncontended_transfer_time(self, nbytes: int, remote: bool = True) -> float:
        """Closed-form time of one message on an idle fabric."""
        p = self.params
        if not remote:
            return p.serialization_time(nbytes) * 0.5
        return p.per_message_overhead + p.serialization_time(nbytes) + p.latency
