"""``qperf``-equivalent micro-benchmark inside the simulator.

The paper's Figure 5 compares the bandwidth its DKV store achieves against
``qperf``, the standard InfiniBand benchmark, for payloads from hundreds of
bytes to a megabyte. ``qperf`` streams back-to-back RDMA operations between
one client and one server and reports payload bandwidth.

This module reproduces that roofline inside the simulator: it posts a
window of ``depth`` outstanding RDMA reads (or writes) of a given payload
size, keeps the window full for ``n_ops`` operations, and reports achieved
bandwidth. The DKV benchmark (Figure 5 bench) runs against the same
simulated fabric, so the comparison is apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.core import ProcessGen, Simulator
from repro.sim.network import Network, NetworkParams
from repro.sim.rdma import RdmaEngine, RdmaOp, RdmaOpType


@dataclass(frozen=True)
class QperfResult:
    """Outcome of one qperf-style run."""

    op_type: RdmaOpType
    payload_bytes: int
    n_ops: int
    elapsed: float
    bandwidth: float  # payload bytes / second
    ops_per_sec: float


def _stream(
    engine: RdmaEngine,
    op_type: RdmaOpType,
    client: int,
    server: int,
    payload: int,
    n_ops: int,
    depth: int,
) -> ProcessGen:
    """Keep ``depth`` operations in flight until ``n_ops`` have completed."""
    qp = engine.queue_pair(client, server)
    post = qp.post_read if op_type is RdmaOpType.READ else qp.post_write
    inflight: list[RdmaOp] = []
    posted = 0
    completed = 0
    while posted < min(depth, n_ops):
        inflight.append(post(payload))
        posted += 1
    while completed < n_ops:
        op = inflight.pop(0)
        yield op.completion
        completed += 1
        if posted < n_ops:
            inflight.append(post(payload))
            posted += 1
    return completed


def run_qperf(
    payload_bytes: int,
    op_type: RdmaOpType = RdmaOpType.READ,
    n_ops: int = 256,
    depth: int = 16,
    params: NetworkParams | None = None,
) -> QperfResult:
    """Run the micro-benchmark on a fresh 2-node fabric and report bandwidth."""
    if payload_bytes <= 0:
        raise ValueError("payload must be positive")
    if n_ops <= 0 or depth <= 0:
        raise ValueError("n_ops and depth must be positive")
    sim = Simulator()
    net = Network(sim, n_nodes=2, params=params or NetworkParams.fdr_infiniband())
    engine = RdmaEngine(sim, net)
    t0 = sim.now
    sim.run_process(
        _stream(engine, op_type, client=0, server=1, payload=payload_bytes, n_ops=n_ops, depth=depth),
        name="qperf",
    )
    elapsed = sim.now - t0
    total = payload_bytes * n_ops
    return QperfResult(
        op_type=op_type,
        payload_bytes=payload_bytes,
        n_ops=n_ops,
        elapsed=elapsed,
        bandwidth=total / elapsed if elapsed > 0 else float("inf"),
        ops_per_sec=n_ops / elapsed if elapsed > 0 else float("inf"),
    )


def sweep_payloads(
    payloads: list[int],
    op_type: RdmaOpType = RdmaOpType.READ,
    n_ops: int = 256,
    depth: int = 16,
    params: NetworkParams | None = None,
) -> list[QperfResult]:
    """Run :func:`run_qperf` across a payload-size sweep (Figure 5 x-axis)."""
    return [run_qperf(p, op_type=op_type, n_ops=n_ops, depth=depth, params=params) for p in payloads]
