"""Discrete-event simulation substrate.

This package replaces the hardware the paper ran on (DAS5: FDR InfiniBand,
16-core Xeon nodes) with a deterministic discrete-event simulator:

- :mod:`repro.sim.core` -- event loop, simulated processes, resources;
- :mod:`repro.sim.network` -- NIC / link / switch model with latency and
  serialization (bandwidth) delays;
- :mod:`repro.sim.rdma` -- one-sided RDMA read/write verbs on top of the
  network model;
- :mod:`repro.sim.qperf` -- a ``qperf``-equivalent micro-benchmark used as
  the roofline in the paper's Figure 5.

The simulator is used by :mod:`repro.cluster` to time the distributed
algorithm's communication, and directly by the Figure 5 benchmark.
"""

from repro.sim.core import Event, EventQueue, Process, Resource, Simulator, Timeout
from repro.sim.network import Link, Nic, Network, NetworkParams, Message
from repro.sim.rdma import QueuePair, RdmaEngine, RdmaOp, RdmaOpType

__all__ = [
    "Event",
    "EventQueue",
    "Process",
    "Resource",
    "Simulator",
    "Timeout",
    "Link",
    "Nic",
    "Network",
    "NetworkParams",
    "Message",
    "QueuePair",
    "RdmaEngine",
    "RdmaOp",
    "RdmaOpType",
]
