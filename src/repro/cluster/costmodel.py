"""Calibrated per-stage cost model of the distributed algorithm.

This is the timing engine behind every scaling figure. Each BSP stage of
the algorithm's iteration (Section III-C of the paper) gets a closed-form
time from the workload shape (N, |E|, K, M, n, C, |E_h|) and a small set of
constants calibrated against the paper's own measurements (Table III:
com-Friendster, 64 workers, K = 12288, times in ms/iteration):

====================  ==========  =================================
stage                 paper (ms)  model
====================  ==========  =================================
draw/deploy           45.6        M * c_draw + scatter bytes / bw
load pi               205         reqs * c_req + bytes / bw_loaded
update phi (compute)  74          (M/C) * n * K / node kernel rate
update pi             3.8         (M/C) * K / rate + posted writes
update beta/theta     25.9        (E_n/C) * K * c_beta + reduce/bcast
total (+ perplexity   450         sum + barriers + amortized
amortized)                        perplexity pass
====================  ==========  =================================

Calibration notes (full derivation in ``repro.bench.calibrate``):

- ``bw_loaded`` (2.2 GB/s) is the effective DKV *read* bandwidth when all
  64 clients hammer all 64 servers concurrently while compute threads
  share the memory bus — far below the single-stream 6.8 GB/s roofline of
  Figure 5, which the discrete-event DKV benchmark reproduces separately.
- Writes are posted (completion off the critical path), so they are
  charged at the full NIC bandwidth, matching update_pi's small 3.8 ms.
- ``c_beta`` is ~11x the phi kernel per-element cost: the theta gradient
  does scattered accumulation (np.add.at-style) against streaming reads.
- The gap between Table III's stage sum (360 ms) and its reported total
  (450 ms) is the periodic held-out perplexity pass amortized over
  iterations plus two MPI barriers; the model charges both explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.spec import ClusterSpec, MachineSpec
from repro.sim.network import NetworkParams


@dataclass(frozen=True)
class WorkloadShape:
    """Everything the cost model needs to know about one experiment.

    Attributes:
        n_vertices / n_edges: full graph shape (Table II numbers are used
            directly — the analytic mode never materializes the graph).
        n_communities: K.
        mini_batch_vertices: M (paper Figure 1 uses 16384).
        neighbor_sample_size: n (paper Figure 1 uses 32).
        heldout_pairs: |E_h| (links + non-links).
        perplexity_interval: iterations between held-out evaluations.
    """

    n_vertices: int
    n_edges: int
    n_communities: int
    mini_batch_vertices: int = 16384
    neighbor_sample_size: int = 32
    heldout_pairs: int = 0
    perplexity_interval: int = 64

    @property
    def avg_degree(self) -> float:
        return 2.0 * self.n_edges / self.n_vertices

    @property
    def minibatch_edges(self) -> float:
        """|E_n| estimate under stratified random-node sampling.

        Each draw contributes ~(avg_degree + s_nonlink)/2 pairs and one
        extra vertex (the stratum center), so |E_n| ~= M * (1 - 1/draw).
        For the graphs in Table II this is within a few percent of M.
        """
        s_nl = max(64.0, self.avg_degree)
        per_draw = 0.5 * (self.avg_degree + s_nl) + 1.0
        return self.mini_batch_vertices * (1.0 - 1.0 / per_draw)

    def value_bytes(self) -> int:
        """One DKV value: pi row + phi_sum = (K+1) floats."""
        return 4 * (self.n_communities + 1)


@dataclass
class StageTimes:
    """Per-iteration stage timings (seconds) plus derived aggregates."""

    draw_deploy: float = 0.0
    sample_neighbors: float = 0.0
    load_pi: float = 0.0
    update_phi_compute: float = 0.0
    update_phi: float = 0.0  # load + compute (+ overlap when pipelined)
    update_pi: float = 0.0
    update_beta_theta: float = 0.0
    barriers: float = 0.0
    perplexity_amortized: float = 0.0
    total: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "draw_deploy": self.draw_deploy,
            "sample_neighbors": self.sample_neighbors,
            "load_pi": self.load_pi,
            "update_phi_compute": self.update_phi_compute,
            "update_phi": self.update_phi,
            "update_pi": self.update_pi,
            "update_beta_theta": self.update_beta_theta,
            "barriers": self.barriers,
            "perplexity_amortized": self.perplexity_amortized,
            "total": self.total,
        }


@dataclass(frozen=True)
class CostModel:
    """Stage-time calculator for one cluster spec.

    All constants are per-node unless stated; calibrated values are the
    module-docstring defaults. The model is deterministic and cheap, so
    benchmarks can sweep hundreds of configurations.
    """

    cluster: ClusterSpec
    #: master-side cost per mini-batch vertex draw (rejection sampling,
    #: stratum bookkeeping) — calibrated from Table III draw/deploy.
    c_draw_per_vertex: float = 2.7e-6
    #: client-side fixed cost per DKV request (WQE + doorbell + poll).
    #: Kept small — requests are posted in deep batches, so per-request
    #: work amortizes; a larger value would make small clusters (fewer
    #: workers => more requests each) disproportionately slow and break
    #: the paper's flat weak-scaling curve (Figure 2).
    c_dkv_request: float = 0.5e-6
    #: effective DKV read bandwidth under full-cluster load (bytes/s).
    dkv_read_bw_loaded: float = 2.08e9
    #: per-element cost of the theta-gradient kernel (s per edge*K element).
    c_beta_element: float = 1.56e-9
    #: straggler/imbalance cost absorbed by each step of the update_beta
    #: reduce — the collective waits for the slowest rank, so it inherits
    #: the jitter of the preceding compute phases. This is what makes
    #: update_beta_theta 'relatively constant across cluster sizes'
    #: (paper Section IV-A): the sync term dwarfs the per-worker compute.
    reduce_straggler_per_step: float = 3.0e-3
    #: per-draw cost of neighbor sampling (worker side).
    c_neighbor_draw: float = 0.1e-6
    #: pipelining chunk count for the double-buffered update_phi.
    pipeline_chunks: int = 9
    #: update_beta slowdown under pipelining: the next iteration's
    #: prefetched pi loads trail into the beta stage, so the penalty is
    #: proportional to load_pi (Table III: +7.7 ms on a 205 ms load).
    beta_load_interference: float = 0.0375

    # -- building blocks ---------------------------------------------------

    @property
    def _net(self) -> NetworkParams:
        return self.cluster.network

    @property
    def _machine(self) -> MachineSpec:
        return self.cluster.machine

    def node_kernel_rate(self, threads: int | None = None) -> float:
        """Kernel elements/second of one node."""
        return self._machine.kernel_ops_per_sec(threads)

    def tree_collective_time(self, nbytes: int) -> float:
        """Binomial-tree reduce or bcast across the cluster."""
        steps = max(1, math.ceil(math.log2(self.cluster.n_nodes)))
        per_step = self._net.per_message_overhead + self._net.latency + nbytes / self._net.bandwidth
        return steps * per_step

    def barrier_time(self) -> float:
        """One MPI barrier (dissemination algorithm, zero payload)."""
        steps = max(1, math.ceil(math.log2(self.cluster.n_nodes)))
        return steps * (self._net.per_message_overhead + self._net.latency)

    # -- stages (all return seconds per iteration) ---------------------------

    def t_draw_deploy(self, shape: WorkloadShape) -> float:
        """Master draws the mini-batch and scatters it with its E-slice."""
        draw = shape.mini_batch_vertices * self.c_draw_per_vertex
        # Scatter payload: vertex ids + the adjacency slice (edge endpoints).
        scatter_bytes = shape.mini_batch_vertices * 8 + shape.minibatch_edges * 8
        scatter = scatter_bytes / self._net.bandwidth + self._net.latency
        return draw + scatter

    def t_sample_neighbors(self, shape: WorkloadShape) -> float:
        m_per_worker = shape.mini_batch_vertices / self.cluster.n_workers
        return m_per_worker * shape.neighbor_sample_size * self.c_neighbor_draw

    def dkv_read_time(self, n_requests: float, nbytes: float) -> float:
        """Synchronous batched DKV reads on the critical path."""
        return n_requests * self.c_dkv_request + nbytes / self.dkv_read_bw_loaded

    def dkv_write_time(self, n_requests: float, nbytes: float) -> float:
        """Posted DKV writes (full NIC bandwidth, overlapped completions)."""
        return n_requests * self.c_dkv_request + nbytes / self._net.bandwidth

    def t_load_pi(self, shape: WorkloadShape) -> float:
        m_per_worker = shape.mini_batch_vertices / self.cluster.n_workers
        reqs = m_per_worker * (1 + shape.neighbor_sample_size)
        nbytes = reqs * shape.value_bytes()
        return self.dkv_read_time(reqs, nbytes)

    def t_update_phi_compute(self, shape: WorkloadShape) -> float:
        m_per_worker = shape.mini_batch_vertices / self.cluster.n_workers
        ops = m_per_worker * shape.neighbor_sample_size * shape.n_communities
        return ops / self.node_kernel_rate()

    def t_update_pi(self, shape: WorkloadShape) -> float:
        m_per_worker = shape.mini_batch_vertices / self.cluster.n_workers
        ops = m_per_worker * shape.n_communities
        write_bytes = m_per_worker * shape.value_bytes()
        return ops / self.node_kernel_rate() + self.dkv_write_time(m_per_worker, write_bytes)

    def t_update_beta_theta(self, shape: WorkloadShape) -> float:
        edges_per_worker = shape.minibatch_edges / self.cluster.n_workers
        compute = edges_per_worker * shape.n_communities * self.c_beta_element
        theta_bytes = shape.n_communities * 2 * 4
        steps = max(1, math.ceil(math.log2(self.cluster.n_nodes)))
        reduce_t = (
            self.tree_collective_time(theta_bytes)
            + steps * self.reduce_straggler_per_step
        )
        beta_master = shape.n_communities / self.node_kernel_rate(threads=1)
        bcast_t = self.tree_collective_time(shape.n_communities * 4)
        return compute + reduce_t + beta_master + bcast_t

    def t_perplexity(self, shape: WorkloadShape) -> float:
        """One full held-out evaluation (every perplexity_interval iters).

        Unlike the mini-batch load, this is a bulk sequential sweep over the
        statically partitioned E_h — large batched reads with no compute
        interleaving — so the loads run at the full NIC bandwidth rather
        than the loaded-DKV rate.
        """
        if shape.heldout_pairs <= 0:
            return 0.0
        pairs_per_node = shape.heldout_pairs / self.cluster.n_nodes
        # pi rows for both endpoints come from the DKV store.
        reqs = 2 * pairs_per_node
        load = reqs * self.c_dkv_request + reqs * shape.value_bytes() / self._net.bandwidth
        compute = pairs_per_node * shape.n_communities / self.node_kernel_rate()
        return load + compute + self.tree_collective_time(8)

    # -- full iteration -------------------------------------------------------

    def iteration(self, shape: WorkloadShape, pipelined: bool = False) -> StageTimes:
        """Assemble one iteration's stage breakdown.

        Non-pipelined: stages run back to back (with two MPI barriers, as
        in Section III-C). Pipelined (Section III-D): loading pi is
        double-buffered against both the update_phi computation and the
        master's next-mini-batch deployment, so the update_phi block costs
        ``max(parts) + (sum of overlapped parts) / chunks`` — the first
        chunk cannot be overlapped.
        """
        t = StageTimes()
        t.draw_deploy = self.t_draw_deploy(shape)
        t.sample_neighbors = self.t_sample_neighbors(shape)
        t.load_pi = self.t_load_pi(shape)
        t.update_phi_compute = self.t_update_phi_compute(shape)
        t.update_pi = self.t_update_pi(shape)
        t.update_beta_theta = self.t_update_beta_theta(shape)
        t.barriers = 2 * self.barrier_time()
        if shape.perplexity_interval > 0:
            t.perplexity_amortized = self.t_perplexity(shape) / shape.perplexity_interval

        if pipelined:
            parts = (t.load_pi, t.update_phi_compute, t.draw_deploy)
            residual = (t.load_pi + t.update_phi_compute) / self.pipeline_chunks
            t.update_phi = max(parts) + residual
            beta = t.update_beta_theta + self.beta_load_interference * t.load_pi
            t.update_beta_theta = beta
            t.total = (
                t.sample_neighbors
                + t.update_phi
                + t.update_pi
                + beta
                + t.barriers
                + t.perplexity_amortized
            )
        else:
            t.update_phi = t.load_pi + t.update_phi_compute
            t.total = (
                t.draw_deploy
                + t.sample_neighbors
                + t.update_phi
                + t.update_pi
                + t.update_beta_theta
                + t.barriers
                + t.perplexity_amortized
            )
        return t

    def run_time(self, shape: WorkloadShape, n_iterations: int, pipelined: bool = False) -> float:
        """Total seconds for ``n_iterations``."""
        return self.iteration(shape, pipelined=pipelined).total * n_iterations


@dataclass(frozen=True)
class SingleNodeModel:
    """Vertical-scaling comparator (paper Section IV-D, Figure 4).

    A single shared-memory machine runs the same kernels with all state in
    local RAM: no DKV, no collectives; "loading pi" becomes DRAM reads at
    memory bandwidth, shared with the compute threads.
    """

    machine: MachineSpec
    threads: int

    def iteration(self, shape: WorkloadShape) -> StageTimes:
        t = StageTimes()
        rate = self.machine.kernel_ops_per_sec(self.threads)
        m = shape.mini_batch_vertices
        t.draw_deploy = m * 2.7e-6 / max(1, self.threads // 4)  # threaded draw
        t.sample_neighbors = m * shape.neighbor_sample_size * 0.1e-6 / self.threads
        # pi accesses hit DRAM; charge bytes at the residual bandwidth not
        # consumed by the compute threads (the kernels are memory bound, so
        # this is the dominant coupling).
        nbytes = m * (1 + shape.neighbor_sample_size) * shape.value_bytes()
        t.load_pi = nbytes / (self.machine.memory_bandwidth * 0.5)
        t.update_phi_compute = m * shape.neighbor_sample_size * shape.n_communities / rate
        t.update_phi = max(t.load_pi, t.update_phi_compute) + min(
            t.load_pi, t.update_phi_compute
        ) * 0.1
        t.update_pi = m * shape.n_communities / rate
        t.update_beta_theta = shape.minibatch_edges * shape.n_communities * 1.56e-9 * (
            16.0 / self.threads
        )
        if shape.perplexity_interval > 0 and shape.heldout_pairs:
            perp = shape.heldout_pairs * shape.n_communities / rate
            t.perplexity_amortized = perp / shape.perplexity_interval
        t.total = (
            t.draw_deploy
            + t.sample_neighbors
            + t.update_phi
            + t.update_pi
            + t.update_beta_theta
            + t.perplexity_amortized
        )
        return t
