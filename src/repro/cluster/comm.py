"""In-process MPI-like communicator with message accounting.

The distributed engine is written SPMD-style against this API, which
mirrors the mpi4py verbs the paper's MVAPICH2 usage maps to: ``scatter``,
``bcast``, ``reduce``, ``allreduce``, ``gather``, ``barrier``. Ranks run
inside one Python process (the BSP runtime calls each rank's stage
function in turn), so the collectives are implemented functionally; every
call logs the message sizes it *would* put on the fabric, and the cost
model converts those into simulated time.

A real mpi4py backend could implement the same interface one-to-one —
the method names and semantics are deliberately aligned with
``mpi4py.MPI.Comm`` (lowercase object variants).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.faults import CommTimeout, FaultPlan


@dataclass
class CommStats:
    """Accumulated traffic of one communicator."""

    messages: int = 0
    bytes_sent: int = 0
    by_op: dict[str, int] = field(default_factory=dict)

    def log(self, op: str, nbytes: int, messages: int = 1) -> None:
        self.messages += messages
        self.bytes_sent += nbytes
        self.by_op[op] = self.by_op.get(op, 0) + nbytes


def _payload_bytes(obj: Any) -> int:
    """Approximate wire size of a payload."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(_payload_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(_payload_bytes(k) + _payload_bytes(v) for k, v in obj.items())
    if isinstance(obj, (int, float, bool, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode())
    return 64  # conservative default for small objects


class Communicator:
    """A world of ``size`` ranks; rank 0 is the master.

    The collectives are *deferred-functional*: the master (or root) side
    deposits data, worker-side calls pick their slice up. Because the BSP
    runtime executes ranks sequentially within a stage, a collective is
    expressed as a root call returning per-rank values plus per-rank
    accessors — see :class:`PendingScatter`.

    For convenience, the common patterns used by the distributed sampler
    are offered as one-shot helpers operating on rank-indexed lists.
    """

    def __init__(
        self,
        size: int,
        faults: Optional[FaultPlan] = None,
        timeout: Optional[float] = None,
    ) -> None:
        """``faults`` + ``timeout`` arm collective deadlines: a rank whose
        injected lag (stall, or forever for a crash) exceeds ``timeout``
        raises a typed :class:`~repro.faults.CommTimeout` at the next
        barrier/reduce instead of modeling an indefinite hang. Lags at or
        under the deadline are returned so the cost model can charge them
        as straggler time (degradation, not failure)."""
        if size < 1:
            raise ValueError("communicator needs at least one rank")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.size = size
        self.stats = CommStats()
        self.barriers = 0
        self.faults = None if faults is None or faults.empty else faults
        self.timeout = timeout

    def check_deadline(self, op: str, iteration: int) -> float:
        """Worst injected straggler lag at ``iteration`` (seconds).

        Raises :class:`CommTimeout` when the worst lag exceeds the
        configured deadline — the typed alternative to a hung collective.
        """
        if self.faults is None:
            return 0.0
        worker, lag = self.faults.max_worker_lag(iteration)
        if self.timeout is not None and lag > self.timeout:
            raise CommTimeout(op, worker, lag, self.timeout)
        return lag if np.isfinite(lag) else 0.0

    # -- collectives (functional one-shots) ----------------------------------

    def scatter(self, chunks: Sequence[Any], root: int = 0) -> list[Any]:
        """Root sends ``chunks[r]`` to each rank r; returns the list.

        Accounting: the root serializes every non-root chunk through its
        NIC (this serialization is why mini-batch deployment appears as a
        master-side cost in Figure 1).
        """
        if len(chunks) != self.size:
            raise ValueError(f"need {self.size} chunks, got {len(chunks)}")
        nbytes = sum(_payload_bytes(c) for i, c in enumerate(chunks) if i != root)
        self.stats.log("scatter", nbytes, messages=self.size - 1)
        return list(chunks)

    def bcast(self, value: Any, root: int = 0) -> list[Any]:
        """Root broadcasts ``value``; returns per-rank copies (shared)."""
        nbytes = _payload_bytes(value) * max(0, self.size - 1)
        self.stats.log("bcast", nbytes, messages=self.size - 1)
        return [value for _ in range(self.size)]

    def gather(self, values: Sequence[Any], root: int = 0) -> list[Any]:
        """Each rank contributes ``values[r]``; root receives the list."""
        if len(values) != self.size:
            raise ValueError(f"need {self.size} values, got {len(values)}")
        nbytes = sum(_payload_bytes(v) for i, v in enumerate(values) if i != root)
        self.stats.log("gather", nbytes, messages=self.size - 1)
        return list(values)

    def reduce(
        self,
        values: Sequence[Any],
        op: Callable[[Any, Any], Any] = np.add,
        root: int = 0,
        iteration: Optional[int] = None,
    ) -> Any:
        """Tree reduction of per-rank values to the root."""
        if len(values) != self.size:
            raise ValueError(f"need {self.size} values, got {len(values)}")
        if iteration is not None:
            self.check_deadline("reduce", iteration)
        nbytes = sum(_payload_bytes(v) for i, v in enumerate(values) if i != root)
        self.stats.log("reduce", nbytes, messages=self.size - 1)
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(
        self,
        values: Sequence[Any],
        op: Callable[[Any, Any], Any] = np.add,
    ) -> list[Any]:
        """Reduce + broadcast."""
        total = self.reduce(values, op=op)
        return self.bcast(total)

    def barrier(self, iteration: Optional[int] = None) -> float:
        """Synchronization point (counted; charged by the cost model).

        With a fault plan armed and ``iteration`` given, enforces the
        collective deadline; returns the straggler lag to charge.
        """
        self.barriers += 1
        if iteration is None:
            return 0.0
        return self.check_deadline("barrier", iteration)

    # -- point to point ----------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any) -> Any:
        """Record a point-to-point message; returns the payload (delivered)."""
        if not (0 <= src < self.size and 0 <= dst < self.size):
            raise ValueError("rank out of range")
        if src != dst:
            self.stats.log("p2p", _payload_bytes(payload))
        return payload


def partition_round_robin(items: np.ndarray, size: int) -> list[np.ndarray]:
    """Deal items round-robin to ranks (balanced mini-batch partitioning)."""
    return [items[r::size] for r in range(size)]


def partition_blocks(n: int, size: int) -> list[tuple[int, int]]:
    """Contiguous near-equal (start, stop) blocks of range(n)."""
    bounds = [i * n // size for i in range(size + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(size)]
