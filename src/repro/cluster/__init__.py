"""Cluster substrate: machine specs, cost model, DKV store, communicator.

This package models the paper's testbed (DAS5 + FDR InfiniBand + MVAPICH2
+ a custom RDMA DKV store) in two complementary ways:

- **functional** — :class:`repro.cluster.dkv.DKVStore` and
  :class:`repro.cluster.comm.Communicator` really move NumPy data between
  simulated ranks inside one process, with message accounting, so the
  distributed algorithm executes for real;
- **timed** — :class:`repro.cluster.costmodel.CostModel` charges simulated
  wall-clock for every stage (compute per op, DKV traffic, collectives),
  calibrated against the paper's own Table III stage breakdown.
"""

from repro.cluster.spec import MachineSpec, ClusterSpec, DAS5_NODE, HPC_CLOUD_NODE, das5
from repro.cluster.costmodel import CostModel, StageTimes
from repro.cluster.dkv import DKVStore
from repro.cluster.comm import Communicator, CommStats

__all__ = [
    "MachineSpec",
    "ClusterSpec",
    "DAS5_NODE",
    "HPC_CLOUD_NODE",
    "das5",
    "CostModel",
    "StageTimes",
    "DKVStore",
    "Communicator",
    "CommStats",
]
