"""Distributed key-value store for pi (paper Section III-B).

The paper builds its own DKV store directly on ib-verbs because its use
case is unusually simple: a static key layout (keys = vertex ids, fixed
after initial population), fixed-size values (K+1 floats: pi row +
phi_sum), and barrier-separated read-only / write-only stages with no
read/write hazards — so every get/put is exactly one RDMA read or write.

This module provides that store in two coupled layers:

- **functional**: values actually live in per-server NumPy arrays inside
  this process; ``read_batch`` / ``write_batch`` really move the data, so
  the distributed sampler computes real results;
- **accounting**: every batch records per-server request counts and bytes,
  which the cost model (closed form) or the discrete-event simulator
  (:meth:`timed_read_batch`) converts into simulated time. The Figure 5
  benchmark drives the simulator path so DKV and qperf share one fabric
  model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.faults import DKVTimeout, FaultPlan
from repro.sim.core import ProcessGen, Simulator, Timeout
from repro.sim.network import Network, NetworkParams
from repro.sim.rdma import RdmaEngine, RdmaOp

#: Server-side bytes of DKV metadata fetched along with a value (header).
VALUE_HEADER_BYTES = 16


@dataclass
class DKVTraffic:
    """Accounting for one batched operation."""

    n_requests: int = 0
    n_remote_requests: int = 0
    bytes_total: int = 0
    bytes_remote: int = 0
    per_server_requests: dict[int, int] = field(default_factory=dict)

    def merge(self, other: "DKVTraffic") -> None:
        self.n_requests += other.n_requests
        self.n_remote_requests += other.n_remote_requests
        self.bytes_total += other.bytes_total
        self.bytes_remote += other.bytes_remote
        for k, v in other.per_server_requests.items():
            self.per_server_requests[k] = self.per_server_requests.get(k, 0) + v


@dataclass
class DKVFaultStats:
    """Degradation accounting of a fault-tolerant store.

    ``simulated_delay`` accumulates the simulated seconds lost to
    timeouts and backoff; the distributed sampler drains it into the
    stage clocks, so fault windows show up as throughput loss — never
    as a hang or a crash.
    """

    timeouts: int = 0
    retries: int = 0
    stale_batches: int = 0
    stale_requests: int = 0
    dropped_writes: int = 0
    breaker_opens: int = 0
    max_staleness: int = 0
    simulated_delay: float = 0.0
    per_server_stale: dict[int, int] = field(default_factory=dict)

    def record_stale(self, server: int, n_requests: int, staleness: int) -> None:
        self.stale_batches += 1
        self.stale_requests += n_requests
        self.max_staleness = max(self.max_staleness, staleness)
        self.per_server_stale[server] = (
            self.per_server_stale.get(server, 0) + n_requests
        )

    def drain_delay(self) -> float:
        """Return and reset the accumulated simulated delay."""
        out, self.simulated_delay = self.simulated_delay, 0.0
        return out


class _CircuitBreaker:
    """Per-server breaker: after ``threshold`` consecutive batch failures
    the server is fenced for ``cooldown`` iterations — ops skip the retry
    ladder and go straight to the stale snapshot, so one dead server stops
    taxing every batch with full timeout ladders."""

    __slots__ = ("threshold", "cooldown", "failures", "open_until")

    def __init__(self, threshold: int, cooldown: int) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.failures = 0
        self.open_until = -1

    def allows(self, iteration: int) -> bool:
        return iteration >= self.open_until

    @property
    def is_open(self) -> bool:
        return self.open_until >= 0 and self.failures >= self.threshold

    def record_success(self) -> None:
        self.failures = 0
        self.open_until = -1

    def record_failure(self, iteration: int) -> bool:
        """Record a failed batch; returns True if this trip opened the
        breaker."""
        self.failures += 1
        if self.failures >= self.threshold:
            newly = self.open_until < 0
            self.open_until = iteration + self.cooldown
            return newly
        return False


class DKVStore:
    """Static-partition fixed-value-size distributed KV store.

    Keys ``0 .. n_keys-1`` are block-partitioned across ``n_servers``
    (vertex ``i`` lives on server ``i * n_servers // n_keys``), matching
    the paper's static equal partition of pi rows.

    Args:
        n_keys: number of keys (vertices).
        value_dim: floats per value (K + 1).
        n_servers: worker count.
        dtype: storage dtype (float32 in the paper; float64 default here
            for numerical parity with the sequential reference).
        faults: optional :class:`~repro.faults.FaultPlan`. When a server
            is stalled, batches against it time out and retry with bounded
            exponential backoff; exhausted retries trip a per-server
            circuit breaker and fall back to the last-known snapshot
            (stale reads — the degradation Li/Ahn/Welling's sampler
            provably tolerates). ``None`` or an empty plan bypasses every
            fault path (bit-identical behavior).
        request_timeout: simulated seconds charged per timed-out attempt.
        max_retries: retry budget per batch after the first attempt.
        backoff_base / backoff_cap: exponential backoff schedule
            (``min(base * 2**attempt, cap)`` seconds, simulated).
        breaker_threshold / breaker_cooldown: consecutive failed batches
            that open a server's breaker / iterations it stays open.
        stale_fallback: if False, exhausted retries raise
            :class:`~repro.faults.DKVTimeout` instead of degrading.
    """

    def __init__(
        self,
        n_keys: int,
        value_dim: int,
        n_servers: int,
        dtype=np.float64,
        faults: Optional[FaultPlan] = None,
        request_timeout: float = 2e-3,
        max_retries: int = 3,
        backoff_base: float = 1e-3,
        backoff_cap: float = 50e-3,
        breaker_threshold: int = 2,
        breaker_cooldown: int = 2,
        stale_fallback: bool = True,
    ) -> None:
        if n_keys < 1 or value_dim < 1 or n_servers < 1:
            raise ValueError("n_keys, value_dim, n_servers must be positive")
        if max_retries < 0 or request_timeout < 0:
            raise ValueError("max_retries and request_timeout must be >= 0")
        self.n_keys = int(n_keys)
        self.value_dim = int(value_dim)
        self.n_servers = int(n_servers)
        self.dtype = dtype
        # Block partition boundaries.
        self._bounds = np.array(
            [i * self.n_keys // self.n_servers for i in range(self.n_servers + 1)],
            dtype=np.int64,
        )
        self._shards = [
            np.zeros((self._bounds[i + 1] - self._bounds[i], value_dim), dtype=dtype)
            for i in range(self.n_servers)
        ]
        self.value_bytes = int(value_dim * np.dtype(dtype).itemsize)
        # -- fault tolerance (inert unless a non-empty plan is given) -----
        self.faults = None if faults is None or faults.empty else faults
        self.request_timeout = float(request_timeout)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.stale_fallback = bool(stale_fallback)
        self.fault_stats = DKVFaultStats()
        self._iteration = 0
        self._breakers = [
            _CircuitBreaker(breaker_threshold, breaker_cooldown)
            for _ in range(self.n_servers)
        ]
        # Last-known-good snapshots, maintained only under a fault plan.
        self._snapshots: list[Optional[np.ndarray]] = [None] * self.n_servers
        self._snapshot_iter = [0] * self.n_servers

    # -- placement ----------------------------------------------------------

    def owner(self, key: int) -> int:
        """Server owning ``key``."""
        if not 0 <= key < self.n_keys:
            raise KeyError(f"key {key} out of range")
        return int(np.searchsorted(self._bounds, key, side="right") - 1)

    def owners(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner`."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and (keys.min() < 0 or keys.max() >= self.n_keys):
            raise KeyError("key out of range")
        return np.searchsorted(self._bounds, keys, side="right") - 1

    def shard_slice(self, server: int) -> tuple[int, int]:
        """(start, stop) key range owned by ``server``."""
        return int(self._bounds[server]), int(self._bounds[server + 1])

    # -- population -----------------------------------------------------------

    def populate(self, values: np.ndarray) -> None:
        """Initial bulk load of all values (no traffic accounting; the
        paper populates the store once before sampling starts)."""
        if values.shape != (self.n_keys, self.value_dim):
            raise ValueError(f"expected {(self.n_keys, self.value_dim)}, got {values.shape}")
        for s in range(self.n_servers):
            lo, hi = self.shard_slice(s)
            self._shards[s][:] = values[lo:hi]
            if self.faults is not None:
                self._snapshots[s] = self._shards[s].copy()
                self._snapshot_iter[s] = self._iteration

    def snapshot(self) -> np.ndarray:
        """Gather every value (for checkpointing / validation)."""
        return np.concatenate(self._shards, axis=0)

    # -- fault handling ---------------------------------------------------------

    def set_iteration(self, iteration: int) -> None:
        """Advance the store's notion of algorithm time. Stall windows and
        breaker cooldowns are expressed in iterations, so the driver calls
        this once per BSP step."""
        self._iteration = int(iteration)

    def _snapshot(self, server: int) -> np.ndarray:
        snap = self._snapshots[server]
        if snap is None:  # store used before populate(); snapshot lazily
            snap = self._shards[server].copy()
            self._snapshots[server] = snap
        return snap

    def _refresh_snapshot(self, server: int) -> None:
        if self._snapshot_iter[server] != self._iteration or self._snapshots[server] is None:
            self._snapshots[server] = self._shards[server].copy()
            self._snapshot_iter[server] = self._iteration

    def _serve_stale(self, server: int, n_requests: int) -> np.ndarray:
        staleness = self._iteration - self._snapshot_iter[server]
        self.fault_stats.record_stale(server, n_requests, staleness)
        return self._snapshot(server)

    def _acquire_server(self, server: int, n_requests: int) -> Optional[np.ndarray]:
        """Run the timeout/retry/breaker ladder against ``server``.

        Returns ``None`` when the server answered (caller uses the live
        shard), or the stale snapshot array to read from instead. Raises
        :class:`DKVTimeout` when degradation is disabled.
        """
        assert self.faults is not None
        stats = self.fault_stats
        breaker = self._breakers[server]
        it = self._iteration
        if breaker.is_open and not breaker.allows(it):
            # Fenced server: skip the ladder entirely (that is the point
            # of the breaker — one dead server must not tax every batch).
            return self._serve_stale(server, n_requests)
        attempt = 0
        while True:
            if not self.faults.server_stalled(server, it, attempt):
                breaker.record_success()
                self._refresh_snapshot(server)
                return None
            stats.timeouts += 1
            stats.simulated_delay += self.request_timeout
            if attempt >= self.max_retries:
                if breaker.record_failure(it):
                    stats.breaker_opens += 1
                if not self.stale_fallback:
                    raise DKVTimeout(server, attempt + 1)
                return self._serve_stale(server, n_requests)
            stats.retries += 1
            stats.simulated_delay += min(
                self.backoff_base * (2.0 ** attempt), self.backoff_cap
            )
            attempt += 1

    # -- batched ops ------------------------------------------------------------

    def read_batch(self, client: int, keys: np.ndarray) -> tuple[np.ndarray, DKVTraffic]:
        """Read values for ``keys`` on behalf of ``client``.

        Duplicate keys are fetched once (the paper's workers dedupe their
        mini-batch + neighbor key sets the same way).
        """
        keys = np.asarray(keys, dtype=np.int64)
        out = np.empty((keys.size, self.value_dim), dtype=self.dtype)
        traffic = DKVTraffic()
        if keys.size == 0:
            return out, traffic
        unique, inverse = np.unique(keys, return_inverse=True)
        owners = self.owners(unique)
        uvals = np.empty((unique.size, self.value_dim), dtype=self.dtype)
        for s in np.unique(owners):
            sel = owners == s
            lo, _ = self.shard_slice(int(s))
            n_req = int(sel.sum())
            source = self._shards[int(s)]
            if self.faults is not None:
                stale = self._acquire_server(int(s), n_req)
                if stale is not None:
                    source = stale
            uvals[sel] = source[unique[sel] - lo]
            traffic.n_requests += n_req
            traffic.bytes_total += n_req * self.value_bytes
            traffic.per_server_requests[int(s)] = n_req
            if int(s) != client:
                traffic.n_remote_requests += n_req
                traffic.bytes_remote += n_req * self.value_bytes
        out[:] = uvals[inverse]
        return out, traffic

    def write_batch(
        self, client: int, keys: np.ndarray, values: np.ndarray
    ) -> DKVTraffic:
        """Write values for ``keys``; keys must be unique (the algorithm
        guarantees mini-batch updates target unique vertices)."""
        keys = np.asarray(keys, dtype=np.int64)
        if values.shape != (keys.size, self.value_dim):
            raise ValueError("values shape mismatch")
        if np.unique(keys).size != keys.size:
            raise ValueError("duplicate keys in write batch (write/write hazard)")
        traffic = DKVTraffic()
        owners = self.owners(keys)
        for s in np.unique(owners):
            sel = owners == s
            lo, _ = self.shard_slice(int(s))
            n_req = int(sel.sum())
            if self.faults is not None:
                stale = self._acquire_server(int(s), n_req)
                if stale is not None:
                    # Server unreachable: the update is dropped — the old
                    # pi rows simply persist one more round (stale-write
                    # degradation; the sampler's next read sees old values,
                    # which SG-MCMC tolerates). Traffic is still charged:
                    # the bytes went out before the op timed out.
                    self.fault_stats.dropped_writes += n_req
                else:
                    self._shards[int(s)][keys[sel] - lo] = values[sel]
                    # Acked writes belong to the last-known-good snapshot.
                    self._snapshots[int(s)] = self._shards[int(s)].copy()
                    self._snapshot_iter[int(s)] = self._iteration
            else:
                self._shards[int(s)][keys[sel] - lo] = values[sel]
            traffic.n_requests += n_req
            traffic.bytes_total += n_req * self.value_bytes
            traffic.per_server_requests[int(s)] = n_req
            if int(s) != client:
                traffic.n_remote_requests += n_req
                traffic.bytes_remote += n_req * self.value_bytes
        return traffic


# -- discrete-event timed batch (Figure 5 benchmark path) -------------------


#: Client-side CPU work per DKV request (key->address lookup, WQE build,
#: doorbell, CQE handling). This is the "additional per-request overhead
#: for the DKV store" behind Figure 5's small-payload gap vs qperf.
CLIENT_CPU_PER_REQUEST = 1.0e-6
#: Server DRAM fetch penalty for payloads too large for the LLC: qperf
#: re-reads the same buffer (cache hot), while DKV values are spread over
#: a large memory area (paper Section IV-E, largest packet size).
SERVER_DRAM_BANDWIDTH = 40e9
CACHE_RESIDENT_BYTES = 256 * 1024


def timed_read_batch(
    n_requests: int,
    value_bytes: int,
    depth: int = 16,
    params: NetworkParams | None = None,
    faults: FaultPlan | None = None,
) -> float:
    """Simulate one client reading ``n_requests`` values from one server.

    Mirrors :func:`repro.sim.qperf.run_qperf` on the same simulated fabric
    plus the DKV-specific costs: a value header on the wire, client CPU
    per request (serializing the posting loop), and a server DRAM-fetch
    penalty for payloads that cannot stay cache-resident. Under a
    :class:`~repro.faults.FaultPlan`, injected RDMA op failures are
    reposted until they succeed and link degradation stretches the wire
    times — the batch always completes, just slower. Returns elapsed
    seconds.
    """
    if n_requests < 1:
        raise ValueError("need at least one request")
    sim = Simulator()
    net = Network(
        sim, n_nodes=2, params=params or NetworkParams.fdr_infiniband(), faults=faults
    )
    engine = RdmaEngine(sim, net, faults=faults)
    payload = value_bytes + VALUE_HEADER_BYTES
    dram_penalty = (
        value_bytes / SERVER_DRAM_BANDWIDTH if value_bytes > CACHE_RESIDENT_BYTES else 0.0
    )

    def stream() -> ProcessGen:
        qp = engine.queue_pair(0, 1)
        inflight: list[RdmaOp] = []
        posted = completed = 0
        while completed < n_requests:
            if posted < n_requests and len(inflight) < depth:
                # Client CPU serializes request preparation.
                yield Timeout(CLIENT_CPU_PER_REQUEST)
                inflight.append(qp.post_read(payload))
                posted += 1
                continue
            op = inflight.pop(0)
            yield op.completion
            if op.failed:
                # Error CQE: free the window slot and repost the read.
                posted -= 1
                continue
            completed += 1
            if dram_penalty:
                yield Timeout(dram_penalty)
        return completed

    sim.run_process(stream(), name="dkv-batch")
    return sim.now


def dkv_bandwidth(value_bytes: int, n_requests: int = 256, depth: int = 16,
                  params: NetworkParams | None = None) -> float:
    """Payload bandwidth (bytes/s) of the simulated DKV read stream."""
    elapsed = timed_read_batch(n_requests, value_bytes, depth=depth, params=params)
    return n_requests * value_bytes / elapsed
