"""Distributed key-value store for pi (paper Section III-B).

The paper builds its own DKV store directly on ib-verbs because its use
case is unusually simple: a static key layout (keys = vertex ids, fixed
after initial population), fixed-size values (K+1 floats: pi row +
phi_sum), and barrier-separated read-only / write-only stages with no
read/write hazards — so every get/put is exactly one RDMA read or write.

This module provides that store in two coupled layers:

- **functional**: values actually live in per-server NumPy arrays inside
  this process; ``read_batch`` / ``write_batch`` really move the data, so
  the distributed sampler computes real results;
- **accounting**: every batch records per-server request counts and bytes,
  which the cost model (closed form) or the discrete-event simulator
  (:meth:`timed_read_batch`) converts into simulated time. The Figure 5
  benchmark drives the simulator path so DKV and qperf share one fabric
  model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.core import ProcessGen, Simulator, Timeout
from repro.sim.network import Network, NetworkParams
from repro.sim.rdma import RdmaEngine, RdmaOp

#: Server-side bytes of DKV metadata fetched along with a value (header).
VALUE_HEADER_BYTES = 16


@dataclass
class DKVTraffic:
    """Accounting for one batched operation."""

    n_requests: int = 0
    n_remote_requests: int = 0
    bytes_total: int = 0
    bytes_remote: int = 0
    per_server_requests: dict[int, int] = field(default_factory=dict)

    def merge(self, other: "DKVTraffic") -> None:
        self.n_requests += other.n_requests
        self.n_remote_requests += other.n_remote_requests
        self.bytes_total += other.bytes_total
        self.bytes_remote += other.bytes_remote
        for k, v in other.per_server_requests.items():
            self.per_server_requests[k] = self.per_server_requests.get(k, 0) + v


class DKVStore:
    """Static-partition fixed-value-size distributed KV store.

    Keys ``0 .. n_keys-1`` are block-partitioned across ``n_servers``
    (vertex ``i`` lives on server ``i * n_servers // n_keys``), matching
    the paper's static equal partition of pi rows.

    Args:
        n_keys: number of keys (vertices).
        value_dim: floats per value (K + 1).
        n_servers: worker count.
        dtype: storage dtype (float32 in the paper; float64 default here
            for numerical parity with the sequential reference).
    """

    def __init__(
        self,
        n_keys: int,
        value_dim: int,
        n_servers: int,
        dtype=np.float64,
    ) -> None:
        if n_keys < 1 or value_dim < 1 or n_servers < 1:
            raise ValueError("n_keys, value_dim, n_servers must be positive")
        self.n_keys = int(n_keys)
        self.value_dim = int(value_dim)
        self.n_servers = int(n_servers)
        self.dtype = dtype
        # Block partition boundaries.
        self._bounds = np.array(
            [i * self.n_keys // self.n_servers for i in range(self.n_servers + 1)],
            dtype=np.int64,
        )
        self._shards = [
            np.zeros((self._bounds[i + 1] - self._bounds[i], value_dim), dtype=dtype)
            for i in range(self.n_servers)
        ]
        self.value_bytes = int(value_dim * np.dtype(dtype).itemsize)

    # -- placement ----------------------------------------------------------

    def owner(self, key: int) -> int:
        """Server owning ``key``."""
        if not 0 <= key < self.n_keys:
            raise KeyError(f"key {key} out of range")
        return int(np.searchsorted(self._bounds, key, side="right") - 1)

    def owners(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner`."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and (keys.min() < 0 or keys.max() >= self.n_keys):
            raise KeyError("key out of range")
        return np.searchsorted(self._bounds, keys, side="right") - 1

    def shard_slice(self, server: int) -> tuple[int, int]:
        """(start, stop) key range owned by ``server``."""
        return int(self._bounds[server]), int(self._bounds[server + 1])

    # -- population -----------------------------------------------------------

    def populate(self, values: np.ndarray) -> None:
        """Initial bulk load of all values (no traffic accounting; the
        paper populates the store once before sampling starts)."""
        if values.shape != (self.n_keys, self.value_dim):
            raise ValueError(f"expected {(self.n_keys, self.value_dim)}, got {values.shape}")
        for s in range(self.n_servers):
            lo, hi = self.shard_slice(s)
            self._shards[s][:] = values[lo:hi]

    def snapshot(self) -> np.ndarray:
        """Gather every value (for checkpointing / validation)."""
        return np.concatenate(self._shards, axis=0)

    # -- batched ops ------------------------------------------------------------

    def read_batch(self, client: int, keys: np.ndarray) -> tuple[np.ndarray, DKVTraffic]:
        """Read values for ``keys`` on behalf of ``client``.

        Duplicate keys are fetched once (the paper's workers dedupe their
        mini-batch + neighbor key sets the same way).
        """
        keys = np.asarray(keys, dtype=np.int64)
        out = np.empty((keys.size, self.value_dim), dtype=self.dtype)
        traffic = DKVTraffic()
        if keys.size == 0:
            return out, traffic
        unique, inverse = np.unique(keys, return_inverse=True)
        owners = self.owners(unique)
        uvals = np.empty((unique.size, self.value_dim), dtype=self.dtype)
        for s in np.unique(owners):
            sel = owners == s
            lo, _ = self.shard_slice(int(s))
            uvals[sel] = self._shards[int(s)][unique[sel] - lo]
            n_req = int(sel.sum())
            traffic.n_requests += n_req
            traffic.bytes_total += n_req * self.value_bytes
            traffic.per_server_requests[int(s)] = n_req
            if int(s) != client:
                traffic.n_remote_requests += n_req
                traffic.bytes_remote += n_req * self.value_bytes
        out[:] = uvals[inverse]
        return out, traffic

    def write_batch(
        self, client: int, keys: np.ndarray, values: np.ndarray
    ) -> DKVTraffic:
        """Write values for ``keys``; keys must be unique (the algorithm
        guarantees mini-batch updates target unique vertices)."""
        keys = np.asarray(keys, dtype=np.int64)
        if values.shape != (keys.size, self.value_dim):
            raise ValueError("values shape mismatch")
        if np.unique(keys).size != keys.size:
            raise ValueError("duplicate keys in write batch (write/write hazard)")
        traffic = DKVTraffic()
        owners = self.owners(keys)
        for s in np.unique(owners):
            sel = owners == s
            lo, _ = self.shard_slice(int(s))
            self._shards[int(s)][keys[sel] - lo] = values[sel]
            n_req = int(sel.sum())
            traffic.n_requests += n_req
            traffic.bytes_total += n_req * self.value_bytes
            traffic.per_server_requests[int(s)] = n_req
            if int(s) != client:
                traffic.n_remote_requests += n_req
                traffic.bytes_remote += n_req * self.value_bytes
        return traffic


# -- discrete-event timed batch (Figure 5 benchmark path) -------------------


#: Client-side CPU work per DKV request (key->address lookup, WQE build,
#: doorbell, CQE handling). This is the "additional per-request overhead
#: for the DKV store" behind Figure 5's small-payload gap vs qperf.
CLIENT_CPU_PER_REQUEST = 1.0e-6
#: Server DRAM fetch penalty for payloads too large for the LLC: qperf
#: re-reads the same buffer (cache hot), while DKV values are spread over
#: a large memory area (paper Section IV-E, largest packet size).
SERVER_DRAM_BANDWIDTH = 40e9
CACHE_RESIDENT_BYTES = 256 * 1024


def timed_read_batch(
    n_requests: int,
    value_bytes: int,
    depth: int = 16,
    params: NetworkParams | None = None,
) -> float:
    """Simulate one client reading ``n_requests`` values from one server.

    Mirrors :func:`repro.sim.qperf.run_qperf` on the same simulated fabric
    plus the DKV-specific costs: a value header on the wire, client CPU
    per request (serializing the posting loop), and a server DRAM-fetch
    penalty for payloads that cannot stay cache-resident. Returns elapsed
    seconds.
    """
    if n_requests < 1:
        raise ValueError("need at least one request")
    sim = Simulator()
    net = Network(sim, n_nodes=2, params=params or NetworkParams.fdr_infiniband())
    engine = RdmaEngine(sim, net)
    payload = value_bytes + VALUE_HEADER_BYTES
    dram_penalty = (
        value_bytes / SERVER_DRAM_BANDWIDTH if value_bytes > CACHE_RESIDENT_BYTES else 0.0
    )

    def stream() -> ProcessGen:
        qp = engine.queue_pair(0, 1)
        inflight: list[RdmaOp] = []
        posted = completed = 0
        while completed < n_requests:
            if posted < n_requests and len(inflight) < depth:
                # Client CPU serializes request preparation.
                yield Timeout(CLIENT_CPU_PER_REQUEST)
                inflight.append(qp.post_read(payload))
                posted += 1
                continue
            op = inflight.pop(0)
            yield op.completion
            completed += 1
            if dram_penalty:
                yield Timeout(dram_penalty)
        return completed

    sim.run_process(stream(), name="dkv-batch")
    return sim.now


def dkv_bandwidth(value_bytes: int, n_requests: int = 256, depth: int = 16,
                  params: NetworkParams | None = None) -> float:
    """Payload bandwidth (bytes/s) of the simulated DKV read stream."""
    elapsed = timed_read_batch(n_requests, value_bytes, depth=depth, params=params)
    return n_requests * value_bytes / elapsed
