"""Hardware specifications of the paper's testbeds.

Two machines appear in the evaluation:

- **DAS5 node** (Sections IV, used for every distributed experiment):
  dual 8-core Intel Xeon E5-2630v3 @ 2.40 GHz, 64 GB RAM, FDR InfiniBand;
- **SURFsara HPC Cloud VM** (Section IV-D, vertical-scaling comparison):
  40 Intel Xeon E7-4850 cores @ 2.00 GHz, 1 TB RAM, no fast interconnect.

The specs feed the cost model (flop rates, memory capacity feasibility
checks — e.g. why Figure 1's x-axis starts at 8 workers) and the network
simulator (NIC parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.network import NetworkParams


@dataclass(frozen=True)
class MachineSpec:
    """A compute node.

    Attributes:
        name: label for reports.
        cores: usable cores.
        clock_ghz: nominal clock.
        memory_bytes: RAM available to the application.
        kernel_ops_per_sec_per_core: calibrated throughput of the a-MMSB
            update kernels (inner-loop "K-operations" per second per core;
            memory-bound, so well below peak flops).
        memory_bandwidth: node DRAM bandwidth (bytes/s), the vertical-
            scaling ceiling for the memory-bound kernels.
    """

    name: str
    cores: int
    clock_ghz: float
    memory_bytes: int
    kernel_ops_per_sec_per_core: float = 9.0e7
    memory_bandwidth: float = 50e9

    def kernel_ops_per_sec(self, threads: int | None = None) -> float:
        """Aggregate kernel throughput with ``threads`` (default all cores).

        Thread scaling saturates against the node memory-bandwidth ceiling:
        the kernels stream pi rows, so beyond the bandwidth-bound thread
        count extra cores add little (this is what makes the 40-core VM
        less than 2.5x a 16-core DAS5 node in Figure 4-a).
        """
        t = self.cores if threads is None else min(threads, self.cores)
        linear = t * self.kernel_ops_per_sec_per_core * (self.clock_ghz / 2.4)
        # Bandwidth roofline: each kernel op touches ~24 bytes of state.
        roof = self.memory_bandwidth / 24.0
        return min(linear, roof)


#: DAS5 compute node (paper Section IV).
DAS5_NODE = MachineSpec(
    name="das5",
    cores=16,
    clock_ghz=2.40,
    memory_bytes=64 * 2**30,
)

#: SURFsara HPC Cloud VM (paper Section IV-D).
HPC_CLOUD_NODE = MachineSpec(
    name="hpc-cloud",
    cores=40,
    clock_ghz=2.00,
    memory_bytes=1024 * 2**30,
    # 4-socket E7 SMP: good aggregate DRAM bandwidth on paper, but the
    # random pi-row accesses of this workload cross NUMA domains, so the
    # effective bandwidth binds the 40-core kernel rate (this roofline is
    # why Figure 4-a's vertical scaling is sublinear).
    memory_bandwidth=60e9,
)


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster: ``n_nodes`` identical machines behind one fabric.

    ``n_nodes`` counts *workers*; the master occupies one extra node (the
    paper reports "65 compute nodes" = 1 master + 64 workers).
    """

    n_workers: int
    machine: MachineSpec = DAS5_NODE
    network: NetworkParams = field(default_factory=NetworkParams.fdr_infiniband)
    memory_fraction: float = 0.85  # usable for pi storage

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("need at least one worker")

    @property
    def n_nodes(self) -> int:
        return self.n_workers + 1

    def pi_storage_bytes(self, n_vertices: int, n_communities: int) -> int:
        """Collective bytes needed for the DKV store of pi (+ phi_sum)."""
        return n_vertices * (n_communities + 1) * 4

    def fits_in_memory(self, n_vertices: int, n_communities: int) -> bool:
        """Feasibility check behind Figure 1's x-axis starting at 8 nodes."""
        per_worker = self.pi_storage_bytes(n_vertices, n_communities) / self.n_workers
        return per_worker <= self.machine.memory_bytes * self.memory_fraction

    def min_workers(self, n_vertices: int, n_communities: int) -> int:
        """Smallest worker count whose collective memory holds pi."""
        usable = self.machine.memory_bytes * self.memory_fraction
        import math

        return max(1, math.ceil(self.pi_storage_bytes(n_vertices, n_communities) / usable))

    def max_communities(self, n_vertices: int) -> int:
        """Largest K whose pi fills the collective memory (Fig 2/6 sizing)."""
        usable = self.n_workers * self.machine.memory_bytes * self.memory_fraction
        return max(1, int(usable / (4 * n_vertices)) - 1)


def das5(n_workers: int) -> ClusterSpec:
    """Convenience constructor for the paper's standard testbed."""
    return ClusterSpec(n_workers=n_workers, machine=DAS5_NODE)
