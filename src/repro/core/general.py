"""General (non-assortative) MMSB with SG-MCMC.

The paper's footnote 1: "Although we work on a-MMSB for simplicity, it is
also straightforward to apply the proposed method to the general MMSB
model." This module does exactly that.

The general model replaces the K community strengths ``beta_k`` (plus one
shared off-diagonal ``delta``) with a full symmetric block matrix
``B in (0,1)^{K x K}``: ``p(y_ab = 1 | z_ab = k, z_ba = l) = B_kl``. The
collapsed likelihood of a pair is the bilinear form

``Z_ab = pi_a^T Btilde pi_b``,  ``Btilde = B^y (1-B)^(1-y)``  (elementwise),

and the SGRLD machinery carries over with

- phi gradient:  ``g(phi_ak) = ((Btilde pi_b)_k / Z - 1) / phi_sum_a``
  (reduces to Eqn 6 when B is delta off the diagonal);
- theta gradient per block entry (theta is (K, K, 2),
  ``B_kl = theta_kl1 / (theta_kl0 + theta_kl1)``):
  ``g(theta_kli) = w_kl (|1-i-y| / theta_kli - 1 / sum_i theta_kli)`` with
  responsibility ``w_kl = pi_ak Btilde_kl pi_bl / Z`` — the same form as
  Eqn 4 with the diagonal responsibility replaced by the full K x K one.

Cost: O(K^2) per pair instead of O(K) — the reason the paper works on the
assortative special case at K = 12288; the general model here is
practical to a few hundred communities. ``tests/test_general_mmsb.py``
verifies (a) gradient equivalence with the a-MMSB kernels when B is the
assortative matrix, and (b) that the general model fits *disassortative*
(near-bipartite) graphs that the a-MMSB structurally cannot.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import AMMSBConfig
from repro.core import gradients
from repro.core.minibatch import Minibatch, MinibatchSampler, NeighborSample
from repro.core.perplexity import PerplexityEstimator
from repro.core.state import ModelState, init_state
from repro.graph.graph import Graph, edge_keys
from repro.graph.split import HeldoutSplit

EPS = 1e-300


def block_factor(b: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``Btilde = B^y (1-B)^(1-y)`` broadcast over observations.

    Args:
        b: (K, K) block matrix in (0, 1).
        y: (...,) 0/1 indicators.

    Returns:
        (..., K, K).
    """
    y = np.asarray(y)
    return np.where(y[..., None, None] != 0, b, 1.0 - b)


def general_pair_z(pi_a: np.ndarray, pi_b: np.ndarray, b: np.ndarray,
                   y: np.ndarray) -> np.ndarray:
    """``Z_ab = pi_a^T Btilde pi_b`` for batched pairs; (...,)."""
    bt = block_factor(b, y)
    return np.maximum(np.einsum("...k,...kl,...l->...", pi_a, bt, pi_b), EPS)


def general_phi_gradient_sum(
    pi_a: np.ndarray,
    phi_sum_a: np.ndarray,
    pi_b: np.ndarray,
    y: np.ndarray,
    b: np.ndarray,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Neighbor-summed phi gradient for the general model, shape (m, K).

    Shapes mirror :func:`repro.core.gradients.phi_gradient_sum`:
    pi_a (m, K), pi_b (m, n, K), y (m, n).
    """
    bt = block_factor(b, y)  # (m, n, K, K)
    bp = np.einsum("mnkl,mnl->mnk", bt, pi_b)  # (Btilde pi_b), (m, n, K)
    z = np.maximum(np.einsum("mk,mnk->mn", pi_a, bp), EPS)  # (m, n)
    ratio = bp / z[..., None]  # (m, n, K)
    if mask is not None:
        term = ((ratio - 1.0) * mask[..., None]).sum(axis=1)
    else:
        term = (ratio - 1.0).sum(axis=1)
    return term / phi_sum_a[:, None]


def general_theta_gradient_sum(
    pi_a: np.ndarray,
    pi_b: np.ndarray,
    y: np.ndarray,
    theta: np.ndarray,
) -> np.ndarray:
    """Edge-summed theta gradient, shape (K, K, 2).

    ``theta`` is (K, K, 2) with ``B = theta[..., 1] / theta.sum(-1)``.
    The responsibility of block (k, l) for pair (a, b) is symmetrized
    (the pair is unordered, so (k, l) and (l, k) contributions are
    averaged), keeping theta — and hence B — symmetric under symmetric
    initialization.
    """
    t_sum = theta.sum(axis=-1)  # (K, K)
    b = theta[..., 1] / t_sum
    bt = block_factor(b, y)  # (E, K, K)
    outer = pi_a[:, :, None] * pi_b[:, None, :]  # (E, K, K)
    outer = 0.5 * (outer + outer.transpose(0, 2, 1))  # unordered pair
    w = outer * bt  # responsibilities numerator
    z = np.maximum(w.sum(axis=(1, 2)), EPS)  # (E,)
    w = w / z[:, None, None]  # (E, K, K)

    w_total = w.sum(axis=0)  # (K, K)
    y_arr = np.asarray(y).astype(bool)
    w_y = w[y_arr].sum(axis=0) if y_arr.any() else np.zeros_like(w_total)
    w_not_y = w_total - w_y
    grad = np.empty_like(theta)
    grad[..., 0] = w_not_y / np.maximum(theta[..., 0], EPS) - w_total / t_sum
    grad[..., 1] = w_y / np.maximum(theta[..., 1], EPS) - w_total / t_sum
    return grad


def general_link_probability(
    pi_a: np.ndarray, pi_b: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """p(y=1) = pi_a^T B pi_b for batched pairs, shape (H,)."""
    p = np.einsum("hk,kl,hl->h", pi_a, b, pi_b)
    return np.clip(p, 1e-12, 1 - 1e-12)


def assortative_block_matrix(beta: np.ndarray, delta: float) -> np.ndarray:
    """The a-MMSB's implied block matrix: diag(beta), delta elsewhere."""
    k = beta.shape[0]
    b = np.full((k, k), delta)
    np.fill_diagonal(b, beta)
    return b


class GeneralMMSBSampler:
    """SG-MCMC for the general MMSB (paper footnote 1).

    Mirrors :class:`repro.core.sampler.AMMSBSampler`: the same mini-batch
    substrate, schedules, and SGRLD update rules, with the (K, K, 2)
    theta and the bilinear-form kernels above.

    Args:
        graph / config / heldout / state: as the a-MMSB sampler. The
            config's ``delta`` seeds the off-diagonal prior mean but the
            model learns every block entry.
    """

    def __init__(
        self,
        graph: Graph,
        config: AMMSBConfig,
        heldout: Optional[HeldoutSplit] = None,
        state: Optional[ModelState] = None,
    ) -> None:
        self.graph = graph
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.noise_rng = np.random.default_rng(config.seed + 1)
        heldout_keys = None
        self._heldout = heldout
        if heldout is not None:
            heldout_keys = edge_keys(heldout.heldout_pairs, graph.n_vertices)
        self.minibatch_sampler = MinibatchSampler(graph, config, heldout_keys=heldout_keys)
        base = state if state is not None else init_state(graph.n_vertices, config, self.rng)
        self.state = base  # pi / phi_sum reused; theta replaced below
        k = config.n_communities
        # Symmetric block-theta init: diagonal biased to link-heavy,
        # off-diagonal to the a-MMSB's delta-scale background.
        theta = self.rng.gamma(100.0, 0.01, size=(k, k, 2)) + 1e-9
        theta = 0.5 * (theta + theta.transpose(1, 0, 2))
        self.block_theta = theta
        self.iteration = 0
        self.perplexity_estimator: Optional[PerplexityEstimator] = None
        if heldout is not None:
            self.perplexity_estimator = PerplexityEstimator(
                heldout.heldout_pairs, heldout.heldout_labels, config.delta
            )

    @property
    def block_matrix(self) -> np.ndarray:
        """Posterior point of B, shape (K, K)."""
        return self.block_theta[..., 1] / self.block_theta.sum(axis=-1)

    # -- updates ---------------------------------------------------------------

    def update_phi_pi(self, minibatch: Minibatch, ns: NeighborSample,
                      noise: Optional[np.ndarray] = None) -> None:
        cfg = self.config
        vs = minibatch.vertices
        pi_a = self.state.pi[vs]
        phi_sum_a = self.state.phi_sum[vs]
        pi_b = self.state.pi[ns.neighbors]
        grad = general_phi_gradient_sum(
            pi_a, phi_sum_a, pi_b, ns.labels, self.block_matrix, mask=ns.mask
        )
        counts = np.maximum(ns.counts, 1)
        if noise is None:
            noise = self.noise_rng.standard_normal(pi_a.shape)
        new_phi = gradients.update_phi(
            pi_a * phi_sum_a[:, None],
            grad,
            eps_t=cfg.step_phi.at(self.iteration),
            alpha=cfg.effective_alpha,
            scale=self.graph.n_vertices / counts,
            noise=noise,
            phi_floor=cfg.phi_floor,
            phi_clip=cfg.phi_clip,
        )
        self.state.set_phi_rows(vs, new_phi)

    def update_block_theta(self, minibatch: Minibatch,
                           noise: Optional[np.ndarray] = None) -> None:
        cfg = self.config
        grad_total = np.zeros_like(self.block_theta)
        for stratum in minibatch.strata:
            grad_total += stratum.scale * general_theta_gradient_sum(
                self.state.pi[stratum.pairs[:, 0]],
                self.state.pi[stratum.pairs[:, 1]],
                stratum.labels.astype(np.int64),
                self.block_theta,
            )
        if noise is None:
            noise = self.noise_rng.standard_normal(self.block_theta.shape)
            noise = 0.5 * (noise + noise.transpose(1, 0, 2))  # keep symmetry
        eps_t = cfg.step_theta.at(self.iteration)
        eta = np.array(cfg.eta)[None, None, :]
        drift = 0.5 * eps_t * (eta - self.block_theta + grad_total)
        diffusion = np.sqrt(eps_t) * np.sqrt(self.block_theta) * noise
        self.block_theta = np.maximum(
            np.abs(self.block_theta + drift + diffusion), 1e-12
        )

    # -- loop ---------------------------------------------------------------------

    def step(self) -> None:
        mb = self.minibatch_sampler.sample(self.rng)
        ns = self.minibatch_sampler.sample_neighbors(mb.vertices, self.rng)
        self.update_phi_pi(mb, ns)
        self.update_block_theta(mb)
        self.iteration += 1

    def run(self, n_iterations: int, perplexity_every: int = 0) -> None:
        for _ in range(n_iterations):
            self.step()
            if (
                perplexity_every
                and self.perplexity_estimator is not None
                and self.iteration % perplexity_every == 0
            ):
                self._record_perplexity()

    def _record_perplexity(self) -> None:
        est = self.perplexity_estimator
        assert est is not None
        p1 = general_link_probability(
            self.state.pi[est.pairs[:, 0]],
            self.state.pi[est.pairs[:, 1]],
            self.block_matrix,
        )
        est._prob_sum += np.where(est.labels, p1, 1.0 - p1)
        est._count += 1
