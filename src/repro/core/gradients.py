"""Pure vectorized SGRLD kernels (Eqns 3-6 of the paper).

Every engine — sequential (:mod:`repro.core.sampler`), multi-threaded
(:mod:`repro.parallel`), and distributed (:mod:`repro.dist`) — calls these
functions with explicit array arguments and explicit pre-drawn noise, so

1. the engines are numerically *identical* given the same mini-batch and
   noise (tested in ``tests/test_dist_equivalence.py``), and
2. the kernels can be unit- and property-tested in isolation.

Shapes use ``m`` = mini-batch vertices, ``n`` = neighbor-sample size,
``K`` = communities, ``E`` = mini-batch edges.

Notation (paper Section II-C): ``B_k = beta_k^y (1-beta_k)^(1-y)`` and
``D = delta^y (1-delta)^(1-y)``;
``f_ab(k) = pi_ak [ pi_bk B_k + (1 - pi_bk) D ]``;
``Z_ab = sum_k f_ab(k)`` — the O(K) normalizer;
``f_ab(k,k) = pi_ak pi_bk B_k`` — the diagonal term used by the theta
gradient.
"""

from __future__ import annotations

import numpy as np

#: Numerical floor to keep divisions finite.
EPS = 1e-300


def bernoulli_factor(beta: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``B_k`` broadcast over observations: (..., 1) y against (K,) beta.

    Args:
        beta: (K,) community strengths in (0, 1).
        y: (...,) 0/1 link indicators.

    Returns:
        (..., K) array ``beta_k**y * (1-beta_k)**(1-y)``.
    """
    y = np.asarray(y)
    return np.where(y[..., None] != 0, beta, 1.0 - beta)


def delta_factor(delta: float, y: np.ndarray) -> np.ndarray:
    """``D`` per observation: delta**y * (1-delta)**(1-y), shape (...,)."""
    y = np.asarray(y)
    return np.where(y != 0, delta, 1.0 - delta)


def phi_gradient_terms(
    pi_a: np.ndarray,
    pi_b: np.ndarray,
    y: np.ndarray,
    beta: np.ndarray,
    delta: float,
) -> tuple[np.ndarray, np.ndarray]:
    """``f_ab(k)`` and ``Z_ab`` for batched (a, b) observations.

    Args:
        pi_a: (m, K) memberships of mini-batch vertices.
        pi_b: (m, n, K) memberships of each vertex's sampled neighbors.
        y: (m, n) link indicators.
        beta: (K,).
        delta: background link probability.

    Returns:
        ``(f, z)`` with shapes (m, n, K) and (m, n).
    """
    b_factor = bernoulli_factor(beta, y)  # (m, n, K)
    d_factor = delta_factor(delta, y)[..., None]  # (m, n, 1)
    f = pi_a[:, None, :] * (pi_b * b_factor + (1.0 - pi_b) * d_factor)
    z = f.sum(axis=-1)
    return f, np.maximum(z, EPS)


def phi_gradient_sum(
    pi_a: np.ndarray,
    phi_sum_a: np.ndarray,
    pi_b: np.ndarray,
    y: np.ndarray,
    beta: np.ndarray,
    delta: float,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Sum over the neighbor set of the phi gradient (Eqn 6), shape (m, K).

    ``sum_b g_ab(phi_ak) = (sum_b f_ab(k)/Z_ab) / phi_ak - n / phi_sum_a``
    and ``phi_ak = pi_ak * phi_sum_a``.

    ``mask`` (m, n) excludes invalid neighbor slots (self pairs, held-out
    collisions) from both the f/Z sum and the per-row count ``n``.
    """
    f, z = phi_gradient_terms(pi_a, pi_b, y, beta, delta)
    w = f / z[..., None]  # (m, n, K)
    if mask is not None:
        w = w * mask[..., None]
        n_eff = mask.sum(axis=1, keepdims=True)  # (m, 1)
    else:
        n_eff = np.full((pi_a.shape[0], 1), y.shape[1], dtype=np.float64)
    s = w.sum(axis=1)  # (m, K)
    phi_a = np.maximum(pi_a * phi_sum_a[:, None], EPS)
    return s / phi_a - n_eff / phi_sum_a[:, None]


def update_phi(
    phi_a: np.ndarray,
    grad_sum: np.ndarray,
    eps_t: float,
    alpha: float,
    scale: float,
    noise: np.ndarray,
    phi_floor: float = 1e-12,
    phi_clip: float = 1e6,
) -> np.ndarray:
    """SGRLD phi update (Eqn 5), vectorized over rows.

    Args:
        phi_a: (m, K) current phi rows.
        grad_sum: (m, K) summed neighbor gradients.
        eps_t: step size.
        alpha: Dirichlet hyperparameter.
        scale: mini-batch correction ``N / |V_n|``.
        noise: (m, K) standard normal draws (pre-drawn by the caller so
            engines can share them).
        phi_floor / phi_clip: stability bounds.

    Returns:
        (m, K) updated phi rows (positive, clipped).
    """
    drift = 0.5 * eps_t * (alpha - phi_a + scale * grad_sum)
    diffusion = np.sqrt(eps_t) * np.sqrt(np.maximum(phi_a, 0.0)) * noise
    out = np.abs(phi_a + drift + diffusion)
    return np.clip(out, phi_floor, phi_clip)


def theta_gradient_sum(
    pi_a: np.ndarray,
    pi_b: np.ndarray,
    y: np.ndarray,
    theta: np.ndarray,
    delta: float,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Sum over mini-batch edges of the theta gradient (Eqn 4), shape (K, 2).

    ``g_ab(theta_ki) = (f_ab(k,k) / Z_ab) * (|1-i-y| / theta_ki
    - 1 / sum_j theta_kj)`` with ``|1-i-y|`` selecting component 1 for
    links and component 0 for non-links.

    Args:
        pi_a / pi_b: (E, K) endpoint memberships per mini-batch edge.
        y: (E,) link indicators.
        theta: (K, 2).
        delta: background probability.
        weights: optional (E,) per-edge h-scale weights. The gradient is
            linear in the per-edge terms, so one weighted call over the
            concatenated strata equals the per-stratum
            ``sum_s scale_s * theta_gradient_sum(stratum_s)`` loop.
    """
    y = np.asarray(y)
    beta = theta[:, 1] / theta.sum(axis=1)
    b_factor = bernoulli_factor(beta, y)  # (E, K)
    d_factor = delta_factor(delta, y)[:, None]  # (E, 1)
    f_diag = pi_a * pi_b * b_factor  # (E, K)
    z = (pi_a * (pi_b * b_factor + (1.0 - pi_b) * d_factor)).sum(axis=1)  # (E,)
    w = f_diag / np.maximum(z, EPS)[:, None]  # (E, K)
    if weights is not None:
        w = w * np.asarray(weights)[:, None]

    theta_row_sum = theta.sum(axis=1)  # (K,)
    w_total = w.sum(axis=0)  # (K,)
    grad = np.empty_like(theta)
    # i = 0: |1-0-y| = 1-y -> only non-link edges contribute the 1/theta term.
    # i = 1: |1-1-y| = y   -> only link edges contribute it.
    # Weighting by the 0/1 indicator sums the link rows without the
    # data-dependent boolean-mask copy (non-link rows contribute exact 0s).
    w_y = (w * (y != 0)[:, None]).sum(axis=0)
    w_not_y = w_total - w_y
    grad[:, 0] = w_not_y / np.maximum(theta[:, 0], EPS) - w_total / theta_row_sum
    grad[:, 1] = w_y / np.maximum(theta[:, 1], EPS) - w_total / theta_row_sum
    return grad


def update_theta(
    theta: np.ndarray,
    grad_sum: np.ndarray,
    eps_t: float,
    eta: tuple[float, float],
    scale: float,
    noise: np.ndarray,
    theta_floor: float = 1e-12,
) -> np.ndarray:
    """SGRLD theta update (Eqn 3).

    Args:
        theta: (K, 2).
        grad_sum: (K, 2) summed (already h-scaled if multiple strata) edge
            gradients.
        eps_t: step size.
        eta: (eta0, eta1) prior pseudo-counts.
        scale: mini-batch correction h(E_n); pass 1.0 if ``grad_sum`` is
            already scaled.
        noise: (K, 2) standard normal draws.
    """
    eta_arr = np.array(eta)[None, :]
    drift = 0.5 * eps_t * (eta_arr - theta + scale * grad_sum)
    diffusion = np.sqrt(eps_t) * np.sqrt(np.maximum(theta, 0.0)) * noise
    return np.maximum(np.abs(theta + drift + diffusion), theta_floor)


def brute_force_z(
    pi_a: np.ndarray, pi_b: np.ndarray, y: int, beta: np.ndarray, delta: float
) -> float:
    """O(K^2) normalizer ``Z_ab = sum_{k,l} f_ab(k,l)`` for testing.

    ``f_ab(k,l) = B_k pi_ak pi_bk`` on the diagonal and
    ``D pi_ak pi_bl`` off-diagonal (paper Eqn after Eqn 4).
    """
    k = beta.shape[0]
    d = delta**y * (1 - delta) ** (1 - y)
    total = 0.0
    for i in range(k):
        for j in range(k):
            if i == j:
                b = beta[i] ** y * (1 - beta[i]) ** (1 - y)
                total += b * pi_a[i] * pi_b[i]
            else:
                total += d * pi_a[i] * pi_b[j]
    return float(total)
