"""Numba-JIT kernel backend: parallel per-edge loops, zero big temporaries.

The third backend of the :mod:`repro.core.kernels` registry (ROADMAP item
3). Where ``fused`` still materializes the ``(m, n, K)`` intermediates
(``B_k``, ``f``, ``Z``) into workspace buffers, the loops here accumulate
**per edge** straight into the small preallocated output/partial buffers:
nothing of size ``(m, n, K)`` or ``(E, K)`` is ever written, only read.
With numba installed every loop is compiled with
``@njit(parallel=True, cache=True)`` and ``prange`` over mini-batch rows /
edge blocks, so the hot path runs multi-core native code; ``cache=True``
persists the compiled artifacts so later processes skip compilation.

Availability and fallback
-------------------------
``NUMBA_AVAILABLE`` reflects whether ``import numba`` succeeded. When it
did not, the loops below stay plain Python functions (``prange`` becomes
``range``): far too slow for production, but exactly right for the
equivalence tests, which exercise the same loop bodies on tiny shapes
regardless of whether numba is installed. The backend is only
*registered* when numba is available — selection falls back to ``fused``
via :func:`repro.core.kernels.resolve_backend`.

Numerical contract
------------------
Same as every backend (``tests/test_kernels.py`` /
``tests/test_kernels_numba.py``): float64 results match the reference to
tight tolerance (loop-ordered accumulation is not bit-identical to
numpy's pairwise summation, so exact equality is not promised — unlike
``fused``), and float32 inputs stay float32 end to end (outputs and every
workspace buffer; scalar accumulators may carry extra precision).

Determinism under ``parallel=True``
-----------------------------------
``prange`` never splits a reduction across threads here:

- phi gradient / phi update / link probability parallelize over rows,
  and each row is reduced serially by one thread;
- the theta gradient reduces over *all* edges, so edges are cut into
  fixed ``THETA_BLOCK``-sized blocks, each block accumulates serially
  into its own slice of a ``(n_blocks, 2, K)`` partial buffer, and the
  blocks are combined in index order by a serial numpy sum.

The block structure depends only on the edge count, so results are
bit-reproducible across runs and across thread counts.

Warmup
------
:func:`warmup` compiles (once per process) every kernel for the
dtype/argument combinations the engines use, so JIT latency never lands
inside a timed iteration or a serve request. The registered backend
exposes it as ``backend.warmup()``; engines call it at construction.
"""

from __future__ import annotations

import math

import numpy as np

try:  # pragma: no cover - exercised via the import-fallback test
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover
    NUMBA_AVAILABLE = False
    prange = range

    def njit(*args, **kwargs):  # noqa: D401 - identity decorator stand-in
        """No-numba stand-in: leave the loop as a plain Python function."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


#: Edge-block size of the deterministic theta-gradient reduction.
THETA_BLOCK = 1024

#: njit options shared by every loop. ``fastmath`` stays off: the
#: tolerance contract assumes IEEE-ordered arithmetic within each row.
_JIT = dict(parallel=True, cache=True, nogil=True)

_DUMMY_MASK = np.zeros((1, 1), dtype=np.bool_)


# -- compiled loop bodies -----------------------------------------------------


@njit(**_JIT)
def _phi_gradient_loop(
    pi_a, phi_sum_a, pi_b, y, beta, omb, d_link, d_non,
    mask, use_mask, z_floor, phi_floor, out,
):
    m, n, k = pi_b.shape
    for a in prange(m):
        for kk in range(k):
            out[a, kk] = 0.0
        n_eff = 0.0
        for j in range(n):
            if use_mask and not mask[a, j]:
                continue
            n_eff += 1.0
            link = y[a, j]
            d = d_link if link else d_non
            z = 0.0
            for kk in range(k):
                b = beta[kk] if link else omb[kk]
                z += pi_a[a, kk] * (pi_b[a, j, kk] * b + (1.0 - pi_b[a, j, kk]) * d)
            if z < z_floor:
                z = z_floor
            inv_z = 1.0 / z
            # second pass recomputes f_ab(k): allocation-free beats a
            # per-neighbor scratch array at these arithmetic intensities.
            for kk in range(k):
                b = beta[kk] if link else omb[kk]
                f = pi_a[a, kk] * (pi_b[a, j, kk] * b + (1.0 - pi_b[a, j, kk]) * d)
                out[a, kk] += f * inv_z
        for kk in range(k):
            phi_ak = pi_a[a, kk] * phi_sum_a[a]
            if phi_ak < phi_floor:
                phi_ak = phi_floor
            out[a, kk] = out[a, kk] / phi_ak - n_eff / phi_sum_a[a]
    return out


@njit(**_JIT)
def _phi_update_loop(
    phi_a, grad_sum, eps_t, alpha, scale, noise, sqrt_eps_t,
    phi_floor, phi_clip, out,
):
    m, k = phi_a.shape
    for a in prange(m):
        s = scale[a]
        for kk in range(k):
            p = phi_a[a, kk]
            drift = 0.5 * eps_t * (alpha - p + s * grad_sum[a, kk])
            pos = p if p > 0.0 else 0.0
            diffusion = sqrt_eps_t * math.sqrt(pos) * noise[a, kk]
            v = p + drift + diffusion
            if v < 0.0:
                v = -v
            if v < phi_floor:
                v = phi_floor
            elif v > phi_clip:
                v = phi_clip
            out[a, kk] = v
    return out


@njit(**_JIT)
def _theta_gradient_loop(
    pi_a, pi_b, y, beta, omb, d_link, d_non,
    weights, use_weights, z_floor, block, partial,
):
    e, k = pi_a.shape
    n_blocks = partial.shape[0]
    for b in prange(n_blocks):
        for kk in range(k):
            partial[b, 0, kk] = 0.0
            partial[b, 1, kk] = 0.0
        lo = b * block
        hi = lo + block
        if hi > e:
            hi = e
        for i in range(lo, hi):
            link = y[i]
            d = d_link if link else d_non
            z = 0.0
            for kk in range(k):
                bk = beta[kk] if link else omb[kk]
                z += pi_a[i, kk] * (pi_b[i, kk] * bk + (1.0 - pi_b[i, kk]) * d)
            if z < z_floor:
                z = z_floor
            inv_z = 1.0 / z
            if use_weights:
                inv_z *= weights[i]
            for kk in range(k):
                bk = beta[kk] if link else omb[kk]
                w = pi_a[i, kk] * pi_b[i, kk] * bk * inv_z
                partial[b, 0, kk] += w
                if link:
                    partial[b, 1, kk] += w
    return partial


@njit(**_JIT)
def _theta_update_loop(
    theta, grad_sum, eps_t, eta0, eta1, scale, noise, sqrt_eps_t,
    theta_floor, out,
):
    k = theta.shape[0]
    for kk in prange(k):
        for i in range(2):
            eta = eta0 if i == 0 else eta1
            t = theta[kk, i]
            drift = 0.5 * eps_t * (eta - t + scale * grad_sum[kk, i])
            pos = t if t > 0.0 else 0.0
            diffusion = sqrt_eps_t * math.sqrt(pos) * noise[kk, i]
            v = t + drift + diffusion
            if v < 0.0:
                v = -v
            if v < theta_floor:
                v = theta_floor
            out[kk, i] = v
    return out


@njit(**_JIT)
def _link_probability_loop(pi_a, pi_b, beta, delta, floor_lo, floor_hi, out):
    h, k = pi_a.shape
    for i in prange(h):
        same = 0.0
        overlap = 0.0
        for kk in range(k):
            t = pi_a[i, kk] * pi_b[i, kk]
            overlap += t
            same += t * beta[kk]
        p = same + (1.0 - overlap) * delta
        if p < floor_lo:
            p = floor_lo
        elif p > floor_hi:
            p = floor_hi
        out[i] = p
    return out


# -- backend-facing wrappers --------------------------------------------------
#
# Imports of repro.core.kernels stay inside the functions: kernels.py
# imports this module at its bottom to register the backend, and the
# reverse module-level import would make the registration order fragile.


def _workspace(workspace):
    from repro.core.kernels import KernelWorkspace

    return workspace if workspace is not None else KernelWorkspace()


def _as_bool(ws, name: str, values: np.ndarray) -> np.ndarray:
    """0/1-indicator view of ``values`` in a workspace bool buffer."""
    values = np.asarray(values)
    if values.dtype == np.bool_:
        return values
    out = ws.array(name, values.shape, np.bool_)
    np.not_equal(values, 0, out=out)
    return out


def _beta_buffers(ws, prefix: str, beta: np.ndarray, ct) -> tuple[np.ndarray, np.ndarray]:
    beta_c = ws.cast(prefix + "beta", np.asarray(beta), ct)
    omb = ws.array(prefix + "omb", beta_c.shape, ct)
    np.subtract(1.0, beta_c, out=omb)
    return beta_c, omb


def phi_gradient_sum(
    pi_a, phi_sum_a, pi_b, y, beta, delta, mask=None, workspace=None
):
    """Eqn 6 as a parallel per-row loop; zero ``(m, n, K)`` temporaries."""
    from repro.core.kernels import _compute_dtype, _z_floor

    ws = _workspace(workspace)
    pi_a = np.asarray(pi_a)
    pi_b = np.asarray(pi_b)
    ct = _compute_dtype(pi_a, pi_b)
    m, _, k = pi_b.shape

    y_b = _as_bool(ws, "nb_phi_y", y)
    beta_c, omb = _beta_buffers(ws, "nb_phi_", beta, ct)
    use_mask = mask is not None
    mask_b = _as_bool(ws, "nb_phi_mask", mask) if use_mask else _DUMMY_MASK
    out = ws.array("nb_phi_out", (m, k), ct)
    return _phi_gradient_loop(
        pi_a, np.asarray(phi_sum_a), pi_b, y_b, beta_c, omb,
        ct.type(delta), ct.type(1.0 - delta),
        mask_b, use_mask, ct.type(_z_floor(ct)), ct.type(_z_floor(ct)), out,
    )


def update_phi(
    phi_a, grad_sum, eps_t, alpha, scale, noise,
    phi_floor=1e-12, phi_clip=1e6, workspace=None,
):
    """SGRLD phi update (Eqn 5), parallel over mini-batch rows."""
    from repro.core.kernels import _compute_dtype

    ws = _workspace(workspace)
    phi_a = np.asarray(phi_a)
    ct = _compute_dtype(phi_a)
    m, _ = phi_a.shape

    sc = ws.array("nb_up_scale", (m,), ct)
    if isinstance(scale, np.ndarray):
        np.copyto(sc, np.asarray(scale).reshape(-1), casting="same_kind")
    else:
        sc.fill(scale)
    grad_c = ws.cast("nb_up_grad", np.asarray(grad_sum), ct)
    noise_c = ws.cast("nb_up_noise", np.asarray(noise), ct)
    out = ws.array("nb_up_out", phi_a.shape, ct)
    return _phi_update_loop(
        phi_a, grad_c, ct.type(eps_t), ct.type(alpha), sc, noise_c,
        ct.type(math.sqrt(eps_t)), ct.type(phi_floor), ct.type(phi_clip), out,
    )


def theta_gradient_weighted(
    pi_a, pi_b, y, theta, delta, weights=None, workspace=None
):
    """Eqn 4 over all mini-batch edges: deterministic block reduction.

    Edges are reduced in fixed ``THETA_BLOCK``-sized blocks (parallel
    across blocks, serial within), then the per-block partials combine in
    index order — bit-reproducible for any thread count.
    """
    from repro.core.gradients import EPS
    from repro.core.kernels import _compute_dtype, _z_floor

    ws = _workspace(workspace)
    pi_a = np.asarray(pi_a)
    pi_b = np.asarray(pi_b)
    theta = np.asarray(theta)
    ct = _compute_dtype(pi_a, pi_b)
    e, k = pi_a.shape

    theta_row_sum = theta.sum(axis=1)
    beta = theta[:, 1] / theta_row_sum
    beta_c, omb = _beta_buffers(ws, "nb_th_", beta, ct)
    y_b = _as_bool(ws, "nb_th_y", y)
    use_weights = weights is not None
    if use_weights:
        w_c = ws.cast("nb_th_wts", np.asarray(weights), ct)
    else:
        w_c = ws.array("nb_th_wts_dummy", (1,), ct)

    n_blocks = max(1, -(-e // THETA_BLOCK))
    partial = ws.array("nb_th_partial", (n_blocks, 2, k), ct)
    _theta_gradient_loop(
        pi_a, pi_b, y_b, beta_c, omb, ct.type(delta), ct.type(1.0 - delta),
        w_c, use_weights, ct.type(_z_floor(ct)), THETA_BLOCK, partial,
    )
    # Serial, index-ordered combine of the per-block partials.
    w_total = partial[:, 0, :].sum(axis=0)
    w_y = partial[:, 1, :].sum(axis=0)
    w_not_y = w_total - w_y

    grad = np.empty_like(theta)
    grad[:, 0] = w_not_y / np.maximum(theta[:, 0], EPS) - w_total / theta_row_sum
    grad[:, 1] = w_y / np.maximum(theta[:, 1], EPS) - w_total / theta_row_sum
    return grad


def update_theta(
    theta, grad_sum, eps_t, eta, scale, noise, theta_floor=1e-12, workspace=None
):
    """SGRLD theta update (Eqn 3); returns a fresh array (engines keep it)."""
    theta = np.asarray(theta, dtype=np.float64)
    out = np.empty_like(theta)
    return _theta_update_loop(
        theta, np.asarray(grad_sum, dtype=np.float64), float(eps_t),
        float(eta[0]), float(eta[1]), float(scale),
        np.asarray(noise, dtype=np.float64), math.sqrt(float(eps_t)),
        float(theta_floor), out,
    )


def link_probability(pi_a, pi_b, beta, delta, workspace=None):
    """Batched serving-path ``p(y=1)``: parallel over the pair batch."""
    from repro.core.kernels import _compute_dtype
    from repro.core.perplexity import _PROB_FLOOR

    ws = _workspace(workspace)
    pi_a = np.asarray(pi_a)
    pi_b = np.asarray(pi_b)
    ct = _compute_dtype(pi_a, pi_b)
    h, _ = pi_a.shape

    beta_c = ws.cast("nb_lp_beta", np.asarray(beta), ct)
    out = ws.array("nb_lp_out", (h,), ct)
    return _link_probability_loop(
        pi_a, pi_b, beta_c, ct.type(delta),
        ct.type(_PROB_FLOOR), ct.type(1.0 - _PROB_FLOOR), out,
    )


# -- warmup -------------------------------------------------------------------

_WARMED = False


def warmup() -> None:
    """Compile every kernel once, for every argument shape engines use.

    Covers float64 and float32, masked and unmasked phi gradients, and
    weighted and unweighted theta gradients — the full set of lazy-JIT
    specializations — on trivially small inputs. Idempotent and cheap
    after the first call (and, with ``cache=True``, cheap in every later
    process on the same machine). A no-op without numba.
    """
    global _WARMED
    if _WARMED:
        return
    if NUMBA_AVAILABLE:
        from repro.core.kernels import KernelWorkspace

        rng = np.random.default_rng(0)
        theta = rng.gamma(2.0, 1.0, size=(3, 2)) + 0.5
        noise2 = rng.standard_normal((2, 3))
        for dtype in (np.float64, np.float32):
            ws = KernelWorkspace()
            pi_a = rng.dirichlet(np.ones(3), size=2).astype(dtype)
            pi_b = rng.dirichlet(np.ones(3), size=(2, 2)).astype(dtype)
            pi_e = rng.dirichlet(np.ones(3), size=4).astype(dtype)
            phi_sum = np.ones(2, dtype=dtype)
            y = np.array([[True, False], [False, True]])
            beta = rng.uniform(0.2, 0.8, 3)
            for mask in (None, np.ones((2, 2), dtype=bool)):
                phi_gradient_sum(
                    pi_a, phi_sum, pi_b, y, beta, 1e-4, mask=mask, workspace=ws
                )
            update_phi(
                pi_a, pi_a, 0.01, 0.1, 10.0, noise2.astype(dtype), workspace=ws
            )
            for weights in (None, np.ones(4, dtype=dtype)):
                theta_gradient_weighted(
                    pi_e, pi_e[::-1].copy(), y.reshape(-1), theta, 1e-4,
                    weights=weights, workspace=ws,
                )
            link_probability(pi_e, pi_e, beta, 1e-7, workspace=ws)
        update_theta(theta, np.zeros((3, 2)), 0.01, (1.0, 1.0), 1.0,
                     np.zeros((3, 2)))
    _WARMED = True
