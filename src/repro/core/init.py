"""Informed initialization (optional extension).

The paper initializes randomly and spends the first hours of a run mixing
into the community structure. A cheap graph-aware initialization gives the
chain a head start:

1. seed each of the K communities with one high-degree vertex, chosen
   greedily with a 2-hop exclusion zone so seeds land in different parts
   of the graph;
2. run damped label-propagation rounds with the seeds clamped (the
   semi-supervised label-prop recipe), then sharpen the near-uniform tail
   by squaring and renormalizing;
3. convert to the sampler's expanded-mean parameterization with a
   moderate per-vertex phi mass, so the first SGRLD steps can still move
   the state freely.

``tests/test_init.py`` verifies the head start on planted graphs: lower
initial perplexity and the same-or-better value after a fixed budget.

Two further initializers support the streaming tier (:mod:`repro.stream`):

- :func:`init_state_spectral` — the successive-projections recipe
  (Mixed-SCORE/SPA style): leading-K eigenvectors of the normalized
  adjacency via block power iteration, K near-pure vertices found by
  successive orthogonal projections, memberships recovered by expressing
  every row in the pure-vertex basis. A cheap, deterministic cold-start
  when no previous checkpoint exists.
- :func:`extend_state_informed` — grows a *trained* state to a larger
  graph: each new vertex starts from the mean membership of its
  already-initialized neighbors (prior-smoothed), so a warm-started
  generation does not re-burn-in for the 95% of rows it already knows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import AMMSBConfig
from repro.core.state import ModelState
from repro.graph.graph import Graph


def init_state_informed(
    graph: Graph,
    config: AMMSBConfig,
    rng: Optional[np.random.Generator] = None,
    smoothing_rounds: int = 15,
    damping: float = 0.95,
    phi_mass: float = 10.0,
) -> ModelState:
    """Label-propagation-seeded initial state.

    Args:
        graph: training graph.
        config: sampler configuration (K, alpha, dtype).
        rng: random generator.
        smoothing_rounds: neighbor-averaging rounds.
        damping: per-round weight of the neighbor average (0 = ignore
            neighbors, 1 = pure propagation).
        phi_mass: total phi mass per vertex; larger values make the
            initialization "stickier" against early SGRLD noise.

    Returns:
        A valid :class:`ModelState`.
    """
    if not 0.0 <= damping <= 1.0:
        raise ValueError("damping must be in [0, 1]")
    rng = rng or np.random.default_rng(config.seed)
    n = graph.n_vertices
    k = config.n_communities
    alpha = config.effective_alpha

    # 1. Greedy far-apart seeding: take vertices in (jittered) degree
    # order, banning the 2-hop neighborhood of every chosen seed, so two
    # seeds rarely land in the same true community and fight over colors.
    degrees = graph.degrees.astype(np.float64)
    order = np.argsort(-(degrees + rng.random(n) * 1e-6))
    chosen: list[int] = []
    banned: set[int] = set()
    for v in order:
        if len(chosen) >= min(k, n):
            break
        v = int(v)
        if v in banned:
            continue
        chosen.append(v)
        banned.add(v)
        for u in graph.neighbors(v):
            banned.add(int(u))
            for w in graph.neighbors(int(u)):
                banned.add(int(w))
    # If the ban was too aggressive (small or dense graph), fill up with
    # arbitrary unchosen vertices.
    if len(chosen) < min(k, n):
        rest = [v for v in range(n) if v not in set(chosen)]
        chosen.extend(rest[: min(k, n) - len(chosen)])
    seeds = np.array(chosen, dtype=np.int64)
    n_seeds = seeds.size
    seed_label = np.arange(n_seeds) % k

    onehot = np.full((n_seeds, k), 1e-3)
    onehot[np.arange(n_seeds), seed_label] = 1.0
    onehot /= onehot.sum(axis=1, keepdims=True)

    pi = np.full((n, k), 1.0 / k)
    pi[seeds] = onehot

    # 2. Damped label propagation with clamped seeds (semi-supervised
    # label-prop style: the sources never wash out).
    for _ in range(smoothing_rounds):
        nbr_avg = np.empty_like(pi)
        for v in range(n):
            nbrs = graph.neighbors(v)
            nbr_avg[v] = pi[nbrs].mean(axis=0) if nbrs.size else pi[v]
        pi = (1.0 - damping) * pi + damping * nbr_avg
        pi[seeds] = onehot
        pi /= pi.sum(axis=1, keepdims=True)

    # 3a. Sharpen: the propagation output is close to uniform far from the
    # seeds; squaring (then renormalizing) amplifies the winning color
    # while keeping the full support the Dirichlet prior expects.
    pi = pi**2 + alpha / k
    pi /= pi.sum(axis=1, keepdims=True)

    # 3. Expanded-mean parameterization with moderate mass.
    dtype = np.dtype(config.dtype)
    phi_sum = np.full(n, phi_mass)
    theta = rng.gamma(100.0, 0.01, size=(k, 2)) + 1e-9
    state = ModelState(
        pi=pi.astype(dtype), phi_sum=phi_sum.astype(dtype), theta=theta
    )
    state.validate()
    return state


def _adjacency_matvec(graph: Graph, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """``A @ x`` over the graph's CSR arrays for an (N, k) block ``x``.

    ``rows`` is the precomputed row id of every CSR entry (both edge
    directions), so one scatter-add per call replaces a sparse-matrix
    dependency.
    """
    out = np.zeros_like(x)
    np.add.at(out, rows, x[graph._csr_indices])
    return out


def spectral_memberships(
    graph: Graph,
    k: int,
    rng: Optional[np.random.Generator] = None,
    power_iterations: int = 60,
) -> np.ndarray:
    """Mixed-membership estimate via successive projections, shape (N, k).

    1. Leading-``k`` eigenspace of the (shifted) symmetric-normalized
       adjacency ``D^-1/2 A D^-1/2 + I`` by block power iteration with QR
       re-orthonormalization — the ``+ I`` shift makes every leading
       eigenvalue positive so the iteration converges on magnitude.
    2. Successive projection on the eigenvector rows: greedily take the
       row of largest residual norm as a near-pure vertex, project the
       rest onto its orthogonal complement, repeat ``k`` times.
    3. Express every row in the pure-vertex basis (``V @ inv(V[S])``),
       clip to the simplex, renormalize.

    Deterministic for a fixed ``rng`` seed; ties in the projection step
    resolve to the lowest vertex id. Raises ``ValueError`` on graphs too
    small or empty for a rank-``k`` estimate (callers fall back to
    random init).
    """
    n = graph.n_vertices
    if k < 1:
        raise ValueError("k must be >= 1")
    if n <= k or graph.n_edges == 0:
        raise ValueError(f"need more than {k} vertices and at least one edge")
    rng = rng or np.random.default_rng(0)
    inv_sqrt_deg = 1.0 / np.sqrt(np.maximum(graph.degrees, 1).astype(np.float64))
    rows = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(graph._csr_indptr)
    )
    x = rng.standard_normal((n, k))
    x, _ = np.linalg.qr(x)
    for _ in range(power_iterations):
        y = inv_sqrt_deg[:, None] * _adjacency_matvec(
            graph, inv_sqrt_deg[:, None] * x, rows
        )
        x, _ = np.linalg.qr(y + x)  # + x: the identity shift
    v = x  # (N, k) orthonormal basis of the leading eigenspace

    # Successive projections: k near-pure rows, ties to the lowest id.
    residual = v.copy()
    pure: list[int] = []
    for _ in range(k):
        norms = np.einsum("ij,ij->i", residual, residual)
        s = int(np.argmax(norms))
        if norms[s] <= 1e-12:
            raise ValueError("eigenspace is rank-deficient; no pure vertices")
        pure.append(s)
        u = residual[s] / np.sqrt(norms[s])
        residual -= np.outer(residual @ u, u)

    basis = v[np.array(pure, dtype=np.int64)]  # (k, k)
    memberships, *_ = np.linalg.lstsq(basis.T, v.T, rcond=None)
    memberships = np.clip(memberships.T, 0.0, None)  # (N, k)
    sums = memberships.sum(axis=1)
    dead = sums <= 1e-12
    memberships[dead] = 1.0 / k
    sums[dead] = 1.0
    return memberships / sums[:, None]


def init_state_spectral(
    graph: Graph,
    config: AMMSBConfig,
    rng: Optional[np.random.Generator] = None,
    phi_mass: float = 10.0,
    power_iterations: int = 60,
) -> ModelState:
    """Cold-start state from :func:`spectral_memberships`.

    The streaming trainer's fallback when no previous checkpoint exists:
    deterministic for a fixed seed, and prior-smoothed so every community
    keeps full support for the first SGRLD steps. Raises ``ValueError``
    on degenerate graphs (callers fall back to random init).
    """
    rng = rng or np.random.default_rng(config.seed)
    k = config.n_communities
    alpha = config.effective_alpha
    pi = spectral_memberships(graph, k, rng=rng, power_iterations=power_iterations)
    pi = pi + alpha / k
    pi /= pi.sum(axis=1, keepdims=True)
    dtype = np.dtype(config.dtype)
    state = ModelState(
        pi=pi.astype(dtype),
        phi_sum=np.full(graph.n_vertices, phi_mass, dtype=dtype),
        theta=rng.gamma(100.0, 0.01, size=(k, 2)) + 1e-9,
    )
    state.validate()
    return state


def extend_state_informed(
    state: ModelState,
    graph: Graph,
    config: AMMSBConfig,
    phi_mass: float = 10.0,
) -> ModelState:
    """Grow a trained state to ``graph.n_vertices`` rows (streaming warm start).

    Rows ``0..state.n_vertices-1`` are copied unchanged. Each new vertex
    (in id order) starts from the mean membership of its already-initialized
    neighbors in ``graph`` — trained rows, or earlier new rows when fresh
    vertices link to each other — smoothed toward the Dirichlet prior;
    a new vertex with no initialized neighbors falls back to the uniform
    prior row. New ``phi_sum`` entries get a moderate ``phi_mass`` so the
    first warm-start steps can still move them freely.
    """
    n_old = state.n_vertices
    n_new = graph.n_vertices
    if n_new < n_old:
        raise ValueError(
            f"graph has {n_new} vertices but the state covers {n_old}"
        )
    if state.n_communities != config.n_communities:
        raise ValueError("state/config community count mismatch")
    if n_new == n_old:
        return state.copy()
    k = state.n_communities
    alpha = config.effective_alpha
    pi = np.empty((n_new, k), dtype=state.pi.dtype)
    pi[:n_old] = state.pi
    phi_sum = np.empty(n_new, dtype=state.phi_sum.dtype)
    phi_sum[:n_old] = state.phi_sum
    uniform = np.full(k, 1.0 / k)
    for v in range(n_old, n_new):
        nbrs = graph.neighbors(v)
        nbrs = nbrs[nbrs < v]  # only rows that already have a value
        row = pi[nbrs].astype(np.float64).mean(axis=0) if nbrs.size else uniform
        row = row + alpha / k
        pi[v] = (row / row.sum()).astype(pi.dtype)
        phi_sum[v] = phi_mass
    new = ModelState(pi=pi, phi_sum=phi_sum, theta=state.theta.copy())
    new.validate()
    return new
