"""Informed initialization (optional extension).

The paper initializes randomly and spends the first hours of a run mixing
into the community structure. A cheap graph-aware initialization gives the
chain a head start:

1. seed each of the K communities with one high-degree vertex, chosen
   greedily with a 2-hop exclusion zone so seeds land in different parts
   of the graph;
2. run damped label-propagation rounds with the seeds clamped (the
   semi-supervised label-prop recipe), then sharpen the near-uniform tail
   by squaring and renormalizing;
3. convert to the sampler's expanded-mean parameterization with a
   moderate per-vertex phi mass, so the first SGRLD steps can still move
   the state freely.

``tests/test_init.py`` verifies the head start on planted graphs: lower
initial perplexity and the same-or-better value after a fixed budget.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import AMMSBConfig
from repro.core.state import ModelState
from repro.graph.graph import Graph


def init_state_informed(
    graph: Graph,
    config: AMMSBConfig,
    rng: Optional[np.random.Generator] = None,
    smoothing_rounds: int = 15,
    damping: float = 0.95,
    phi_mass: float = 10.0,
) -> ModelState:
    """Label-propagation-seeded initial state.

    Args:
        graph: training graph.
        config: sampler configuration (K, alpha, dtype).
        rng: random generator.
        smoothing_rounds: neighbor-averaging rounds.
        damping: per-round weight of the neighbor average (0 = ignore
            neighbors, 1 = pure propagation).
        phi_mass: total phi mass per vertex; larger values make the
            initialization "stickier" against early SGRLD noise.

    Returns:
        A valid :class:`ModelState`.
    """
    if not 0.0 <= damping <= 1.0:
        raise ValueError("damping must be in [0, 1]")
    rng = rng or np.random.default_rng(config.seed)
    n = graph.n_vertices
    k = config.n_communities
    alpha = config.effective_alpha

    # 1. Greedy far-apart seeding: take vertices in (jittered) degree
    # order, banning the 2-hop neighborhood of every chosen seed, so two
    # seeds rarely land in the same true community and fight over colors.
    degrees = graph.degrees.astype(np.float64)
    order = np.argsort(-(degrees + rng.random(n) * 1e-6))
    chosen: list[int] = []
    banned: set[int] = set()
    for v in order:
        if len(chosen) >= min(k, n):
            break
        v = int(v)
        if v in banned:
            continue
        chosen.append(v)
        banned.add(v)
        for u in graph.neighbors(v):
            banned.add(int(u))
            for w in graph.neighbors(int(u)):
                banned.add(int(w))
    # If the ban was too aggressive (small or dense graph), fill up with
    # arbitrary unchosen vertices.
    if len(chosen) < min(k, n):
        rest = [v for v in range(n) if v not in set(chosen)]
        chosen.extend(rest[: min(k, n) - len(chosen)])
    seeds = np.array(chosen, dtype=np.int64)
    n_seeds = seeds.size
    seed_label = np.arange(n_seeds) % k

    onehot = np.full((n_seeds, k), 1e-3)
    onehot[np.arange(n_seeds), seed_label] = 1.0
    onehot /= onehot.sum(axis=1, keepdims=True)

    pi = np.full((n, k), 1.0 / k)
    pi[seeds] = onehot

    # 2. Damped label propagation with clamped seeds (semi-supervised
    # label-prop style: the sources never wash out).
    for _ in range(smoothing_rounds):
        nbr_avg = np.empty_like(pi)
        for v in range(n):
            nbrs = graph.neighbors(v)
            nbr_avg[v] = pi[nbrs].mean(axis=0) if nbrs.size else pi[v]
        pi = (1.0 - damping) * pi + damping * nbr_avg
        pi[seeds] = onehot
        pi /= pi.sum(axis=1, keepdims=True)

    # 3a. Sharpen: the propagation output is close to uniform far from the
    # seeds; squaring (then renormalizing) amplifies the winning color
    # while keeping the full support the Dirichlet prior expects.
    pi = pi**2 + alpha / k
    pi /= pi.sum(axis=1, keepdims=True)

    # 3. Expanded-mean parameterization with moderate mass.
    dtype = np.dtype(config.dtype)
    phi_sum = np.full(n, phi_mass)
    theta = rng.gamma(100.0, 0.01, size=(k, 2)) + 1e-9
    state = ModelState(
        pi=pi.astype(dtype), phi_sum=phi_sum.astype(dtype), theta=theta
    )
    state.validate()
    return state
