"""Held-out perplexity (paper Eqn 7).

``perp = exp( - mean_{(a,b) in E_h} log( (1/T) sum_t p(y_ab | beta_t, pi_t) ) )``

where the link probability marginalizes the pairwise community draws:

``p(y=1 | pi_a, pi_b, beta) = sum_k pi_ak pi_bk beta_k
+ (1 - sum_k pi_ak pi_bk) delta``.

:class:`PerplexityEstimator` keeps the running average of per-pair
probabilities over recorded posterior samples, so it implements the
*averaged* perplexity (T grows as sampling proceeds) without retaining the
samples themselves — the same trick the paper's implementation uses to
avoid storing pi snapshots.
"""

from __future__ import annotations

import numpy as np

_PROB_FLOOR = 1e-12


def link_probability(
    pi_a: np.ndarray, pi_b: np.ndarray, beta: np.ndarray, delta: float
) -> np.ndarray:
    """``p(y=1)`` for batched pairs; pi_a/pi_b are (H, K), result (H,)."""
    same = (pi_a * pi_b * beta).sum(axis=1)
    overlap = (pi_a * pi_b).sum(axis=1)
    p = same + (1.0 - overlap) * delta
    return np.clip(p, _PROB_FLOOR, 1.0 - _PROB_FLOOR)


def pair_probabilities(
    pi: np.ndarray,
    beta: np.ndarray,
    pairs: np.ndarray,
    labels: np.ndarray,
    delta: float,
) -> np.ndarray:
    """``p(y_ab)`` under one posterior sample for every held-out pair."""
    pairs = np.asarray(pairs, dtype=np.int64)
    p1 = link_probability(pi[pairs[:, 0]], pi[pairs[:, 1]], beta, delta)
    return np.where(labels, p1, 1.0 - p1)


def perplexity(avg_probs: np.ndarray) -> float:
    """Eqn 7 given the per-pair sample-averaged probabilities."""
    if avg_probs.size == 0:
        raise ValueError("empty held-out set")
    return float(np.exp(-np.mean(np.log(np.maximum(avg_probs, _PROB_FLOOR)))))


def link_prediction_auc(
    pi: np.ndarray,
    beta: np.ndarray,
    pairs: np.ndarray,
    labels: np.ndarray,
    delta: float,
) -> float:
    """AUC of held-out link prediction under one (pi, beta) sample.

    The probability that a uniformly chosen held-out link outranks a
    uniformly chosen held-out non-link by predicted p(y=1). Ties count
    half. 0.5 = chance; the Gopalan-Blei line of work reports this metric
    alongside perplexity.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    labels = np.asarray(labels, dtype=bool)
    if not labels.any() or labels.all():
        raise ValueError("AUC needs both links and non-links")
    scores = link_probability(pi[pairs[:, 0]], pi[pairs[:, 1]], beta, delta)
    # Rank-sum (Mann-Whitney) formulation, ties averaged: each tie group
    # [start, end) of the sorted order gets rank 0.5*(start + end - 1) + 1.
    order = np.argsort(scores, kind="mergesort")
    sorted_scores = scores[order]
    _, inverse, counts = np.unique(
        sorted_scores, return_inverse=True, return_counts=True
    )
    ends = np.cumsum(counts)
    starts = ends - counts
    ranks = np.empty(len(scores))
    ranks[order] = (0.5 * (starts + ends - 1) + 1.0)[inverse]
    n_pos = int(labels.sum())
    n_neg = len(labels) - n_pos
    rank_sum = float(ranks[labels].sum())
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


class PerplexityEstimator:
    """Running sample-averaged perplexity over a fixed held-out set.

    Args:
        pairs: (H, 2) held-out pairs.
        labels: (H,) bool link indicators.
        delta: model delta.
        burn_in: samples recorded before this iteration count are ignored
            (SGRLD needs a few hundred iterations before samples are
            meaningful; matching the paper, perplexity is evaluated at
            regular intervals, not every iteration).
    """

    def __init__(
        self,
        pairs: np.ndarray,
        labels: np.ndarray,
        delta: float,
        burn_in: int = 0,
    ) -> None:
        self.pairs = np.asarray(pairs, dtype=np.int64)
        self.labels = np.asarray(labels, dtype=bool)
        if self.pairs.shape[0] != self.labels.shape[0]:
            raise ValueError("pairs and labels must align")
        self.delta = float(delta)
        self.burn_in = int(burn_in)
        self._prob_sum = np.zeros(self.pairs.shape[0])
        self._count = 0

    @property
    def n_samples(self) -> int:
        return self._count

    def record(self, pi: np.ndarray, beta: np.ndarray, iteration: int | None = None) -> None:
        """Add one posterior sample's probabilities to the running average."""
        if iteration is not None and iteration < self.burn_in:
            return
        self._prob_sum += pair_probabilities(pi, beta, self.pairs, self.labels, self.delta)
        self._count += 1

    def value(self) -> float:
        """Current averaged perplexity; inf before any sample is recorded."""
        if self._count == 0:
            return float("inf")
        return perplexity(self._prob_sum / self._count)

    def single_sample_value(self, pi: np.ndarray, beta: np.ndarray) -> float:
        """Perplexity of one state alone (no averaging); for diagnostics."""
        return perplexity(pair_probabilities(pi, beta, self.pairs, self.labels, self.delta))

    def reset(self) -> None:
        self._prob_sum[:] = 0.0
        self._count = 0
