"""Full-batch Langevin Monte Carlo (LMC) baseline.

Section II-B motivates SGLD against classic LMC: LMC computes the exact
gradient from *all* data every iteration (O(N^2 K) here) and applies a
Metropolis-Hastings accept/reject test. This module implements that
baseline for small graphs, both to demonstrate the O(N) -> O(n) win of the
stochastic algorithm and as a numerically exact reference for the kernels
(the full-batch gradient is the expectation the mini-batch estimators are
tested against).

It reuses the exact same kernels from :mod:`repro.core.gradients`: the
"neighbor set" is all other vertices and the "mini-batch" is every pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import AMMSBConfig
from repro.core import gradients
from repro.core.perplexity import PerplexityEstimator
from repro.core.state import ModelState, init_state
from repro.graph.graph import Graph, edge_keys
from repro.graph.split import HeldoutSplit

#: Hard cap — LMC materializes (N, N, K) intermediates.
MAX_VERTICES = 2048


def full_log_likelihood(state: ModelState, graph: Graph, config: AMMSBConfig,
                        exclude_keys: Optional[np.ndarray] = None) -> float:
    """Exact log likelihood sum over all pairs of log p(y_ab | pi, beta)."""
    n = graph.n_vertices
    if n > MAX_VERTICES:
        raise ValueError(f"full-batch likelihood limited to N <= {MAX_VERTICES}")
    pi, beta = state.pi, state.beta
    delta = config.delta

    pairs = np.column_stack(np.triu_indices(n, k=1))
    if exclude_keys is not None and exclude_keys.size:
        keys = edge_keys(pairs, n)
        idx = np.minimum(np.searchsorted(exclude_keys, keys), exclude_keys.size - 1)
        pairs = pairs[exclude_keys[idx] != keys]
    y = graph.has_edges(pairs)
    overlap = (pi[pairs[:, 0]] * pi[pairs[:, 1]]).sum(axis=1)
    same = (pi[pairs[:, 0]] * pi[pairs[:, 1]] * beta).sum(axis=1)
    p1 = np.clip(same + (1 - overlap) * delta, 1e-12, 1 - 1e-12)
    return float(np.where(y, np.log(p1), np.log1p(-p1)).sum())


def full_log_posterior(state: ModelState, graph: Graph, config: AMMSBConfig,
                       exclude_keys: Optional[np.ndarray] = None) -> float:
    """Exact log posterior log p(phi, theta | Y) up to a constant.

    Likelihood from :func:`full_log_likelihood`; priors: expanded-mean
    Gamma(alpha, 1) on phi entries and Gamma(eta_i, 1) on theta entries.
    """
    loglik = full_log_likelihood(state, graph, config, exclude_keys)
    alpha = config.effective_alpha
    phi = state.pi * state.phi_sum[:, None]
    log_prior_phi = float(((alpha - 1) * np.log(np.maximum(phi, 1e-300)) - phi).sum())
    eta = np.array(config.eta)[None, :]
    log_prior_theta = float(((eta - 1) * np.log(state.theta) - state.theta).sum())
    return loglik + log_prior_phi + log_prior_theta


@dataclass
class LMCStats:
    iteration: int
    log_posterior: float
    accepted: Optional[bool] = None


class BatchLangevinAMMSB:
    """Full-batch (Riemannian) Langevin sampler with optional MH test.

    Args:
        graph: training graph (N <= 2048).
        config: shared configuration.
        heldout: optional split for perplexity tracking.
        mh_test: apply the Metropolis-Hastings accept/reject correction
            (doubles the cost; exact but slow, as the paper argues).
    """

    def __init__(
        self,
        graph: Graph,
        config: AMMSBConfig,
        heldout: Optional[HeldoutSplit] = None,
        mh_test: bool = False,
    ) -> None:
        if graph.n_vertices > MAX_VERTICES:
            raise ValueError(f"LMC baseline limited to N <= {MAX_VERTICES}")
        self.graph = graph
        self.config = config
        self.mh_test = mh_test
        self.rng = np.random.default_rng(config.seed)
        self.state = init_state(graph.n_vertices, config, self.rng)
        self.iteration = 0
        self.history: list[LMCStats] = []

        n = graph.n_vertices
        self._heldout_keys = (
            np.sort(edge_keys(heldout.heldout_pairs, n)) if heldout is not None else None
        )
        self.perplexity_estimator = (
            PerplexityEstimator(heldout.heldout_pairs, heldout.heldout_labels, config.delta)
            if heldout is not None
            else None
        )
        # Precompute the dense neighbor structure once.
        self._all_b = np.tile(np.arange(n), (n, 1))
        mask = self._all_b != np.arange(n)[:, None]
        flat = np.column_stack([np.repeat(np.arange(n), n), self._all_b.reshape(-1)])
        if self._heldout_keys is not None and self._heldout_keys.size:
            keys = edge_keys(flat, n)
            idx = np.minimum(np.searchsorted(self._heldout_keys, keys), self._heldout_keys.size - 1)
            mask &= ~(self._heldout_keys[idx] == keys).reshape(n, n)
        self._mask = mask
        self._labels = graph.has_edges(flat).reshape(n, n) & mask

        pairs = np.column_stack(np.triu_indices(n, k=1))
        if self._heldout_keys is not None and self._heldout_keys.size:
            keys = edge_keys(pairs, n)
            idx = np.minimum(np.searchsorted(self._heldout_keys, keys), self._heldout_keys.size - 1)
            pairs = pairs[self._heldout_keys[idx] != keys]
        self._pairs = pairs
        self._pair_labels = graph.has_edges(pairs)

    def _propose(self) -> ModelState:
        cfg = self.config
        st = self.state
        n = self.graph.n_vertices
        eps_phi = cfg.step_phi.at(self.iteration)
        eps_theta = cfg.step_theta.at(self.iteration)

        pi_b = st.pi[self._all_b]
        grad = gradients.phi_gradient_sum(
            st.pi, st.phi_sum, pi_b, self._labels, st.beta, cfg.delta, mask=self._mask
        )
        counts = np.maximum(self._mask.sum(axis=1, keepdims=True), 1)
        phi = st.pi * st.phi_sum[:, None]
        new_phi = gradients.update_phi(
            phi,
            grad,
            eps_phi,
            cfg.effective_alpha,
            scale=n / counts,  # full batch: n/counts ~= 1, exact correction
            noise=self.rng.standard_normal(phi.shape),
            phi_floor=cfg.phi_floor,
            phi_clip=cfg.phi_clip,
        )
        proposal = st.copy()
        proposal.set_phi_rows(np.arange(n), new_phi)

        gt = gradients.theta_gradient_sum(
            proposal.pi[self._pairs[:, 0]],
            proposal.pi[self._pairs[:, 1]],
            self._pair_labels.astype(np.int64),
            proposal.theta,
            cfg.delta,
        )
        proposal.theta = gradients.update_theta(
            proposal.theta,
            gt,
            eps_theta,
            cfg.eta,
            scale=1.0,
            noise=self.rng.standard_normal(proposal.theta.shape),
        )
        return proposal

    def _propose_mh(self, sigma: float) -> tuple[ModelState, float]:
        """Multiplicative log-normal random-walk proposal.

        Returns the proposal and the log proposal-density correction
        ``log q(old|new) - log q(new|old)``, which for a log-normal walk is
        the Jacobian term ``sum(log new - log old)`` over all coordinates —
        making the MH test exact (unlike Langevin proposals, whose
        correction involves the drift and is intractable with the
        reflection |.|).
        """
        st = self.state
        phi = st.pi * st.phi_sum[:, None]
        new_phi = phi * np.exp(sigma * self.rng.standard_normal(phi.shape))
        new_theta = st.theta * np.exp(sigma * self.rng.standard_normal(st.theta.shape))
        proposal = st.copy()
        proposal.set_phi_rows(np.arange(self.graph.n_vertices), new_phi)
        proposal.theta = new_theta
        log_jacobian = float(np.log(new_phi / np.maximum(phi, 1e-300)).sum()) + float(
            np.log(new_theta / st.theta).sum()
        )
        return proposal, log_jacobian

    def step(self, mh_sigma: float = 0.005) -> LMCStats:
        """One iteration: Langevin drift, or exact random-walk MH.

        With ``mh_test=True`` the chain is an exact (but slow-mixing)
        Metropolis-Hastings sampler — the classic alternative the paper's
        Section II-B argues against; otherwise it is unadjusted full-batch
        Langevin (the eps->0 limit SGLD inherits its correctness from).
        """
        accepted: Optional[bool] = None
        if self.mh_test:
            proposal, log_jacobian = self._propose_mh(mh_sigma)
            lp_old = full_log_posterior(self.state, self.graph, self.config, self._heldout_keys)
            lp_new = full_log_posterior(proposal, self.graph, self.config, self._heldout_keys)
            accepted = bool(np.log(self.rng.random()) < lp_new - lp_old + log_jacobian)
            if accepted:
                self.state = proposal
            lp = lp_new if accepted else lp_old
        else:
            self.state = self._propose()
            lp = float("nan")
        stats = LMCStats(iteration=self.iteration, log_posterior=lp, accepted=accepted)
        self.iteration += 1
        self.history.append(stats)
        return stats

    def run(self, n_iterations: int, perplexity_every: int = 0) -> list[LMCStats]:
        out = []
        for _ in range(n_iterations):
            out.append(self.step())
            if (
                perplexity_every
                and self.perplexity_estimator is not None
                and self.iteration % perplexity_every == 0
            ):
                self.perplexity_estimator.record(self.state.pi, self.state.beta)
        return out
