"""Core a-MMSB SG-MCMC algorithm (the paper's Section II).

Layout:

- :mod:`repro.core.state` — model state (theta/beta, pi/phi_sum);
- :mod:`repro.core.gradients` — pure vectorized kernels shared by every
  engine (sequential, threaded, distributed);
- :mod:`repro.core.kernels` — pluggable kernel backends (``reference``,
  ``fused``) with reusable workspaces; every engine resolves its backend
  here;
- :mod:`repro.core.schedule` — SGRLD step-size schedules;
- :mod:`repro.core.minibatch` — mini-batch strategies and their
  unbiasedness scale factors h(E_n);
- :mod:`repro.core.sampler` — the sequential reference sampler
  (Algorithm 1);
- :mod:`repro.core.perplexity` — held-out perplexity (Eqn 7);
- :mod:`repro.core.svi` — stochastic variational inference baseline;
- :mod:`repro.core.mcmc_batch` — full-batch Langevin baseline.
"""

from repro.core.state import ModelState, init_state
from repro.core.kernels import (
    KernelBackend,
    KernelWorkspace,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.core.init import init_state_informed
from repro.core.minibatch import Minibatch, MinibatchSampler, Stratum
from repro.core.sampler import AMMSBSampler, IterationStats
from repro.core.perplexity import (
    PerplexityEstimator,
    link_prediction_auc,
    link_probability,
    perplexity,
)
from repro.core.estimation import PosteriorMean, align_communities, extract_communities
from repro.core.diagnostics import ConvergenceMonitor
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.general import GeneralMMSBSampler

__all__ = [
    "ModelState",
    "init_state",
    "KernelBackend",
    "KernelWorkspace",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "init_state_informed",
    "Minibatch",
    "MinibatchSampler",
    "Stratum",
    "AMMSBSampler",
    "IterationStats",
    "PerplexityEstimator",
    "link_prediction_auc",
    "link_probability",
    "perplexity",
    "PosteriorMean",
    "align_communities",
    "extract_communities",
    "ConvergenceMonitor",
    "load_checkpoint",
    "save_checkpoint",
    "GeneralMMSBSampler",
]
