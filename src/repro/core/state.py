"""Model state for a-MMSB SG-MCMC.

Following the paper's memory trade-off (Section III-A), the state stores
``pi`` (N x K, normalized memberships) and ``phi_sum`` (N,) instead of the
raw ``phi`` matrix; ``phi = pi * phi_sum[:, None]`` is recomputed on demand.
In the distributed engine the concatenation ``[pi_row, phi_sum]`` —
``K + 1`` floats — is exactly the value stored per key in the DKV store.

Globals ``theta`` (K x 2) and the derived ``beta`` are tiny and replicated
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import AMMSBConfig


@dataclass
class ModelState:
    """Mutable sampler state.

    Attributes:
        pi: (N, K) membership probabilities; rows sum to 1.
        phi_sum: (N,) row sums of the unnormalized phi.
        theta: (K, 2) global reparameterization; ``beta = theta[:, 1] /
            theta.sum(axis=1)``.
    """

    pi: np.ndarray
    phi_sum: np.ndarray
    theta: np.ndarray

    @property
    def n_vertices(self) -> int:
        return int(self.pi.shape[0])

    @property
    def n_communities(self) -> int:
        return int(self.pi.shape[1])

    @property
    def beta(self) -> np.ndarray:
        """Community strengths derived from theta, shape (K,)."""
        return self.theta[:, 1] / self.theta.sum(axis=1)

    def phi_rows(self, vertices: np.ndarray) -> np.ndarray:
        """Reconstruct phi rows for the given vertices, shape (m, K)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        return self.pi[vertices] * self.phi_sum[vertices, None]

    def set_phi_rows(self, vertices: np.ndarray, phi: np.ndarray) -> None:
        """Store new phi rows (renormalizing into pi / phi_sum).

        Values are cast to the state's storage dtype (float32 in the
        paper's configuration); kernels may compute at higher precision.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        sums = phi.sum(axis=1)
        if np.any(sums <= 0):
            raise ValueError("phi rows must have positive sums")
        self.phi_sum[vertices] = sums
        self.pi[vertices] = (phi / sums[:, None]).astype(self.pi.dtype, copy=False)

    def kv_values(self, vertices: np.ndarray) -> np.ndarray:
        """DKV value layout: (m, K+1) = [pi_row | phi_sum]."""
        vertices = np.asarray(vertices, dtype=np.int64)
        return np.concatenate([self.pi[vertices], self.phi_sum[vertices, None]], axis=1)

    def set_kv_values(self, vertices: np.ndarray, values: np.ndarray) -> None:
        """Inverse of :meth:`kv_values`."""
        vertices = np.asarray(vertices, dtype=np.int64)
        self.pi[vertices] = values[:, :-1]
        self.phi_sum[vertices] = values[:, -1]

    def copy(self) -> "ModelState":
        return ModelState(pi=self.pi.copy(), phi_sum=self.phi_sum.copy(), theta=self.theta.copy())

    def validate(self, atol: float | None = None) -> None:
        """Raise if simplex/positivity invariants are violated.

        The tolerance adapts to the storage precision (float32 rows
        normalize to 1 only within ~K * eps_f32).
        """
        if atol is None:
            atol = 1e-8 if self.pi.dtype == np.float64 else 1e-4
        if np.any(self.pi < 0):
            raise ValueError("pi has negative entries")
        if not np.allclose(self.pi.sum(axis=1), 1.0, atol=atol):
            raise ValueError("pi rows do not sum to 1")
        if np.any(self.phi_sum <= 0):
            raise ValueError("phi_sum must be positive")
        if np.any(self.theta <= 0):
            raise ValueError("theta must be positive")


def init_state(
    n_vertices: int,
    config: AMMSBConfig,
    rng: np.random.Generator | None = None,
    provider=None,
    chunk_rows: int = 65536,
) -> ModelState:
    """Random initialization following [Li, Ahn, Welling 2015].

    ``phi_ak ~ Gamma(alpha, 1)`` (expanded-mean parameterization of
    Dirichlet(alpha)) and ``theta_ki ~ Gamma(eta_i, 1)``; a small floor
    keeps every entry strictly positive.

    Args:
        provider: an array-provider name/instance from
            :mod:`repro.store` routing the big ``pi``/``phi_sum``
            allocations (e.g. ``"mmap"`` puts the N x K state in
            swappable file-backed scratch so million-node state never
            has to fit in RAM). ``None`` (default) keeps the legacy
            heap path, whose single full-size gamma draw is
            bit-identical to previous releases. Any explicit provider —
            including ``"resident"`` — instead fills the state
            ``chunk_rows`` rows at a time, so the float64 draw
            temporary stays bounded; the chunked draws consume the RNG
            stream in a different order, so the initialization is a
            different (equally valid) sample for the same seed.
    """
    rng = rng or np.random.default_rng(config.seed)
    k = config.n_communities
    alpha = config.effective_alpha
    dtype = np.dtype(config.dtype)
    if provider is None:
        phi = rng.gamma(alpha, 1.0, size=(n_vertices, k)) + 1e-9
        phi_sum = phi.sum(axis=1)
        pi = (phi / phi_sum[:, None]).astype(dtype)
        phi_sum = phi_sum.astype(dtype)
    else:
        from repro.store import get_provider

        prov = get_provider(provider)
        pi = prov.allocate((n_vertices, k), dtype)
        phi_sum = prov.allocate((n_vertices,), dtype)
        for start in range(0, n_vertices, max(1, chunk_rows)):
            stop = min(n_vertices, start + max(1, chunk_rows))
            phi = rng.gamma(alpha, 1.0, size=(stop - start, k)) + 1e-9
            sums = phi.sum(axis=1)
            pi[start:stop] = (phi / sums[:, None]).astype(dtype, copy=False)
            phi_sum[start:stop] = sums.astype(dtype, copy=False)
    # theta is tiny (K x 2) and replicated; keep it at full precision.
    theta = rng.gamma(100.0, 0.01, size=(k, 2)) + 1e-9
    return ModelState(pi=pi, phi_sum=phi_sum, theta=theta)
