"""Posterior summarization: running means and community extraction.

SG-MCMC produces a *stream* of posterior samples; point estimates come
from averaging. :class:`PosteriorMean` keeps running means of pi and beta
without storing samples (same online trick as the perplexity estimator),
and :func:`extract_communities` turns the averaged pi into discrete covers
for reporting/metrics.
"""

from __future__ import annotations

import numpy as np

from repro.graph.metrics import Cover, covers_from_pi


def align_communities(
    pi: np.ndarray, reference: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Permute ``pi``'s columns to best match ``reference``.

    MMSB posteriors are identifiable only up to a relabeling of the K
    communities; within one MCMC chain, label switching makes naive
    averaging of pi samples smear communities together. This resolves it
    with the Hungarian algorithm on column correlations.

    Ties (e.g. duplicated or empty columns) are broken deterministically:
    a tiny lexicographic penalty makes the optimum unique, preferring the
    lowest pi column index for the lowest reference index, so repeated
    runs — and different scipy versions — always return the same
    permutation. Exactly identical columns therefore map in stable
    community-index order (identity when ``pi is reference``-shaped
    copies), which generation-to-generation stream tracking relies on.

    Returns:
        ``(aligned_pi, permutation)`` where ``aligned_pi[:, j] =
        pi[:, permutation[j]]``.
    """
    from scipy.optimize import linear_sum_assignment

    if pi.shape != reference.shape:
        raise ValueError(f"shape mismatch: {pi.shape} vs {reference.shape}")
    # Cost = negative overlap between columns.
    cost = -(np.asarray(reference, dtype=np.float64).T @ pi)  # (K, K)
    k = cost.shape[0]
    # Deterministic tie-break: subtract a tiny multiple of i*j (reference
    # index times pi index). Among equal-cost assignments this rewards
    # pairing low indices with low indices — by the rearrangement
    # inequality the in-order pairing is the strict, unique optimum of
    # the secondary objective (a linear term like i*k + j would sum to
    # the same total under every permutation and break nothing).
    scale = max(1.0, float(np.abs(cost).max()))
    tie = np.arange(k, dtype=np.float64)
    cost = cost - (scale * 1e-9 / (k * k + 1.0)) * (tie[:, None] * tie[None, :])
    _, cols = linear_sum_assignment(cost)
    return pi[:, cols], cols


class PosteriorMean:
    """Running average of (pi, beta) posterior samples.

    With ``align=True`` (default) each sample's community labels are
    matched to the first recorded sample before averaging, protecting the
    point estimate from within-chain label switching.
    """

    def __init__(self, n_vertices: int, n_communities: int, align: bool = True) -> None:
        self._pi_sum = np.zeros((n_vertices, n_communities))
        self._beta_sum = np.zeros(n_communities)
        self._count = 0
        self._align = align
        self._reference: np.ndarray | None = None

    @property
    def n_samples(self) -> int:
        return self._count

    def record(self, pi: np.ndarray, beta: np.ndarray) -> None:
        if pi.shape != self._pi_sum.shape:
            raise ValueError(f"pi shape {pi.shape} != {self._pi_sum.shape}")
        beta = np.asarray(beta)
        if self._align:
            if self._reference is None:
                self._reference = pi.copy()
            else:
                pi, perm = align_communities(pi, self._reference)
                beta = beta[perm]
        self._pi_sum += pi
        self._beta_sum += beta
        self._count += 1

    @property
    def pi(self) -> np.ndarray:
        if self._count == 0:
            raise ValueError("no samples recorded")
        return self._pi_sum / self._count

    @property
    def beta(self) -> np.ndarray:
        if self._count == 0:
            raise ValueError("no samples recorded")
        return self._beta_sum / self._count


def extract_communities(
    pi: np.ndarray,
    threshold: float = 0.2,
    min_size: int = 2,
    max_communities: int | None = None,
) -> Cover:
    """Discrete overlapping covers from a (posterior-mean) pi matrix.

    Communities are ordered by size (descending); ``max_communities``
    truncates the list for reporting.
    """
    covers = covers_from_pi(pi, threshold=threshold, min_size=min_size)
    covers.sort(key=lambda c: -c.size)
    if max_communities is not None:
        covers = covers[:max_communities]
    return covers


def membership_entropy(pi: np.ndarray) -> np.ndarray:
    """Per-vertex entropy of the membership distribution (overlap measure).

    Vertices deep inside one community have entropy near 0; bridge vertices
    that genuinely overlap several communities score high.
    """
    p = np.clip(pi, 1e-12, 1.0)
    return -(p * np.log(p)).sum(axis=1)
