"""Mini-batch strategies and their unbiasedness scale factors h(E_n).

Two strategies from [Li, Ahn, Welling 2015] (the algorithm the paper
distributes):

- **random-pair** — sample pairs uniformly from V x V; the scale factor is
  ``total_pairs / |E_n|``. Simple but high-variance because links are rare.
- **stratified-random-node** (default) — repeatedly pick a random vertex
  ``a``; with probability 1/2 take *all* of a's training links as the
  stratum (scale ``N/2``), otherwise take one random partition (of ``m``)
  of a's non-links (scale ``N * m / 2``). The minus-variance workhorse;
  one draw touches ~degree(a) vertices, so several draws are batched until
  the configured mini-batch vertex budget M is reached — this is exactly
  what gives the paper its ``M = 16384`` mini-batches.

A :class:`Minibatch` is a list of :class:`Stratum` (each with its own
scale factor, so the theta gradient stays unbiased when strata are mixed)
plus the deduplicated vertex set that update_phi will treat.

Neighbor sets V_n for update_phi are sampled here too
(:meth:`MinibatchSampler.sample_neighbors`): n uniform vertices per
mini-batch vertex, with held-out pairs masked out so test data never
leaks into training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.config import AMMSBConfig
from repro.graph.graph import Graph


@dataclass(frozen=True)
class Stratum:
    """A set of same-kind pairs sharing one scale factor.

    Attributes:
        pairs: (E, 2) vertex pairs.
        labels: (E,) bool link indicators.
        scale: h contribution — multiply this stratum's summed gradient by
            it to get an unbiased full-graph estimate.
    """

    pairs: np.ndarray
    labels: np.ndarray
    scale: float

    def __post_init__(self) -> None:
        if self.pairs.ndim != 2 or self.pairs.shape[1] != 2:
            raise ValueError("pairs must be (E, 2)")
        if self.labels.shape != (self.pairs.shape[0],):
            raise ValueError("labels must match pairs")
        if self.scale <= 0:
            raise ValueError("scale must be positive")


def concat_strata(
    strata: list["Stratum"],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenated (pairs, labels, per-pair scales) over a stratum list.

    The per-pair scale array carries each stratum's h-factor per edge, so
    one weighted theta-gradient call over the concatenation equals the
    per-stratum ``sum_s scale_s * grad_s`` loop — every engine batches its
    strata through this helper in the same order, keeping the engines'
    float-summation orders aligned.
    """
    if not strata:
        z = np.zeros(0, dtype=np.int64)
        return z.reshape(0, 2), z.astype(bool), z.astype(np.float64)
    pairs = np.vstack([s.pairs for s in strata])
    labels = np.concatenate([s.labels for s in strata])
    scales = np.concatenate([
        np.full(s.pairs.shape[0], s.scale) for s in strata
    ])
    return pairs, labels, scales


@dataclass(frozen=True)
class Minibatch:
    """One iteration's worth of sampled data."""

    strata: list[Stratum]
    vertices: np.ndarray  # unique mini-batch vertices, sorted

    @property
    def n_vertices(self) -> int:
        return int(self.vertices.size)

    @property
    def n_edges(self) -> int:
        return int(sum(s.pairs.shape[0] for s in self.strata))

    def all_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated (pairs, labels, per-pair scales)."""
        return concat_strata(self.strata)


@dataclass(frozen=True)
class NeighborSample:
    """Sampled neighbor sets for the phi update.

    Attributes:
        neighbors: (m, n) vertex ids.
        labels: (m, n) bool link indicators against the *training* graph.
        mask: (m, n) bool; False entries (held-out collisions, self pairs)
            are excluded from the gradient sum and the per-row count.
    """

    neighbors: np.ndarray
    labels: np.ndarray
    mask: np.ndarray

    @property
    def counts(self) -> np.ndarray:
        """Effective |V_n| per row, shape (m, 1)."""
        return self.mask.sum(axis=1, keepdims=True)


class MinibatchSampler:
    """Draws mini-batches and neighbor sets from a training graph.

    Args:
        graph: training graph (held-out links already removed).
        config: sampler configuration.
        heldout_keys: sorted canonical keys of held-out pairs, excluded
            from non-link sampling and neighbor sets.
        nonlink_stratum_size: size of a sampled non-link stratum for the
            stratified strategy; defaults to ``max(64, avg_degree)``.
    """

    def __init__(
        self,
        graph: Graph,
        config: AMMSBConfig,
        heldout_keys: Optional[np.ndarray] = None,
        nonlink_stratum_size: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.config = config
        self.heldout_keys = (
            np.sort(np.asarray(heldout_keys, dtype=np.int64))
            if heldout_keys is not None and len(heldout_keys)
            else np.zeros(0, dtype=np.int64)
        )
        n = graph.n_vertices
        avg_degree = 2.0 * graph.n_edges / n if n else 0.0
        self.nonlink_stratum_size = int(
            nonlink_stratum_size
            if nonlink_stratum_size is not None
            else max(64, int(round(avg_degree)))
        )
        self.nonlink_stratum_size = min(self.nonlink_stratum_size, max(1, n - 1))
        # m partitions of each vertex's ~N non-links.
        self.n_partitions = max(1, int(np.ceil((n - 1) / self.nonlink_stratum_size)))

    # -- strata ------------------------------------------------------------

    def _in_heldout(self, keys: np.ndarray) -> np.ndarray:
        if not self.heldout_keys.size or not keys.size:
            return np.zeros(keys.shape, dtype=bool)
        idx = np.minimum(
            np.searchsorted(self.heldout_keys, keys), self.heldout_keys.size - 1
        )
        return self.heldout_keys[idx] == keys

    def _link_stratum(self, a: int) -> Optional[Stratum]:
        nbrs = self.graph.neighbors(a)
        if nbrs.size == 0:
            return None
        pairs = np.column_stack([np.full(nbrs.size, a, dtype=np.int64), nbrs])
        # Unbiasedness (one draw): E_a[(1/2) * h * sum_{b in nbr(a)} g_ab]
        # = (h / 2N) * 2 * sum_{links} g, so h = N recovers sum over links.
        return Stratum(
            pairs=pairs,
            labels=np.ones(nbrs.size, dtype=bool),
            scale=float(self.graph.n_vertices),
        )

    def _nonlink_stratum(self, a: int, rng: np.random.Generator) -> Optional[Stratum]:
        n = self.graph.n_vertices
        size = self.nonlink_stratum_size
        # Rejection-sample `size` non-neighbors of a, avoiding held-out pairs.
        picked = np.zeros(0, dtype=np.int64)
        for _ in range(8):
            if picked.size >= size:
                break
            cand = rng.integers(0, n, size=2 * (size - picked.size) + 8)
            cand = cand[cand != a]
            pairs = np.column_stack([np.full(cand.size, a, dtype=np.int64), cand])
            linked = self.graph.has_edges(pairs)
            lo = np.minimum(pairs[:, 0], pairs[:, 1])
            hi = np.maximum(pairs[:, 0], pairs[:, 1])
            keys = lo * np.int64(n) + hi
            held = self._in_heldout(keys)
            # Keep the first occurrence of each fresh vertex in candidate
            # order — identical picks (and RNG stream) to a scalar loop.
            valid = cand[~linked & ~held]
            _, first = np.unique(valid, return_index=True)
            fresh = valid[np.sort(first)]
            if picked.size:
                fresh = fresh[~np.isin(fresh, picked)]
            picked = np.concatenate([picked, fresh[: size - picked.size]])
        if not picked.size:
            return None
        bs = picked
        pairs = np.column_stack([np.full(bs.size, a, dtype=np.int64), bs])
        # One of m partitions of a's non-links, coin probability 1/2:
        # h = N * m recovers the sum over all non-link pairs (see link
        # stratum comment; the derivation is in tests/test_minibatch.py).
        return Stratum(
            pairs=pairs,
            labels=np.zeros(bs.size, dtype=bool),
            scale=float(self.graph.n_vertices * self.n_partitions),
        )

    # -- public API ----------------------------------------------------------

    #: full-batch strategy materializes all N^2/2 pairs; keep it honest.
    FULL_BATCH_MAX_VERTICES = 3000

    def sample(self, rng: np.random.Generator) -> Minibatch:
        """Draw one mini-batch according to the configured strategy."""
        if self.config.strategy == "random-pair":
            return self._sample_random_pair(rng)
        if self.config.strategy == "full-batch":
            return self._sample_full_batch()
        return self._sample_stratified(rng)

    def _sample_full_batch(self) -> Minibatch:
        n = self.graph.n_vertices
        if n > self.FULL_BATCH_MAX_VERTICES:
            raise ValueError(
                f"full-batch strategy limited to N <= {self.FULL_BATCH_MAX_VERTICES}"
            )
        pairs = np.column_stack(np.triu_indices(n, k=1)).astype(np.int64)
        if self.heldout_keys.size:
            lo = pairs[:, 0] * np.int64(n) + pairs[:, 1]
            idx = np.minimum(
                np.searchsorted(self.heldout_keys, lo), self.heldout_keys.size - 1
            )
            pairs = pairs[self.heldout_keys[idx] != lo]
        labels = self.graph.has_edges(pairs)
        stratum = Stratum(pairs=pairs, labels=labels, scale=1.0)
        return Minibatch(strata=[stratum], vertices=np.arange(n, dtype=np.int64))

    def _sample_random_pair(self, rng: np.random.Generator) -> Minibatch:
        n = self.graph.n_vertices
        n_pairs = max(1, self.config.mini_batch_vertices // 2)
        a = rng.integers(0, n, size=2 * n_pairs + 8)
        b = rng.integers(0, n, size=2 * n_pairs + 8)
        ok = a != b
        pairs = np.column_stack([a, b])[ok]
        lo = np.minimum(pairs[:, 0], pairs[:, 1])
        hi = np.maximum(pairs[:, 0], pairs[:, 1])
        keys = lo * np.int64(n) + hi
        pairs = pairs[~self._in_heldout(keys)][:n_pairs]
        if pairs.shape[0] == 0:
            raise RuntimeError("failed to sample any valid pair")
        labels = self.graph.has_edges(pairs)
        total_pairs = n * (n - 1) / 2.0
        stratum = Stratum(pairs=pairs, labels=labels, scale=total_pairs / pairs.shape[0])
        vertices = np.unique(pairs)
        return Minibatch(strata=[stratum], vertices=vertices)

    def _sample_stratified(self, rng: np.random.Generator) -> Minibatch:
        n = self.graph.n_vertices
        budget = self.config.mini_batch_vertices
        # The number of draws must be fixed *before* sampling: stopping when
        # the vertex budget fills would correlate the draw count with the
        # stratum contents (high-degree link strata fill the budget faster)
        # and bias the averaged estimator — a classic stopping-time bias we
        # caught with the unbiasedness test in tests/test_minibatch.py.
        avg_degree = 2.0 * self.graph.n_edges / n if n else 1.0
        expected_per_draw = 0.5 * (avg_degree + self.nonlink_stratum_size) + 1.0
        n_draws = max(1, int(round(budget / expected_per_draw)))
        strata: list[Stratum] = []
        vertex_set: list[np.ndarray] = []
        for _ in range(n_draws):
            a = int(rng.integers(0, n))
            if rng.random() < 0.5:
                s = self._link_stratum(a)
            else:
                s = self._nonlink_stratum(a, rng)
            if s is None:
                # A failed draw (isolated vertex / dense row) still counts:
                # an unbiased zero-contribution estimate.
                continue
            strata.append(s)
            vertex_set.append(np.unique(s.pairs))
        if not strata:
            raise RuntimeError("graph appears empty; cannot build a mini-batch")
        # Average the n_draws independent unbiased estimators: divide every
        # scale by n_draws (expectation unchanged, variance reduced).
        d = float(n_draws)
        strata = [
            Stratum(pairs=s.pairs, labels=s.labels, scale=s.scale / d) for s in strata
        ]
        vertices = np.unique(np.concatenate(vertex_set))
        return Minibatch(strata=strata, vertices=vertices)

    def sample_neighbors(
        self, vertices: np.ndarray, rng: np.random.Generator
    ) -> NeighborSample:
        """Sample V_n (n uniform vertices) per mini-batch vertex.

        Self-pairs and held-out pairs are masked out rather than resampled,
        which keeps the draw vectorized; the phi update divides by the
        per-row effective count, so the estimator stays unbiased.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        m = vertices.size
        n_sample = self.config.neighbor_sample_size
        n = self.graph.n_vertices
        neighbors = rng.integers(0, n, size=(m, n_sample))
        mask = neighbors != vertices[:, None]
        flat_pairs = np.column_stack([
            np.repeat(vertices, n_sample),
            neighbors.reshape(-1),
        ])
        lo = np.minimum(flat_pairs[:, 0], flat_pairs[:, 1])
        hi = np.maximum(flat_pairs[:, 0], flat_pairs[:, 1])
        keys = lo * np.int64(n) + hi
        held = self._in_heldout(keys).reshape(m, n_sample)
        mask &= ~held
        labels = self.graph.has_edges(flat_pairs).reshape(m, n_sample)
        labels &= mask
        # Guarantee at least one active neighbor per row (degenerate rows
        # would otherwise divide by zero): force-enable the first non-self
        # column, falling back to wrapping the vertex id.
        empty = ~mask.any(axis=1)
        if np.any(empty):
            rows = np.flatnonzero(empty)
            repl = (vertices[rows] + 1) % n
            neighbors[rows, 0] = repl
            mask[rows, 0] = repl != vertices[rows]
            labels[rows, 0] = False
        return NeighborSample(neighbors=neighbors, labels=labels, mask=mask)
