"""Pluggable kernel backends for the SGRLD hot path.

The per-iteration numerics (Eqns 3-6) are behind a small registry so the
engines can swap implementations without touching orchestration code:

- ``reference`` — the plain vectorized functions of
  :mod:`repro.core.gradients`, unchanged. This is the correctness contract:
  every other backend must match it (bit-for-bit in float64, to tolerance
  in float32 — see ``tests/test_kernels.py``).
- ``fused`` (default) — computes the shared intermediates (``B_k``, ``D``,
  ``f``, ``Z``) once per mini-batch into a reusable preallocated
  :class:`KernelWorkspace` using ``out=``/in-place ufunc calls, so the
  roughly six ``(m, n, K)`` temporaries the reference path allocates per
  phi step disappear. The float64 arithmetic replays the reference
  operation order exactly (same ufuncs, same association), so results are
  bit-identical; only the allocations go away.
- ``numba`` (:mod:`repro.core.kernels_numba`) — registered only when
  numba is importable: ``@njit(parallel=True, cache=True)`` loops with
  ``prange`` over mini-batch rows/edge blocks and *zero* ``(m, n, K)``
  temporaries. Matches the reference to tolerance in float64 (loop-order
  accumulation, not bit-identical) and keeps float32 in float32. Exposes
  a :meth:`KernelBackend.warmup` compile hook so JIT latency never lands
  inside a timed iteration or a serve request.

Dtype policy: the compute dtype is the dtype of the ``pi`` inputs. A
float32 state (the paper's 32-bit arrays) therefore runs the entire
``(m, n, K)`` / ``(E, K)`` hot path in float32 — scalars, ``beta``,
noise, and scale factors are cast down once per call into small workspace
buffers instead of silently upcasting the big arrays to float64. The tiny
``(K, 2)`` theta update stays at theta's own (float64) precision.

Backend selection is wired through ``AMMSBConfig.kernel_backend`` and the
``REPRO_KERNEL_BACKEND`` environment variable; every engine resolves its
backend with :func:`resolve_backend` at construction time. Resolution
fails soft when the name arrived through the environment (or the caller
opts in): a warning is logged and ``fused`` is used, so setting
``REPRO_KERNEL_BACKEND=numba`` on a host without numba degrades instead
of raising deep inside engine init. An explicitly configured miss still
raises :class:`ValueError` with the available names.

Workspace lifecycle: one :class:`KernelWorkspace` per sequential sampler /
distributed worker, one per *thread* in :mod:`repro.parallel`
(kernel buffers are not thread-safe; threads must not share one).
Returned gradient arrays are views into the workspace — valid until the
same kernel is called again on the same workspace, which is exactly the
lifetime the engines need (consume the gradient in the same iteration).
"""

from __future__ import annotations

import logging
import math
import os
from typing import Callable, Optional

import numpy as np

from repro.core import gradients
from repro.core.gradients import EPS


def _compute_dtype(*arrays: np.ndarray) -> np.dtype:
    """float32 iff every pi-like input is float32; float64 otherwise."""
    if all(a.dtype == np.float32 for a in arrays):
        return np.dtype(np.float32)
    return np.dtype(np.float64)


def _z_floor(dtype: np.dtype) -> float:
    """Normalizer floor: EPS underflows to 0 in float32, so use tiny."""
    if dtype == np.float64:
        return EPS
    return float(np.finfo(dtype).tiny)


class KernelWorkspace:
    """Named, reusable scratch buffers for the fused kernels.

    Buffers are keyed by name and grown (never shrunk) to the largest
    size requested, so steady-state iterations perform zero large
    allocations regardless of mini-batch size jitter. ``array`` returns a
    contiguous view of the capacity buffer reshaped to the requested
    shape; a dtype change (e.g. float64 -> float32 run) reallocates.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def array(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        size = int(math.prod(shape))
        buf = self._buffers.get(name)
        if buf is None or buf.dtype != dtype or buf.size < size:
            buf = np.empty(max(size, 1), dtype=dtype)
            self._buffers[name] = buf
        return buf[:size].reshape(shape)

    def cast(self, name: str, values: np.ndarray, dtype) -> np.ndarray:
        """Cast ``values`` into a workspace buffer iff dtypes differ."""
        values = np.asarray(values)
        if values.dtype == np.dtype(dtype):
            return values
        out = self.array(name, values.shape, dtype)
        np.copyto(out, values, casting="same_kind")
        return out

    def buffers(self) -> dict[str, np.ndarray]:
        """Snapshot of the live buffers (for the dtype-tracking tests)."""
        return dict(self._buffers)

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())


class KernelBackend:
    """A named bundle of the SGRLD hot-path kernels.

    All kernels accept an optional ``workspace``; backends that do not
    need one (``reference``) ignore it. ``link_probability`` is the
    inference-time scoring kernel used by the serving layer
    (:mod:`repro.serve`); backends that do not override it get the
    reference implementation. ``warmup`` is an optional one-time
    compile/prime hook (the JIT backend uses it); engines call it at
    construction so first-call latency stays out of timed iterations and
    serve requests.
    """

    def __init__(
        self,
        name: str,
        phi_gradient_sum: Callable[..., np.ndarray],
        update_phi: Callable[..., np.ndarray],
        theta_gradient_weighted: Callable[..., np.ndarray],
        update_theta: Callable[..., np.ndarray],
        link_probability: Optional[Callable[..., np.ndarray]] = None,
        warmup: Optional[Callable[[], None]] = None,
    ) -> None:
        self.name = name
        self.phi_gradient_sum = phi_gradient_sum
        self.update_phi = update_phi
        self.theta_gradient_weighted = theta_gradient_weighted
        self.update_theta = update_theta
        self.link_probability = (
            link_probability if link_probability is not None else _ref_link_probability
        )
        self._warmup = warmup

    def warmup(self) -> None:
        """Prime the backend (compile JIT specializations); idempotent."""
        if self._warmup is not None:
            self._warmup()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelBackend({self.name!r})"


# -- reference backend: delegate to repro.core.gradients ---------------------


def _ref_phi_gradient_sum(
    pi_a, phi_sum_a, pi_b, y, beta, delta, mask=None, workspace=None
):
    return gradients.phi_gradient_sum(pi_a, phi_sum_a, pi_b, y, beta, delta, mask=mask)


def _ref_update_phi(
    phi_a, grad_sum, eps_t, alpha, scale, noise,
    phi_floor=1e-12, phi_clip=1e6, workspace=None,
):
    return gradients.update_phi(
        phi_a, grad_sum, eps_t, alpha, scale, noise,
        phi_floor=phi_floor, phi_clip=phi_clip,
    )


def _ref_theta_gradient_weighted(
    pi_a, pi_b, y, theta, delta, weights=None, workspace=None
):
    return gradients.theta_gradient_sum(pi_a, pi_b, y, theta, delta, weights=weights)


def _ref_update_theta(
    theta, grad_sum, eps_t, eta, scale, noise, theta_floor=1e-12, workspace=None
):
    return gradients.update_theta(
        theta, grad_sum, eps_t, eta, scale, noise, theta_floor=theta_floor
    )


def _ref_link_probability(pi_a, pi_b, beta, delta, workspace=None):
    # repro.core re-exports the perplexity *function* under the same name
    # as the module, so import the function directly.
    from repro.core.perplexity import link_probability

    return link_probability(pi_a, pi_b, beta, delta)


# -- fused backend: in-place, allocation-free, dtype-preserving ---------------


def _bernoulli_factors_into(
    ws: KernelWorkspace,
    prefix: str,
    y: np.ndarray,
    beta: np.ndarray,
    delta: float,
    ct: np.dtype,
    shape_bk: tuple[int, ...],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fill workspace buffers with ``link`` mask, ``B_k`` and ``D``.

    The factor values are identical to the reference
    ``bernoulli_factor``/``delta_factor`` ``np.where`` results; two masked
    ``copyto`` passes replace the fresh allocation.
    """
    link = ws.array(prefix + "link", y.shape, bool)
    np.not_equal(y, 0, out=link)
    notlink = ws.array(prefix + "notlink", y.shape, bool)
    np.logical_not(link, out=notlink)

    beta_c = ws.cast(prefix + "beta", np.asarray(beta), ct)
    one_minus_beta = ws.array(prefix + "omb", beta_c.shape, ct)
    np.subtract(1.0, beta_c, out=one_minus_beta)

    cond = link if y.ndim == len(shape_bk) else link[..., None]
    ncond = notlink if y.ndim == len(shape_bk) else notlink[..., None]
    bfac = ws.array(prefix + "bfac", shape_bk, ct)
    np.copyto(bfac, beta_c, where=cond)
    np.copyto(bfac, one_minus_beta, where=ncond)

    dfac = ws.array(prefix + "dfac", y.shape, ct)
    np.copyto(dfac, ct.type(delta), where=link)
    np.copyto(dfac, ct.type(1.0 - delta), where=notlink)
    return link, bfac, dfac


def _fused_phi_gradient_sum(
    pi_a, phi_sum_a, pi_b, y, beta, delta, mask=None, workspace=None
):
    """Eqn 6 with zero ``(m, n, K)`` allocations.

    Replays the reference arithmetic (same ufuncs, same association) into
    workspace buffers, so float64 results are bit-identical.
    """
    ws = workspace if workspace is not None else KernelWorkspace()
    pi_a = np.asarray(pi_a)
    pi_b = np.asarray(pi_b)
    y = np.asarray(y)
    ct = _compute_dtype(pi_a, pi_b)
    m, n, k = pi_b.shape
    eps = _z_floor(ct)

    _, bfac, dfac = _bernoulli_factors_into(ws, "phi_", y, beta, delta, ct, (m, n, k))

    # f = pi_a[:, None, :] * (pi_b * B + (1 - pi_b) * D)
    u = ws.array("phi_u", (m, n, k), ct)
    np.subtract(1.0, pi_b, out=u)
    u *= dfac[..., None]
    f = ws.array("phi_f", (m, n, k), ct)
    np.multiply(pi_b, bfac, out=f)
    f += u
    f *= pi_a[:, None, :]

    z = ws.array("phi_z", (m, n), ct)
    np.sum(f, axis=-1, out=z)
    np.maximum(z, eps, out=z)
    f /= z[..., None]  # f is now w

    n_eff = ws.array("phi_neff", (m, 1), ct)
    if mask is not None:
        f *= mask[..., None]
        n_eff_i = ws.array("phi_neff_i", (m, 1), np.int64)
        np.sum(mask, axis=1, keepdims=True, out=n_eff_i)
        np.divide(n_eff_i, phi_sum_a[:, None], out=n_eff, casting="same_kind")
    else:
        n_eff.fill(float(n))
        n_eff /= phi_sum_a[:, None]

    s = ws.array("phi_s", (m, k), ct)
    np.sum(f, axis=1, out=s)
    phi_a = ws.array("phi_phia", (m, k), ct)
    np.multiply(pi_a, phi_sum_a[:, None], out=phi_a)
    np.maximum(phi_a, eps, out=phi_a)
    s /= phi_a
    s -= n_eff
    return s


def _fused_update_phi(
    phi_a, grad_sum, eps_t, alpha, scale, noise,
    phi_floor=1e-12, phi_clip=1e6, workspace=None,
):
    """SGRLD phi update (Eqn 5) into workspace buffers."""
    ws = workspace if workspace is not None else KernelWorkspace()
    phi_a = np.asarray(phi_a)
    ct = _compute_dtype(phi_a)
    shape = phi_a.shape

    if isinstance(scale, np.ndarray):
        scale = ws.cast("up_scale", scale, ct)
    noise = ws.cast("up_noise", np.asarray(noise), ct)
    grad_sum = ws.cast("up_grad", np.asarray(grad_sum), ct)

    # drift = 0.5 * eps_t * (alpha - phi_a + scale * grad_sum)
    drift = ws.array("up_drift", shape, ct)
    np.subtract(alpha, phi_a, out=drift, casting="same_kind")
    tmp = ws.array("up_tmp", shape, ct)
    np.multiply(scale, grad_sum, out=tmp, casting="same_kind")
    drift += tmp
    drift *= 0.5 * eps_t
    # diffusion = sqrt(eps_t) * sqrt(max(phi_a, 0)) * noise
    np.maximum(phi_a, 0.0, out=tmp)
    np.sqrt(tmp, out=tmp)
    tmp *= np.sqrt(eps_t)
    tmp *= noise
    drift += phi_a
    drift += tmp
    np.abs(drift, out=drift)
    np.clip(drift, phi_floor, phi_clip, out=drift)
    return drift


def _fused_theta_gradient_weighted(
    pi_a, pi_b, y, theta, delta, weights=None, workspace=None
):
    """Eqn 4, batched over all mini-batch edges with per-edge h-weights."""
    ws = workspace if workspace is not None else KernelWorkspace()
    pi_a = np.asarray(pi_a)
    pi_b = np.asarray(pi_b)
    y = np.asarray(y)
    ct = _compute_dtype(pi_a, pi_b)
    e, k = pi_a.shape
    eps = _z_floor(ct)

    theta_row_sum = theta.sum(axis=1)
    beta = theta[:, 1] / theta_row_sum
    link, bfac, dfac = _bernoulli_factors_into(ws, "th_", y, beta, delta, ct, (e, k))

    # z = (pi_a * (pi_b * B + (1 - pi_b) * D)).sum(axis=1)
    u = ws.array("th_u", (e, k), ct)
    np.subtract(1.0, pi_b, out=u)
    u *= dfac[:, None]
    v = ws.array("th_v", (e, k), ct)
    np.multiply(pi_b, bfac, out=v)
    v += u
    v *= pi_a
    z = ws.array("th_z", (e,), ct)
    np.sum(v, axis=1, out=z)
    np.maximum(z, eps, out=z)

    # w = (pi_a * pi_b * B) / z, per-edge weighted; v is free to reuse.
    np.multiply(pi_a, pi_b, out=v)
    v *= bfac
    v /= z[:, None]
    if weights is not None:
        w_c = ws.cast("th_wts", np.asarray(weights), ct)
        v *= w_c[:, None]

    w_total = ws.array("th_wtot", (k,), ct)
    np.sum(v, axis=0, out=w_total)
    v *= link[:, None]
    w_y = ws.array("th_wy", (k,), ct)
    np.sum(v, axis=0, out=w_y)
    w_not_y = ws.array("th_wny", (k,), ct)
    np.subtract(w_total, w_y, out=w_not_y)

    grad = np.empty_like(theta)
    grad[:, 0] = w_not_y / np.maximum(theta[:, 0], EPS) - w_total / theta_row_sum
    grad[:, 1] = w_y / np.maximum(theta[:, 1], EPS) - w_total / theta_row_sum
    return grad


def _fused_link_probability(pi_a, pi_b, beta, delta, workspace=None):
    """Batched ``p(y=1)`` (perplexity Eqn 7 integrand) without temporaries.

    The serving hot path: scores (H, K) pair batches into workspace
    buffers, replaying the reference arithmetic of
    :func:`repro.core.perplexity.link_probability` so float64 results are
    bit-identical. A float32 artifact scores entirely in float32.
    """
    from repro.core.perplexity import _PROB_FLOOR

    ws = workspace if workspace is not None else KernelWorkspace()
    pi_a = np.asarray(pi_a)
    pi_b = np.asarray(pi_b)
    ct = _compute_dtype(pi_a, pi_b)
    h, k = pi_a.shape

    t = ws.array("lp_t", (h, k), ct)
    np.multiply(pi_a, pi_b, out=t)
    overlap = ws.array("lp_overlap", (h,), ct)
    np.sum(t, axis=1, out=overlap)
    beta_c = ws.cast("lp_beta", np.asarray(beta), ct)
    t *= beta_c
    same = ws.array("lp_same", (h,), ct)
    np.sum(t, axis=1, out=same)

    # p = same + (1 - overlap) * delta, then clip to the probability floor.
    np.subtract(1.0, overlap, out=overlap)
    overlap *= ct.type(delta)
    np.add(same, overlap, out=same)
    np.clip(same, _PROB_FLOOR, 1.0 - _PROB_FLOOR, out=same)
    return same


#: theta is (K, 2) and always float64 — nothing to fuse at that size.
_fused_update_theta = _ref_update_theta


# -- registry ------------------------------------------------------------------

_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register (or replace) a backend under its name."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> KernelBackend:
    """Look up a backend; raises with the known names on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: {available_backends()}"
        ) from None


def available_backends() -> list[str]:
    return sorted(_REGISTRY)


_FALLBACK_BACKEND = "fused"

_log = logging.getLogger(__name__)


def resolve_backend(name: str, allow_fallback: Optional[bool] = None) -> KernelBackend:
    """Resolve ``name``, failing soft for environment-sourced selections.

    ``allow_fallback=None`` (the engines' default) falls back to
    ``fused`` only when the requested name matches the current
    ``REPRO_KERNEL_BACKEND`` value — i.e. the selection came from the
    environment, where an unknown/unavailable backend (say ``numba`` on
    a host without numba) should degrade with a logged warning rather
    than crash engine construction. An explicit
    ``AMMSBConfig.kernel_backend`` miss still raises the typed
    :class:`ValueError` of :func:`get_backend` with the available names.

    ``allow_fallback=True`` always falls back on a miss (used for names
    read from serialized artifacts built on other hosts);
    ``allow_fallback=False`` is strict, identical to :func:`get_backend`.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        pass
    if allow_fallback is None:
        allow_fallback = os.environ.get("REPRO_KERNEL_BACKEND") == name
    if allow_fallback and name != _FALLBACK_BACKEND:
        _log.warning(
            "kernel backend %r is not available (known: %s); falling back to %r",
            name, available_backends(), _FALLBACK_BACKEND,
        )
        return _REGISTRY[_FALLBACK_BACKEND]
    return get_backend(name)


register_backend(
    KernelBackend(
        "reference",
        phi_gradient_sum=_ref_phi_gradient_sum,
        update_phi=_ref_update_phi,
        theta_gradient_weighted=_ref_theta_gradient_weighted,
        update_theta=_ref_update_theta,
    )
)
register_backend(
    KernelBackend(
        "fused",
        phi_gradient_sum=_fused_phi_gradient_sum,
        update_phi=_fused_update_phi,
        theta_gradient_weighted=_fused_theta_gradient_weighted,
        update_theta=_fused_update_theta,
        link_probability=_fused_link_probability,
    )
)


def _register_numba_backend() -> bool:
    """Register the JIT backend iff numba imported; see kernels_numba."""
    from repro.core import kernels_numba

    if not kernels_numba.NUMBA_AVAILABLE:
        return False
    register_backend(
        KernelBackend(
            "numba",
            phi_gradient_sum=kernels_numba.phi_gradient_sum,
            update_phi=kernels_numba.update_phi,
            theta_gradient_weighted=kernels_numba.theta_gradient_weighted,
            update_theta=kernels_numba.update_theta,
            link_probability=kernels_numba.link_probability,
            warmup=kernels_numba.warmup,
        )
    )
    return True


_register_numba_backend()
