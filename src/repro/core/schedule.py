"""Step-size schedules for SGRLD and the SVI baseline.

The SGRLD schedule lives in :class:`repro.config.StepSizeConfig`
(``eps_t = a (1 + t/b)^-c``); this module re-exports it and adds the
Robbins-Monro power schedule used by stochastic variational inference and
a constant schedule for debugging/mixing studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import StepSizeConfig

__all__ = ["StepSizeConfig", "PowerSchedule", "ConstantSchedule", "check_robbins_monro"]


@dataclass(frozen=True)
class PowerSchedule:
    """``rho_t = (t0 + t) ** -kappa`` — the classic SVI schedule.

    ``kappa`` in (0.5, 1] satisfies Robbins-Monro.
    """

    t0: float = 1024.0
    kappa: float = 0.5 + 1e-9

    def at(self, t: int) -> float:
        if t < 0:
            raise ValueError("iteration must be >= 0")
        return (self.t0 + t) ** (-self.kappa)


@dataclass(frozen=True)
class ConstantSchedule:
    """Fixed step size; biased but useful for mixing/throughput studies."""

    eps: float = 1e-3

    def at(self, t: int) -> float:
        if t < 0:
            raise ValueError("iteration must be >= 0")
        return self.eps


def check_robbins_monro(schedule, horizon: int = 100_000) -> tuple[float, float]:
    """Empirical partial sums (sum eps, sum eps^2) over a horizon.

    Used by tests to sanity-check that configured schedules are in the
    convergent regime: the first sum should grow without bound (large),
    the second should flatten (finite).
    """
    s1 = 0.0
    s2 = 0.0
    for t in range(horizon):
        e = schedule.at(t)
        s1 += e
        s2 += e * e
    return s1, s2
