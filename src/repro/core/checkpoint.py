"""Checkpoint / resume for long sampling runs.

The paper's convergence runs take up to ~40 hours (Figure 6); any
production deployment needs durable checkpoints. A checkpoint captures
the model state (pi, phi_sum, theta), the iteration counter, the
configuration, and the exact RNG states, so a resumed run continues
**bit-for-bit identically** to an uninterrupted one (verified in
``tests/test_checkpoint.py``).

Format: a single ``.npz`` with arrays plus JSON-encoded metadata.

Durability: checkpoints are written *atomically* — the archive is
serialized to a temporary file in the target directory, fsynced, and
renamed over the destination with ``os.replace``. A crash mid-write
(power loss, OOM-killed master) can therefore never leave a truncated
checkpoint under the real name; the previous checkpoint survives intact.
Anything wrong with a checkpoint at load time (missing file, corrupt or
truncated archive, missing keys, unreadable metadata) surfaces as a
typed :class:`CheckpointError` naming the offending path, instead of a
raw ``zipfile``/``KeyError`` leaking from the internals.

Two granularities are offered:

- :func:`save_checkpoint` / :func:`load_checkpoint` — full single-process
  sampler state including RNG streams (bit-exact resume);
- :func:`save_state_checkpoint` / :func:`load_state_checkpoint` — model
  state + iteration + config only, backend-agnostic. Used by the
  multiprocess runtime's auto-checkpointing, where per-worker RNG
  streams live in other processes and a resume restarts them from seed
  (coarse-grained disaster recovery).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Union

import numpy as np

from repro.config import AMMSBConfig, StepSizeConfig
from repro.core.sampler import AMMSBSampler
from repro.core.state import ModelState

PathLike = Union[str, Path]

FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint could not be read or fails validation.

    Subclasses :class:`ValueError` so callers guarding with the generic
    exception keep working; carries the offending ``path`` so operators
    know *which* file to discard or restore from backup.
    """

    def __init__(self, path: PathLike, reason: str) -> None:
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"checkpoint {self.path}: {reason}")


def _config_to_json(config: AMMSBConfig) -> str:
    d = dataclasses.asdict(config)
    return json.dumps(d)


def _config_from_json(path: PathLike, blob: str) -> AMMSBConfig:
    """Rebuild the **full** saved config, or raise a typed error.

    The saved field set must match :class:`AMMSBConfig` exactly: a missing
    field (e.g. ``kernel_backend`` from a writer that predates it) must
    not be silently defaulted — the default could differ from what the
    run actually used (``kernel_backend`` even reads an environment
    variable) and change numerics on resume. Unknown fields mean the file
    comes from a newer writer and would otherwise die as a raw
    ``TypeError`` inside the dataclass constructor.
    """
    try:
        d = json.loads(blob)
    except (json.JSONDecodeError, TypeError) as exc:
        raise CheckpointError(path, f"unreadable config ({exc})") from exc
    if not isinstance(d, dict):
        raise CheckpointError(path, "config record is not an object")
    expected = {f.name for f in dataclasses.fields(AMMSBConfig)}
    missing = sorted(expected - d.keys())
    unknown = sorted(d.keys() - expected)
    if missing or unknown:
        parts = []
        if missing:
            parts.append(f"missing config field(s) {missing}")
        if unknown:
            parts.append(f"unknown config field(s) {unknown}")
        raise CheckpointError(path, "; ".join(parts))
    try:
        d["step_phi"] = StepSizeConfig(**d["step_phi"])
        d["step_theta"] = StepSizeConfig(**d["step_theta"])
        d["eta"] = tuple(d["eta"])
        return AMMSBConfig(**d)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(path, f"invalid config value ({exc})") from exc


def _atomic_savez(path: PathLike, compress: bool = True, **arrays) -> Path:
    """Write an ``.npz`` atomically: temp file + fsync + ``os.replace``.

    ``np.savez`` appends ``.npz`` when given a bare name, so the archive
    is serialized through an explicit file object instead; the temp file
    lives in the destination directory to keep the final rename within
    one filesystem. ``compress=False`` writes a stored (uncompressed)
    archive — see :func:`save_checkpoint` for the tradeoff.
    """
    target = Path(path)
    if target.suffix != ".npz":
        target = target.with_name(target.name + ".npz")
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=target.parent
    )
    savez = np.savez_compressed if compress else np.savez
    try:
        with os.fdopen(fd, "wb") as fh:
            savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    # Make the rename itself durable (directory entry update).
    try:
        dir_fd = os.open(target.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform without dir fsync
        pass
    return target


def _open_archive(path: PathLike):
    """``np.load`` with typed error translation (missing/corrupt files)."""
    p = Path(path)
    if not p.exists():
        raise CheckpointError(p, "file does not exist")
    try:
        return np.load(str(p), allow_pickle=False)
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise CheckpointError(p, f"corrupt or truncated archive ({exc})") from exc


def _read_meta(path: PathLike, data) -> dict:
    try:
        meta = json.loads(str(data["_meta"]))
    except KeyError as exc:
        raise CheckpointError(path, "missing _meta record") from exc
    except (json.JSONDecodeError, ValueError) as exc:
        raise CheckpointError(path, f"unreadable metadata ({exc})") from exc
    if meta.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            path, f"unsupported checkpoint version {meta.get('version')}"
        )
    return meta


def _read_array(path: PathLike, data, key: str) -> np.ndarray:
    try:
        return data[key].copy()
    except KeyError as exc:
        raise CheckpointError(path, f"missing array {key!r}") from exc
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        raise CheckpointError(path, f"array {key!r} unreadable ({exc})") from exc


def save_checkpoint(path: PathLike, sampler: AMMSBSampler, compress: bool = True) -> Path:
    """Atomically write the sampler's full state to ``path`` (.npz).

    Args:
        compress: ``True`` (default) writes ``np.savez_compressed``;
            ``False`` writes a stored archive (plain ``np.savez``).
            Tradeoff: zlib shrinks the float state ~1.1–1.5x (random
            gamma draws barely compress) but dominates save time at
            large N — for million-row ``pi`` the deflate pass costs
            tens of seconds of sampler stall per checkpoint, while the
            stored archive is written at disk bandwidth. Prefer
            ``compress=False`` whenever checkpoint cadence matters more
            than disk. Loads auto-detect either variant.
    """
    meta = {
        "version": FORMAT_VERSION,
        "iteration": sampler.iteration,
        "config": _config_to_json(sampler.config),
        "rng_state": json.dumps(sampler.rng.bit_generator.state),
        "noise_rng_state": json.dumps(sampler.noise_rng.bit_generator.state),
    }
    arrays = {
        "pi": sampler.state.pi,
        "phi_sum": sampler.state.phi_sum,
        "theta": sampler.state.theta,
    }
    est = sampler.perplexity_estimator
    if est is not None:
        arrays["perp_prob_sum"] = est._prob_sum
        meta["perp_count"] = est.n_samples
    return _atomic_savez(path, compress=compress, _meta=json.dumps(meta), **arrays)


def load_checkpoint(path: PathLike, graph, heldout=None) -> AMMSBSampler:
    """Reconstruct a sampler from a checkpoint.

    Args:
        path: checkpoint file.
        graph: the training graph the run used (graphs are large and
            deterministic to regenerate, so they are not embedded).
        heldout: the held-out split the run used, if any (required to
            resume perplexity tracking).

    Returns:
        A sampler that continues exactly where the saved one stopped.

    Raises:
        CheckpointError: the file is missing, corrupt, truncated, lacks
            required keys, or holds a state that fails validation.
    """
    with _open_archive(path) as data:
        meta = _read_meta(path, data)
        try:
            config = _config_from_json(path, meta["config"])
            iteration = int(meta["iteration"])
            rng_state = json.loads(meta["rng_state"])
            noise_rng_state = json.loads(meta["noise_rng_state"])
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(path, f"invalid metadata ({exc})") from exc
        state = ModelState(
            pi=_read_array(path, data, "pi"),
            phi_sum=_read_array(path, data, "phi_sum"),
            theta=_read_array(path, data, "theta"),
        )
        sampler = AMMSBSampler(graph, config, heldout=heldout, state=state)
        sampler.iteration = iteration
        sampler.rng.bit_generator.state = rng_state
        sampler.noise_rng.bit_generator.state = noise_rng_state
        if sampler.perplexity_estimator is not None and "perp_prob_sum" in data:
            sampler.perplexity_estimator._prob_sum = data["perp_prob_sum"].copy()
            sampler.perplexity_estimator._count = int(meta.get("perp_count", 0))
    try:
        state.validate()
    except ValueError as exc:
        raise CheckpointError(path, f"invalid state ({exc})") from exc
    return sampler


# -- backend-agnostic model-state checkpoints ---------------------------------


def save_state_checkpoint(
    path: PathLike,
    state: ModelState,
    iteration: int,
    config: AMMSBConfig,
    compress: bool = True,
) -> Path:
    """Atomically write a bare model state (no RNG streams).

    The portable subset every backend shares — used by the multiprocess
    runtime's auto-checkpointing. ``compress=False`` skips zlib (see
    :func:`save_checkpoint` for the large-N tradeoff).
    """
    meta = {
        "version": FORMAT_VERSION,
        "kind": "state",
        "iteration": int(iteration),
        "config": _config_to_json(config),
    }
    return _atomic_savez(
        path,
        compress=compress,
        _meta=json.dumps(meta),
        pi=state.pi,
        phi_sum=state.phi_sum,
        theta=state.theta,
    )


def load_state_checkpoint(path: PathLike) -> tuple[ModelState, int, AMMSBConfig]:
    """Read a model-state checkpoint: ``(state, iteration, config)``.

    Raises:
        CheckpointError: missing/corrupt file, missing keys, or a state
            that fails validation.
    """
    with _open_archive(path) as data:
        meta = _read_meta(path, data)
        try:
            config = _config_from_json(path, meta["config"])
            iteration = int(meta["iteration"])
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(path, f"invalid metadata ({exc})") from exc
        state = ModelState(
            pi=_read_array(path, data, "pi"),
            phi_sum=_read_array(path, data, "phi_sum"),
            theta=_read_array(path, data, "theta"),
        )
    try:
        state.validate()
    except ValueError as exc:
        raise CheckpointError(path, f"invalid state ({exc})") from exc
    return state, iteration, config
