"""Checkpoint / resume for long sampling runs.

The paper's convergence runs take up to ~40 hours (Figure 6); any
production deployment needs durable checkpoints. A checkpoint captures
the model state (pi, phi_sum, theta), the iteration counter, the
configuration, and the exact RNG states, so a resumed run continues
**bit-for-bit identically** to an uninterrupted one (verified in
``tests/test_checkpoint.py``).

Format: a single ``.npz`` with arrays plus JSON-encoded metadata.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.config import AMMSBConfig, StepSizeConfig
from repro.core.sampler import AMMSBSampler
from repro.core.state import ModelState

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def _config_to_json(config: AMMSBConfig) -> str:
    d = dataclasses.asdict(config)
    return json.dumps(d)


def _config_from_json(blob: str) -> AMMSBConfig:
    d = json.loads(blob)
    d["step_phi"] = StepSizeConfig(**d["step_phi"])
    d["step_theta"] = StepSizeConfig(**d["step_theta"])
    d["eta"] = tuple(d["eta"])
    return AMMSBConfig(**d)


def save_checkpoint(path: PathLike, sampler: AMMSBSampler) -> None:
    """Write the sampler's full state to ``path`` (.npz)."""
    meta = {
        "version": FORMAT_VERSION,
        "iteration": sampler.iteration,
        "config": _config_to_json(sampler.config),
        "rng_state": json.dumps(sampler.rng.bit_generator.state),
        "noise_rng_state": json.dumps(sampler.noise_rng.bit_generator.state),
    }
    arrays = {
        "pi": sampler.state.pi,
        "phi_sum": sampler.state.phi_sum,
        "theta": sampler.state.theta,
    }
    est = sampler.perplexity_estimator
    if est is not None:
        arrays["perp_prob_sum"] = est._prob_sum
        meta["perp_count"] = est.n_samples
    np.savez_compressed(str(path), _meta=json.dumps(meta), **arrays)


def load_checkpoint(path: PathLike, graph, heldout=None) -> AMMSBSampler:
    """Reconstruct a sampler from a checkpoint.

    Args:
        path: checkpoint file.
        graph: the training graph the run used (graphs are large and
            deterministic to regenerate, so they are not embedded).
        heldout: the held-out split the run used, if any (required to
            resume perplexity tracking).

    Returns:
        A sampler that continues exactly where the saved one stopped.
    """
    with np.load(str(path), allow_pickle=False) as data:
        meta = json.loads(str(data["_meta"]))
        if meta["version"] != FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {meta['version']}")
        config = _config_from_json(meta["config"])
        state = ModelState(
            pi=data["pi"].copy(),
            phi_sum=data["phi_sum"].copy(),
            theta=data["theta"].copy(),
        )
        sampler = AMMSBSampler(graph, config, heldout=heldout, state=state)
        sampler.iteration = int(meta["iteration"])
        sampler.rng.bit_generator.state = json.loads(meta["rng_state"])
        sampler.noise_rng.bit_generator.state = json.loads(meta["noise_rng_state"])
        if sampler.perplexity_estimator is not None and "perp_prob_sum" in data:
            sampler.perplexity_estimator._prob_sum = data["perp_prob_sum"].copy()
            sampler.perplexity_estimator._count = int(meta.get("perp_count", 0))
    state.validate()
    return sampler
