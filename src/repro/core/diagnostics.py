"""MCMC convergence diagnostics for SG-MCMC chains.

The paper decides convergence by eye from the perplexity trace (Figure 6:
"the algorithm reached a stable state after 3-4 hours"). This module
provides the standard quantitative tools for the same judgment:

- :func:`autocorrelation` and :func:`effective_sample_size` (initial
  positive sequence estimator of Geyer 1992) for scalar traces;
- :func:`geweke_z` — Geweke's two-window mean-equality Z-score;
- :func:`ConvergenceMonitor` — an online "has the perplexity trace
  flattened" detector usable as a stopping rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def autocorrelation(trace: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Normalized autocorrelation function of a scalar trace.

    Returns rho[0..max_lag], rho[0] == 1. Uses FFT-free direct sums (the
    traces here are short).
    """
    x = np.asarray(trace, dtype=np.float64)
    n = x.size
    if n < 2:
        raise ValueError("trace too short")
    if max_lag is None:
        max_lag = min(n - 1, 200)
    x = x - x.mean()
    var = float(x @ x) / n
    if var == 0:
        out = np.zeros(max_lag + 1)
        out[0] = 1.0
        return out
    out = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        out[lag] = float(x[: n - lag] @ x[lag:]) / n / var
    return out


def effective_sample_size(trace: np.ndarray) -> float:
    """ESS via Geyer's initial positive sequence estimator.

    Sums autocorrelations over consecutive lag pairs while the pair sums
    remain positive; ESS = n / (1 + 2 * sum(rho)).
    """
    x = np.asarray(trace, dtype=np.float64)
    n = x.size
    if n < 4:
        raise ValueError("trace too short for ESS")
    rho = autocorrelation(x, max_lag=n - 2)
    s = 0.0
    for k in range(1, (len(rho) - 1) // 2 + 1):
        pair = rho[2 * k - 1] + rho[2 * k]
        if pair <= 0:
            break
        s += pair
    ess = n / (1.0 + 2.0 * s)
    return float(min(ess, n))


def geweke_z(trace: np.ndarray, first: float = 0.1, last: float = 0.5) -> float:
    """Geweke convergence Z-score comparing early vs late window means.

    |z| < 2 is the usual "no evidence against convergence" threshold. The
    spectral variance at frequency zero is approximated by the windowed
    batch-means variance.
    """
    x = np.asarray(trace, dtype=np.float64)
    n = x.size
    if n < 20:
        raise ValueError("trace too short for Geweke diagnostic")
    a = x[: int(first * n)]
    b = x[int((1 - last) * n):]

    def spectral_var(y: np.ndarray) -> float:
        m = max(2, y.size // 8)  # batch size
        n_batches = y.size // m
        if n_batches < 2:
            return float(y.var(ddof=1))
        means = y[: n_batches * m].reshape(n_batches, m).mean(axis=1)
        return float(m * means.var(ddof=1))

    var_a = spectral_var(a) / a.size
    var_b = spectral_var(b) / b.size
    denom = np.sqrt(var_a + var_b)
    if denom == 0:
        return 0.0
    return float((a.mean() - b.mean()) / denom)


@dataclass
class ConvergenceMonitor:
    """Online flatness detector for a perplexity trace.

    Declares convergence when the relative improvement of the best value
    over the trailing ``window`` checkpoints falls below ``rel_tol``.

    Attributes:
        window: checkpoints considered "recent".
        rel_tol: relative improvement below which the trace is flat.
        min_checkpoints: never declare convergence earlier than this.
    """

    window: int = 8
    rel_tol: float = 0.005
    min_checkpoints: int = 12
    values: list[float] = field(default_factory=list)

    def update(self, value: float) -> bool:
        """Record a checkpoint; returns True once converged."""
        if not np.isfinite(value):
            raise ValueError("non-finite perplexity")
        self.values.append(float(value))
        return self.converged

    @property
    def converged(self) -> bool:
        v = self.values
        if len(v) < max(self.min_checkpoints, self.window + 1):
            return False
        best_before = min(v[: -self.window])
        best_recent = min(v[-self.window:])
        return best_recent > best_before * (1.0 - self.rel_tol)

    @property
    def best(self) -> float:
        if not self.values:
            return float("inf")
        return min(self.values)
