"""Stochastic variational inference (SVI) baseline for a-MMSB.

The paper's introduction contrasts SG-MCMC against stochastic variational
Bayes [Gopalan et al., NIPS 2012]; [Li, Ahn, Welling 2015] report SG-MCMC
is faster and more accurate. This module implements that comparator so the
repository can reproduce the comparison on the synthetic datasets.

Variational family (mean field, the a-MMSB specialization of Gopalan et
al.):

- ``q(pi_a) = Dirichlet(gamma_a)``, ``gamma`` is (N, K);
- ``q(beta_k) = Beta(lambda_k1, lambda_k0)``, ``lambda`` is (K, 2);
- per observed pair, the community-indicator posterior ``q(z_ab = z_ba =
  k) = phi_ab(k)`` with a catch-all "different communities" state.

One iteration: draw a mini-batch (same strata/scale machinery as the
sampler), compute local ``phi_ab`` in closed form from digammas, then take
a natural-gradient step of size ``rho_t`` on gamma and lambda.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.special import digamma

from repro.config import AMMSBConfig
from repro.core.minibatch import MinibatchSampler
from repro.core.perplexity import PerplexityEstimator
from repro.core.schedule import PowerSchedule
from repro.graph.graph import Graph, edge_keys
from repro.graph.split import HeldoutSplit


@dataclass
class SVIState:
    """Variational parameters."""

    gamma: np.ndarray  # (N, K)
    lam: np.ndarray  # (K, 2) — columns (lambda_k0, lambda_k1)

    @property
    def pi_mean(self) -> np.ndarray:
        return self.gamma / self.gamma.sum(axis=1, keepdims=True)

    @property
    def beta_mean(self) -> np.ndarray:
        return self.lam[:, 1] / self.lam.sum(axis=1)


class SVIAMMSB:
    """SVI for a-MMSB on the same mini-batch substrate as the sampler.

    Args:
        graph: training graph.
        config: shared configuration (K, alpha, eta, delta, mini-batch
            sizes, seed).
        heldout: optional held-out split for perplexity tracking.
        schedule: Robbins-Monro step schedule (``rho_t``).
    """

    def __init__(
        self,
        graph: Graph,
        config: AMMSBConfig,
        heldout: Optional[HeldoutSplit] = None,
        schedule: Optional[PowerSchedule] = None,
    ) -> None:
        self.graph = graph
        self.config = config
        self.schedule = schedule or PowerSchedule(t0=1024.0, kappa=0.9)
        self.rng = np.random.default_rng(config.seed)
        heldout_keys = None
        self.perplexity_estimator: Optional[PerplexityEstimator] = None
        if heldout is not None:
            heldout_keys = edge_keys(heldout.heldout_pairs, graph.n_vertices)
            self.perplexity_estimator = PerplexityEstimator(
                heldout.heldout_pairs, heldout.heldout_labels, config.delta
            )
        self.minibatch_sampler = MinibatchSampler(graph, config, heldout_keys=heldout_keys)
        k = config.n_communities
        self.state = SVIState(
            gamma=self.rng.gamma(1.0, 1.0, size=(graph.n_vertices, k)) + 0.1,
            lam=np.column_stack([
                np.full(k, config.eta[0], dtype=np.float64),
                np.full(k, config.eta[1], dtype=np.float64),
            ])
            + self.rng.gamma(1.0, 0.1, size=(k, 2)),
        )
        self.iteration = 0
        # Per-vertex update counters: a vertex's gamma step size is indexed
        # by how many times *that vertex* has been updated, not by the
        # global clock — with stratified node sampling each vertex is a
        # stratum center only every ~N/d iterations, and a globally-decayed
        # rho would freeze gamma long before any vertex accumulated
        # meaningful movement.
        self._vertex_updates = np.zeros(graph.n_vertices, dtype=np.int64)
        self.gamma_schedule = PowerSchedule(t0=64.0, kappa=0.6)

    # -- local step ----------------------------------------------------------

    def _local_phi(self, pairs: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Closed-form q(z_ab = z_ba = k) for each pair, shape (E, K+1).

        The last column is a catch-all "different communities" state whose
        emission probability is delta — the same diagonal restriction
        Gopalan & Blei use for a-MMSB, where link evidence is what carries
        community information (a non-link pair's indicators are nearly
        uninformative because delta is tiny).
        """
        g = self.state.gamma
        lam = self.state.lam
        elog_pi = digamma(g) - digamma(g.sum(axis=1, keepdims=True))  # (N, K)
        elog_beta1 = digamma(lam[:, 1]) - digamma(lam.sum(axis=1))  # E[log beta]
        elog_beta0 = digamma(lam[:, 0]) - digamma(lam.sum(axis=1))  # E[log 1-beta]
        y = labels.astype(np.float64)[:, None]
        emission = y * elog_beta1[None, :] + (1 - y) * elog_beta0[None, :]
        same = elog_pi[pairs[:, 0]] + elog_pi[pairs[:, 1]] + emission  # (E, K)
        d = self.config.delta
        other = np.where(labels, np.log(d), np.log1p(-d))  # (E,)
        logits = np.concatenate([same, other[:, None]], axis=1)
        logits -= logits.max(axis=1, keepdims=True)
        w = np.exp(logits)
        return w / w.sum(axis=1, keepdims=True)

    # -- main loop -------------------------------------------------------------

    def step(self) -> None:
        """One SVI iteration: local phis + natural-gradient global step.

        The gamma estimator scatters each pair's (h-scaled) same-community
        responsibility to both endpoints. The h scales are the *global*
        pair-sum weights, which makes this estimator deliberately
        link-dominated rather than exactly the per-vertex coordinate
        update; exact per-vertex scaling variants were evaluated and
        converge to confidently-wrong configurations on planted graphs
        (non-link self-reinforcement freezes the random initialization),
        while this hedged form tracks the structure stably. It remains a
        *baseline*: the SG-MCMC sampler beats it, which is exactly the
        comparison the paper cites [16].
        """
        cfg = self.config
        if cfg.strategy != "stratified-random-node":
            raise NotImplementedError(
                "the SVI baseline implements the stratified-random-node strategy"
            )
        mb = self.minibatch_sampler.sample(self.rng)
        rho = self.schedule.at(self.iteration)
        k = cfg.n_communities
        m_parts = self.minibatch_sampler.n_partitions
        alpha = cfg.effective_alpha

        lam_hat = np.zeros((k, 2))
        for stratum in mb.strata:
            phi = self._local_phi(stratum.pairs, stratum.labels)[:, :k]  # (E, K)
            # -- gamma: per-center natural-gradient step. Conditional on
            # drawing center a, the coin picks its link set (prob 1/2) or
            # one of m non-link partitions (prob 1/2m each), so scales 2
            # and 2m make gamma_hat unbiased for alpha + sum_b q(z_ab=.)
            # restricted to the informative same-community responsibility.
            center = int(stratum.pairs[0, 0])
            is_link = bool(stratum.labels[0])
            center_scale = 2.0 if is_link else 2.0 * m_parts
            gamma_hat = alpha + center_scale * phi.sum(axis=0)
            self.state.gamma[center] = (
                (1 - rho) * self.state.gamma[center] + rho * gamma_hat
            )
            # -- lambda: global-sum estimator with the stratum's own scale.
            y = stratum.labels.astype(np.float64)[:, None]
            lam_hat[:, 1] += stratum.scale * (phi * y).sum(axis=0)
            lam_hat[:, 0] += stratum.scale * (phi * (1 - y)).sum(axis=0)

        lam_target = np.array([cfg.eta[0], cfg.eta[1]])[None, :] + lam_hat
        self.state.lam = (1 - rho) * self.state.lam + rho * lam_target
        self.iteration += 1

    def run(self, n_iterations: int, perplexity_every: int = 0) -> None:
        """Run ``n_iterations``, optionally recording perplexity."""
        for _ in range(n_iterations):
            self.step()
            if (
                perplexity_every
                and self.perplexity_estimator is not None
                and self.iteration % perplexity_every == 0
            ):
                self.perplexity_estimator.record(self.state.pi_mean, self.state.beta_mean)
