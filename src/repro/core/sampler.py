"""Sequential reference implementation of Algorithm 1.

This is the single-threaded ground truth the parallel engines are measured
against. Each iteration:

1. draw a mini-batch ``E_n`` (:class:`repro.core.minibatch.MinibatchSampler`);
2. for the mini-batch vertices, draw neighbor sets ``V_n`` and apply the
   SGRLD phi update (Eqns 5-6), renormalizing into pi;
3. apply the SGRLD theta update from the mini-batch edge gradients
   (Eqns 3-4) and derive beta.

All the numerics live in :mod:`repro.core.gradients`; this module only
orchestrates. Noise is drawn through a dedicated ``np.random.Generator`` so
runs are reproducible and the distributed engine can replay identical
iterations (see ``tests/test_dist_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.config import AMMSBConfig
from repro.core import kernels
from repro.core.minibatch import Minibatch, MinibatchSampler, NeighborSample
from repro.core.perplexity import PerplexityEstimator
from repro.core.state import ModelState, init_state
from repro.graph.graph import Graph
from repro.graph.split import HeldoutSplit


@dataclass
class IterationStats:
    """Bookkeeping for one iteration (used by tests and benchmarks)."""

    iteration: int
    n_minibatch_vertices: int
    n_minibatch_edges: int
    step_phi: float
    step_theta: float
    perplexity: Optional[float] = None


class AMMSBSampler:
    """Sequential SG-MCMC sampler for a-MMSB (Algorithm 1).

    Args:
        graph: training graph.
        config: hyperparameters and knobs.
        heldout: optional held-out split; enables perplexity tracking. When
            given, ``graph`` should be ``heldout.train``.
        state: optional initial state (random-initialized otherwise).

    Example:
        >>> import numpy as np
        >>> from repro.config import AMMSBConfig
        >>> from repro.graph.generators import generate_ammsb_graph
        >>> g, _ = generate_ammsb_graph(200, 4, rng=np.random.default_rng(0))
        >>> s = AMMSBSampler(g, AMMSBConfig(n_communities=4))
        >>> _ = s.run(10)
        >>> s.state.pi.shape
        (200, 4)
    """

    def __init__(
        self,
        graph: Graph,
        config: AMMSBConfig,
        heldout: Optional[HeldoutSplit] = None,
        state: Optional[ModelState] = None,
    ) -> None:
        self.graph = graph
        # Resolve the backend before pinning the config: env-sourced
        # misses fall back to fused, and the *resolved* name is what the
        # config (and therefore any checkpoint) records.
        self.kernels = kernels.resolve_backend(config.kernel_backend)
        if self.kernels.name != config.kernel_backend:
            config = config.with_updates(kernel_backend=self.kernels.name)
        self.kernels.warmup()
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.noise_rng = np.random.default_rng(config.seed + 1)
        heldout_keys = None
        self.perplexity_estimator: Optional[PerplexityEstimator] = None
        if heldout is not None:
            from repro.graph.graph import edge_keys

            heldout_keys = edge_keys(heldout.heldout_pairs, graph.n_vertices)
            self.perplexity_estimator = PerplexityEstimator(
                heldout.heldout_pairs, heldout.heldout_labels, config.delta
            )
        self.minibatch_sampler = MinibatchSampler(graph, config, heldout_keys=heldout_keys)
        self.state = state if state is not None else init_state(graph.n_vertices, config, self.rng)
        self.workspace = kernels.KernelWorkspace()
        self.iteration = 0
        self.history: list[IterationStats] = []

    # -- update stages (shared logic, explicit inputs) ----------------------

    def update_phi_pi(
        self,
        minibatch: Minibatch,
        neighbor_sample: NeighborSample,
        noise: Optional[np.ndarray] = None,
    ) -> None:
        """Stage: phi update (Eqn 5) + pi renormalization for the mini-batch."""
        cfg = self.config
        vs = minibatch.vertices
        pi_a = self.state.pi[vs]
        phi_sum_a = self.state.phi_sum[vs]
        pi_b = self.state.pi[neighbor_sample.neighbors]
        beta = self.state.beta
        grad = self.kernels.phi_gradient_sum(
            pi_a,
            phi_sum_a,
            pi_b,
            neighbor_sample.labels,
            beta,
            cfg.delta,
            mask=neighbor_sample.mask,
            workspace=self.workspace,
        )
        counts = np.maximum(neighbor_sample.counts, 1)
        scale = self.graph.n_vertices / counts  # (m, 1), Eqn 5's N/|V_n|
        if noise is None:
            noise = self.noise_rng.standard_normal(pi_a.shape)
        phi_a = self.state.phi_rows(vs)
        new_phi = self.kernels.update_phi(
            phi_a,
            grad,
            eps_t=cfg.step_phi.at(self.iteration),
            alpha=cfg.effective_alpha,
            scale=scale,
            noise=noise,
            phi_floor=cfg.phi_floor,
            phi_clip=cfg.phi_clip,
            workspace=self.workspace,
        )
        self.state.set_phi_rows(vs, new_phi)

    def update_beta_theta(
        self, minibatch: Minibatch, noise: Optional[np.ndarray] = None
    ) -> None:
        """Stage: theta update (Eqn 3) from h-scaled stratum gradients.

        All strata are batched into one gather + one weighted kernel call;
        the per-edge h-weights keep the mixed-strata estimator unbiased
        (the gradient is linear in the per-edge terms).
        """
        cfg = self.config
        pairs, labels, scales = minibatch.all_pairs()
        grad_total = self.kernels.theta_gradient_weighted(
            self.state.pi[pairs[:, 0]],
            self.state.pi[pairs[:, 1]],
            labels,
            self.state.theta,
            cfg.delta,
            weights=scales,
            workspace=self.workspace,
        )
        if noise is None:
            noise = self.noise_rng.standard_normal(self.state.theta.shape)
        self.state.theta = self.kernels.update_theta(
            self.state.theta,
            grad_total,
            eps_t=cfg.step_theta.at(self.iteration),
            eta=cfg.eta,
            scale=1.0,
            noise=noise,
            workspace=self.workspace,
        )

    # -- main loop -----------------------------------------------------------

    def step(self) -> IterationStats:
        """Run one full iteration of Algorithm 1."""
        minibatch = self.minibatch_sampler.sample(self.rng)
        neighbor_sample = self.minibatch_sampler.sample_neighbors(minibatch.vertices, self.rng)
        self.update_phi_pi(minibatch, neighbor_sample)
        self.update_beta_theta(minibatch)
        stats = IterationStats(
            iteration=self.iteration,
            n_minibatch_vertices=minibatch.n_vertices,
            n_minibatch_edges=minibatch.n_edges,
            step_phi=self.config.step_phi.at(self.iteration),
            step_theta=self.config.step_theta.at(self.iteration),
        )
        self.iteration += 1
        self.history.append(stats)
        return stats

    def run(
        self,
        n_iterations: int,
        perplexity_every: int = 0,
        callback: Optional[Callable[[IterationStats], None]] = None,
    ) -> list[IterationStats]:
        """Run ``n_iterations``; optionally record perplexity periodically.

        Args:
            n_iterations: iterations to run.
            perplexity_every: if > 0 (and a held-out split was given),
                record a posterior sample and evaluate averaged perplexity
                every that many iterations.
            callback: called after each iteration with its stats.
        """
        out = []
        for _ in range(n_iterations):
            stats = self.step()
            if (
                perplexity_every
                and self.perplexity_estimator is not None
                and self.iteration % perplexity_every == 0
            ):
                self.perplexity_estimator.record(
                    self.state.pi, self.state.beta, iteration=self.iteration
                )
                stats.perplexity = self.perplexity_estimator.value()
            if callback:
                callback(stats)
            out.append(stats)
        return out

    def run_until_converged(
        self,
        max_iterations: int = 100_000,
        checkpoint_every: int = 200,
        perplexity_every: int = 50,
        monitor: Optional["ConvergenceMonitor"] = None,
    ) -> tuple[float, int]:
        """Run until the held-out perplexity trace flattens.

        This is the paper's operational convergence criterion ("the
        algorithm reached a stable state", Section IV-F) made explicit via
        :class:`repro.core.diagnostics.ConvergenceMonitor`.

        Args:
            max_iterations: hard budget.
            checkpoint_every: iterations between monitor updates.
            perplexity_every: iterations between posterior samples.
            monitor: custom monitor (default settings otherwise).

        Returns:
            ``(best_perplexity, iterations_run)``.

        Raises:
            RuntimeError: if no held-out split was provided.
        """
        if self.perplexity_estimator is None:
            raise RuntimeError("run_until_converged needs a held-out split")
        from repro.core.diagnostics import ConvergenceMonitor

        monitor = monitor or ConvergenceMonitor()
        start = self.iteration
        while self.iteration - start < max_iterations:
            self.run(checkpoint_every, perplexity_every=perplexity_every)
            if monitor.update(self.perplexity_estimator.value()):
                break
        return monitor.best, self.iteration - start
