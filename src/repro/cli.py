"""Command-line interface.

Subcommands:

- ``repro detect`` — detect overlapping communities in an edge-list file
  and write the covers;
- ``repro generate`` — write a synthetic SNAP stand-in (or a planted
  graph) as an edge list;
- ``repro benchmark`` — regenerate a paper figure/table on stdout;
- ``repro bench-kernels`` — time the kernel backends (reference, fused,
  numba when installed) and write machine-readable ``BENCH_kernels.json``;
- ``repro bench-check`` — rerun a bench suite (``kernels``, ``mem``,
  ``serve``, or ``stream``) and compare against its checked-in baseline
  JSON, failing on ratio regressions;
- ``repro bench-mem`` — measure graph-load time and peak RSS per storage
  format (edge list, NPZ, resident CSR, mapped CSR) and write
  ``BENCH_mem.json``;
- ``repro convert-graph`` — convert an edge list or ``.npz`` graph into
  a memory-mappable CSR store container;
- ``repro calibrate`` — print the Table III calibration report;
- ``repro chaos`` — run the fault-injection drill (worker crash, DKV
  server stall, RDMA failures) against the multiprocess backend and
  report the recovery;
- ``repro chaos-serve`` — run the serving-tier chaos drill (corrupt
  publishes, mid-swap failure, worker-thread crash, latency spikes)
  against a live model server under load and assert the recovery
  invariants;
- ``repro query`` — answer one model query (membership / link /
  community / recommend) from a serving artifact;
- ``repro serve`` — stand up the micro-batching model server and answer
  a line protocol on stdin;
- ``repro bench-serve`` — run the serving load generator (Zipf traffic +
  mid-run hot-swap) and write ``BENCH_serve.json``;
- ``repro chaos-stream`` — run the streaming durability drill (kill -9
  at every crash phase, torn journal writes, source I/O faults + file
  rotation) and assert the recovery invariants end to end;
- ``repro stream`` — replay a timestamped edge-arrival file through the
  streaming tier: ingest deltas, warm-start one training generation per
  batch, hot-swap each published artifact into a live in-process server,
  with ``--follow`` to keep tailing the file live under a retry/backoff
  supervisor and ``--resume`` to continue a crashed run from its
  write-ahead journal + manifest,
  and answer membership-drift queries;
- ``repro bench-stream`` — run the closed-loop streaming bench
  (warm-start vs cold retrain) and write ``BENCH_stream.json``;
- ``repro auc`` — held-out link-prediction AUC of a checkpoint or
  artifact.

Examples::

    repro generate --dataset com-DBLP --scale 2e-3 --output dblp.txt
    repro detect --edges dblp.txt --communities 32 --iterations 4000 \\
        --output covers.txt --export-artifact dblp_model.npz
    repro query --artifact dblp_model.npz membership 17 --top 5
    repro auc --edges dblp.txt --artifact dblp_model.npz
    repro benchmark --experiment fig1
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.config import AMMSBConfig, StepSizeConfig
    from repro.core.estimation import PosteriorMean, extract_communities
    from repro.core.sampler import AMMSBSampler
    from repro.graph.io import load_edge_list
    from repro.graph.split import split_heldout

    graph = load_edge_list(args.edges)
    print(f"loaded {graph}", file=sys.stderr)
    rng = np.random.default_rng(args.seed)
    split = split_heldout(graph, args.heldout_fraction, rng)
    config = AMMSBConfig(
        n_communities=args.communities,
        mini_batch_vertices=args.mini_batch,
        neighbor_sample_size=args.neighbors,
        step_phi=StepSizeConfig(a=args.step),
        step_theta=StepSizeConfig(a=args.step),
        seed=args.seed,
    )
    if args.resume:
        from repro.core.checkpoint import load_checkpoint

        sampler = load_checkpoint(args.resume, split.train, heldout=split)
        print(f"resumed from {args.resume} at iteration {sampler.iteration}",
              file=sys.stderr)
    else:
        sampler = AMMSBSampler(split.train, config, heldout=split)
    posterior = PosteriorMean(graph.n_vertices, args.communities)
    report_every = max(1, args.iterations // 10)
    sample_from = int(args.iterations * 0.75)
    while sampler.iteration < args.iterations:
        sampler.run(report_every, perplexity_every=50)
        if sampler.iteration >= sample_from:
            posterior.record(sampler.state.pi, sampler.state.beta)
        print(
            f"iter {sampler.iteration:6d} perplexity "
            f"{sampler.perplexity_estimator.value():.4f}",
            file=sys.stderr,
        )
        if args.checkpoint:
            from repro.core.checkpoint import save_checkpoint

            save_checkpoint(args.checkpoint, sampler)
    if posterior.n_samples == 0:
        posterior.record(sampler.state.pi, sampler.state.beta)
    if args.export_artifact:
        from repro.serve.artifact import export_from_sampler

        export_from_sampler(args.export_artifact, sampler)
        print(f"exported serving artifact to {args.export_artifact}",
              file=sys.stderr)
    covers = extract_communities(posterior.pi, threshold=args.threshold)
    out = Path(args.output) if args.output else None
    lines = [" ".join(str(int(v)) for v in c) for c in covers]
    text = "\n".join(lines) + "\n"
    if out:
        out.write_text(text)
        print(f"wrote {len(covers)} communities to {out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.graph.datasets import DATASETS, load_dataset
    from repro.graph.generators import planted_overlapping_graph
    from repro.graph.io import save_edge_list

    if args.dataset:
        if args.dataset not in DATASETS:
            print(f"unknown dataset {args.dataset!r}; known: {sorted(DATASETS)}",
                  file=sys.stderr)
            return 2
        graph, truth, spec = load_dataset(args.dataset, scale=args.scale)
        header = (f"{spec.name} synthetic stand-in, scale={args.scale}, "
                  f"K={truth.n_communities}")
    else:
        rng = np.random.default_rng(args.seed)
        graph, truth = planted_overlapping_graph(
            args.vertices, args.communities, memberships_per_vertex=2, rng=rng
        )
        header = (f"planted overlapping graph, N={args.vertices}, "
                  f"K={args.communities}")
    save_edge_list(graph, args.output, header=header)
    print(f"wrote {graph} to {args.output}", file=sys.stderr)
    return 0


EXPERIMENTS = {
    "table2": ("table2", "Table II: datasets"),
    "fig1": ("fig1_strong_scaling", "Figure 1: strong scaling"),
    "fig2": ("fig2_weak_scaling", "Figure 2: weak scaling"),
    "fig3": ("fig3_pipeline", "Figure 3: pipelining"),
    "table3": ("table3_breakdown", "Table III: stage breakdown"),
    "fig4a": ("fig4a_vertical_dblp", "Figure 4-a: vertical scaling (com-DBLP)"),
    "fig4b": ("fig4b_horizontal_vs_vertical", "Figure 4-b: 64 nodes vs 40 cores"),
    "fig5": ("fig5_dkv_vs_qperf", "Figure 5: DKV vs qperf"),
    "chunks": ("ablation_pipeline_chunks", "Ablation: pipeline chunks"),
    "edges": ("ablation_edge_placement", "Ablation: edge placement"),
}


def _write_csv(rows: list[dict], path: str) -> None:
    import csv

    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def _cmd_benchmark(args: argparse.Namespace) -> int:
    from repro.bench import figures
    from repro.bench.harness import format_table

    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; known: "
              f"{sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    fn_name, title = EXPERIMENTS[args.experiment]
    rows = getattr(figures, fn_name)()
    print(format_table(rows, title=title))
    if args.csv:
        _write_csv(rows, args.csv)
        print(f"wrote {args.csv}", file=sys.stderr)
    return 0


def _cmd_bench_kernels(args: argparse.Namespace) -> int:
    from repro.bench import kernbench
    from repro.bench.harness import format_table

    report = kernbench.run_kernel_bench(
        quick=args.quick, seed=args.seed, backends=args.backends
    )
    print(format_table(kernbench.report_rows(report), title="Kernel backends"))
    if args.output:
        kernbench.save_report(report, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


#: per-suite (baseline file, default regression threshold). The storage
#: suites tolerate more drift than the kernel gate because their ratios
#: fold in disk and page-cache behavior.
_BENCH_SUITES = {
    "kernels": ("BENCH_kernels.json", 0.25),
    "mem": ("BENCH_mem.json", 0.5),
    "serve": ("BENCH_serve.json", 0.5),
    "stream": ("BENCH_stream.json", 0.5),
}


def _cmd_bench_check(args: argparse.Namespace) -> int:
    """Compare a fresh bench run against the committed baseline.

    ``--suite kernels`` (default) reruns the kernel bench; ``--suite
    mem`` the storage/memory bench; ``--suite serve`` the serving load
    generator; ``--suite stream`` the streaming warm-vs-cold loop. Exit
    codes: 0 = within threshold, 2 = regression, 3 = baseline
    missing/unreadable. Every suite compares *ratios* (backend speedups,
    CSR-vs-edge-list load speedups, v2-vs-v1 cold-start speedup,
    warm-vs-cold retrain speedup), so the checks hold across machines of
    different speed and across environments with different optional
    backends installed.
    """
    from repro.bench.harness import format_table

    if args.suite == "kernels":
        from repro.bench import kernbench as bench

        def run_fresh():
            return bench.run_kernel_bench(quick=args.quick, seed=args.seed)
    elif args.suite == "mem":
        from repro.bench import membench as bench

        def run_fresh():
            return bench.run_mem_bench(quick=args.quick, seed=args.seed)
    elif args.suite == "serve":
        from repro.bench import servebench as bench

        def run_fresh():
            return bench.run_serve_bench(quick=args.quick, seed=args.seed)
    else:
        from repro.bench import streambench as bench

        def run_fresh():
            return bench.run_stream_bench(quick=args.quick, seed=args.seed)

    default_baseline, default_threshold = _BENCH_SUITES[args.suite]
    baseline_path = args.baseline or default_baseline
    threshold = args.threshold if args.threshold is not None else default_threshold
    try:
        baseline = bench.load_report(baseline_path)
    except (OSError, ValueError) as exc:
        print(f"cannot load baseline: {exc}", file=sys.stderr)
        return 3
    fresh = run_fresh()
    if args.output:
        bench.save_report(fresh, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    rows = bench.compare_reports(baseline, fresh, threshold=threshold)
    print(format_table(rows, title=f"bench-check --suite {args.suite} vs "
                                   f"{baseline_path} (threshold {threshold:.0%})"))
    regressed = [r for r in rows if r["regressed"]]
    if regressed:
        names = ", ".join(r["metric"] for r in regressed)
        print(f"REGRESSION: {names}", file=sys.stderr)
        return 2
    print(f"ok: no {args.suite} regression", file=sys.stderr)
    return 0


def _cmd_bench_mem(args: argparse.Namespace) -> int:
    """Run the storage/memory bench; exit 2 if an acceptance bar fails."""
    from repro.bench import membench

    report = membench.run_mem_bench(quick=args.quick, seed=args.seed)
    for line in membench.report_rows(report):
        print(line)
    if args.output:
        membench.save_report(report, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    failed = [k for k, ok in report["acceptance"].items() if not ok]
    if failed:
        print(f"FAIL: acceptance bar(s) not met: {failed}", file=sys.stderr)
        return 2
    print("ok: storage acceptance bars met", file=sys.stderr)
    return 0


def _cmd_bench_stream(args: argparse.Namespace) -> int:
    """Run the streaming bench; exit 2 if an acceptance bar fails."""
    from repro.bench import streambench

    report = streambench.run_stream_bench(quick=args.quick, seed=args.seed)
    for line in streambench.report_rows(report):
        print(line)
    if args.output:
        streambench.save_report(report, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    failed = [k for k, ok in report["acceptance"].items() if not ok]
    if failed:
        print(f"FAIL: acceptance bar(s) not met: {failed}", file=sys.stderr)
        return 2
    print("ok: streaming acceptance bars met", file=sys.stderr)
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    """Replay — or live-tail — a timestamped edge file through the
    streaming loop.

    Replay (default): the earliest ``--base-fraction`` of arrivals
    becomes the base graph; generation 0 cold-starts on it. The
    remaining arrivals are split into ``--generations`` batches, each
    ingested and warm-start retrained for ``--iterations`` SG-MCMC
    steps, publishing a serving artifact that a live in-process
    :class:`~repro.serve.server.ModelServer` hot-swaps. ``--drift``
    nodes get their cross-generation ``membership_drift`` answer
    (aligned community labels) printed as JSON at the end.

    ``--follow``: keep tailing the file after the initial contents,
    under a retry/backoff supervisor (``--poll-interval``,
    ``--stall-deadline``), firing a generation when a trigger policy
    says so (``--trigger-edges`` / ``--trigger-seconds`` /
    ``--trigger-drift``; none armed = every non-empty poll). SIGTERM or
    Ctrl-C drains: one final generation flushes the pending delta, the
    journal compacts, and the manifest is left current.

    ``--resume``: continue a crashed or stopped run from the workdir's
    manifest + write-ahead journal instead of starting fresh (the file
    is re-read from the top; the overlay dedups the overlap).
    """
    import json

    from repro.config import AMMSBConfig
    from repro.graph.graph import Graph
    from repro.serve.artifact import load_artifact
    from repro.serve.server import ModelServer
    from repro.stream import (
        FileTailSource,
        FollowSupervisor,
        ResumeError,
        SourceStalled,
        StreamTrainer,
        TriggerPolicy,
        follow_stream,
    )

    workdir = Path(args.workdir)
    history_path = (
        Path(args.history) if args.history else workdir / "history.npz"
    )

    def _report(rep, trigger: str = "") -> None:
        extra = ("" if rep.published
                 else f"  (publish skipped: {rep.publish_error})")
        if trigger:
            extra += f"  [trigger: {trigger}]"
        ing = rep.ingest
        print(f"generation {rep.generation}: N={rep.n_vertices} "
              f"E={rep.n_edges} (+{rep.n_new_nodes} nodes, "
              f"+{ing.accepted} edges, {ing.duplicates} dup, "
              f"{ing.quarantined} quarantined) "
              f"perplexity {rep.perplexity:.4f} "
              f"in {rep.train_seconds:.2f}s{extra}")

    source = FileTailSource(args.edges, strict=False)

    if args.resume:
        try:
            trainer = StreamTrainer.resume(
                workdir,
                iterations_per_generation=args.iterations,
                engine="mp" if args.workers > 0 else "sequential",
                n_workers=args.workers,
                history_path=history_path,
            )
        except ResumeError as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 2
        print(f"resumed generation {trainer.generation} from {workdir} "
              f"(journal seqno {trainer.journal.last_seqno}, "
              f"{trainer.overlay.n_pending} pending edges)", file=sys.stderr)
        arrivals = source.read_all()
    else:
        arrivals = source.read_all()
        if len(arrivals) < 2:
            print(f"{args.edges}: need at least 2 arrivals to replay",
                  file=sys.stderr)
            return 2
        arrivals.sort(key=lambda a: a.timestamp)
        # In follow mode everything already on disk is the base; the
        # stream is what arrives after we start tailing.
        base_fraction = 1.0 if args.follow else args.base_fraction
        n_base = max(1, min(len(arrivals) - (0 if args.follow else 1),
                            int(len(arrivals) * base_fraction)))
        base_pairs = np.array(
            [(a.src, a.dst) for a in arrivals[:n_base]], dtype=np.int64
        )
        lo = np.minimum(base_pairs[:, 0], base_pairs[:, 1])
        hi = np.maximum(base_pairs[:, 0], base_pairs[:, 1])
        keep = (lo != hi) & (lo >= 0)
        if not keep.any():
            print("base prefix has no usable edges (self-loops / bad ids only)",
                  file=sys.stderr)
            return 2
        edges = np.unique(np.stack([lo[keep], hi[keep]], axis=1), axis=0)
        base = Graph(int(edges[:, 1].max()) + 1, edges)

        config = AMMSBConfig(n_communities=args.communities, seed=args.seed)
        publish_path = (
            Path(args.artifact) if args.artifact else workdir / "artifact.npz"
        )
        try:
            trainer = StreamTrainer(
                base,
                config,
                workdir,
                iterations_per_generation=args.iterations,
                publish_path=publish_path,
                engine="mp" if args.workers > 0 else "sequential",
                n_workers=args.workers,
                history_path=history_path,
            )
        except ResumeError as exc:
            print(f"{exc}\n(use --resume to continue it)", file=sys.stderr)
            return 2
        arrivals = arrivals[n_base:]
        print(f"base {base}; {len(arrivals)} arrival(s) pending",
              file=sys.stderr)
        _report(trainer.run_generation())

    if source.n_malformed:
        print(f"skipped {source.n_malformed} malformed line(s)",
              file=sys.stderr)

    artifact_path = trainer.last_published or trainer.publish_path
    if artifact_path is None or not Path(artifact_path).exists():
        print(f"no serving artifact at {artifact_path}; "
              f"run at least one generation first", file=sys.stderr)
        return 2
    server = ModelServer(
        load_artifact(artifact_path), n_workers=0,
        drift_window=args.drift_window, history_path=history_path,
    )
    status = 0
    try:
        trainer.publish_callback = lambda path, gen: server.publish_path(path)
        if args.follow:
            if arrivals:  # pre-follow backlog (resume re-read)
                trainer.ingest(arrivals)
            policy = TriggerPolicy(
                max_edges=args.trigger_edges,
                max_seconds=args.trigger_seconds,
                drift_threshold=args.trigger_drift,
            )
            supervisor = FollowSupervisor(
                source,
                poll_interval_s=args.poll_interval,
                stall_deadline_s=args.stall_deadline,
                seed=args.seed,
            )
            armed = (
                f"edges>={policy.max_edges} " if policy.max_edges else ""
            ) + (
                f"every {policy.max_seconds}s " if policy.max_seconds else ""
            ) + (
                f"drift>={policy.drift_threshold} "
                if policy.drift_threshold else ""
            )
            print(f"following {args.edges} "
                  f"(triggers: {armed.strip() or 'every non-empty poll'}); "
                  f"SIGTERM/Ctrl-C drains and exits", file=sys.stderr)
            try:
                follow = follow_stream(
                    trainer,
                    supervisor,
                    policy,
                    max_generations=args.max_generations,
                    max_wall_s=args.max_seconds,
                    install_signal_handlers=True,
                    on_generation=_report,
                )
            except SourceStalled as exc:
                print(f"source stalled: {exc}", file=sys.stderr)
                status = 3
            else:
                print(f"follow ended ({follow.stop_reason}): "
                      f"{follow.polls} polls, {follow.arrivals} arrivals, "
                      f"{len(follow.generations)} generation(s)"
                      f"{', drained' if follow.drained else ''}",
                      file=sys.stderr)
        else:
            if arrivals:
                chunks = np.array_split(
                    np.arange(len(arrivals)), args.generations
                )
                for chunk in chunks:
                    _report(trainer.run_generation(
                        [arrivals[i] for i in chunk]
                    ))
        for node in args.drift:
            fut = server.membership_drift(int(node))
            server.process_once()
            try:
                print(json.dumps(fut.result(timeout=30), sort_keys=True))
            except KeyError as exc:
                print(f"drift {node}: {exc}", file=sys.stderr)
    finally:
        server.close()
    n_quarantined = len(trainer.quarantine_log)
    if n_quarantined:
        print(f"quarantined: {n_quarantined} record(s) persisted in "
              f"{trainer.quarantine_log.path}", file=sys.stderr)
    print(f"final artifact: {trainer.last_published} "
          f"(journal + manifest + checkpoints under {workdir}; "
          f"resume with --resume)", file=sys.stderr)
    return status


def _cmd_chaos_stream(args: argparse.Namespace) -> int:
    """Run the streaming chaos drill; exit 2 if any invariant fails."""
    from repro.bench import chaosbench

    report = chaosbench.run_chaos_stream(quick=args.quick, seed=args.seed)
    for line in chaosbench.report_rows(report):
        print(line)
    if args.output:
        chaosbench.save_report(report, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    if not report["passed"]:
        failed = [k for k, ok in report["invariants"].items() if not ok]
        print(f"FAIL: invariant(s) violated: {failed}", file=sys.stderr)
        return 2
    print("ok: all durability invariants held", file=sys.stderr)
    return 0


def _cmd_convert_graph(args: argparse.Namespace) -> int:
    """Convert an edge list / NPZ graph into a mapped CSR container."""
    from repro.graph.io import convert_graph

    graph = convert_graph(args.input, args.output, n_vertices=args.vertices)
    print(f"wrote {graph} as CSR container to {args.output}", file=sys.stderr)
    return 0


def _cmd_calibrate(_args: argparse.Namespace) -> int:
    from repro.bench.calibrate import calibration_report, max_relative_error
    from repro.bench.harness import format_table

    print(format_table(calibration_report(), title="Table III calibration"))
    print(f"\nmax relative error: {max_relative_error():.1%}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Fault-injection drill: prove a run survives the chaos plan.

    Runs the real multiprocess backend under a seeded
    :class:`~repro.faults.FaultPlan` (one worker crash + background
    faults), then replays the plan's DKV server stall on the simulated
    cluster to show the stale-read degradation accounting.
    """
    from repro.cluster.spec import das5
    from repro.config import AMMSBConfig, StepSizeConfig
    from repro.dist.mp import MultiprocessAMMSBSampler
    from repro.dist.sampler import DistributedAMMSBSampler
    from repro.faults import FaultPlan, chaos_plan
    from repro.graph.generators import planted_overlapping_graph
    from repro.graph.split import split_heldout

    rng = np.random.default_rng(args.seed)
    graph, _ = planted_overlapping_graph(
        args.vertices, args.communities, memberships_per_vertex=2, rng=rng
    )
    split = split_heldout(graph, 0.03, np.random.default_rng(args.seed + 1))
    config = AMMSBConfig(
        n_communities=args.communities,
        mini_batch_vertices=max(16, args.vertices // 8),
        neighbor_sample_size=16,
        step_phi=StepSizeConfig(a=0.05),
        step_theta=StepSizeConfig(a=0.05),
        seed=args.seed,
    )
    plan = chaos_plan(
        seed=args.seed,
        n_workers=args.workers,
        crash_iteration=max(1, args.iterations // 3),
        rdma_failure_rate=args.rdma_failure_rate,
    )
    print(f"drill plan: {plan.describe()}", file=sys.stderr)

    print("== multiprocess backend: crash + repartition ==")
    with MultiprocessAMMSBSampler(
        split.train,
        config,
        n_workers=args.workers,
        heldout=split,
        faults=plan,
        heartbeat_timeout=args.heartbeat_timeout,
    ) as s:
        s.run(args.iterations)
        perp = s.evaluate_perplexity()
        for ev in s.recoveries:
            kind = "stall-fenced" if ev.stalled else "crash"
            print(f"  iteration {ev.iteration}: lost worker(s) {list(ev.workers)} "
                  f"({kind}); re-partitioned across survivors")
        print(f"  completed {s.iteration} iterations on "
              f"{len(s.active_workers)}/{args.workers} workers, "
              f"perplexity {perp:.4f}")
        s.state_snapshot().validate()

    print("== simulated cluster: DKV stall + stale-read degradation ==")
    sim_plan = FaultPlan(seed=plan.seed, server_stalls=plan.server_stalls)
    clean = DistributedAMMSBSampler(
        split.train, config, cluster=das5(args.workers)
    )
    armed = DistributedAMMSBSampler(
        split.train, config, cluster=das5(args.workers), faults=sim_plan
    )
    clean.run(args.iterations)
    armed.run(args.iterations)
    fs = armed.dkv.fault_stats
    print(f"  timeouts={fs.timeouts} retries={fs.retries} "
          f"stale_batches={fs.stale_batches} dropped_writes={fs.dropped_writes} "
          f"breaker_opens={fs.breaker_opens} max_staleness={fs.max_staleness}")
    print(f"  simulated time {clean.timing.total_seconds:.4f}s clean -> "
          f"{armed.timing.total_seconds:.4f}s degraded")
    print("drill passed: no hang, run completed under faults")
    return 0


def _format_probs(pairs: np.ndarray, probs: np.ndarray) -> str:
    return "\n".join(
        f"{int(a)} {int(b)} {p:.6g}" for (a, b), p in zip(pairs, probs)
    )


def _cmd_query(args: argparse.Namespace) -> int:
    """One-shot query against a serving artifact (no server needed)."""
    from repro.serve.artifact import ArtifactError, load_artifact
    from repro.serve.engine import QueryEngine

    try:
        artifact = load_artifact(args.artifact)
    except ArtifactError as exc:
        print(f"cannot load artifact: {exc}", file=sys.stderr)
        return 3
    engine = QueryEngine(artifact, backend=args.backend)
    op, operands = args.op, [int(v) for v in args.args]

    if op == "membership":
        if len(operands) != 1:
            print("usage: repro query ... membership NODE", file=sys.stderr)
            return 2
        for community, weight in engine.membership(operands[0], args.top):
            print(f"{community} {weight:.6g}")
    elif op == "link":
        if not operands or len(operands) % 2:
            print("usage: repro query ... link A B [A B ...]", file=sys.stderr)
            return 2
        pairs = np.asarray(operands, dtype=np.int64).reshape(-1, 2)
        print(_format_probs(pairs, engine.link_probability(pairs)))
    elif op == "community":
        if len(operands) != 1:
            print("usage: repro query ... community K", file=sys.stderr)
            return 2
        for node, weight in engine.community_members(operands[0], args.top):
            print(f"{node} {weight:.6g}")
    elif op == "recommend":
        if len(operands) != 1:
            print("usage: repro query ... recommend NODE", file=sys.stderr)
            return 2
        for node, score in engine.recommend_edges(operands[0], args.top):
            print(f"{node} {score:.6g}")
    else:  # pragma: no cover - argparse choices filter this
        print(f"unknown op {op!r}", file=sys.stderr)
        return 2
    return 0


def _serve_dispatch(server, line: str) -> str:
    """Answer one line of the ``repro serve`` protocol; raises on bad input."""
    import json

    parts = line.split()
    cmd, rest = parts[0], [int(v) for v in parts[1:]]
    if cmd == "link":
        if not rest or len(rest) % 2:
            raise ValueError("usage: link A B [A B ...]")
        pairs = np.asarray(rest, dtype=np.int64).reshape(-1, 2)
        probs = server.query("link_probability", pairs)
        return _format_probs(pairs, probs)
    if cmd == "membership":
        if len(rest) not in (1, 2):
            raise ValueError("usage: membership NODE [K]")
        ranked = server.query("membership", rest[0], rest[1] if len(rest) > 1 else None)
        return "\n".join(f"{c} {w:.6g}" for c, w in ranked)
    if cmd == "community":
        if len(rest) not in (1, 2):
            raise ValueError("usage: community K [N]")
        ranked = server.query(
            "community_members", rest[0], rest[1] if len(rest) > 1 else 10
        )
        return "\n".join(f"{n} {w:.6g}" for n, w in ranked)
    if cmd == "recommend":
        if len(rest) not in (1, 2):
            raise ValueError("usage: recommend NODE [N]")
        ranked = server.query(
            "recommend_edges", rest[0], rest[1] if len(rest) > 1 else 10
        )
        return "\n".join(f"{n} {s:.6g}" for n, s in ranked)
    if cmd == "drift":
        if len(rest) not in (1, 2):
            raise ValueError("usage: drift NODE [LAST]")
        drift = server.query(
            "membership_drift", rest[0], rest[1] if len(rest) > 1 else None
        )
        return json.dumps(drift, indent=2, sort_keys=True)
    if cmd == "stats":
        return json.dumps(server.stats(), indent=2, sort_keys=True)
    if cmd == "health":
        return json.dumps(server.health(), indent=2, sort_keys=True)
    raise ValueError(
        f"unknown command {cmd!r}; known: link membership community "
        f"recommend drift stats health quit"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve an artifact over a stdin/stdout line protocol.

    Protocol: ``link A B [A B ...]`` | ``membership NODE [K]`` |
    ``community K [N]`` | ``recommend NODE [N]`` | ``drift NODE [LAST]``
    | ``stats`` | ``quit``. Errors are reported per line; the server
    keeps running. ``drift`` needs ``--drift-window`` > 0.
    """
    from repro.serve.artifact import ArtifactError, load_artifact
    from repro.serve.server import ModelServer, ShedPolicy

    try:
        artifact = load_artifact(args.artifact)
    except ArtifactError as exc:
        print(f"cannot load artifact: {exc}", file=sys.stderr)
        return 3
    shed_policy = (
        ShedPolicy(slo_p99_ms=args.slo_p99_ms)
        if args.slo_p99_ms is not None
        else None
    )
    with ModelServer(
        artifact,
        n_workers=args.workers,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        default_deadline_ms=args.deadline_ms,
        shed_policy=shed_policy,
        drift_window=args.drift_window,
        history_path=args.history,
    ) as server:
        print(
            f"serving {artifact.n_nodes} nodes x {artifact.n_communities} "
            f"communities (artifact {artifact.version}); type 'quit' to exit",
            file=sys.stderr,
        )
        for raw in sys.stdin:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line == "quit":
                break
            try:
                print(_serve_dispatch(server, line))
            except Exception as exc:  # noqa: BLE001 - interactive loop
                print(f"error: {exc}", file=sys.stderr)
            sys.stdout.flush()
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    """Run the serving load generator; exit 2 if any query dropped/errored."""
    from repro.bench import servebench
    from repro.bench.harness import format_table

    report = servebench.run_serve_bench(quick=args.quick, seed=args.seed)
    print(format_table(servebench.report_rows(report), title="Serving bench"))
    if args.output:
        servebench.save_report(report, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    if not report["hot_swap"]["zero_dropped_or_errored"]:
        print("FAIL: queries dropped or errored under load", file=sys.stderr)
        return 2
    return 0


def _cmd_chaos_serve(args: argparse.Namespace) -> int:
    """Serving-tier chaos drill: corrupt publishes, a mid-swap failure,
    a worker-thread crash, and latency spikes against a live server
    under load; exit 2 unless every recovery invariant holds."""
    import json

    from repro.bench import servebench
    from repro.bench.harness import format_table

    report = servebench.run_chaos_serve(quick=args.quick, seed=args.seed)
    print(f"drill plan: {report['plan']}", file=sys.stderr)
    print(format_table(
        servebench.chaos_report_rows(report), title="Serving chaos drill"
    ))
    if args.output:
        Path(args.output).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.output}", file=sys.stderr)
    if not report["passed"]:
        failed = [k for k, ok in report["invariants"].items() if not ok]
        print(f"FAIL: recovery invariant(s) violated: {failed}", file=sys.stderr)
        return 2
    print("drill passed: server survived corruption, rollback, crash, "
          "and deadlines with typed errors only", file=sys.stderr)
    return 0


def _cmd_auc(args: argparse.Namespace) -> int:
    """Held-out link-prediction AUC of a checkpoint or serving artifact."""
    from repro.core.perplexity import link_prediction_auc
    from repro.graph.io import load_edge_list
    from repro.graph.split import split_heldout

    if (args.checkpoint is None) == (args.artifact is None):
        print("exactly one of --checkpoint / --artifact is required",
              file=sys.stderr)
        return 2
    if args.checkpoint:
        from repro.core.checkpoint import CheckpointError, load_state_checkpoint

        try:
            state, iteration, config = load_state_checkpoint(args.checkpoint)
        except CheckpointError as exc:
            print(f"cannot load checkpoint: {exc}", file=sys.stderr)
            return 3
        pi, beta, delta = state.pi, state.beta, config.delta
        source = f"checkpoint {args.checkpoint} (iteration {iteration})"
    else:
        from repro.serve.artifact import ArtifactError, load_artifact

        try:
            artifact = load_artifact(args.artifact)
        except ArtifactError as exc:
            print(f"cannot load artifact: {exc}", file=sys.stderr)
            return 3
        pi, beta, delta = artifact.pi, artifact.beta, artifact.config.delta
        source = f"artifact {args.artifact} (version {artifact.version})"

    graph = load_edge_list(args.edges)
    if graph.n_vertices > pi.shape[0]:
        print(f"graph has {graph.n_vertices} vertices but the model covers "
              f"{pi.shape[0]}", file=sys.stderr)
        return 2
    split = split_heldout(
        graph, args.heldout_fraction, np.random.default_rng(args.seed)
    )
    auc = link_prediction_auc(
        pi, beta, split.heldout_pairs, split.heldout_labels, delta
    )
    print(f"AUC {auc:.4f} ({split.n_links} held-out links, "
          f"{len(split.heldout_pairs) - split.n_links} non-links, {source})",
          file=sys.stderr)
    print(f"{auc:.6f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalable overlapping community detection (IPPS 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("detect", help="detect communities in an edge list")
    p.add_argument("--edges", required=True, help="edge-list file (SNAP format)")
    p.add_argument("--communities", "-k", type=int, required=True)
    p.add_argument("--iterations", type=int, default=4000)
    p.add_argument("--mini-batch", type=int, default=128)
    p.add_argument("--neighbors", type=int, default=32)
    p.add_argument("--step", type=float, default=0.05)
    p.add_argument("--threshold", type=float, default=0.25)
    p.add_argument("--heldout-fraction", type=float, default=0.02)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", "-o", default=None, help="covers file (default stdout)")
    p.add_argument("--checkpoint", default=None,
                   help="write a resumable checkpoint here after each report")
    p.add_argument("--resume", default=None, help="resume from a checkpoint file")
    p.add_argument("--export-artifact", default=None,
                   help="also export a serving artifact (.npz) of the final state")
    p.set_defaults(func=_cmd_detect)

    p = sub.add_parser("generate", help="write a synthetic graph edge list")
    p.add_argument("--dataset", default=None, help="Table II name for a stand-in")
    p.add_argument("--scale", type=float, default=1e-3)
    p.add_argument("--vertices", type=int, default=400)
    p.add_argument("--communities", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", "-o", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("benchmark", help="regenerate a paper figure/table")
    p.add_argument("--experiment", "-e", required=True,
                   help=f"one of {sorted(EXPERIMENTS)}")
    p.add_argument("--csv", default=None, help="also write the rows as CSV")
    p.set_defaults(func=_cmd_benchmark)

    p = sub.add_parser("bench-kernels", help="time the kernel backends")
    p.add_argument("--output", "-o", default=None,
                   help="write the machine-readable report JSON here")
    p.add_argument("--quick", action="store_true",
                   help="smaller workloads / fewer repeats (for CI)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backends", nargs="+", default=None,
                   help="backends to time (default: every registered one)")
    p.set_defaults(func=_cmd_bench_kernels)

    p = sub.add_parser("bench-check",
                       help="compare a bench suite against a baseline JSON")
    p.add_argument("--suite", choices=sorted(_BENCH_SUITES), default="kernels",
                   help="which bench to rerun and compare (default kernels)")
    p.add_argument("--baseline", default=None,
                   help="checked-in baseline report (default: the suite's "
                        "BENCH_*.json)")
    p.add_argument("--threshold", type=float, default=None,
                   help="max tolerated relative ratio drop (default: 0.25 "
                        "for kernels, 0.5 for mem/serve/stream)")
    p.add_argument("--quick", action="store_true",
                   help="smaller workloads / fewer repeats (for CI)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", "-o", default=None,
                   help="also write the fresh report JSON here (CI artifact)")
    p.set_defaults(func=_cmd_bench_check)

    p = sub.add_parser("bench-mem", help="run the storage/memory bench")
    p.add_argument("--output", "-o", default=None,
                   help="write the machine-readable report JSON here")
    p.add_argument("--quick", action="store_true",
                   help="smaller graph / fewer repeats (for CI)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_bench_mem)

    p = sub.add_parser("convert-graph",
                       help="convert an edge list / NPZ into a CSR container")
    p.add_argument("--input", "-i", required=True,
                   help="edge-list file (SNAP format) or .npz graph")
    p.add_argument("--output", "-o", required=True,
                   help="container directory to write (e.g. graph.csr)")
    p.add_argument("--vertices", type=int, default=None,
                   help="vertex-id space if the edge list is sparse in ids "
                        "(default: inferred, ids are densely remapped)")
    p.set_defaults(func=_cmd_convert_graph)

    p = sub.add_parser("calibrate", help="print the Table III calibration report")
    p.set_defaults(func=_cmd_calibrate)

    p = sub.add_parser("query", help="one-shot query against a serving artifact")
    p.add_argument("--artifact", required=True, help="serving artifact (.npz)")
    p.add_argument("--backend", default=None,
                   help="kernel backend override (default: artifact config)")
    p.add_argument("--top", type=int, default=10,
                   help="result count for ranked ops (default 10)")
    p.add_argument("op", choices=["membership", "link", "community", "recommend"])
    p.add_argument("args", nargs="*", help="op operands (node/community ids)")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("serve",
                       help="serve an artifact over a stdin line protocol")
    p.add_argument("--artifact", required=True, help="serving artifact (.npz)")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--max-delay-ms", type=float, default=1.0)
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="fail requests queued longer than this (default: none)")
    p.add_argument("--slo-p99-ms", type=float, default=None,
                   help="enable SLO load shedding at this p99 target "
                        "(default: shedding off)")
    p.add_argument("--history", default=None,
                   help="membership-history checkpoint to reload/persist "
                        "(survives server restarts; needs --drift-window)")
    p.add_argument("--drift-window", type=int, default=0,
                   help="retain this many generations of membership "
                        "history for 'drift' queries (default: off)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("bench-serve", help="run the serving load-generator bench")
    p.add_argument("--output", "-o", default=None,
                   help="write the machine-readable report JSON here")
    p.add_argument("--quick", action="store_true",
                   help="smaller workload (for CI)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_bench_serve)

    p = sub.add_parser("stream",
                       help="replay a timestamped edge file through the "
                            "streaming train-to-serve loop")
    p.add_argument("--edges", required=True,
                   help="arrival file: 'src dst' or 'ts src dst' lines")
    p.add_argument("--communities", "-k", type=int, required=True)
    p.add_argument("--iterations", type=int, default=200,
                   help="training budget per generation (default 200)")
    p.add_argument("--generations", type=int, default=2,
                   help="batches the post-base arrivals split into")
    p.add_argument("--base-fraction", type=float, default=0.9,
                   help="arrival prefix forming the warm-start base graph")
    p.add_argument("--workdir", default="stream-work",
                   help="per-generation CSR containers + checkpoints")
    p.add_argument("--artifact", default=None,
                   help="published artifact path "
                        "(default: WORKDIR/artifact.npz)")
    p.add_argument("--workers", type=int, default=0,
                   help="mp-engine worker count (0 = in-process sequential)")
    p.add_argument("--drift-window", type=int, default=8,
                   help="generations of membership history retained")
    p.add_argument("--follow", action="store_true",
                   help="keep tailing the file live under the retry "
                        "supervisor (SIGTERM/Ctrl-C drains and exits)")
    p.add_argument("--resume", action="store_true",
                   help="continue a crashed/stopped run from the workdir's "
                        "manifest + write-ahead journal")
    p.add_argument("--trigger-edges", type=int, default=None,
                   help="follow: retrain once this many novel edges pend")
    p.add_argument("--trigger-seconds", type=float, default=None,
                   help="follow: retrain after this much wall time with "
                        "anything pending")
    p.add_argument("--trigger-drift", type=float, default=None,
                   help="follow: retrain once pending edges exceed this "
                        "fraction of the base graph's edges")
    p.add_argument("--poll-interval", type=float, default=0.5,
                   help="follow: sleep between empty polls (seconds)")
    p.add_argument("--stall-deadline", type=float, default=30.0,
                   help="follow: give up after the source has been "
                        "unreadable this long (seconds)")
    p.add_argument("--max-generations", type=int, default=None,
                   help="follow: stop after this many generations")
    p.add_argument("--max-seconds", type=float, default=None,
                   help="follow: stop after this much wall time")
    p.add_argument("--history", default=None,
                   help="membership-history checkpoint path "
                        "(default: WORKDIR/history.npz)")
    p.add_argument("--drift", nargs="*", type=int, default=[],
                   help="nodes to print membership_drift JSON for at the end")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_stream)

    p = sub.add_parser("bench-stream",
                       help="run the streaming warm-vs-cold bench")
    p.add_argument("--output", "-o", default=None,
                   help="write the machine-readable report JSON here")
    p.add_argument("--quick", action="store_true",
                   help="smaller workload (for CI)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_bench_stream)

    p = sub.add_parser("auc", help="held-out link-prediction AUC")
    p.add_argument("--edges", required=True, help="edge-list file (SNAP format)")
    p.add_argument("--checkpoint", default=None, help="model checkpoint (.npz)")
    p.add_argument("--artifact", default=None, help="serving artifact (.npz)")
    p.add_argument("--heldout-fraction", type=float, default=0.02)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_auc)

    p = sub.add_parser("chaos", help="run the fault-injection drill")
    p.add_argument("--vertices", type=int, default=200)
    p.add_argument("--communities", "-k", type=int, default=4)
    p.add_argument("--workers", type=int, default=3)
    p.add_argument("--iterations", type=int, default=9)
    p.add_argument("--seed", type=int, default=2026)
    p.add_argument("--rdma-failure-rate", type=float, default=0.05)
    p.add_argument("--heartbeat-timeout", type=float, default=15.0)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("chaos-stream",
                       help="run the streaming durability chaos drill")
    p.add_argument("--quick", action="store_true",
                   help="smaller graph (CI-sized; same fault coverage)")
    p.add_argument("--seed", type=int, default=2026)
    p.add_argument("--output", "-o", default=None,
                   help="also write the drill report as JSON")
    p.set_defaults(func=_cmd_chaos_stream)

    p = sub.add_parser("chaos-serve",
                       help="run the serving-tier chaos drill")
    p.add_argument("--quick", action="store_true",
                   help="smaller load (for CI)")
    p.add_argument("--seed", type=int, default=2026)
    p.add_argument("--output", "-o", default=None,
                   help="write the machine-readable drill report JSON here")
    p.set_defaults(func=_cmd_chaos_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - direct execution
    raise SystemExit(main())
