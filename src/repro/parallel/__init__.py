"""Single-node multi-threaded engine (vertical scaling, Section IV-D).

NumPy releases the GIL inside its kernels, so chunked thread-pool
data-parallelism over the mini-batch vertices mirrors the paper's OpenMP
parallelization of update_phi and the perplexity kernel.
"""

from repro.parallel.threadpool import chunked_thread_map, chunk_ranges
from repro.parallel.sampler import ThreadedAMMSBSampler

__all__ = ["chunked_thread_map", "chunk_ranges", "ThreadedAMMSBSampler"]
