"""Multi-threaded single-node sampler (the paper's vertical-scaling rival).

:class:`ThreadedAMMSBSampler` extends the sequential reference by running
update_phi (the dominant stage) and the theta-gradient partials over a
thread pool, chunked across mini-batch vertices / stratum edges. Noise is
pre-drawn for the whole mini-batch before chunking, so the threaded run is
numerically identical to the sequential one given the same RNG seeds —
the property the equivalence tests rely on.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from repro.config import AMMSBConfig
from repro.core.kernels import KernelWorkspace
from repro.core.minibatch import Minibatch, NeighborSample
from repro.core.sampler import AMMSBSampler
from repro.graph.graph import Graph
from repro.graph.split import HeldoutSplit
from repro.parallel.threadpool import chunked_thread_map

#: Workspaces are not thread-safe, so each pool thread keeps its own;
#: capacity-grown buffers persist across iterations (and samplers).
_TLS = threading.local()


def thread_workspace() -> KernelWorkspace:
    """This thread's reusable kernel workspace (created on first use)."""
    ws = getattr(_TLS, "workspace", None)
    if ws is None:
        ws = KernelWorkspace()
        _TLS.workspace = ws
    return ws


class ThreadedAMMSBSampler(AMMSBSampler):
    """Data-parallel sampler for one shared-memory machine.

    Args:
        graph / config / heldout / state: as the sequential sampler.
        n_threads: worker threads (default: half the logical CPUs, a
            reasonable stand-in for physical cores).
    """

    def __init__(
        self,
        graph: Graph,
        config: AMMSBConfig,
        heldout: Optional[HeldoutSplit] = None,
        state=None,
        n_threads: Optional[int] = None,
    ) -> None:
        super().__init__(graph, config, heldout=heldout, state=state)
        if n_threads is None:
            import os

            n_threads = max(1, (os.cpu_count() or 2) // 2)
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads

    def update_phi_pi(
        self,
        minibatch: Minibatch,
        neighbor_sample: NeighborSample,
        noise: Optional[np.ndarray] = None,
    ) -> None:
        """Chunked thread-parallel version of the phi/pi stage.

        The chunk kernel reads shared state (pi rows of neighbors) and
        writes disjoint rows (its own mini-batch vertices), so no locking
        is needed — the same argument the paper makes for the absence of
        read/write hazards in the DKV stages.
        """
        cfg = self.config
        vs = minibatch.vertices
        m = vs.size
        if noise is None:
            noise = self.noise_rng.standard_normal((m, cfg.n_communities))
        eps_t = cfg.step_phi.at(self.iteration)
        beta = self.state.beta
        n_vertices = self.graph.n_vertices

        pi = self.state.pi
        phi_sum = self.state.phi_sum
        new_phi = np.empty((m, cfg.n_communities), dtype=pi.dtype)

        def work(a: int, b: int) -> None:
            ws = thread_workspace()
            sl = slice(a, b)
            v = vs[sl]
            pi_a = pi[v]
            phi_sum_a = phi_sum[v]
            pi_b = pi[neighbor_sample.neighbors[sl]]
            grad = self.kernels.phi_gradient_sum(
                pi_a,
                phi_sum_a,
                pi_b,
                neighbor_sample.labels[sl],
                beta,
                cfg.delta,
                mask=neighbor_sample.mask[sl],
                workspace=ws,
            )
            counts = np.maximum(neighbor_sample.mask[sl].sum(axis=1, keepdims=True), 1)
            new_phi[sl] = self.kernels.update_phi(
                pi_a * phi_sum_a[:, None],
                grad,
                eps_t=eps_t,
                alpha=cfg.effective_alpha,
                scale=n_vertices / counts,
                noise=noise[sl],
                phi_floor=cfg.phi_floor,
                phi_clip=cfg.phi_clip,
                workspace=ws,
            )

        chunked_thread_map(work, m, self.n_threads)
        self.state.set_phi_rows(vs, new_phi)

    def update_beta_theta(
        self, minibatch: Minibatch, noise: Optional[np.ndarray] = None
    ) -> None:
        """Thread-parallel theta gradient over the concatenated strata.

        The strata are batched into one edge array with per-edge h-weights
        (as in the sequential engine) and chunked by edge range; partial
        sums are reduced in chunk order, so results match the sequential
        engine up to float-addition reordering across chunk boundaries.
        """
        cfg = self.config
        pairs, labels, scales = minibatch.all_pairs()
        theta = self.state.theta
        pi = self.state.pi

        def work(a: int, b: int) -> np.ndarray:
            sl = slice(a, b)
            return self.kernels.theta_gradient_weighted(
                pi[pairs[sl, 0]],
                pi[pairs[sl, 1]],
                labels[sl],
                theta,
                cfg.delta,
                weights=scales[sl],
                workspace=thread_workspace(),
            )

        parts = chunked_thread_map(work, pairs.shape[0], self.n_threads)
        grad_total = np.zeros_like(theta)
        for p in parts:
            grad_total += p
        if noise is None:
            noise = self.noise_rng.standard_normal(theta.shape)
        self.state.theta = self.kernels.update_theta(
            theta,
            grad_total,
            eps_t=cfg.step_theta.at(self.iteration),
            eta=cfg.eta,
            scale=1.0,
            noise=noise,
        )
