"""Multi-threaded single-node sampler (the paper's vertical-scaling rival).

:class:`ThreadedAMMSBSampler` extends the sequential reference by running
update_phi (the dominant stage) and the theta-gradient partials over a
thread pool, chunked across mini-batch vertices / stratum edges. Noise is
pre-drawn for the whole mini-batch before chunking, so the threaded run is
numerically identical to the sequential one given the same RNG seeds —
the property the equivalence tests rely on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import AMMSBConfig
from repro.core import gradients
from repro.core.minibatch import Minibatch, NeighborSample
from repro.core.sampler import AMMSBSampler
from repro.graph.graph import Graph
from repro.graph.split import HeldoutSplit
from repro.parallel.threadpool import chunked_thread_map


class ThreadedAMMSBSampler(AMMSBSampler):
    """Data-parallel sampler for one shared-memory machine.

    Args:
        graph / config / heldout / state: as the sequential sampler.
        n_threads: worker threads (default: half the logical CPUs, a
            reasonable stand-in for physical cores).
    """

    def __init__(
        self,
        graph: Graph,
        config: AMMSBConfig,
        heldout: Optional[HeldoutSplit] = None,
        state=None,
        n_threads: Optional[int] = None,
    ) -> None:
        super().__init__(graph, config, heldout=heldout, state=state)
        if n_threads is None:
            import os

            n_threads = max(1, (os.cpu_count() or 2) // 2)
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads

    def update_phi_pi(
        self,
        minibatch: Minibatch,
        neighbor_sample: NeighborSample,
        noise: Optional[np.ndarray] = None,
    ) -> None:
        """Chunked thread-parallel version of the phi/pi stage.

        The chunk kernel reads shared state (pi rows of neighbors) and
        writes disjoint rows (its own mini-batch vertices), so no locking
        is needed — the same argument the paper makes for the absence of
        read/write hazards in the DKV stages.
        """
        cfg = self.config
        vs = minibatch.vertices
        m = vs.size
        if noise is None:
            noise = self.noise_rng.standard_normal((m, cfg.n_communities))
        eps_t = cfg.step_phi.at(self.iteration)
        beta = self.state.beta
        n_vertices = self.graph.n_vertices

        pi = self.state.pi
        phi_sum = self.state.phi_sum
        new_phi = np.empty((m, cfg.n_communities))

        def work(a: int, b: int) -> None:
            sl = slice(a, b)
            v = vs[sl]
            pi_a = pi[v]
            phi_sum_a = phi_sum[v]
            pi_b = pi[neighbor_sample.neighbors[sl]]
            grad = gradients.phi_gradient_sum(
                pi_a,
                phi_sum_a,
                pi_b,
                neighbor_sample.labels[sl],
                beta,
                cfg.delta,
                mask=neighbor_sample.mask[sl],
            )
            counts = np.maximum(neighbor_sample.mask[sl].sum(axis=1, keepdims=True), 1)
            new_phi[sl] = gradients.update_phi(
                pi_a * phi_sum_a[:, None],
                grad,
                eps_t=eps_t,
                alpha=cfg.effective_alpha,
                scale=n_vertices / counts,
                noise=noise[sl],
                phi_floor=cfg.phi_floor,
                phi_clip=cfg.phi_clip,
            )

        chunked_thread_map(work, m, self.n_threads)
        self.state.set_phi_rows(vs, new_phi)

    def update_beta_theta(
        self, minibatch: Minibatch, noise: Optional[np.ndarray] = None
    ) -> None:
        """Thread-parallel theta gradient: one task per stratum, summed.

        Summation order is fixed (stratum index), so results match the
        sequential engine bit-for-bit up to float addition order within a
        stratum, which is unchanged.
        """
        cfg = self.config
        strata = minibatch.strata

        def work(a: int, b: int) -> np.ndarray:
            part = np.zeros_like(self.state.theta)
            for s in strata[a:b]:
                pi_a = self.state.pi[s.pairs[:, 0]]
                pi_b = self.state.pi[s.pairs[:, 1]]
                part += s.scale * gradients.theta_gradient_sum(
                    pi_a, pi_b, s.labels.astype(np.int64), self.state.theta, cfg.delta
                )
            return part

        parts = chunked_thread_map(work, len(strata), self.n_threads)
        grad_total = np.zeros_like(self.state.theta)
        for p in parts:
            grad_total += p
        if noise is None:
            noise = self.noise_rng.standard_normal(self.state.theta.shape)
        self.state.theta = gradients.update_theta(
            self.state.theta,
            grad_total,
            eps_t=cfg.step_theta.at(self.iteration),
            eta=cfg.eta,
            scale=1.0,
            noise=noise,
        )
