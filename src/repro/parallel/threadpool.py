"""Chunked thread-pool helpers for data-parallel NumPy kernels.

The a-MMSB kernels are embarrassingly data-parallel over mini-batch
vertices (update_phi) and held-out pairs (perplexity). NumPy releases the
GIL inside vectorized operations, so a ThreadPoolExecutor over contiguous
chunks gives real multi-core speedup without shared-memory copies — the
Python analogue of the paper's OpenMP ``parallel for``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def chunk_ranges(n: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split range(n) into ``n_chunks`` near-equal contiguous (start, stop).

    Empty chunks are dropped, so the result may be shorter than
    ``n_chunks`` when ``n < n_chunks``.
    """
    if n < 0 or n_chunks < 1:
        raise ValueError("need n >= 0 and n_chunks >= 1")
    bounds = [i * n // n_chunks for i in range(n_chunks + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(n_chunks) if bounds[i] < bounds[i + 1]]


def chunked_thread_map(
    fn: Callable[[int, int], T],
    n: int,
    n_threads: int,
    chunks_per_thread: int = 1,
) -> list[T]:
    """Apply ``fn(start, stop)`` over chunks of range(n) in a thread pool.

    Results are returned in chunk order. With ``n_threads == 1`` the pool
    is bypassed entirely (exact sequential semantics, no thread overhead).
    """
    ranges = chunk_ranges(n, max(1, n_threads * chunks_per_thread))
    if n_threads <= 1 or len(ranges) <= 1:
        return [fn(a, b) for a, b in ranges]
    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        futures = [pool.submit(fn, a, b) for a, b in ranges]
        return [f.result() for f in futures]
