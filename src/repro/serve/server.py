"""Micro-batching model server: queueing, coalescing, caching, hot-swap.

The online half of the train->serve stack. Clients submit queries and get
:class:`concurrent.futures.Future` handles back immediately; worker
threads coalesce queued requests into batches (flushed at ``max_batch``
requests or ``max_delay_ms`` after the oldest request, whichever comes
first) and answer them through a per-thread
:class:`~repro.serve.engine.QueryEngine`. NumPy releases the GIL inside
the batched kernels, so the worker pool overlaps scoring with request
admission — the same chunked-thread-pool trick :mod:`repro.parallel`
uses for training.

Operational semantics:

- **Backpressure**: the request queue is bounded; a submit against a full
  queue raises a typed :class:`ServerOverloaded` *immediately* (callers
  shed load or retry; the server never builds an unbounded backlog).
- **Load shedding** (opt-in via :class:`ShedPolicy`): *before* the queue
  fills, admission control starts refusing work — typed
  :class:`RequestShed` — when the queue passes a high-water fraction or
  the observed p99 breaches the SLO. Membership queries can instead be
  answered **degraded** straight from the artifact's precomputed top-K
  table (bit-identical to the engine fast path for ``k`` within it),
  keeping the cheapest endpoint alive while the kernel path is
  saturated.
- **Deadlines**: requests may carry a deadline (or inherit
  ``default_deadline_ms``); a request still queued past its deadline is
  failed with a typed :class:`DeadlineExceeded` instead of occupying a
  batch slot — late answers are worthless, don't compute them.
- **Watchdog**: a supervisor thread detects dead or stalled worker
  threads (mirroring :mod:`repro.dist.mp`'s heartbeat fencing), fails
  their in-flight futures with :class:`~repro.faults.WorkerCrashed`,
  fences the zombie, and respawns a replacement that inherits the slot's
  batch counter — no request ever hangs on a dead thread.
- **Result cache**: an LRU keyed by (artifact generation, endpoint,
  canonical payload) with hit/miss/eviction accounting. Hits complete
  without touching the queue. Stale-generation entries are purged
  eagerly on every hot-swap instead of squatting on capacity.
- **Zero-downtime hot-swap**: :meth:`publish` atomically installs a new
  artifact mid-traffic. In-flight batches finish on the engine they
  started with; later batches (and cache keys, via the generation
  counter) see only the new model. No request is dropped or errored by a
  swap. :meth:`publish_path` adds the durability story: the file is
  loaded with full SHA-256 verification, damage is quarantined
  (:func:`~repro.serve.artifact.quarantine_artifact`), and a swap that
  fails mid-flight rolls back to the last-known-good artifact tracked in
  an :class:`~repro.serve.artifact.ArtifactRegistry` — a bad publish can
  never poison the server.
- **Probes**: :meth:`health` (liveness: workers up, artifact identity,
  rollback history) and :meth:`ready` (accepting new work right now)
  for load balancers and the chaos drill.
- **Metrics**: every answer is recorded into a
  :class:`~repro.serve.metrics.ServerMetrics` (per-endpoint QPS +
  latency histograms, queue depth, cache, batching, and the resilience
  taxonomy) exported by :meth:`stats`.

Fault injection: a seeded :class:`~repro.faults.ServeFaultPlan` drives
worker-thread crashes/stalls, swap-time failures, and engine latency
spikes through the same code paths real failures take
(``tests/test_serve_faults.py``, ``repro chaos-serve``). ``faults=None``
or an empty plan bypasses every injection branch.

``n_workers=0`` runs no threads (and no watchdog); callers drain the
queue explicitly with :meth:`process_once` — deterministic single-step
mode for tests.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

import numpy as np

from repro.faults import ServeFaultPlan, WorkerCrashed
from repro.serve.artifact import (
    ArtifactCorrupt,
    ArtifactError,
    ArtifactRegistry,
    ModelArtifact,
    PathLike,
    load_artifact,
    quarantine_artifact,
)
from repro.serve.engine import QueryEngine
from repro.serve.metrics import ServerMetrics

ENDPOINTS = (
    "link_probability",
    "membership",
    "community_members",
    "recommend_edges",
    "membership_drift",
)


class ServerOverloaded(RuntimeError):
    """The bounded request queue is full; the caller must back off."""

    def __init__(self, queue_limit: int) -> None:
        self.queue_limit = queue_limit
        super().__init__(
            f"request queue full ({queue_limit} pending); retry with backoff"
        )


class RequestShed(RuntimeError):
    """Admission control refused the request before it entered the queue
    (SLO protection, not a hard queue overflow). Typed so clients can
    distinguish "back off, the server is protecting its tail latency"
    from :class:`ServerOverloaded`."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(f"request shed: {reason}")


class DeadlineExceeded(RuntimeError):
    """The request's deadline expired while it was still queued."""

    def __init__(self, endpoint: str, waited_ms: float, deadline_ms: float) -> None:
        self.endpoint = endpoint
        self.waited_ms = waited_ms
        self.deadline_ms = deadline_ms
        super().__init__(
            f"{endpoint}: queued {waited_ms:.3g}ms past its "
            f"{deadline_ms:.3g}ms deadline"
        )


class SwapFailed(RuntimeError):
    """A ``publish`` failed mid-swap; the server rolled back to the
    last-known-good artifact and kept serving."""

    def __init__(self, failed_version: str, serving_version: str) -> None:
        self.failed_version = failed_version
        self.serving_version = serving_version
        super().__init__(
            f"publish of {failed_version!r} failed mid-swap; "
            f"rolled back to last-known-good {serving_version!r}"
        )


@dataclass(frozen=True)
class ShedPolicy:
    """SLO-aware admission control knobs (opt-in; ``None`` disables).

    Shedding triggers when the queue passes ``queue_high_fraction`` of
    its limit *or* the windowed p99 exceeds ``slo_p99_ms`` (a stale/empty
    latency window never triggers — see
    :meth:`~repro.serve.metrics.ServerMetrics.observed_p99_ms`).
    """

    slo_p99_ms: float = 50.0
    queue_high_fraction: float = 0.8
    degraded_membership: bool = True
    p99_window: int = 256

    def __post_init__(self) -> None:
        if self.slo_p99_ms <= 0:
            raise ValueError("slo_p99_ms must be > 0")
        if not 0.0 < self.queue_high_fraction <= 1.0:
            raise ValueError("queue_high_fraction must be in (0, 1]")
        if self.p99_window < 1:
            raise ValueError("p99_window must be >= 1")


@dataclass
class _Request:
    endpoint: str
    payload: Any
    key: Optional[tuple]
    queries: int
    deadline: Optional[float] = None  # absolute perf_counter seconds
    future: Future = field(default_factory=Future)
    enqueued: float = field(default_factory=time.perf_counter)


class _WorkerSlot:
    """One worker position: the live thread plus its fencing state.

    ``batches`` counts batches *started* in this slot across respawns
    (the replacement thread inherits it, so a fault scheduled at batch
    ``b`` fires exactly once). All fields are guarded by the server
    lock.
    """

    def __init__(self, index: int, batches: int = 0) -> None:
        self.index = index
        self.batches = batches
        self.thread: Optional[threading.Thread] = None
        self.inflight: Optional[list["_Request"]] = None
        self.busy_since = 0.0
        self.fenced = False


class ModelServer:
    """Serves one :class:`ModelArtifact` behind a micro-batching queue.

    Args:
        artifact: the snapshot to serve first (hot-swappable later).
        n_workers: worker threads (0 = manual :meth:`process_once` mode).
        max_batch: flush a batch at this many coalesced requests.
        max_delay_ms: ... or this long after the oldest queued request.
        queue_limit: bounded-queue capacity; beyond it submits raise
            :class:`ServerOverloaded`.
        cache_size: LRU result-cache capacity (0 disables caching).
        default_deadline_ms: deadline applied to requests that don't
            carry their own (``None`` = no default deadline).
        shed_policy: opt-in SLO admission control (``None`` = only the
            hard :class:`ServerOverloaded` backpressure applies).
        faults: optional seeded :class:`~repro.faults.ServeFaultPlan`;
            ``None``/empty bypasses every injection branch.
        stall_timeout_s: watchdog fences a worker holding one batch
            longer than this.
        watchdog_interval_s: watchdog poll period.
        drift_window: generations of aligned membership history retained
            for the ``membership_drift`` endpoint (0 disables it). The
            history (:class:`repro.stream.tracking.MembershipHistory`)
            survives hot-swaps: each successful publish is aligned and
            recorded, so drift answers span artifact generations.
        history_path: optional checkpoint file for the drift history.
            When it exists at startup the history is *reloaded* from it
            — drift answers survive a server restart, staying in the
            same canonical label space — and every subsequent record is
            checkpointed back atomically. The startup artifact is only
            recorded if the reloaded history doesn't already end on it
            (matched by content version).
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        n_workers: int = 2,
        max_batch: int = 64,
        max_delay_ms: float = 1.0,
        queue_limit: int = 1024,
        cache_size: int = 4096,
        default_deadline_ms: Optional[float] = None,
        shed_policy: Optional[ShedPolicy] = None,
        faults: Optional[ServeFaultPlan] = None,
        stall_timeout_s: float = 5.0,
        watchdog_interval_s: float = 0.25,
        drift_window: int = 0,
        history_path: Optional[PathLike] = None,
    ) -> None:
        if n_workers < 0 or max_batch < 1 or queue_limit < 1 or cache_size < 0:
            raise ValueError("invalid server sizing parameter")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be > 0")
        if stall_timeout_s <= 0 or watchdog_interval_s <= 0:
            raise ValueError("watchdog timings must be > 0")
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay_ms) / 1e3
        self.queue_limit = int(queue_limit)
        self.cache_size = int(cache_size)
        self.default_deadline = (
            None if default_deadline_ms is None else float(default_deadline_ms) / 1e3
        )
        self.shed_policy = shed_policy
        self.stall_timeout = float(stall_timeout_s)
        self.watchdog_interval = float(watchdog_interval_s)
        self._faults = None if faults is None or faults.empty else faults

        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queue: deque[_Request] = deque()
        self._cache: OrderedDict[tuple, Any] = OrderedDict()
        self._artifact = artifact
        self._generation = 0
        self._publishes = 0  # accepted publish() calls (swap-fault index)
        self._registry = ArtifactRegistry()
        self._registry.record(0, artifact)
        self._history = None
        self._history_path = Path(history_path) if history_path else None
        if drift_window:
            # Lazy import: serve must stay importable without the
            # streaming tier (and vice versa — stream imports serve).
            from repro.stream.tracking import MembershipHistory

            if self._history_path is not None and self._history_path.exists():
                self._history = MembershipHistory.load(self._history_path)
                if self._history.last_version != artifact.version:
                    self._history.record_next(artifact)
                    self._save_history()
            else:
                self._history = MembershipHistory(window=int(drift_window))
                self._history.record(artifact, 0)
                self._save_history()
        self._stopped = False
        self.n_workers = int(n_workers)
        self.metrics = ServerMetrics(
            queue_depth=lambda: len(self._queue),
            p99_window=shed_policy.p99_window if shed_policy else 256,
        )

        self._slots = [_WorkerSlot(i) for i in range(n_workers)]
        for slot in self._slots:
            slot.thread = self._spawn_worker(slot)
        self._wd_stop = threading.Event()
        self._watchdog: Optional[threading.Thread] = None
        if n_workers > 0:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop, daemon=True, name="serve-watchdog"
            )
            self._watchdog.start()

    def _spawn_worker(self, slot: _WorkerSlot) -> threading.Thread:
        t = threading.Thread(
            target=self._worker_loop,
            args=(slot,),
            daemon=True,
            name=f"serve-{slot.index}",
        )
        t.start()
        return t

    # -- lifecycle ------------------------------------------------------------

    def close(self, drain_timeout_s: float = 10.0) -> None:
        """Stop accepting work, drain the queue, join the workers.

        Deterministic teardown: every queued or in-flight future ends
        *resolved* — answered by a draining worker, failed with
        :class:`~repro.faults.WorkerCrashed` if its worker is stuck past
        ``drain_timeout_s``, or cancelled (with ``n_workers=0``, where
        nothing will ever drain leftovers). No future is left hanging
        for a caller to block on forever.
        """
        with self._not_empty:
            if self._stopped:
                return
            self._stopped = True
            self._not_empty.notify_all()
        self._wd_stop.set()
        if self._watchdog is not None:
            self._watchdog.join()
        deadline = time.monotonic() + drain_timeout_s
        stuck = []
        for slot in self._slots:
            assert slot.thread is not None
            slot.thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if slot.thread.is_alive():
                stuck.append(slot)
        to_fail: list[tuple[int, list[_Request]]] = []
        with self._not_empty:
            for slot in stuck:
                slot.fenced = True
                if slot.inflight is not None:
                    to_fail.append((slot.index, slot.inflight))
                    slot.inflight = None
            leftovers = list(self._queue)
            self._queue.clear()
        for index, batch in to_fail:
            exc = WorkerCrashed([index], stalled=True)
            for req in batch:
                self._fail(req, exc)
        for req in leftovers:
            req.future.cancel()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- artifact hot-swap ----------------------------------------------------

    def _save_history(self) -> None:
        """Checkpoint the drift history beside the artifact (atomic; a
        failed save degrades durability, never serving)."""
        if self._history is None or self._history_path is None:
            return
        try:
            self._history.save(self._history_path)
        except OSError:  # pragma: no cover - disk-full etc.
            pass

    @property
    def artifact(self) -> ModelArtifact:
        return self._artifact

    @property
    def generation(self) -> int:
        return self._generation

    def publish(self, artifact: ModelArtifact) -> int:
        """Install a new artifact with zero downtime; returns the generation.

        In-flight batches complete on the previous snapshot; every batch
        started after this call (and every cache key) uses the new one.
        A swap that fails mid-flight (fault-injected here; an allocator
        or mmap failure in real life) rolls back to the last-known-good
        artifact — with a *second* generation bump, so nothing keyed to
        the failed snapshot survives — and raises :class:`SwapFailed`.
        """
        artifact.validate()
        rollback_to: Optional[ModelArtifact] = None
        with self._not_empty:
            swap_index = self._publishes
            self._publishes += 1
            previous = self._artifact
            self._artifact = artifact
            self._generation += 1
            gen = self._generation
            if self._faults is not None and self._faults.swap_fails(swap_index):
                good = self._registry.previous(artifact.version) or previous
                self._artifact = good
                self._generation += 1
                rollback_to = good
            else:
                self._registry.record(gen, artifact)
                if self._history is not None:
                    # Recorded under the lock so history generations stay
                    # strictly increasing across concurrent publishers.
                    # record_next (not the server's gen counter) keeps a
                    # history reloaded from disk monotone: a restarted
                    # server's counter restarts at 0, the history's
                    # doesn't.
                    self._history.record_next(artifact)
                    self._save_history()
            purged = self._purge_stale_cache_locked()
        if purged:
            self.metrics.record_stale_eviction(purged)
        if rollback_to is not None:
            self.metrics.record_rollback()
            self.metrics.record_publish_failure()
            raise SwapFailed(artifact.version, rollback_to.version)
        self.metrics.record_hot_swap()
        return gen

    def publish_path(self, path: PathLike) -> int:
        """Load, verify, and publish an artifact file.

        A file that fails integrity checks is quarantined on disk
        (``<name>.quarantined``) so no later load can pick it up, and
        the server keeps serving its current artifact. Raises
        :class:`~repro.serve.artifact.ArtifactCorrupt` (quarantined
        path in ``exc.quarantined``), plain
        :class:`~repro.serve.artifact.ArtifactError`, or
        :class:`SwapFailed`.
        """
        try:
            # "full" forces every per-array digest even for lazy v2
            # container artifacts: a server must find corruption at
            # publish time, never mid-query. (For v1 .npz this is the
            # same full verification as always.)
            artifact = load_artifact(path, verify="full")
        except ArtifactCorrupt as exc:
            exc.quarantined = quarantine_artifact(path)
            self.metrics.record_quarantine()
            self.metrics.record_publish_failure()
            raise
        except ArtifactError:
            self.metrics.record_publish_failure()
            raise
        return self.publish(artifact)

    def rollback(self) -> int:
        """Manually re-install the previous known-good artifact.

        Returns the new generation; raises ``RuntimeError`` when the
        registry holds no artifact with a different content version.
        """
        with self._not_empty:
            good = self._registry.previous(self._artifact.version)
            if good is None:
                raise RuntimeError("no previous known-good artifact to roll back to")
            self._artifact = good
            self._generation += 1
            gen = self._generation
            self._registry.record(gen, good)
            purged = self._purge_stale_cache_locked()
        if purged:
            self.metrics.record_stale_eviction(purged)
        self.metrics.record_rollback()
        return gen

    def _purge_stale_cache_locked(self) -> int:
        """Drop cache entries keyed to any generation but the current one."""
        if not self._cache:
            return 0
        stale = [k for k in self._cache if k[0] != self._generation]
        for k in stale:
            del self._cache[k]
        return len(stale)

    # -- probes ---------------------------------------------------------------

    def health(self) -> dict:
        """Liveness probe: workers, queue, artifact identity, rollbacks."""
        with self._not_empty:
            alive = sum(
                1
                for s in self._slots
                if s.thread is not None and s.thread.is_alive() and not s.fenced
            )
            stopped = self._stopped
            depth = len(self._queue)
            gen = self._generation
            version = self._artifact.version
            known_good = self._registry.versions()
        healthy = not stopped and (alive > 0 or self.n_workers == 0)
        return {
            "healthy": healthy,
            "ready": self.ready(),
            "workers_alive": alive,
            "workers_expected": self.n_workers,
            "queue_depth": depth,
            "queue_limit": self.queue_limit,
            "observed_p99_ms": self.metrics.observed_p99_ms(),
            "generation": gen,
            "artifact_version": version,
            "known_good_versions": known_good,
        }

    def ready(self) -> bool:
        """Readiness probe: would a plain submit be admitted right now?"""
        with self._not_empty:
            if self._stopped or len(self._queue) >= self.queue_limit:
                return False
            return self._shed_reason_locked() is None

    # -- submission -----------------------------------------------------------

    def link_probability(
        self, pairs: np.ndarray, deadline_ms: Optional[float] = None
    ) -> Future:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pairs must have shape (B, 2)")
        return self._submit(
            "link_probability",
            pairs,
            ("lp", pairs.tobytes()),
            queries=len(pairs),
            deadline_ms=deadline_ms,
        )

    def membership(
        self, node: int, k: Optional[int] = None, deadline_ms: Optional[float] = None
    ) -> Future:
        return self._submit(
            "membership", (int(node), k), ("mb", int(node), k), deadline_ms=deadline_ms
        )

    def community_members(
        self, community: int, top_n: int = 10, deadline_ms: Optional[float] = None
    ) -> Future:
        return self._submit(
            "community_members",
            (int(community), int(top_n)),
            ("cm", int(community), int(top_n)),
            deadline_ms=deadline_ms,
        )

    def recommend_edges(
        self, node: int, top_n: int = 10, deadline_ms: Optional[float] = None
    ) -> Future:
        return self._submit(
            "recommend_edges",
            (int(node), int(top_n)),
            ("re", int(node), int(top_n)),
            deadline_ms=deadline_ms,
        )

    def membership_drift(
        self,
        node: int,
        last: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> Future:
        if self._history is None:
            raise ValueError(
                "membership_drift requires drift_window > 0 at server construction"
            )
        return self._submit(
            "membership_drift",
            (int(node), last),
            ("md", int(node), last),
            deadline_ms=deadline_ms,
        )

    def query(self, endpoint: str, *args, timeout: Optional[float] = None):
        """Blocking convenience: submit to ``endpoint`` and wait."""
        if endpoint not in ENDPOINTS:
            raise ValueError(f"unknown endpoint {endpoint!r}; known: {ENDPOINTS}")
        return getattr(self, endpoint)(*args).result(timeout=timeout)

    def _shed_reason_locked(self) -> Optional[str]:
        """Why admission control would refuse right now (None = admit)."""
        policy = self.shed_policy
        if policy is None:
            return None
        high = policy.queue_high_fraction * self.queue_limit
        if len(self._queue) >= high:
            return (
                f"queue depth {len(self._queue)} past high-water "
                f"{policy.queue_high_fraction:g} of {self.queue_limit}"
            )
        p99 = self.metrics.observed_p99_ms()
        if p99 > policy.slo_p99_ms:
            return f"observed p99 {p99:.3g}ms past SLO {policy.slo_p99_ms:g}ms"
        return None

    def _degraded_membership(self, payload: tuple, start: float) -> Optional[Future]:
        """Answer a membership query from the precomputed top-K table.

        Bit-identical to the engine's fast path for ``k`` within the
        stored table; returns ``None`` when it cannot honor the request
        (larger ``k``), in which case the caller sheds.
        """
        node, k = payload
        art = self._artifact
        stored = art.top_communities.shape[1]
        k = stored if k is None else int(k)
        fut: Future = Future()
        if k < 1:
            fut.set_exception(ValueError("k must be >= 1"))
            return fut
        if k > stored:
            return None
        try:
            row = art.row_of(node)
        except KeyError as exc:
            self.metrics.record_error("membership")
            fut.set_exception(exc)
            return fut
        result = [
            (int(c), float(w))
            for c, w in zip(art.top_communities[row, :k], art.top_weights[row, :k])
        ]
        self.metrics.record_degraded_answer()
        self.metrics.record_request("membership", time.perf_counter() - start)
        fut.set_result(result)
        return fut

    def _submit(
        self,
        endpoint: str,
        payload: Any,
        key_suffix: tuple,
        queries: int = 1,
        deadline_ms: Optional[float] = None,
    ) -> Future:
        start = time.perf_counter()
        deadline_s = (
            float(deadline_ms) / 1e3 if deadline_ms is not None else self.default_deadline
        )
        shed_reason = None
        with self._not_empty:
            if self._stopped:
                raise RuntimeError("server is closed")
            key = None
            if self.cache_size > 0:
                key = (self._generation, *key_suffix)
                if key in self._cache:
                    self._cache.move_to_end(key)
                    value = self._cache[key]
                    self.metrics.record_cache(True)
                    self.metrics.record_request(
                        endpoint, time.perf_counter() - start, queries
                    )
                    fut: Future = Future()
                    fut.set_result(value)
                    return fut
                self.metrics.record_cache(False)
            shed_reason = self._shed_reason_locked()
            if shed_reason is None:
                if len(self._queue) >= self.queue_limit:
                    self.metrics.record_rejected()
                    raise ServerOverloaded(self.queue_limit)
                req = _Request(endpoint, payload, key, queries)
                if deadline_s is not None:
                    req.deadline = req.enqueued + deadline_s
                self._queue.append(req)
                self._not_empty.notify()
                return req.future
            # shedding: try the degraded path, else refuse with a typed error
            if (
                endpoint == "membership"
                and self.shed_policy is not None
                and self.shed_policy.degraded_membership
            ):
                degraded = self._degraded_membership(payload, start)
                if degraded is not None:
                    return degraded
        self.metrics.record_shed()
        raise RequestShed(shed_reason)

    # -- batching -------------------------------------------------------------

    def process_once(self) -> int:
        """Coalesce and answer one batch synchronously (``n_workers=0`` mode).

        Returns the number of requests answered (deadline expiries do
        not count); 0 when the queue is empty (an empty flush is a
        no-op, never an error).
        """
        taken = self._take_batch(wait=False)
        if taken is None:
            return 0
        batch, artifact, _gen = taken
        if not batch:
            return 0
        self._execute(batch, QueryEngine(artifact, faults=self._faults))
        return len(batch)

    def _worker_loop(self, slot: _WorkerSlot) -> None:
        engine: Optional[QueryEngine] = None
        engine_gen = -1
        try:
            while True:
                taken = self._take_batch(wait=True, slot=slot)
                if taken is None:
                    return
                batch, artifact, gen = taken
                if not batch:
                    continue
                if self._faults is not None:
                    stall = self._faults.worker_stall_seconds(slot.index, slot.batches)
                    if stall > 0.0:
                        time.sleep(stall)
                    if self._faults.worker_crash_due(slot.index, slot.batches):
                        raise WorkerCrashed([slot.index])
                if engine is None or engine_gen != gen:
                    engine = QueryEngine(artifact, faults=self._faults)
                    engine_gen = gen
                self._execute(batch, engine)
                with self._not_empty:
                    if slot.fenced:
                        return  # a watchdog replacement owns this index now
                    slot.inflight = None
                    slot.batches += 1
        except BaseException as exc:  # noqa: BLE001 - worker safety net
            self._handle_worker_death(slot, exc)

    def _handle_worker_death(self, slot: _WorkerSlot, exc: BaseException) -> None:
        """Dying worker's last act: fail its in-flight batch with a typed
        error so no client blocks on a future nobody will complete. The
        watchdog handles the respawn once the thread is observably dead."""
        with self._not_empty:
            if slot.fenced:
                return  # watchdog already failed the batch and moved on
            batch = slot.inflight
            slot.inflight = None
            if batch is not None:
                slot.batches += 1  # count the doomed batch: faults never refire
        if batch:
            if isinstance(exc, WorkerCrashed):
                wrapped = exc
            else:
                wrapped = WorkerCrashed([slot.index])
                wrapped.__cause__ = exc
            for req in batch:
                self._fail(req, wrapped)

    def _watchdog_loop(self) -> None:
        while not self._wd_stop.wait(self.watchdog_interval):
            self._check_workers()

    def _check_workers(self) -> None:
        """Fence dead/stalled workers, fail their batches, respawn."""
        to_fail: list[tuple[int, list[_Request], bool]] = []
        respawned = 0
        with self._not_empty:
            if self._stopped:
                return
            now = time.perf_counter()
            for i, slot in enumerate(self._slots):
                assert slot.thread is not None
                dead = not slot.thread.is_alive()
                stalled = (
                    not dead
                    and slot.inflight is not None
                    and now - slot.busy_since > self.stall_timeout
                )
                if not (dead or stalled):
                    continue
                batch = slot.inflight
                slot.inflight = None
                if batch is not None:
                    slot.batches += 1
                slot.fenced = True
                replacement = _WorkerSlot(i, batches=slot.batches)
                self._slots[i] = replacement
                replacement.thread = self._spawn_worker(replacement)
                respawned += 1
                if batch:
                    to_fail.append((i, batch, stalled))
        for index, batch, stalled in to_fail:
            exc = WorkerCrashed([index], stalled=stalled)
            for req in batch:
                self._fail(req, exc)
        for _ in range(respawned):
            self.metrics.record_worker_respawn()

    def _take_batch(self, wait: bool, slot: Optional[_WorkerSlot] = None):
        """Pop up to ``max_batch`` live requests, honoring the coalescing
        delay; expired-deadline requests are failed, never batched.

        Returns ``(batch, artifact, generation)``; ``None`` means
        shutdown (or this worker was fenced) — the caller must exit.
        With ``wait=False`` (manual mode) an empty queue yields an empty
        batch immediately.
        """
        expired: list[_Request] = []

        def pop_live() -> Optional[_Request]:
            now = time.perf_counter()
            while self._queue:
                r = self._queue[0]
                if r.deadline is not None and now > r.deadline:
                    expired.append(self._queue.popleft())
                    continue
                return self._queue.popleft()
            return None

        try:
            with self._not_empty:
                first = None
                while True:
                    if slot is not None and slot.fenced:
                        return None
                    first = pop_live()
                    if first is not None:
                        break
                    if self._stopped:
                        return None
                    if not wait:
                        return [], self._artifact, self._generation
                    if expired:
                        # Fail already-expired requests *before* blocking —
                        # this thread may sleep indefinitely and the expiry
                        # must not wait for the next batch to come along.
                        for req in expired:
                            self._expire(req)
                        expired.clear()
                    self._not_empty.wait()
                batch = [first]
                flush_at = first.enqueued + self.max_delay
                while len(batch) < self.max_batch:
                    nxt = pop_live()
                    if nxt is not None:
                        batch.append(nxt)
                        continue
                    remaining = flush_at - time.perf_counter()
                    if remaining <= 0 or self._stopped or not wait:
                        break
                    self._not_empty.wait(timeout=remaining)
                    if not self._queue:
                        break
                if slot is not None:
                    slot.inflight = batch
                    slot.busy_since = time.perf_counter()
                art_gen = (self._artifact, self._generation)
        finally:
            for req in expired:
                self._expire(req)
        self.metrics.record_batch(len(batch))
        return batch, art_gen[0], art_gen[1]

    # -- execution ------------------------------------------------------------

    def _execute(self, batch: list[_Request], engine: QueryEngine) -> None:
        # Coalesce all link-probability pairs into one kernel call; the
        # point of micro-batching (per-request Python overhead amortizes
        # over the batch, the gather+kernel is one shot).
        links = [r for r in batch if r.endpoint == "link_probability"]
        if links:
            try:
                stacked = np.concatenate([r.payload for r in links])
                probs = engine.link_probability(stacked)
                offset = 0
                for r in links:
                    n = len(r.payload)
                    self._finish(r, probs[offset:offset + n])
                    offset += n
            except Exception as exc:  # noqa: BLE001 - fault isolation
                for r in links:
                    self._fail(r, exc)
        # Recommendations coalesce the same way: every candidate pair in
        # the batch goes through ONE link_probability kernel call; the
        # engine returns per-slot exceptions so bad requests fail alone.
        recs = [r for r in batch if r.endpoint == "recommend_edges"]
        if recs:
            try:
                outcomes = engine.recommend_edges_batch(
                    [(r.payload[0], r.payload[1], None) for r in recs]
                )
                for r, outcome in zip(recs, outcomes):
                    if isinstance(outcome, Exception):
                        self._fail(r, outcome)
                    else:
                        self._finish(r, outcome)
            except Exception as exc:  # noqa: BLE001 - fault isolation
                for r in recs:
                    self._fail(r, exc)
        for r in batch:
            if r.endpoint in ("link_probability", "recommend_edges"):
                continue
            try:
                if r.endpoint == "membership":
                    node, k = r.payload
                    result = engine.membership(node, k)
                elif r.endpoint == "community_members":
                    result = engine.community_members(*r.payload)
                elif r.endpoint == "membership_drift":
                    node, last = r.payload
                    result = engine.membership_drift(node, self._history, last)
                else:  # pragma: no cover - submit() filters endpoints
                    raise RuntimeError(f"unknown endpoint {r.endpoint!r}")
                self._finish(r, result)
            except Exception as exc:  # noqa: BLE001 - fault isolation
                self._fail(r, exc)

    def _finish(self, req: _Request, result: Any) -> None:
        # A fenced zombie may race the watchdog, which already failed
        # this future; completion is first-writer-wins, silently.
        if req.future.done():
            return
        self.metrics.record_request(
            req.endpoint, time.perf_counter() - req.enqueued, req.queries
        )
        if req.key is not None:
            with self._lock:
                self._cache[req.key] = result
                self._cache.move_to_end(req.key)
                evicted = 0
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
                    evicted += 1
            if evicted:
                self.metrics.record_eviction(evicted)
        try:
            req.future.set_result(result)
        except InvalidStateError:  # pragma: no cover - lost a tight race
            pass

    def _fail(self, req: _Request, exc: BaseException) -> None:
        if req.future.done():
            return
        self.metrics.record_error(req.endpoint)
        try:
            req.future.set_exception(exc)
        except InvalidStateError:  # pragma: no cover - lost a tight race
            pass

    def _expire(self, req: _Request) -> None:
        if req.future.done():
            return
        waited_ms = (time.perf_counter() - req.enqueued) * 1e3
        deadline_ms = (
            (req.deadline - req.enqueued) * 1e3 if req.deadline is not None else 0.0
        )
        self.metrics.record_deadline_exceeded()
        try:
            req.future.set_exception(
                DeadlineExceeded(req.endpoint, waited_ms, deadline_ms)
            )
        except InvalidStateError:  # pragma: no cover - lost a tight race
            pass

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        """Metrics snapshot plus the serving artifact's identity."""
        snap = self.metrics.snapshot()
        snap["artifact"] = {
            "version": self._artifact.version,
            "iteration": self._artifact.iteration,
            "generation": self._generation,
            "n_nodes": self._artifact.n_nodes,
            "n_communities": self._artifact.n_communities,
            "known_good_versions": self._registry.versions(),
        }
        return snap
