"""Micro-batching model server: queueing, coalescing, caching, hot-swap.

The online half of the train->serve stack. Clients submit queries and get
:class:`concurrent.futures.Future` handles back immediately; worker
threads coalesce queued requests into batches (flushed at ``max_batch``
requests or ``max_delay_ms`` after the oldest request, whichever comes
first) and answer them through a per-thread
:class:`~repro.serve.engine.QueryEngine`. NumPy releases the GIL inside
the batched kernels, so the worker pool overlaps scoring with request
admission — the same chunked-thread-pool trick :mod:`repro.parallel`
uses for training.

Operational semantics:

- **Backpressure**: the request queue is bounded; a submit against a full
  queue raises a typed :class:`ServerOverloaded` *immediately* (callers
  shed load or retry; the server never builds an unbounded backlog).
- **Result cache**: an LRU keyed by (artifact generation, endpoint,
  canonical payload) with hit/miss/eviction accounting. Hits complete
  without touching the queue.
- **Zero-downtime hot-swap**: :meth:`publish` atomically installs a new
  artifact mid-traffic. In-flight batches finish on the engine they
  started with; later batches (and cache keys, via the generation
  counter) see only the new model. No request is dropped or errored by a
  swap (``tests/test_serve_server.py``, and the load-generator bench
  proves it under concurrency).
- **Metrics**: every answer is recorded into a
  :class:`~repro.serve.metrics.ServerMetrics` (per-endpoint QPS +
  latency histograms, queue depth, cache and batching stats) exported by
  :meth:`stats`.

``n_workers=0`` runs no threads; callers drain the queue explicitly with
:meth:`process_once` — deterministic single-step mode for tests.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.serve.artifact import ModelArtifact
from repro.serve.engine import QueryEngine
from repro.serve.metrics import ServerMetrics

ENDPOINTS = ("link_probability", "membership", "community_members", "recommend_edges")


class ServerOverloaded(RuntimeError):
    """The bounded request queue is full; the caller must back off."""

    def __init__(self, queue_limit: int) -> None:
        self.queue_limit = queue_limit
        super().__init__(
            f"request queue full ({queue_limit} pending); retry with backoff"
        )


@dataclass
class _Request:
    endpoint: str
    payload: Any
    key: Optional[tuple]
    queries: int
    future: Future = field(default_factory=Future)
    enqueued: float = field(default_factory=time.perf_counter)


class ModelServer:
    """Serves one :class:`ModelArtifact` behind a micro-batching queue.

    Args:
        artifact: the snapshot to serve first (hot-swappable later).
        n_workers: worker threads (0 = manual :meth:`process_once` mode).
        max_batch: flush a batch at this many coalesced requests.
        max_delay_ms: ... or this long after the oldest queued request.
        queue_limit: bounded-queue capacity; beyond it submits raise
            :class:`ServerOverloaded`.
        cache_size: LRU result-cache capacity (0 disables caching).
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        n_workers: int = 2,
        max_batch: int = 64,
        max_delay_ms: float = 1.0,
        queue_limit: int = 1024,
        cache_size: int = 4096,
    ) -> None:
        if n_workers < 0 or max_batch < 1 or queue_limit < 1 or cache_size < 0:
            raise ValueError("invalid server sizing parameter")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay_ms) / 1e3
        self.queue_limit = int(queue_limit)
        self.cache_size = int(cache_size)

        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queue: deque[_Request] = deque()
        self._cache: OrderedDict[tuple, Any] = OrderedDict()
        self._artifact = artifact
        self._generation = 0
        self._stopped = False
        self.metrics = ServerMetrics(queue_depth=lambda: len(self._queue))

        self._workers = [
            threading.Thread(target=self._worker_loop, daemon=True, name=f"serve-{i}")
            for i in range(n_workers)
        ]
        for t in self._workers:
            t.start()

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting work, drain the queue, join the workers.

        Requests already queued are answered; with ``n_workers=0`` any
        leftovers (the caller stopped draining) are cancelled.
        """
        with self._not_empty:
            if self._stopped:
                return
            self._stopped = True
            self._not_empty.notify_all()
        for t in self._workers:
            t.join()
        with self._not_empty:
            while self._queue:
                self._queue.popleft().future.cancel()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- artifact hot-swap ----------------------------------------------------

    @property
    def artifact(self) -> ModelArtifact:
        return self._artifact

    @property
    def generation(self) -> int:
        return self._generation

    def publish(self, artifact: ModelArtifact) -> int:
        """Install a new artifact with zero downtime; returns the generation.

        In-flight batches complete on the previous snapshot; every batch
        started after this call (and every cache key) uses the new one.
        """
        artifact.validate()
        with self._not_empty:
            self._artifact = artifact
            self._generation += 1
            gen = self._generation
        self.metrics.record_hot_swap()
        return gen

    # -- submission -----------------------------------------------------------

    def link_probability(self, pairs: np.ndarray) -> Future:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pairs must have shape (B, 2)")
        return self._submit(
            "link_probability", pairs, ("lp", pairs.tobytes()), queries=len(pairs)
        )

    def membership(self, node: int, k: Optional[int] = None) -> Future:
        return self._submit("membership", (int(node), k), ("mb", int(node), k))

    def community_members(self, community: int, top_n: int = 10) -> Future:
        return self._submit(
            "community_members",
            (int(community), int(top_n)),
            ("cm", int(community), int(top_n)),
        )

    def recommend_edges(self, node: int, top_n: int = 10) -> Future:
        return self._submit(
            "recommend_edges", (int(node), int(top_n)), ("re", int(node), int(top_n))
        )

    def query(self, endpoint: str, *args, timeout: Optional[float] = None):
        """Blocking convenience: submit to ``endpoint`` and wait."""
        if endpoint not in ENDPOINTS:
            raise ValueError(f"unknown endpoint {endpoint!r}; known: {ENDPOINTS}")
        return getattr(self, endpoint)(*args).result(timeout=timeout)

    def _submit(
        self, endpoint: str, payload: Any, key_suffix: tuple, queries: int = 1
    ) -> Future:
        start = time.perf_counter()
        with self._not_empty:
            if self._stopped:
                raise RuntimeError("server is closed")
            key = None
            if self.cache_size > 0:
                key = (self._generation, *key_suffix)
                if key in self._cache:
                    self._cache.move_to_end(key)
                    value = self._cache[key]
                    self.metrics.record_cache(True)
                    self.metrics.record_request(
                        endpoint, time.perf_counter() - start, queries
                    )
                    fut: Future = Future()
                    fut.set_result(value)
                    return fut
                self.metrics.record_cache(False)
            if len(self._queue) >= self.queue_limit:
                self.metrics.record_rejected()
                raise ServerOverloaded(self.queue_limit)
            req = _Request(endpoint, payload, key, queries)
            self._queue.append(req)
            self._not_empty.notify()
            return req.future

    # -- batching -------------------------------------------------------------

    def process_once(self) -> int:
        """Coalesce and answer one batch synchronously (``n_workers=0`` mode).

        Returns the number of requests answered; 0 when the queue is
        empty (an empty flush is a no-op, never an error).
        """
        batch, engine = self._take_batch(wait=False)
        if not batch:
            return 0
        self._execute(batch, engine)
        return len(batch)

    def _worker_loop(self) -> None:
        engine_gen = -1
        engine: Optional[QueryEngine] = None
        while True:
            batch, art_gen = self._take_batch(wait=True, raw=True)
            if batch is None:
                return
            if not batch:
                continue
            if engine is None or engine_gen != art_gen[1]:
                engine = QueryEngine(art_gen[0])
                engine_gen = art_gen[1]
            self._execute(batch, engine)

    def _take_batch(self, wait: bool, raw: bool = False):
        """Pop up to ``max_batch`` requests, honoring the coalescing delay.

        With ``wait=False`` (manual mode) returns immediately; with
        ``wait=True`` blocks for work and returns ``(None, ...)`` on
        shutdown with an empty queue. ``raw=True`` returns the
        ``(artifact, generation)`` pair instead of a built engine.
        """
        with self._not_empty:
            if wait:
                while not self._queue and not self._stopped:
                    self._not_empty.wait()
                if not self._queue and self._stopped:
                    return None, None
            if not self._queue:
                return [], None
            batch = [self._queue.popleft()]
            deadline = batch[0].enqueued + self.max_delay
            while len(batch) < self.max_batch:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or self._stopped or not wait:
                    break
                self._not_empty.wait(timeout=remaining)
                if not self._queue:
                    break
            art_gen = (self._artifact, self._generation)
        self.metrics.record_batch(len(batch))
        if raw:
            return batch, art_gen
        return batch, QueryEngine(art_gen[0])

    # -- execution ------------------------------------------------------------

    def _execute(self, batch: list[_Request], engine: QueryEngine) -> None:
        # Coalesce all link-probability pairs into one kernel call; the
        # point of micro-batching (per-request Python overhead amortizes
        # over the batch, the gather+kernel is one shot).
        links = [r for r in batch if r.endpoint == "link_probability"]
        if links:
            try:
                stacked = np.concatenate([r.payload for r in links])
                probs = engine.link_probability(stacked)
                offset = 0
                for r in links:
                    n = len(r.payload)
                    self._finish(r, probs[offset:offset + n])
                    offset += n
            except Exception as exc:  # noqa: BLE001 - fault isolation
                for r in links:
                    self._fail(r, exc)
        for r in batch:
            if r.endpoint == "link_probability":
                continue
            try:
                if r.endpoint == "membership":
                    node, k = r.payload
                    result = engine.membership(node, k)
                elif r.endpoint == "community_members":
                    result = engine.community_members(*r.payload)
                elif r.endpoint == "recommend_edges":
                    result = engine.recommend_edges(*r.payload)
                else:  # pragma: no cover - submit() filters endpoints
                    raise RuntimeError(f"unknown endpoint {r.endpoint!r}")
                self._finish(r, result)
            except Exception as exc:  # noqa: BLE001 - fault isolation
                self._fail(r, exc)

    def _finish(self, req: _Request, result: Any) -> None:
        self.metrics.record_request(
            req.endpoint, time.perf_counter() - req.enqueued, req.queries
        )
        if req.key is not None:
            with self._lock:
                self._cache[req.key] = result
                self._cache.move_to_end(req.key)
                evicted = 0
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
                    evicted += 1
            if evicted:
                self.metrics.record_eviction(evicted)
        req.future.set_result(result)

    def _fail(self, req: _Request, exc: Exception) -> None:
        self.metrics.record_error(req.endpoint)
        req.future.set_exception(exc)

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        """Metrics snapshot plus the serving artifact's identity."""
        snap = self.metrics.snapshot()
        snap["artifact"] = {
            "version": self._artifact.version,
            "iteration": self._artifact.iteration,
            "generation": self._generation,
            "n_nodes": self._artifact.n_nodes,
            "n_communities": self._artifact.n_communities,
        }
        return snap
