"""Immutable, versioned model artifacts for online serving.

A trained posterior (``pi``/``theta``) is only useful if it can answer
queries without the training stack; a :class:`ModelArtifact` is the
self-contained, read-only export that the serving layer loads:

- the full :class:`~repro.config.AMMSBConfig` (so scoring uses the same
  ``delta`` / ``kernel_backend`` / dtype the run trained with);
- ``pi`` (row-renormalized at export time, so queries never see float
  drift from the sampler's incremental renormalizations), ``theta`` and
  the derived ``beta``;
- a node-id mapping (row index -> external vertex id), so queries speak
  the graph's ids even when the trainer compacted them;
- precomputed top-``K`` community assignments per node (indices +
  weights), the membership query's hot path.

No graph object is needed to load or serve an artifact.

Durability and identity: artifacts are written with the same atomic
tmp + fsync + ``os.replace`` machinery as checkpoints
(:mod:`repro.core.checkpoint`), and carry a deterministic content
``version`` — a SHA-256 over the model arrays and config — so two
exports of the same posterior get the same version and a hot-swapped
server can report exactly which model answered. Anything wrong at load
time surfaces as a typed :class:`ArtifactError` naming the path.

Integrity: :func:`load_artifact` *verifies* by default — it recomputes
the SHA-256 content version from the loaded arrays and the stored config
string and compares it to the recorded ``artifact_version``, on top of
the archive's per-member CRC and :meth:`ModelArtifact.validate`. Damage
of any kind (truncation, flipped bytes, or a structurally valid payload
that silently differs from what was exported) raises
:class:`ArtifactCorrupt`; callers that serve traffic quarantine the file
(:func:`quarantine_artifact`) and fall back to the last-known-good entry
tracked in an :class:`ArtifactRegistry`.

Two on-disk formats coexist (DESIGN.md section 10):

- **v1** — a compressed ``.npz`` archive. Simple and compact, but a
  load must decompress every array into fresh resident memory, so
  cold start and RSS are both O(artifact size).
- **v2** — a :mod:`repro.store` container directory: one raw ``.npy``
  per array plus a sha256-sealed ``manifest.json``. Loads memory-map
  the arrays read-only (default provider ``mmap``), so a query server
  answers its first request after O(manifest) work with only the
  touched pages resident; per-array digests are verified lazily on
  first touch, or all at once with ``verify="full"`` (what
  ``ModelServer.publish_path`` uses, so corruption is caught *before*
  a swap, never mid-query).

:func:`save_artifact` picks the format from the path (``.npz`` -> v1,
anything else -> v2 directory); :func:`load_artifact` auto-detects.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union
from zipfile import BadZipFile

import numpy as np

from repro.config import AMMSBConfig
from repro.core.checkpoint import (
    _atomic_savez,
    _config_from_json,
    _config_to_json,
    _open_archive,
    CheckpointError,
)
from repro.core.state import ModelState
from repro.store import (
    Container,
    StoreCorrupt,
    StoreError,
    is_container,
    write_container,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.core.sampler import AMMSBSampler

PathLike = Union[str, Path]

SCHEMA = "repro-serve-artifact/1"
FORMAT_VERSION = 1

#: v2 directory format: store-container kind tag.
SCHEMA_V2 = "repro-serve-artifact/2"
FORMAT_VERSION_V2 = 2

_ARRAY_KEYS = ("pi", "theta", "beta", "node_ids", "top_communities", "top_weights")

#: default number of precomputed top communities per node.
DEFAULT_TOP_K = 8


class ArtifactError(ValueError):
    """An artifact could not be read or fails validation (typed, with path)."""

    def __init__(self, path: PathLike, reason: str) -> None:
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"artifact {self.path}: {reason}")


class ArtifactCorrupt(ArtifactError):
    """The file exists and parses as *something*, but its payload is
    damaged: CRC/decompression failure, broken model invariants, or a
    content-version mismatch against the recorded SHA-256. The standard
    response is :func:`quarantine_artifact` + last-known-good fallback,
    never serving from it."""


def _content_version(config_json: str, pi: np.ndarray, theta: np.ndarray) -> str:
    """Deterministic content id: same posterior + config -> same version."""
    h = hashlib.sha256()
    h.update(config_json.encode())
    for arr in (pi, theta):
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()[:16]


def _top_communities(pi: np.ndarray, top_k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-``top_k`` community indices and weights, weight-sorted."""
    k = pi.shape[1]
    top_k = min(int(top_k), k)
    if top_k < k:
        idx = np.argpartition(pi, k - top_k, axis=1)[:, k - top_k:]
    else:
        idx = np.broadcast_to(np.arange(k), pi.shape).copy()
    w = np.take_along_axis(pi, idx, axis=1)
    order = np.argsort(-w, axis=1, kind="stable")
    return (
        np.take_along_axis(idx, order, axis=1).astype(np.int32),
        np.take_along_axis(w, order, axis=1),
    )


@dataclass(frozen=True)
class ModelArtifact:
    """A loaded (or freshly built) serving snapshot. Treat as immutable.

    Attributes:
        config: the training configuration (scoring reuses its ``delta``
            and ``kernel_backend``).
        pi: (N, K) row-normalized memberships.
        theta: (K, 2) global reparameterization.
        beta: (K,) community strengths derived from theta at export time.
        node_ids: (N,) external vertex id per row (identity by default).
        top_communities: (N, top_k) int32 community indices, strongest first.
        top_weights: (N, top_k) the matching membership weights.
        iteration: training iteration the snapshot was taken at.
        version: deterministic content hash (16 hex chars).
    """

    config: AMMSBConfig
    pi: np.ndarray
    theta: np.ndarray
    beta: np.ndarray
    node_ids: np.ndarray
    top_communities: np.ndarray
    top_weights: np.ndarray
    iteration: int = 0
    version: str = ""
    _row_index: dict = field(default_factory=dict, repr=False, compare=False)
    # Backing store container for v2 (mmap) artifacts; None for v1 /
    # in-memory builds. Enables verify_deep() and nbytes() without
    # re-opening the directory.
    _container: Optional[Container] = field(default=None, repr=False, compare=False)
    # Memoized _identity_ids() answer — the check is an O(N) scan, far
    # too hot to repeat per rows_of() call on a mapped million-row map.
    _ids_identity: Optional[bool] = field(default=None, repr=False, compare=False)

    @property
    def n_nodes(self) -> int:
        return int(self.pi.shape[0])

    @property
    def n_communities(self) -> int:
        return int(self.pi.shape[1])

    def row_of(self, node_id: int) -> int:
        """Row index of an external node id (O(1) after first use)."""
        if not self._row_index:
            self._row_index.update(
                (int(v), i) for i, v in enumerate(self.node_ids)
            )
        try:
            return self._row_index[int(node_id)]
        except KeyError:
            raise KeyError(f"unknown node id {node_id!r}") from None

    def rows_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`row_of`; identity mappings skip the lookup."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if self._identity_ids():
            if node_ids.size and (
                node_ids.min() < 0 or node_ids.max() >= self.n_nodes
            ):
                raise KeyError("node id out of range")
            return node_ids
        return np.array(
            [self.row_of(v) for v in node_ids.reshape(-1)], dtype=np.int64
        ).reshape(node_ids.shape)

    def _identity_ids(self) -> bool:
        if self._ids_identity is None:
            ids = self.node_ids
            answer = bool(
                ids.size == self.n_nodes
                and ids.dtype.kind == "i"
                and ids[0] == 0
                and ids[-1] == self.n_nodes - 1
                and np.array_equal(ids, np.arange(self.n_nodes))
            )
            object.__setattr__(self, "_ids_identity", answer)
        return self._ids_identity

    def nbytes(self) -> int:
        """Total model payload bytes (manifest-sourced for v2 artifacts)."""
        if self._container is not None:
            return self._container.nbytes()
        return sum(
            int(np.asarray(getattr(self, key)).nbytes) for key in _ARRAY_KEYS
        )

    def verify_deep(self) -> None:
        """Full integrity pass: every per-array digest + model invariants.

        For v2 (container-backed) artifacts this forces the lazy sha256
        digests that the default load defers; for v1 / in-memory
        artifacts it is just :meth:`validate`. Raises
        :class:`ArtifactCorrupt` on any damage.
        """
        source = self._container.path if self._container is not None else "<memory>"
        if self._container is not None:
            try:
                self._container.verify_all()
            except StoreCorrupt as exc:
                raise ArtifactCorrupt(source, exc.reason) from exc
        try:
            self.validate()
        except ValueError as exc:
            raise ArtifactCorrupt(source, f"invalid snapshot ({exc})") from exc

    def validate(self) -> None:
        """Raise ``ValueError`` when an invariant is broken."""
        n, k = self.pi.shape
        atol = 1e-6 if self.pi.dtype == np.float64 else 1e-3
        if np.any(self.pi < 0) or not np.allclose(self.pi.sum(axis=1), 1.0, atol=atol):
            raise ValueError("pi rows must be normalized and non-negative")
        if self.theta.shape != (k, 2) or np.any(self.theta <= 0):
            raise ValueError("theta must be (K, 2) positive")
        if self.beta.shape != (k,) or np.any(self.beta <= 0) or np.any(self.beta >= 1):
            raise ValueError("beta must be (K,) in (0, 1)")
        if self.node_ids.shape != (n,) or len(np.unique(self.node_ids)) != n:
            raise ValueError("node_ids must be (N,) unique")
        if self.top_communities.shape != self.top_weights.shape:
            raise ValueError("top_communities/top_weights shape mismatch")
        if self.top_communities.shape[0] != n or self.top_communities.shape[1] > k:
            raise ValueError("top_communities must be (N, top_k<=K)")


def build_artifact(
    state: ModelState,
    config: AMMSBConfig,
    iteration: int = 0,
    node_ids: Optional[np.ndarray] = None,
    top_k: int = DEFAULT_TOP_K,
) -> ModelArtifact:
    """Snapshot a model state into an in-memory :class:`ModelArtifact`.

    ``pi`` is copied and re-normalized row-wise, so the artifact stays
    valid even if the caller keeps mutating the state.
    """
    pi = np.asarray(state.pi, dtype=state.pi.dtype).copy()
    sums = pi.sum(axis=1, keepdims=True)
    if np.any(sums <= 0):
        raise ValueError("pi rows must have positive sums")
    pi /= sums
    theta = np.asarray(state.theta, dtype=np.float64).copy()
    beta = theta[:, 1] / theta.sum(axis=1)
    n = pi.shape[0]
    if node_ids is None:
        node_ids = np.arange(n, dtype=np.int64)
    else:
        node_ids = np.asarray(node_ids, dtype=np.int64).copy()
        if node_ids.shape != (n,):
            raise ValueError("node_ids must have one entry per pi row")
    top_idx, top_w = _top_communities(pi, top_k)
    config_json = _config_to_json(config)
    artifact = ModelArtifact(
        config=config,
        pi=pi,
        theta=theta,
        beta=beta,
        node_ids=node_ids,
        top_communities=top_idx,
        top_weights=top_w,
        iteration=int(iteration),
        version=_content_version(config_json, pi, theta),
    )
    artifact.validate()
    return artifact


def export_artifact(
    path: PathLike,
    state: ModelState,
    config: AMMSBConfig,
    iteration: int = 0,
    node_ids: Optional[np.ndarray] = None,
    top_k: int = DEFAULT_TOP_K,
) -> Path:
    """Atomically write a serving artifact for a model state; returns the path."""
    artifact = build_artifact(
        state, config, iteration=iteration, node_ids=node_ids, top_k=top_k
    )
    return save_artifact(path, artifact)


def export_from_sampler(
    path: PathLike,
    sampler: "AMMSBSampler",
    node_ids: Optional[np.ndarray] = None,
    top_k: int = DEFAULT_TOP_K,
) -> Path:
    """Export the current posterior of a (possibly mid-run) sampler."""
    return export_artifact(
        path,
        sampler.state,
        sampler.config,
        iteration=sampler.iteration,
        node_ids=node_ids,
        top_k=top_k,
    )


def save_artifact(path: PathLike, artifact: ModelArtifact, format: str = "auto") -> Path:
    """Atomically write an in-memory artifact; returns the final path.

    ``format="auto"`` (default) picks from the path: a ``.npz`` suffix
    writes the compressed v1 archive (appended to suffix-less paths for
    backward compatibility when forcing ``format="npz"``), anything else
    writes the v2 mmap-ready container directory. Pass ``"npz"`` or
    ``"dir"`` to force a format regardless of suffix.
    """
    if format not in ("auto", "npz", "dir"):
        raise ValueError(f"format must be 'auto', 'npz' or 'dir', got {format!r}")
    if format == "auto":
        format = "npz" if Path(path).suffix == ".npz" else "dir"
    if format == "dir":
        return save_artifact_v2(path, artifact)
    meta = {
        "schema": SCHEMA,
        "version": FORMAT_VERSION,
        "artifact_version": artifact.version,
        "iteration": int(artifact.iteration),
        "config": _config_to_json(artifact.config),
    }
    return _atomic_savez(
        path,
        _meta=json.dumps(meta),
        pi=artifact.pi,
        theta=artifact.theta,
        beta=artifact.beta,
        node_ids=artifact.node_ids,
        top_communities=artifact.top_communities,
        top_weights=artifact.top_weights,
    )


def save_artifact_v2(path: PathLike, artifact: ModelArtifact) -> Path:
    """Write the v2 directory format: raw ``.npy`` arrays + sealed manifest.

    Uncompressed on purpose — the arrays are page-aligned ``np.save``
    payloads a reader can memory-map directly. Atomicity (tmp dir +
    fsync + rename) and per-array sha256 digests come from
    :func:`repro.store.write_container`.
    """
    return write_container(
        path,
        {key: getattr(artifact, key) for key in _ARRAY_KEYS},
        kind=SCHEMA_V2,
        meta={
            "format_version": FORMAT_VERSION_V2,
            "artifact_version": artifact.version,
            "iteration": int(artifact.iteration),
            "config": _config_to_json(artifact.config),
        },
    )


def load_artifact(
    path: PathLike,
    verify: Union[bool, str] = True,
    provider: Union[str, None] = "mmap",
) -> ModelArtifact:
    """Load a serving artifact; no graph object required.

    v2 container directories and legacy v1 ``.npz`` archives are
    auto-detected; ``provider`` applies to v2 only (``"mmap"`` default:
    read-only maps, MB-scale RSS; ``"resident"``: full read).

    Verification levels:

    - ``verify=True`` (default): v1 recomputes the SHA-256 content
      version from the loaded arrays (it already paid the full read);
      v2 checks the sealed manifest + tiny arrays eagerly and defers
      per-array digests to first touch, keeping the load O(manifest).
    - ``verify="full"``: v2 additionally digests every array and runs
      the complete invariant + content-version check up front — what
      ``ModelServer.publish_path`` uses so damage surfaces as
      :class:`ArtifactCorrupt` *before* a swap, never mid-query.
      Equivalent to ``True`` for v1.
    - ``verify=False``: structural checks only.

    Raises:
        ArtifactCorrupt: damaged payload — CRC/decompression failure
            while reading arrays, digest or content-version mismatch,
            an edited manifest, or broken model invariants.
        ArtifactError: everything else — missing file, wrong schema or
            format version, missing arrays, unreadable metadata.
    """
    if verify not in (True, False, "full"):
        raise ValueError(f"verify must be True, False or 'full', got {verify!r}")
    p = Path(path)
    if is_container(p):
        return _load_artifact_v2(p, verify=verify, provider=provider)
    try:
        archive = _open_archive(p)
    except CheckpointError as exc:
        # A file that exists but will not open is damage (truncation,
        # garbage bytes); a missing file is an operator error.
        if p.exists():
            raise ArtifactCorrupt(p, exc.reason) from exc
        raise ArtifactError(p, exc.reason) from exc
    with archive as data:
        try:
            meta = json.loads(str(data["_meta"]))
        except KeyError as exc:
            raise ArtifactError(p, "missing _meta record") from exc
        except (json.JSONDecodeError, ValueError) as exc:
            raise ArtifactError(p, f"unreadable metadata ({exc})") from exc
        except (BadZipFile, zlib.error, OSError, EOFError) as exc:
            raise ArtifactCorrupt(p, f"corrupt metadata record ({exc})") from exc
        if meta.get("schema") != SCHEMA:
            raise ArtifactError(
                p, f"expected schema {SCHEMA!r}, got {meta.get('schema')!r}"
            )
        if meta.get("version") != FORMAT_VERSION:
            raise ArtifactError(
                p, f"unsupported artifact version {meta.get('version')}"
            )
        try:
            config = _config_from_json(p, meta["config"])
        except CheckpointError as exc:
            raise ArtifactError(p, exc.reason) from exc
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(p, f"invalid config metadata ({exc})") from exc
        arrays = {}
        for key in (
            "pi", "theta", "beta", "node_ids", "top_communities", "top_weights"
        ):
            try:
                arrays[key] = data[key].copy()
            except KeyError as exc:
                raise ArtifactError(p, f"missing array {key!r}") from exc
            except (BadZipFile, zlib.error, OSError, EOFError, ValueError) as exc:
                # npz member CRC/decompression failure: flipped or missing
                # bytes inside the archive.
                raise ArtifactCorrupt(
                    p, f"corrupt array {key!r} ({exc})"
                ) from exc
        artifact = ModelArtifact(
            config=config,
            iteration=int(meta.get("iteration", 0)),
            version=str(meta.get("artifact_version", "")),
            **arrays,
        )
    try:
        artifact.validate()
    except ValueError as exc:
        raise ArtifactCorrupt(p, f"invalid snapshot ({exc})") from exc
    if verify:
        recorded = str(meta.get("artifact_version", ""))
        recomputed = _content_version(
            str(meta["config"]), artifact.pi, artifact.theta
        )
        if recorded != recomputed:
            raise ArtifactCorrupt(
                p,
                "content version mismatch "
                f"(recorded {recorded!r}, recomputed {recomputed!r})",
            )
    return artifact


def _load_artifact_v2(
    p: Path, verify: Union[bool, str], provider: Union[str, None]
) -> ModelArtifact:
    """Open a v2 container artifact (see :func:`load_artifact` for levels).

    ``ModelArtifact`` adopts all six arrays at construction, so digest
    laziness is realized here by policy, not by touch-tracking: the
    container is opened with digests off, the tiny globals (``theta``,
    ``beta``) are digested and invariant-checked eagerly (corrupt
    globals would poison *every* answer), and the O(N) arrays keep
    their digests deferred to :meth:`ModelArtifact.verify_deep` /
    ``verify="full"`` — a default load stays O(manifest) regardless of
    artifact size.
    """
    try:
        container = Container(p, provider=provider or "resident", verify="none")
    except StoreCorrupt as exc:
        raise ArtifactCorrupt(p, exc.reason) from exc
    except StoreError as exc:
        raise ArtifactError(p, exc.reason) from exc
    if container.kind != SCHEMA_V2:
        raise ArtifactError(
            p, f"expected container kind {SCHEMA_V2!r}, got {container.kind!r}"
        )
    meta = container.meta
    if meta.get("format_version") != FORMAT_VERSION_V2:
        raise ArtifactError(
            p, f"unsupported artifact version {meta.get('format_version')}"
        )
    try:
        config = _config_from_json(p, meta["config"])
    except CheckpointError as exc:
        raise ArtifactError(p, exc.reason) from exc
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(p, f"invalid config metadata ({exc})") from exc

    # Manifest-side structural checks: shape consistency costs zero array
    # reads and catches cross-array damage the per-file digests cannot.
    try:
        entries = {key: container.entry(key) for key in _ARRAY_KEYS}
    except StoreError as exc:
        raise ArtifactError(p, exc.reason) from exc
    try:
        n, k = (int(x) for x in entries["pi"]["shape"])
        shapes = {key: [int(x) for x in entries[key]["shape"]] for key in _ARRAY_KEYS}
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactCorrupt(p, f"malformed manifest shapes ({exc})") from exc
    ok = (
        shapes["theta"] == [k, 2]
        and shapes["beta"] == [k]
        and shapes["node_ids"] == [n]
        and shapes["top_communities"] == shapes["top_weights"]
        and shapes["top_communities"][0] == n
        and shapes["top_communities"][1] <= k
    )
    if not ok:
        raise ArtifactCorrupt(p, f"inconsistent array shapes in manifest: {shapes}")

    try:
        if verify:
            for key in ("theta", "beta"):
                container.verify(key)
        arrays = {key: container.array(key) for key in _ARRAY_KEYS}
        if verify == "full":
            container.verify_all()
    except StoreCorrupt as exc:
        raise ArtifactCorrupt(p, exc.reason) from exc
    except StoreError as exc:
        raise ArtifactError(p, exc.reason) from exc

    artifact = ModelArtifact(
        config=config,
        iteration=int(meta.get("iteration", 0)),
        version=str(meta.get("artifact_version", "")),
        _container=container,
        **arrays,
    )
    if verify:
        theta, beta = artifact.theta, artifact.beta
        if np.any(theta <= 0):
            raise ArtifactCorrupt(p, "invalid snapshot (theta must be positive)")
        if np.any(beta <= 0) or np.any(beta >= 1):
            raise ArtifactCorrupt(p, "invalid snapshot (beta must be in (0, 1))")
    if verify == "full":
        try:
            artifact.validate()
        except ValueError as exc:
            raise ArtifactCorrupt(p, f"invalid snapshot ({exc})") from exc
        recorded = str(meta.get("artifact_version", ""))
        recomputed = _content_version(str(meta["config"]), artifact.pi, artifact.theta)
        if recorded != recomputed:
            raise ArtifactCorrupt(
                p,
                "content version mismatch "
                f"(recorded {recorded!r}, recomputed {recomputed!r})",
            )
    return artifact


def quarantine_artifact(path: PathLike) -> Path:
    """Move a damaged artifact aside (``<name>.quarantined[.N]``).

    The rename keeps the evidence for post-mortems while guaranteeing no
    later load can pick the bad file up again. Returns the new path.
    """
    p = Path(path)
    dest = p.with_name(p.name + ".quarantined")
    n = 0
    while dest.exists():
        n += 1
        dest = p.with_name(f"{p.name}.quarantined.{n}")
    os.replace(p, dest)
    return dest


class ArtifactRegistry:
    """Bounded history of artifacts that were *successfully* installed.

    The server records every artifact the moment it starts serving
    traffic (the initial one and each committed ``publish``); when a
    swap fails mid-flight, :meth:`previous` hands back the newest entry
    with a *different* content version — the last-known-good snapshot to
    roll back to. Not thread-safe; callers hold the server lock.
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 2:
            raise ValueError("registry needs capacity >= 2 to roll back")
        self._entries: deque[tuple[int, ModelArtifact]] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, generation: int, artifact: ModelArtifact) -> None:
        """Remember ``artifact`` as known-good at ``generation``."""
        self._entries.append((generation, artifact))

    def latest(self) -> Optional[ModelArtifact]:
        return self._entries[-1][1] if self._entries else None

    def previous(self, version: str) -> Optional[ModelArtifact]:
        """Newest known-good artifact whose content version differs from
        ``version`` (None when the history holds no alternative)."""
        for _, artifact in reversed(self._entries):
            if artifact.version != version:
                return artifact
        return None

    def versions(self) -> list[str]:
        """Content versions in install order (oldest first)."""
        return [a.version for _, a in self._entries]
