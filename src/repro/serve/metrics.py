"""Serving metrics: per-endpoint QPS, latency histograms, queue and cache.

The serving loop records every answered request into a
:class:`ServerMetrics` instance; :meth:`ServerMetrics.snapshot` exports
the whole thing as one JSON-ready dict (the shape ``repro bench-serve``
embeds in ``BENCH_serve.json``).

Latency is tracked in a fixed geometric-bucket histogram
(:class:`LatencyHistogram`) rather than a reservoir: constant memory, a
single lock-protected increment per observation, and p50/p99 read out by
linear interpolation inside the winning bucket — the standard
Prometheus-style trade-off (quantiles are approximate to within one
bucket's width, ~26% here, which is plenty to tell 50 microseconds from 5
milliseconds).

All methods are thread-safe; the hot-path cost is one lock + two adds.

Resilience counters (deadline misses, shed requests, degraded answers,
worker respawns, rollbacks, publish failures, quarantines, stale cache
evictions) live next to the throughput counters so ``BENCH_serve.json``
can pin the full error taxonomy. The admission-control loop reads
:meth:`ServerMetrics.observed_p99_ms` — an *exact* p99 over a small
sliding window of recent requests with a staleness horizon, so a burst
of slow requests raises it immediately and an idle (or fully shedding)
server decays back to "no data" instead of shedding forever on a stale
signal.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Callable, Optional

#: observations older than this never count toward the windowed p99.
_WINDOW_HORIZON_SECONDS = 5.0

#: histogram bucket upper bounds (seconds): 1 us .. ~85 s, geometric x1.26.
_BUCKET_BASE = 1e-6
_BUCKET_GROWTH = 1.26
_N_BUCKETS = 80


def _bucket_index(seconds: float) -> int:
    if seconds <= _BUCKET_BASE:
        return 0
    idx = int(math.log(seconds / _BUCKET_BASE) / math.log(_BUCKET_GROWTH)) + 1
    return min(idx, _N_BUCKETS - 1)


def _bucket_upper(idx: int) -> float:
    return _BUCKET_BASE * _BUCKET_GROWTH**idx


class LatencyHistogram:
    """Fixed geometric-bucket latency histogram with quantile readout."""

    def __init__(self) -> None:
        self._counts = [0] * _N_BUCKETS
        self.count = 0
        self.total_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self._counts[_bucket_index(seconds)] += 1
        self.count += 1
        self.total_seconds += seconds

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (seconds); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for idx, c in enumerate(self._counts):
            if c == 0:
                continue
            if seen + c >= target:
                lo = _bucket_upper(idx - 1) if idx > 0 else 0.0
                hi = _bucket_upper(idx)
                frac = (target - seen) / c
                return lo + frac * (hi - lo)
            seen += c
        return _bucket_upper(_N_BUCKETS - 1)  # pragma: no cover - defensive

    @property
    def mean(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.quantile(0.5) * 1e3,
            "p99_ms": self.quantile(0.99) * 1e3,
        }


class EndpointMetrics:
    """Counters + latency for one endpoint (``membership``, ...)."""

    def __init__(self) -> None:
        self.requests = 0
        self.queries = 0  # unit items answered, e.g. pairs scored
        self.errors = 0
        self.latency = LatencyHistogram()

    def record(self, latency_seconds: float, queries: int = 1) -> None:
        self.requests += 1
        self.queries += int(queries)
        self.latency.observe(latency_seconds)

    def snapshot(self, elapsed: float) -> dict[str, Any]:
        out: dict[str, Any] = {
            "requests": self.requests,
            "queries": self.queries,
            "errors": self.errors,
            "qps": self.requests / elapsed if elapsed > 0 else 0.0,
            "queries_per_s": self.queries / elapsed if elapsed > 0 else 0.0,
        }
        out.update(self.latency.snapshot())
        return out


class ServerMetrics:
    """Thread-safe aggregate of everything the server reports.

    Args:
        queue_depth: optional callable returning the live queue depth;
            sampled at snapshot time (a gauge, not a counter).
        p99_window: sliding-window size for :meth:`observed_p99_ms`.
    """

    def __init__(
        self,
        queue_depth: Optional[Callable[[], int]] = None,
        p99_window: int = 256,
    ) -> None:
        if p99_window < 1:
            raise ValueError("p99_window must be >= 1")
        self._lock = threading.Lock()
        self._endpoints: dict[str, EndpointMetrics] = {}
        self._queue_depth = queue_depth
        self._started = time.perf_counter()
        self._window: deque[tuple[float, float]] = deque(maxlen=p99_window)
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.stale_cache_evictions = 0
        self.rejected = 0
        self.hot_swaps = 0
        self.batches = 0
        self.batched_requests = 0
        self.deadline_exceeded = 0
        self.shed = 0
        self.degraded_answers = 0
        self.worker_respawns = 0
        self.rollbacks = 0
        self.publish_failures = 0
        self.quarantines = 0

    def record_request(
        self, endpoint: str, latency_seconds: float, queries: int = 1
    ) -> None:
        with self._lock:
            self._endpoint(endpoint).record(latency_seconds, queries)
            self._window.append((time.perf_counter(), latency_seconds))

    def record_error(self, endpoint: str) -> None:
        with self._lock:
            self._endpoint(endpoint).errors += 1

    def record_batch(self, n_requests: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += int(n_requests)

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_eviction(self, n: int = 1) -> None:
        with self._lock:
            self.cache_evictions += int(n)

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_hot_swap(self) -> None:
        with self._lock:
            self.hot_swaps += 1

    def record_stale_eviction(self, n: int = 1) -> None:
        with self._lock:
            self.stale_cache_evictions += int(n)

    def record_deadline_exceeded(self) -> None:
        with self._lock:
            self.deadline_exceeded += 1

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def record_degraded_answer(self) -> None:
        with self._lock:
            self.degraded_answers += 1

    def record_worker_respawn(self) -> None:
        with self._lock:
            self.worker_respawns += 1

    def record_rollback(self) -> None:
        with self._lock:
            self.rollbacks += 1

    def record_publish_failure(self) -> None:
        with self._lock:
            self.publish_failures += 1

    def record_quarantine(self) -> None:
        with self._lock:
            self.quarantines += 1

    def observed_p99_ms(self) -> float:
        """Exact p99 (ms) over the recent-request window; 0.0 means "no
        fresh data" and must never be read as "fast" *or* "slow" — the
        shed policy treats it as insufficient signal and does not shed
        on latency, which is what lets a fully-shedding server recover.
        """
        horizon = time.perf_counter() - _WINDOW_HORIZON_SECONDS
        with self._lock:
            while self._window and self._window[0][0] < horizon:
                self._window.popleft()
            if not self._window:
                return 0.0
            lat = sorted(v for _, v in self._window)
        idx = min(len(lat) - 1, int(math.ceil(0.99 * len(lat))) - 1)
        return lat[max(idx, 0)] * 1e3

    def _endpoint(self, name: str) -> EndpointMetrics:
        ep = self._endpoints.get(name)
        if ep is None:
            ep = self._endpoints[name] = EndpointMetrics()
        return ep

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def snapshot(self) -> dict[str, Any]:
        """One JSON-ready dict: endpoints, queue, cache, batching, swaps."""
        with self._lock:
            elapsed = time.perf_counter() - self._started
            return {
                "elapsed_seconds": elapsed,
                "endpoints": {
                    name: ep.snapshot(elapsed)
                    for name, ep in sorted(self._endpoints.items())
                },
                "queue_depth": self._queue_depth() if self._queue_depth else 0,
                "cache": {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "evictions": self.cache_evictions,
                    "stale_evictions": self.stale_cache_evictions,
                    "hit_rate": self.cache_hit_rate,
                },
                "batching": {
                    "batches": self.batches,
                    "batched_requests": self.batched_requests,
                    "mean_batch_size": (
                        self.batched_requests / self.batches if self.batches else 0.0
                    ),
                },
                "rejected": self.rejected,
                "hot_swaps": self.hot_swaps,
                "resilience": {
                    "deadline_exceeded": self.deadline_exceeded,
                    "shed": self.shed,
                    "degraded_answers": self.degraded_answers,
                    "worker_respawns": self.worker_respawns,
                    "rollbacks": self.rollbacks,
                    "publish_failures": self.publish_failures,
                    "quarantines": self.quarantines,
                },
            }
