"""Online inference serving for trained a-MMSB posteriors.

The train->serve stack: export an immutable versioned
:class:`~repro.serve.artifact.ModelArtifact` from a sampler or
checkpoint, answer queries through the vectorized
:class:`~repro.serve.engine.QueryEngine`, and put the micro-batching
:class:`~repro.serve.server.ModelServer` (bounded queue, request
coalescing, LRU cache, zero-downtime hot-swap) in front of traffic.
See DESIGN.md section 9.
"""

from repro.serve.artifact import (
    ArtifactCorrupt,
    ArtifactError,
    ModelArtifact,
    build_artifact,
    export_artifact,
    export_from_sampler,
    load_artifact,
    save_artifact,
    save_artifact_v2,
)
from repro.serve.engine import QueryEngine
from repro.serve.metrics import LatencyHistogram, ServerMetrics
from repro.serve.server import ModelServer, ServerOverloaded

__all__ = [
    "ArtifactCorrupt",
    "ArtifactError",
    "save_artifact_v2",
    "ModelArtifact",
    "build_artifact",
    "export_artifact",
    "export_from_sampler",
    "load_artifact",
    "save_artifact",
    "QueryEngine",
    "LatencyHistogram",
    "ServerMetrics",
    "ModelServer",
    "ServerOverloaded",
]
