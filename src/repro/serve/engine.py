"""Vectorized query engine over a loaded serving artifact.

Four read-only queries cover the downstream uses of a fitted a-MMSB
posterior (membership lookup, link scoring, community rosters, edge
recommendation). All scoring goes through the
:mod:`repro.core.kernels` backend registry — the same machinery the
trainers use — so a float32 artifact served by the ``fused`` backend
scores entirely in float32 with zero per-call allocations, and the
``reference`` backend remains the bit-for-bit contract
(``tests/test_serve_engine.py``).

Thread-safety: an engine owns a :class:`~repro.core.kernels.KernelWorkspace`,
which must not be shared across threads. The micro-batching server
(:mod:`repro.serve.server`) therefore builds one engine per worker
thread over the same (immutable) artifact — engines are cheap, the
artifact arrays are shared.

Fault injection: an optional :class:`~repro.faults.ServeFaultPlan` adds
seeded latency spikes in front of each query — the chaos drills use
this to exercise deadline and load-shedding behavior. A ``None`` or
empty plan leaves every query bit-identical to a plain engine.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core import kernels
from repro.serve.artifact import ModelArtifact

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.faults import ServeFaultPlan


class QueryEngine:
    """Answers model queries from an immutable :class:`ModelArtifact`.

    Args:
        artifact: the loaded snapshot.
        backend: kernel backend name; defaults to the artifact config's
            ``kernel_backend`` (what the model trained with).
        faults: optional seeded fault plan; only its latency spikes
            apply at this layer.
        provider: array provider (name or instance from
            :mod:`repro.store`) routing the engine's *large scratch*
            allocations — currently the concatenated recommend-edges
            score buffer, which can reach O(N) floats per batch.
            ``None`` (default) follows ``$REPRO_ARRAY_PROVIDER`` and
            falls back to resident heap scratch; ``"mmap"`` puts the
            buffer in unlinked file-backed memory the kernel can swap.
            Results are bit-identical across providers.
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        backend: str | None = None,
        faults: "ServeFaultPlan | None" = None,
        provider=None,
    ) -> None:
        from repro.store import get_provider

        self.artifact = artifact
        self.provider = get_provider(provider)
        if backend is not None:
            # An explicit selection is a caller error if wrong: stay strict.
            self.kernels = kernels.get_backend(backend)
        else:
            # Artifact-sourced names may come from a host with more
            # backends installed (e.g. trained with numba); serve anyway.
            self.kernels = kernels.resolve_backend(
                artifact.config.kernel_backend, allow_fallback=True
            )
        self.kernels.warmup()
        self.workspace = kernels.KernelWorkspace()
        self._faults = None if faults is None or faults.empty else faults

    def _fault_delay(self) -> None:
        if self._faults is not None:
            delay = self._faults.engine_delay()
            if delay > 0.0:
                time.sleep(delay)

    # -- membership -----------------------------------------------------------

    def membership(self, node: int, k: int | None = None) -> list[tuple[int, float]]:
        """Top-``k`` communities of ``node`` as ``(community, weight)`` pairs.

        Served from the artifact's precomputed assignments when ``k`` fits
        within them; falls back to a full-row sort for larger ``k``.
        """
        self._fault_delay()
        art = self.artifact
        row = art.row_of(node)
        stored = art.top_communities.shape[1]
        k = stored if k is None else int(k)
        if k < 1:
            raise ValueError("k must be >= 1")
        if k <= stored:
            idx = art.top_communities[row, :k]
            w = art.top_weights[row, :k]
        else:
            k = min(k, art.n_communities)
            order = np.argsort(-art.pi[row], kind="stable")[:k]
            idx, w = order, art.pi[row, order]
        return [(int(c), float(v)) for c, v in zip(idx, w)]

    # -- temporal drift --------------------------------------------------------

    def membership_drift(self, node: int, history, last: int | None = None) -> dict:
        """How ``node``'s aligned communities changed over recent generations.

        ``history`` is the server-owned
        :class:`repro.stream.tracking.MembershipHistory` ring (retained
        across artifact hot-swaps — it is *not* part of the artifact, so
        the server threads it in per call).
        """
        self._fault_delay()
        if history is None:
            raise ValueError("no membership history: server started without drift tracking")
        return history.drift(node, last=last)

    # -- link scoring ---------------------------------------------------------

    def link_probability(self, pairs: np.ndarray) -> np.ndarray:
        """Batched ``p(y=1)`` for (B, 2) node-id pairs, shape (B,).

        One gather + one kernel call regardless of B; this is the serving
        hot path the micro-batch server coalesces requests into.
        """
        self._fault_delay()
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pairs must have shape (B, 2)")
        art = self.artifact
        rows = art.rows_of(pairs)
        p = self.kernels.link_probability(
            art.pi[rows[:, 0]],
            art.pi[rows[:, 1]],
            art.beta,
            art.config.delta,
            workspace=self.workspace,
        )
        # Kernel output may be a workspace view; detach before returning.
        return np.array(p, copy=True)

    # -- community rosters ----------------------------------------------------

    def community_members(
        self, community: int, top_n: int = 10
    ) -> list[tuple[int, float]]:
        """The ``top_n`` strongest members of a community, weight-sorted."""
        self._fault_delay()
        art = self.artifact
        if not 0 <= community < art.n_communities:
            raise ValueError(
                f"community {community} out of range [0, {art.n_communities})"
            )
        if top_n < 1:
            raise ValueError("top_n must be >= 1")
        col = art.pi[:, community]
        top_n = min(int(top_n), art.n_nodes)
        idx = np.argpartition(-col, top_n - 1)[:top_n]
        idx = idx[np.argsort(-col[idx], kind="stable")]
        return [(int(art.node_ids[i]), float(col[i])) for i in idx]

    # -- recommendation -------------------------------------------------------

    #: Memory guard for the concatenated candidate gather: one kernel
    #: call per batch up to this many pairs, chunked beyond it.
    MAX_PAIRS_PER_CALL = 1 << 20

    def recommend_edges(
        self, node: int, top_n: int = 10, exclude: np.ndarray | None = None
    ) -> list[tuple[int, float]]:
        """The ``top_n`` nodes most likely linked to ``node``.

        Gathers the candidate rows (everything but the node itself and
        the ``exclude`` ids) into one (src, dst) pair array and scores it
        with a single ``link_probability`` kernel call — bit-identical to
        per-pair scoring. The micro-batch server coalesces many of these
        through :meth:`recommend_edges_batch`.
        """
        result = self.recommend_edges_batch([(node, top_n, exclude)])[0]
        if isinstance(result, Exception):
            raise result
        return result

    def recommend_edges_batch(
        self,
        queries: list[tuple[int, int, np.ndarray | None]],
    ) -> list[list[tuple[int, float]] | Exception]:
        """Coalesced edge recommendation: ONE kernel call per batch.

        ``queries`` holds ``(node, top_n, exclude)`` triples. All
        candidate (src, dst) row pairs across the batch are concatenated
        and scored with a single ``link_probability`` invocation (chunked
        only past :attr:`MAX_PAIRS_PER_CALL` pairs), then split back per
        query. Per-query failures (unknown node, bad ``top_n``) are
        returned as exception objects in their slot rather than raised,
        so one bad request cannot poison its batch-mates.
        """
        self._fault_delay()
        art = self.artifact
        results: list[list[tuple[int, float]] | Exception] = [None] * len(queries)
        prepared: list[tuple[int, int, int, np.ndarray]] = []
        for i, (node, top_n, exclude) in enumerate(queries):
            try:
                if top_n < 1:
                    raise ValueError("top_n must be >= 1")
                row = art.row_of(node)
                keep = np.ones(art.n_nodes, dtype=bool)
                keep[row] = False
                if exclude is not None and len(exclude):
                    keep[art.rows_of(np.asarray(exclude))] = False
                prepared.append((i, row, int(top_n), np.flatnonzero(keep)))
            except Exception as exc:  # noqa: BLE001 - per-slot fault isolation
                results[i] = exc
        if not prepared:
            return results

        src = np.concatenate(
            [np.full(cand.size, row, dtype=np.int64) for _, row, _, cand in prepared]
        )
        dst = np.concatenate([cand for _, _, _, cand in prepared])
        scores = self._score_row_pairs(src, dst)

        offset = 0
        for i, _, top_n, cand in prepared:
            p = scores[offset : offset + cand.size]
            offset += cand.size
            n = min(top_n, cand.size)
            if n == 0:
                results[i] = []
                continue
            idx = np.argpartition(-p, n - 1)[:n]
            idx = idx[np.argsort(-p[idx], kind="stable")]
            results[i] = [(int(art.node_ids[cand[j]]), float(p[j])) for j in idx]
        return results

    def _score_row_pairs(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Score internal row pairs; single kernel call under the cap."""
        art = self.artifact
        out = self.provider.allocate(src.size, art.pi.dtype)
        for lo in range(0, src.size, self.MAX_PAIRS_PER_CALL):
            hi = min(lo + self.MAX_PAIRS_PER_CALL, src.size)
            out[lo:hi] = self.kernels.link_probability(
                art.pi[src[lo:hi]],
                art.pi[dst[lo:hi]],
                art.beta,
                art.config.delta,
                workspace=self.workspace,
            )
        return out
