"""Configuration objects shared by every engine.

:class:`AMMSBConfig` collects the model hyperparameters and sampler knobs
of Algorithm 1 with the defaults used in the paper and in
[Li, Ahn, Welling 2015]. All three engines (sequential, threaded,
distributed) take the same config so experiments vary exactly one thing at
a time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional


def _default_kernel_backend() -> str:
    """Default backend, overridable via ``REPRO_KERNEL_BACKEND``."""
    return os.environ.get("REPRO_KERNEL_BACKEND", "fused")


@dataclass(frozen=True)
class StepSizeConfig:
    """SGRLD step-size schedule ``eps_t = a * (1 + t/b) ** -c``.

    The defaults follow [Li, Ahn, Welling 2015]: c in (0.5, 1] satisfies
    the Robbins-Monro conditions sum(eps) = inf, sum(eps^2) < inf.
    """

    a: float = 0.01
    b: float = 1024.0
    c: float = 0.55

    def at(self, t: int) -> float:
        """Step size at iteration ``t`` (0-based)."""
        if t < 0:
            raise ValueError("iteration must be >= 0")
        return self.a * (1.0 + t / self.b) ** (-self.c)


@dataclass(frozen=True)
class AMMSBConfig:
    """Hyperparameters and sampler knobs for a-MMSB SG-MCMC.

    Attributes:
        n_communities: K, number of latent communities.
        alpha: Dirichlet hyperparameter for memberships pi. The common
            heuristic alpha = 1/K is applied when left as None.
        eta: (eta1, eta0) Beta hyperparameters for community strengths.
        delta: inter-community link probability (small).
        mini_batch_vertices: M, number of distinct vertices treated per
            mini-batch (paper Figure 1 uses M = 16384).
        neighbor_sample_size: n, size of each vertex's sampled neighbor set
            V_n (paper Figure 1 uses n = 32).
        strategy: mini-batch strategy: "stratified-random-node" (default,
            the strategy of [16]), "random-pair" (uniform pairs), or
            "full-batch" (every pair each iteration, scale 1 — exact
            gradients for small graphs; the zero-variance reference the
            stochastic strategies are tested against).
        step_phi / step_theta: SGRLD schedules for the local / global updates.
        phi_clip: upper clip on phi values for numerical stability.
        seed: master RNG seed.
        sample_window: number of posterior (pi, beta) samples averaged by
            the perplexity estimator (Eqn 7).
        dtype: storage precision for pi/phi_sum ("float32" matches the
            paper's 32-bit arrays and halves the DKV footprint; the
            ``fused`` backend also *computes* the hot path at this
            precision, while ``reference`` upcasts internally).
        kernel_backend: which :mod:`repro.core.kernels` backend every
            engine uses for the SGRLD hot path ("fused" by default,
            "reference" for the plain numpy functions, "numba" for the
            parallel JIT loops when the ``numba`` extra is installed).
            The default can be overridden with the
            ``REPRO_KERNEL_BACKEND`` environment variable; resolution
            happens at engine construction, and an env-sourced name
            that is not registered falls back to "fused" with a
            warning (an explicitly configured unknown name raises).
    """

    n_communities: int = 16
    alpha: Optional[float] = None
    eta: tuple[float, float] = (1.0, 1.0)
    delta: float = 1e-7
    mini_batch_vertices: int = 32
    neighbor_sample_size: int = 32
    strategy: str = "stratified-random-node"
    step_phi: StepSizeConfig = field(default_factory=StepSizeConfig)
    step_theta: StepSizeConfig = field(default_factory=StepSizeConfig)
    phi_clip: float = 1e6
    phi_floor: float = 1e-12
    seed: int = 42
    sample_window: int = 32
    dtype: str = "float64"
    kernel_backend: str = field(default_factory=_default_kernel_backend)

    def __post_init__(self) -> None:
        if self.n_communities < 1:
            raise ValueError("n_communities must be >= 1")
        if not 0.0 < self.delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if self.mini_batch_vertices < 1:
            raise ValueError("mini_batch_vertices must be >= 1")
        if self.neighbor_sample_size < 1:
            raise ValueError("neighbor_sample_size must be >= 1")
        if self.strategy not in ("stratified-random-node", "random-pair", "full-batch"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.alpha is not None and self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.dtype not in ("float32", "float64"):
            raise ValueError("dtype must be 'float32' or 'float64'")
        if not self.kernel_backend or not isinstance(self.kernel_backend, str):
            raise ValueError("kernel_backend must be a non-empty backend name")

    @property
    def effective_alpha(self) -> float:
        """alpha, defaulting to the 1/K heuristic."""
        return self.alpha if self.alpha is not None else 1.0 / self.n_communities

    def with_updates(self, **kwargs) -> "AMMSBConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
