"""Supervised live tailing: poll → ingest → trigger → generation, forever.

``repro stream --follow`` turns the replay-only CLI into a deployment
mode: a :class:`FollowSupervisor` drives
:meth:`repro.stream.source.FileTailSource.poll` with transient-fault
discipline (ride out I/O errors with jittered exponential backoff,
surface a typed :class:`SourceStalled` once a stall deadline expires),
and :func:`follow_stream` feeds the arrivals to a
:class:`~repro.stream.trainer.StreamTrainer`, firing a generation
whenever a pluggable :class:`TriggerPolicy` says so:

- ``max_edges`` — N accepted (novel) edges are pending;
- ``max_seconds`` — T wall seconds since the last generation (as long as
  anything at all is pending);
- ``drift_threshold`` — the pending delta is a large enough *fraction*
  of the base graph's edges (a structural drift proxy: retraining cost
  is justified when the graph itself moved, not merely when time
  passed).

Shutdown is graceful: SIGTERM/SIGINT (or a caller-owned stop event)
drains — one final generation if anything is pending, so every
journaled edge is digested and the manifest is current — then returns.
A kill -9 instead of a drain loses nothing either: the write-ahead
journal holds every acknowledged arrival, and ``repro stream --resume``
replays the suffix (see :mod:`repro.stream.journal`).
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

import numpy as np

from repro.stream.delta import IngestReport, StreamError
from repro.stream.source import EdgeArrival
from repro.stream.trainer import GenerationReport, StreamTrainer


class SourceStalled(StreamError):
    """The live source kept failing past the supervisor's stall deadline."""

    def __init__(self, seconds: float, failures: int, last_error: str) -> None:
        self.seconds = float(seconds)
        self.failures = int(failures)
        self.last_error = last_error
        super().__init__(
            f"source unreadable for {seconds:.1f}s after {failures}"
            f" consecutive failures (last: {last_error})"
        )


@dataclass(frozen=True)
class TriggerPolicy:
    """When does pending work justify a retrain generation?

    Any subset of the three triggers may be armed; the first to fire
    wins (checked in the order edges, seconds, drift). With none armed,
    every poll that accepted at least one edge triggers — the degenerate
    one-generation-per-batch policy the replay CLI uses.

    Args:
        max_edges: fire once this many novel edges are pending.
        max_seconds: fire once this much wall time passed since the last
            generation *and* something is pending.
        drift_threshold: fire once pending novel edges exceed this
            fraction of the base graph's edge count (structural drift
            proxy — cheap, available before training, and monotone in
            how much the graph changed).
    """

    max_edges: Optional[int] = None
    max_seconds: Optional[float] = None
    drift_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_edges is not None and self.max_edges < 1:
            raise ValueError("max_edges must be >= 1")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError("max_seconds must be > 0")
        if self.drift_threshold is not None and not 0.0 < self.drift_threshold:
            raise ValueError("drift_threshold must be > 0")

    @property
    def armed(self) -> bool:
        return (
            self.max_edges is not None
            or self.max_seconds is not None
            or self.drift_threshold is not None
        )

    def due(
        self,
        n_pending: int,
        seconds_since_generation: float,
        base_edges: int,
    ) -> Optional[str]:
        """The name of the trigger that fired, or ``None``."""
        if n_pending <= 0:
            return None
        if not self.armed:
            return "every-batch"
        if self.max_edges is not None and n_pending >= self.max_edges:
            return "edges"
        if (
            self.max_seconds is not None
            and seconds_since_generation >= self.max_seconds
        ):
            return "seconds"
        if (
            self.drift_threshold is not None
            and base_edges > 0
            and n_pending / base_edges >= self.drift_threshold
        ):
            return "drift"
        return None


class FollowSupervisor:
    """Retry/timeout/backoff wrapper around a live source's ``poll``.

    One :meth:`poll` call makes exactly one attempt against the source.
    A transient failure (``OSError`` — missing file during rotation,
    transient NFS error, injected fault) is absorbed: the supervisor
    sleeps a jittered exponential backoff and reports an empty batch,
    letting the caller's loop continue. Once failures have persisted
    past ``stall_deadline_s`` of wall time, the typed
    :class:`SourceStalled` escapes instead — "keep retrying forever" is
    how deployments hang silently.

    Args:
        source: anything with ``poll() -> list[EdgeArrival]``
            (:class:`~repro.stream.source.FileTailSource`).
        poll_interval_s: sleep after an *empty* successful poll (a
            non-empty poll returns immediately, so a busy stream is
            consumed at full speed).
        backoff_initial_s / backoff_max_s: exponential backoff ladder for
            consecutive failures.
        backoff_jitter: uniform jitter fraction applied to each backoff
            sleep (0.2 = ±20%), decorrelating restarts across replicas.
        stall_deadline_s: consecutive-failure wall-time budget before
            :class:`SourceStalled` (``None`` = retry forever).
        faults: optional :class:`repro.faults.StreamFaultPlan` whose
            ``source_io_fails`` schedule injects poll ``OSError``\\ s.
        seed: jitter RNG seed.
        sleep / clock: injectable for tests (defaults: ``time.sleep``,
            ``time.monotonic``).

    Attributes:
        polls: poll attempts so far (the fault-schedule index).
        failures: total failed attempts.
        consecutive_failures: current failure streak.
        backoffs: backoff sleeps taken.
        rotations_seen: source rotations observed (when the source counts
            them).
    """

    def __init__(
        self,
        source,
        poll_interval_s: float = 0.5,
        backoff_initial_s: float = 0.1,
        backoff_max_s: float = 5.0,
        backoff_jitter: float = 0.2,
        stall_deadline_s: Optional[float] = 30.0,
        faults=None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if poll_interval_s < 0:
            raise ValueError("poll_interval_s must be >= 0")
        if backoff_initial_s <= 0 or backoff_max_s < backoff_initial_s:
            raise ValueError("need 0 < backoff_initial_s <= backoff_max_s")
        if not 0.0 <= backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")
        if stall_deadline_s is not None and stall_deadline_s <= 0:
            raise ValueError("stall_deadline_s must be > 0")
        self.source = source
        self.poll_interval_s = float(poll_interval_s)
        self.backoff_initial_s = float(backoff_initial_s)
        self.backoff_max_s = float(backoff_max_s)
        self.backoff_jitter = float(backoff_jitter)
        self.stall_deadline_s = stall_deadline_s
        self._faults = faults if faults is not None and not faults.empty else None
        self._rng = np.random.default_rng(seed + 0xF011)
        self._sleep = sleep
        self._clock = clock
        self.polls = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.backoffs = 0
        self._first_failure_at: Optional[float] = None
        self._last_error = ""

    def poll(self) -> list[EdgeArrival]:
        """One supervised poll attempt (see class docstring)."""
        index = self.polls
        self.polls += 1
        try:
            if self._faults is not None and self._faults.source_io_fails(index):
                raise OSError(f"injected source I/O fault (poll {index})")
            arrivals = self.source.poll()
        except OSError as exc:
            now = self._clock()
            self.failures += 1
            self.consecutive_failures += 1
            self._last_error = str(exc)
            if self._first_failure_at is None:
                self._first_failure_at = now
            stalled_for = now - self._first_failure_at
            if (
                self.stall_deadline_s is not None
                and stalled_for >= self.stall_deadline_s
            ):
                raise SourceStalled(
                    stalled_for, self.consecutive_failures, self._last_error
                ) from exc
            self._sleep(self._backoff_seconds())
            return []
        self.consecutive_failures = 0
        self._first_failure_at = None
        return arrivals

    def _backoff_seconds(self) -> float:
        self.backoffs += 1
        base = min(
            self.backoff_max_s,
            self.backoff_initial_s * (2.0 ** (self.consecutive_failures - 1)),
        )
        if self.backoff_jitter:
            base *= 1.0 + self.backoff_jitter * float(self._rng.uniform(-1, 1))
        return base


@dataclass
class FollowReport:
    """What one :func:`follow_stream` run did."""

    generations: list[GenerationReport] = field(default_factory=list)
    polls: int = 0
    arrivals: int = 0
    ingest: IngestReport = field(default_factory=IngestReport)
    triggers: list[str] = field(default_factory=list)
    drained: bool = False
    stop_reason: str = ""


def follow_stream(
    trainer: StreamTrainer,
    supervisor: FollowSupervisor,
    policy: Optional[TriggerPolicy] = None,
    max_generations: Optional[int] = None,
    max_wall_s: Optional[float] = None,
    stop_event: Optional[threading.Event] = None,
    install_signal_handlers: bool = False,
    n_iterations: Optional[int] = None,
    on_generation: Optional[Callable[[GenerationReport, str], None]] = None,
    idle_exit_polls: Optional[int] = None,
) -> FollowReport:
    """Tail a live source through ``trainer`` until told to stop.

    The loop: supervised poll → :meth:`StreamTrainer.ingest` (journal
    first, then overlay) → fire :meth:`StreamTrainer.run_generation`
    when ``policy`` says the pending delta justifies it. On SIGTERM or
    SIGINT (when ``install_signal_handlers``), or when ``stop_event``
    is set, the loop *drains*: one final generation if anything is
    pending — so the journal compacts and the manifest is current —
    then returns. Bounds (``max_generations``, ``max_wall_s``,
    ``idle_exit_polls``) exist for drills and tests; a deployment runs
    unbounded.

    Args:
        policy: trigger policy (default: fire on every non-empty poll).
        max_generations: stop after this many generations.
        max_wall_s: stop after this much wall time.
        stop_event: caller-owned stop flag (checked every iteration).
        install_signal_handlers: route SIGTERM/SIGINT into a drain
            (main thread only; handlers are restored on exit).
        n_iterations: per-generation training budget override.
        on_generation: called as ``callback(report, trigger_reason)``
            after each generation (CLI progress lines).
        idle_exit_polls: stop after this many consecutive empty polls
            (lets drills follow a finite file to completion).

    Returns:
        A :class:`FollowReport`; ``drained`` is True when the final
        pending delta was flushed through a generation.
    """
    policy = policy or TriggerPolicy()
    stop = stop_event or threading.Event()
    report = FollowReport()
    signaled: list[str] = []

    def _handler(signum, frame):  # pragma: no cover - exercised via tests
        signaled.append(signal.Signals(signum).name)
        stop.set()

    previous_handlers = {}
    if install_signal_handlers:
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[sig] = signal.signal(sig, _handler)

    clock = supervisor._clock
    started = clock()
    last_generation_at = started
    idle_polls = 0
    since_last = IngestReport()

    def _run_generation(trigger: str) -> None:
        nonlocal last_generation_at, since_last
        gen_report = trainer.run_generation(None, n_iterations=n_iterations)
        # Ingestion happened at poll time, so the trainer's own per-call
        # ingest is empty here; credit this generation with everything
        # polled in since the previous one.
        gen_report = replace(gen_report, ingest=gen_report.ingest + since_last)
        since_last = IngestReport()
        report.generations.append(gen_report)
        report.triggers.append(trigger)
        last_generation_at = clock()
        if on_generation is not None:
            on_generation(gen_report, trigger)

    try:
        while True:
            if stop.is_set():
                report.stop_reason = (
                    f"signal:{signaled[0]}" if signaled else "stop-event"
                )
                break
            if max_wall_s is not None and clock() - started >= max_wall_s:
                report.stop_reason = "max-wall"
                break
            if (
                max_generations is not None
                and len(report.generations) >= max_generations
            ):
                report.stop_reason = "max-generations"
                break

            arrivals = supervisor.poll()
            report.polls += 1
            if arrivals:
                idle_polls = 0
                report.arrivals += len(arrivals)
                batch_report = trainer.ingest(arrivals)
                report.ingest = report.ingest + batch_report
                since_last = since_last + batch_report
            else:
                idle_polls += 1
                if (
                    idle_exit_polls is not None
                    and idle_polls >= idle_exit_polls
                ):
                    report.stop_reason = "idle"
                    break

            trigger = policy.due(
                trainer.overlay.n_pending,
                clock() - last_generation_at,
                trainer.overlay.base.n_edges,
            )
            if trigger is not None:
                _run_generation(trigger)
            elif not arrivals and supervisor.consecutive_failures == 0:
                supervisor._sleep(supervisor.poll_interval_s)
    finally:
        for sig, handler in previous_handlers.items():
            signal.signal(sig, handler)

    # Graceful drain: flush the pending delta through one last
    # generation so every journaled edge is digested and the manifest
    # is the complete record of the run.
    if trainer.overlay.n_pending > 0:
        _run_generation("drain")
        report.drained = True
    return report
