"""Write-ahead ingest journal and quarantine sidecar for the streaming tier.

The :class:`~repro.stream.delta.DeltaOverlay` and everything behind it
(warm-start training, artifact publish) is in-memory state: before this
module, a crash anywhere between ingest and publish silently dropped
every pending arrival. The :class:`IngestJournal` closes that hole with
the classic write-ahead discipline — **every arrival batch is appended
and made durable here before it mutates the overlay**, so after a kill
the un-digested suffix of the stream can be replayed from disk.

Layout: a journal is a directory of numbered segment files
(``seg-00000000.wal``, ``seg-00000001.wal``, ...). Appends go to the
highest-numbered (*active*) segment; a segment that reaches
``max_segment_bytes`` is sealed and a new active segment is started.
Each record is one binary frame::

    magic  b"WJ"   (2 bytes)
    kind   u8      (1 = edge batch)
    flags  u8      (reserved, 0)
    seqno  u64 LE  (monotone, unique across the whole journal)
    length u32 LE  (payload bytes)
    crc    u32 LE  (CRC32 of kind+flags+seqno+payload)
    payload        (JSON: {"pairs": [[src, dst], ...], "ts": [...]})

Durability and recovery invariants:

- **fsync batching** — every append is flushed; an fsync is issued every
  ``fsync_batch`` appends (default 1 = every append, so an acknowledged
  batch is always durable; larger batches trade a bounded loss window
  for throughput and are opt-in).
- **torn tails** — a kill mid-``write`` can leave a partial frame at the
  end of the *active* segment only. :meth:`IngestJournal.open` scans
  every segment; a bad frame at the tail of the final segment is
  truncated away (the append was never acknowledged, so the caller
  re-feeds the batch and overlay dedup keeps semantics exactly-once).
  A bad frame in any *sealed* segment is real corruption and raises
  :class:`JournalCorrupt` — losing acknowledged writes must never be
  silent.
- **compaction** — once a generation's edges are digested into a CSR
  container and the manifest records the digested seqno,
  :meth:`IngestJournal.compact` seals the active segment and unlinks
  every segment whose last seqno is covered. Sealing happens before any
  unlink, so a crash mid-compaction leaves a journal whose replay is
  exactly the un-digested suffix; the next compact finishes the GC
  (idempotent).

The :class:`QuarantineLog` is the journal's JSONL sidecar for malformed
arrivals: the overlay's in-memory ``quarantined`` list dies with the
process, so every quarantined record is mirrored here with its reason
(append + flush + fsync per record — quarantines are rare). An
unterminated final line (torn write) is tolerated on read and repaired
on the next append.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.stream.delta import StreamError

PathLike = Union[str, Path]

_MAGIC = b"WJ"
#: frame header: magic(2s) kind(B) flags(B) seqno(Q) length(I) crc(I)
_HEADER = struct.Struct("<2sBBQII")
KIND_EDGES = 1

_SEG_RE = re.compile(r"^seg-(\d{8})\.wal$")


class JournalCorrupt(StreamError):
    """A sealed journal segment holds a bad frame (acknowledged data lost)."""

    def __init__(self, path: PathLike, offset: int, reason: str) -> None:
        self.path = Path(path)
        self.offset = int(offset)
        self.reason = reason
        super().__init__(f"journal segment {self.path} @ {offset}: {reason}")


@dataclass(frozen=True)
class JournalEntry:
    """One replayed journal record: an arrival batch as it was appended."""

    seqno: int
    pairs: np.ndarray
    timestamps: Optional[np.ndarray]


@dataclass
class _Segment:
    """In-memory index of one on-disk segment file."""

    index: int
    path: Path
    first_seqno: int = -1
    last_seqno: int = -1
    n_frames: int = 0
    size: int = 0


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
    except OSError:  # pragma: no cover - platform without dir fsync
        pass


def _crc(kind: int, flags: int, seqno: int, payload: bytes) -> int:
    head = struct.pack("<BBQ", kind, flags, seqno)
    return zlib.crc32(payload, zlib.crc32(head)) & 0xFFFFFFFF


def _encode_frame(kind: int, seqno: int, payload: bytes) -> bytes:
    header = _HEADER.pack(
        _MAGIC, kind, 0, seqno, len(payload), _crc(kind, 0, seqno, payload)
    )
    return header + payload


def _scan_segment(seg: _Segment) -> tuple[list[tuple[int, int, int]], int, str]:
    """Scan a segment's frames: ``(frames, good_bytes, tail_reason)``.

    ``frames`` is a list of ``(offset, seqno, kind)`` for every intact
    frame read from the front; ``good_bytes`` is the offset just past the
    last intact frame; ``tail_reason`` is "" when the file ends cleanly
    at a frame boundary, else a short tag describing the bad tail.
    """
    data = seg.path.read_bytes()
    frames: list[tuple[int, int, int]] = []
    off = 0
    prev_seqno = -1
    while off < len(data):
        if off + _HEADER.size > len(data):
            return frames, off, "truncated header"
        magic, kind, flags, seqno, length, crc = _HEADER.unpack_from(data, off)
        if magic != _MAGIC:
            return frames, off, "bad magic"
        end = off + _HEADER.size + length
        if end > len(data):
            return frames, off, "truncated payload"
        payload = data[off + _HEADER.size : end]
        if _crc(kind, flags, seqno, payload) != crc:
            return frames, off, "crc mismatch"
        if prev_seqno >= 0 and seqno <= prev_seqno:
            return frames, off, f"non-monotonic seqno {seqno}"
        try:
            json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return frames, off, "unreadable payload"
        frames.append((off, int(seqno), int(kind)))
        prev_seqno = seqno
        off = end
    return frames, off, ""


class IngestJournal:
    """Segment-based, checksummed, fsync-batched write-ahead log.

    Args:
        directory: journal directory (created if absent).
        max_segment_bytes: roll to a new segment once the active one
            reaches this size.
        fsync_batch: fsync every N appends (1 = every append; the only
            setting with a zero acknowledged-loss window).
        faults: optional :class:`repro.faults.StreamFaultPlan` whose
            ``journal_tear_due`` schedule tears frame writes (drills).

    Attributes:
        appends: lifetime append-attempt counter (fault schedule index).
        compactions: completed :meth:`compact` calls.
        repaired: ``(path, offset, reason)`` of the torn tail truncated
            at open, if any.
    """

    def __init__(
        self,
        directory: PathLike,
        max_segment_bytes: int = 1 << 22,
        fsync_batch: int = 1,
        faults=None,
    ) -> None:
        if max_segment_bytes < _HEADER.size + 2:
            raise ValueError("max_segment_bytes too small for one frame")
        if fsync_batch < 1:
            raise ValueError("fsync_batch must be >= 1")
        self.directory = Path(directory)
        self.max_segment_bytes = int(max_segment_bytes)
        self.fsync_batch = int(fsync_batch)
        self._faults = faults
        self.appends = 0
        self.compactions = 0
        self.repaired: Optional[tuple[Path, int, str]] = None
        self._segments: list[_Segment] = []
        self._fh = None
        self._unsynced = 0
        self._next_seqno = 0
        self._open()

    # -- open / recovery -----------------------------------------------------

    def _open(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        found: list[_Segment] = []
        for p in sorted(self.directory.iterdir()):
            m = _SEG_RE.match(p.name)
            if m:
                found.append(_Segment(index=int(m.group(1)), path=p))
        found.sort(key=lambda s: s.index)
        next_seqno = 0
        for i, seg in enumerate(found):
            frames, good, reason = _scan_segment(seg)
            if reason:
                if i != len(found) - 1:
                    raise JournalCorrupt(seg.path, good, reason)
                # Torn tail of the active segment: the partial frame was
                # never acknowledged — truncate it away.
                with open(seg.path, "r+b") as fh:
                    fh.truncate(good)
                    fh.flush()
                    os.fsync(fh.fileno())
                self.repaired = (seg.path, good, reason)
            if frames:
                seg.first_seqno = frames[0][1]
                seg.last_seqno = frames[-1][1]
                seg.n_frames = len(frames)
                if seg.first_seqno < next_seqno:
                    raise JournalCorrupt(
                        seg.path, frames[0][0],
                        f"seqno {seg.first_seqno} overlaps a prior segment",
                    )
                next_seqno = seg.last_seqno + 1
            seg.size = good
        if not found:
            found = [self._create_segment(0)]
        self._segments = found
        self._next_seqno = next_seqno
        self._fh = open(self._active.path, "ab")

    def _create_segment(self, index: int) -> _Segment:
        path = self.directory / f"seg-{index:08d}.wal"
        with open(path, "wb") as fh:
            fh.flush()
            os.fsync(fh.fileno())
        _fsync_dir(self.directory)
        return _Segment(index=index, path=path)

    @property
    def _active(self) -> _Segment:
        return self._segments[-1]

    # -- views ---------------------------------------------------------------

    @property
    def last_seqno(self) -> int:
        """Highest acknowledged seqno (``-1`` when the journal is empty)."""
        return self._next_seqno - 1

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def segment_paths(self) -> tuple[Path, ...]:
        return tuple(s.path for s in self._segments)

    # -- append --------------------------------------------------------------

    def append_edges(
        self,
        pairs: Sequence,
        timestamps: Optional[Sequence] = None,
    ) -> int:
        """Durably append one arrival batch; returns its seqno.

        The batch is journaled exactly as it will be fed to the overlay
        (post any fault mangling), so replay reproduces ingest — including
        quarantine decisions — without re-drawing fault RNG streams.
        """
        if self._fh is None:
            raise StreamError("journal is closed")
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        record: dict = {"pairs": arr.tolist()}
        if timestamps is not None:
            ts = np.asarray(timestamps, dtype=np.float64).reshape(-1)
            if ts.shape[0] != arr.shape[0]:
                raise StreamError(
                    f"timestamps length {ts.shape[0]} != pairs {arr.shape[0]}"
                )
            record["ts"] = ts.tolist()
        payload = json.dumps(record).encode("utf-8")
        seqno = self._next_seqno
        frame = _encode_frame(KIND_EDGES, seqno, payload)

        append_index = self.appends
        self.appends += 1
        if self._faults is not None and not self._faults.empty:
            if self._faults.journal_tear_due(append_index):
                # Kill mid-write(2): half a frame reaches the file, no
                # fsync, no acknowledgement. The next open must truncate it.
                from repro.faults import InjectedCrash

                self._fh.write(frame[: max(_HEADER.size - 4, len(frame) // 2)])
                self._fh.flush()
                raise InjectedCrash(f"journal append {append_index} (torn frame)")

        if self._active.size + len(frame) > self.max_segment_bytes and self._active.n_frames:
            self._roll()
        self._fh.write(frame)
        self._fh.flush()
        self._unsynced += 1
        if self._unsynced >= self.fsync_batch:
            os.fsync(self._fh.fileno())
            self._unsynced = 0
        seg = self._active
        if seg.first_seqno < 0:
            seg.first_seqno = seqno
        seg.last_seqno = seqno
        seg.n_frames += 1
        seg.size += len(frame)
        self._next_seqno = seqno + 1
        return seqno

    def sync(self) -> None:
        """Force any batched appends to disk."""
        if self._fh is not None and self._unsynced:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._unsynced = 0

    def _roll(self) -> None:
        self.sync()
        self._fh.close()
        seg = self._create_segment(self._active.index + 1)
        self._segments.append(seg)
        self._fh = open(seg.path, "ab")

    # -- replay --------------------------------------------------------------

    def replay(self, after_seqno: int = -1) -> Iterator[JournalEntry]:
        """Yield journaled batches with ``seqno > after_seqno``, in order."""
        for seg in list(self._segments):
            if seg.n_frames == 0 or seg.last_seqno <= after_seqno:
                continue
            frames, _, _ = _scan_segment(seg)
            data = seg.path.read_bytes()
            for off, seqno, kind in frames:
                if seqno <= after_seqno or kind != KIND_EDGES:
                    continue
                _, _, _, _, length, _ = _HEADER.unpack_from(data, off)
                payload = data[off + _HEADER.size : off + _HEADER.size + length]
                record = json.loads(payload.decode("utf-8"))
                pairs = np.asarray(record["pairs"], dtype=np.int64).reshape(-1, 2)
                ts = record.get("ts")
                yield JournalEntry(
                    seqno=seqno,
                    pairs=pairs,
                    timestamps=None if ts is None else np.asarray(ts, dtype=np.float64),
                )

    # -- compaction ----------------------------------------------------------

    def compact(
        self,
        digested_seqno: int,
        crash_hook: Optional[Callable[[], None]] = None,
    ) -> int:
        """Seal the active segment and GC segments covered by ``digested_seqno``.

        Called only *after* the manifest durably records
        ``digested_seqno`` (else a crash between GC and manifest loses
        the suffix). Seal happens before any unlink; ``crash_hook`` (the
        trainer's mid-compaction kill point) fires between the two, so a
        crash there leaves every un-digested frame intact and the next
        compact finishes the GC. Returns the number of segments removed.
        """
        self.sync()
        if self._active.n_frames:
            self._roll()
        if crash_hook is not None:
            crash_hook()
        removed = 0
        survivors: list[_Segment] = []
        for seg in self._segments:
            sealed = seg is not self._active
            covered = seg.n_frames == 0 or seg.last_seqno <= digested_seqno
            if sealed and covered:
                seg.path.unlink(missing_ok=True)
                removed += 1
            else:
                survivors.append(seg)
        self._segments = survivors
        if removed:
            _fsync_dir(self.directory)
        self.compactions += 1
        return removed

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "IngestJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class QuarantineLog:
    """Durable JSONL sidecar of quarantined arrivals (reason + record).

    Each line is ``{"reason": ..., "record": [src, dst]}``. Appends are
    flushed and fsynced per record — quarantines are rare, losing the
    forensic trail on crash is worse than the syscall. A torn final line
    (no trailing newline) is skipped on read and terminated before the
    next append.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._count: Optional[int] = None

    def append(self, reason: str, record, seqno: Optional[int] = None) -> None:
        rec = record
        if isinstance(rec, np.ndarray):
            rec = rec.tolist()
        elif isinstance(rec, tuple):
            rec = [int(x) if isinstance(x, (int, np.integer)) else x for x in rec]
        entry = {"reason": str(reason), "record": rec}
        if seqno is not None:
            entry["seqno"] = int(seqno)
        line = json.dumps(entry)
        self._repair_tail()
        with open(self.path, "ab") as fh:
            fh.write(line.encode("utf-8") + b"\n")
            fh.flush()
            os.fsync(fh.fileno())
        if self._count is not None:
            self._count += 1

    def extend(self, items: Sequence[tuple[str, object]]) -> None:
        for reason, record in items:
            self.append(reason, record)

    def _repair_tail(self) -> None:
        """Drop an unterminated (torn, unacknowledged) final line, if any;
        a valid-but-unterminated record just gains its newline."""
        if not self.path.exists() or self.path.stat().st_size == 0:
            return
        raw = self.path.read_bytes()
        if raw.endswith(b"\n"):
            return
        cut = raw.rfind(b"\n") + 1
        tail = raw[cut:]
        try:
            json.loads(tail.decode("utf-8"))
            intact = True
        except (UnicodeDecodeError, json.JSONDecodeError):
            intact = False
        with open(self.path, "r+b") as fh:
            if intact:
                fh.seek(0, os.SEEK_END)
                fh.write(b"\n")
            else:
                fh.truncate(cut)
            fh.flush()
            os.fsync(fh.fileno())

    def read(self) -> list[dict]:
        """All intact quarantine records, oldest first."""
        if not self.path.exists():
            return []
        raw = self.path.read_bytes()
        chunks = raw.split(b"\n")
        terminated = raw.endswith(b"\n")
        out = []
        for i, line in enumerate(chunks):
            if not line.strip():
                continue
            try:
                out.append(json.loads(line.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                if i == len(chunks) - 1 and not terminated:
                    break  # torn (unacknowledged) final line
                raise StreamError(
                    f"quarantine log {self.path}: corrupt line {i}"
                ) from exc
        self._count = len(out)
        return out

    def __len__(self) -> int:
        if self._count is None:
            self._count = len(self.read())
        return self._count
