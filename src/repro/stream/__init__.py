"""Streaming tier: edge ingestion, warm-start retraining, drift tracking.

Closes the loop from edge arrival to served answer (DESIGN.md §11):
:mod:`~repro.stream.source` replays arrivals, :mod:`~repro.stream.delta`
buffers them over the immutable CSR base and compacts, :mod:`~repro
.stream.journal` makes every accepted arrival durable *before* it
mutates the overlay (write-ahead), :mod:`~repro.stream.trainer`
warm-starts a generation of SG-MCMC, publishes a serving artifact, and
records a generation manifest (crash → :meth:`~repro.stream.trainer
.StreamTrainer.resume`), :mod:`~repro.stream.follow` supervises a live
tail for deployment (``repro stream --follow``), and :mod:`~repro
.stream.tracking` aligns community labels across generations so the
serving tier can answer ``membership_drift`` queries.
"""

from repro.stream.delta import (
    DeltaOverflow,
    DeltaOverlay,
    IngestReport,
    MalformedArrival,
    StreamError,
)
from repro.stream.follow import (
    FollowReport,
    FollowSupervisor,
    SourceStalled,
    TriggerPolicy,
    follow_stream,
)
from repro.stream.journal import (
    IngestJournal,
    JournalCorrupt,
    JournalEntry,
    QuarantineLog,
)
from repro.stream.source import (
    EdgeArrival,
    FileTailSource,
    SyntheticArrivalSource,
    arrivals_to_arrays,
    write_arrival_file,
)
from repro.stream.tracking import DriftEvent, MembershipHistory
from repro.stream.trainer import GenerationReport, ResumeError, StreamTrainer

__all__ = [
    "DeltaOverflow",
    "DeltaOverlay",
    "DriftEvent",
    "EdgeArrival",
    "FileTailSource",
    "FollowReport",
    "FollowSupervisor",
    "GenerationReport",
    "IngestJournal",
    "IngestReport",
    "JournalCorrupt",
    "JournalEntry",
    "MalformedArrival",
    "MembershipHistory",
    "QuarantineLog",
    "ResumeError",
    "SourceStalled",
    "StreamError",
    "StreamTrainer",
    "SyntheticArrivalSource",
    "TriggerPolicy",
    "arrivals_to_arrays",
    "follow_stream",
    "write_arrival_file",
]
