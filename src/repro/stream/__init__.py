"""Streaming tier: edge ingestion, warm-start retraining, drift tracking.

Closes the loop from edge arrival to served answer (DESIGN.md §11):
:mod:`~repro.stream.source` replays arrivals, :mod:`~repro.stream.delta`
buffers them over the immutable CSR base and compacts, :mod:`~repro
.stream.trainer` warm-starts a generation of SG-MCMC and publishes a
serving artifact, and :mod:`~repro.stream.tracking` aligns community
labels across generations so the serving tier can answer
``membership_drift`` queries.
"""

from repro.stream.delta import (
    DeltaOverflow,
    DeltaOverlay,
    IngestReport,
    MalformedArrival,
    StreamError,
)
from repro.stream.source import (
    EdgeArrival,
    FileTailSource,
    SyntheticArrivalSource,
    arrivals_to_arrays,
    write_arrival_file,
)
from repro.stream.tracking import DriftEvent, MembershipHistory
from repro.stream.trainer import GenerationReport, StreamTrainer

__all__ = [
    "DeltaOverflow",
    "DeltaOverlay",
    "DriftEvent",
    "EdgeArrival",
    "FileTailSource",
    "GenerationReport",
    "IngestReport",
    "MalformedArrival",
    "MembershipHistory",
    "StreamError",
    "StreamTrainer",
    "SyntheticArrivalSource",
    "arrivals_to_arrays",
    "write_arrival_file",
]
