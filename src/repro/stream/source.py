"""Replayable edge-arrival sources for the streaming tier.

Two producers feed :class:`repro.stream.delta.DeltaOverlay`:

- :class:`FileTailSource` tails a whitespace-separated arrival file —
  ``src dst`` or ``timestamp src dst`` lines, ``#`` comments — by byte
  offset, so repeated :meth:`~FileTailSource.poll` calls pick up only
  lines appended since the previous call (a partially written trailing
  line is deferred until its newline lands). Malformed lines raise
  :class:`~repro.stream.delta.MalformedArrival` under ``strict=True`` or
  are counted and skipped otherwise.
- :class:`SyntheticArrivalSource` derives a deterministic arrival
  process from a planted overlapping-community graph: edges arrive in an
  order that grows the vertex id frontier contiguously (so "new nodes"
  are exactly the ids past the warm-start base), with seeded
  exponential inter-arrival timestamps. :meth:`~SyntheticArrivalSource
  .base_graph` cuts the prefix graph a trainer cold-starts on, and
  :meth:`~SyntheticArrivalSource.batches` yields the remainder as
  generation-sized batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

import numpy as np

from repro.graph.graph import Graph
from repro.stream.delta import MalformedArrival

PathLike = Union[str, Path]


@dataclass(frozen=True)
class EdgeArrival:
    """One timestamped undirected edge arrival.

    Field order (timestamp, src, dst) is part of the record's shape:
    fault injection (:class:`repro.faults.StreamFaultPlan`) rebuilds
    arrivals positionally via :func:`dataclasses.replace`.
    """

    timestamp: float
    src: int
    dst: int


def arrivals_to_arrays(
    arrivals: Sequence[EdgeArrival],
) -> tuple[np.ndarray, np.ndarray]:
    """Split arrivals into ``(pairs (m, 2) int64, timestamps (m,) float64)``.

    Out-of-range endpoint values (beyond int64, from fault injection or
    garbage input) are clamped into a still-invalid sentinel rather than
    raising, so validation stays the overlay's job.
    """
    if not arrivals:
        return np.zeros((0, 2), dtype=np.int64), np.zeros(0, dtype=np.float64)
    pairs = np.array([(a.src, a.dst) for a in arrivals], dtype=np.int64)
    ts = np.array([a.timestamp for a in arrivals], dtype=np.float64)
    return pairs, ts


class FileTailSource:
    """Incremental reader of a (possibly growing) edge-arrival file.

    Args:
        path: arrival file; each data line is ``src dst`` or
            ``timestamp src dst`` (the layout is sniffed from the first
            data line and then enforced).
        strict: raise on malformed lines instead of skipping them.

    Attributes:
        n_malformed: lines skipped so far (``strict=False`` only).
        n_rotations: truncation/rotation resets detected so far.
    """

    def __init__(self, path: PathLike, strict: bool = True) -> None:
        self.path = Path(path)
        self.strict = strict
        self.n_malformed = 0
        self.n_rotations = 0
        self._offset = 0
        self._n_cols: Optional[int] = None
        self._line_no = 0  # data lines seen; synthesizes 2-col timestamps

    def reset(self) -> None:
        """Rewind to the start of the file (replay from scratch)."""
        self._offset = 0
        self._n_cols = None
        self._line_no = 0
        self.n_malformed = 0

    @property
    def offset(self) -> int:
        """Byte offset of the next unread line (resume token)."""
        return self._offset

    def seek(self, offset: int) -> None:
        """Position the tail at a byte offset (resume from a manifest).

        The column layout is re-sniffed from the next data line; seeking
        backwards simply re-reads (downstream overlay dedup makes the
        overlap idempotent).
        """
        if offset < 0:
            raise ValueError("offset must be >= 0")
        self._offset = int(offset)
        self._n_cols = None

    def poll(self) -> list[EdgeArrival]:
        """Return arrivals appended since the previous poll.

        Only byte-complete lines are consumed: a trailing line without
        its newline stays unread until a later poll sees the rest of it,
        so a writer mid-``write()`` never produces a torn record.

        A file that *shrank* below the current offset was truncated or
        rotated in place; tailing from the stale offset would read
        garbage mid-line, so the source resets to the top of the new
        file (counted in ``n_rotations``) and re-sniffs the column
        layout. A missing file raises ``FileNotFoundError`` — transient
        I/O is the follow supervisor's problem, not the source's.
        """
        with open(self.path, "rb") as fh:
            size = fh.seek(0, 2)
            if size < self._offset:
                self._offset = 0
                self._n_cols = None
                self.n_rotations += 1
            fh.seek(self._offset)
            chunk = fh.read()
        if not chunk:
            return []
        end = chunk.rfind(b"\n")
        if end < 0:
            return []  # no complete line yet
        consumed = chunk[: end + 1]
        self._offset += end + 1
        out: list[EdgeArrival] = []
        for raw in consumed.split(b"\n"):
            line = raw.decode("utf-8", errors="replace").strip()
            if not line or line.startswith("#"):
                continue
            arrival = self._parse(line)
            if arrival is not None:
                out.append(arrival)
        return out

    def read_all(self) -> list[EdgeArrival]:
        """Convenience: poll once from the current offset to EOF."""
        return self.poll()

    def _parse(self, line: str) -> Optional[EdgeArrival]:
        fields = line.split()
        if self._n_cols is None and len(fields) in (2, 3):
            self._n_cols = len(fields)
        if len(fields) != self._n_cols:
            return self._reject("bad-shape", line)
        try:
            if self._n_cols == 3:
                ts = float(fields[0])
                src, dst = int(fields[1]), int(fields[2])
            else:
                ts = float(self._line_no)
                src, dst = int(fields[0]), int(fields[1])
        except ValueError:
            return self._reject("unparseable", line)
        self._line_no += 1
        return EdgeArrival(timestamp=ts, src=src, dst=dst)

    def _reject(self, reason: str, line: str) -> None:
        if self.strict:
            raise MalformedArrival(reason, line)
        self.n_malformed += 1
        return None


def write_arrival_file(
    path: PathLike, arrivals: Sequence[EdgeArrival], header: str = ""
) -> Path:
    """Write arrivals as a ``timestamp src dst`` file FileTailSource reads."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        for a in arrivals:
            fh.write(f"{a.timestamp:.6f} {a.src} {a.dst}\n")
    return path


class SyntheticArrivalSource:
    """Deterministic arrival process over a planted overlapping graph.

    The planted graph's edges are replayed in frontier order — sorted by
    ``(max endpoint, min endpoint)`` — so vertex ids enter the stream
    contiguously: after any prefix, the touched ids are exactly
    ``0..max_id``. That makes "the first ``base_fraction`` of nodes" a
    well-defined warm-start base and everything after it genuinely new.

    Args:
        graph: the final planted graph the stream converges to.
        base_fraction: fraction of vertices (by id) forming the base.
        rate: mean arrivals per unit time for the exponential
            inter-arrival clock.
        seed: timestamp RNG seed (edge order is already deterministic).
    """

    def __init__(
        self,
        graph: Graph,
        base_fraction: float = 0.9,
        rate: float = 100.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 < base_fraction < 1.0:
            raise ValueError("base_fraction must be in (0, 1)")
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.graph = graph
        self.n_base = max(2, int(graph.n_vertices * base_fraction))
        edges = graph.edges
        order = np.lexsort((edges[:, 0], edges[:, 1]))  # (hi asc, lo asc)
        self._edges = edges[order]
        rng = np.random.default_rng(seed)
        self._timestamps = np.cumsum(rng.exponential(1.0 / rate, size=len(edges)))
        # Arrivals = every edge touching a non-base vertex. hi is the max
        # endpoint (canonical lo < hi), so the split is one comparison.
        self._split = int(np.searchsorted(self._edges[:, 1], self.n_base))

    def base_graph(self) -> Graph:
        """The induced graph on vertices ``0..n_base-1`` (the warm base)."""
        return Graph(self.n_base, self._edges[: self._split])

    def arrivals(self) -> list[EdgeArrival]:
        """All post-base arrivals, timestamped, in frontier order."""
        return [
            EdgeArrival(float(self._timestamps[i]), int(e[0]), int(e[1]))
            for i, e in enumerate(self._edges[self._split :], start=self._split)
        ]

    def batches(self, n_batches: int) -> Iterator[list[EdgeArrival]]:
        """The post-base arrivals split into ``n_batches`` contiguous runs."""
        if n_batches < 1:
            raise ValueError("n_batches must be >= 1")
        all_arrivals = self.arrivals()
        splits = np.array_split(np.arange(len(all_arrivals)), n_batches)
        for chunk in splits:
            yield [all_arrivals[i] for i in chunk]
