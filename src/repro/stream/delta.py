"""Append-only edge/node delta overlay on an immutable CSR base graph.

:class:`repro.graph.graph.Graph` is deliberately immutable — every
consumer (samplers, serving, mmap containers) relies on its canonical
sorted-CSR invariants. Streaming arrivals therefore never mutate a
graph; they accumulate in a :class:`DeltaOverlay`, a bounded sorted
buffer of *novel* canonical edges layered over the base:

- **dedup on ingest** — each arriving pair is canonicalized (``lo <
  hi``) and checked against both the base graph (:meth:`Graph.has_edges`
  for pairs whose endpoints the base covers) and the pending buffer, so
  the overlay only ever holds edges the compacted graph will actually
  gain. Pending pairs are keyed under a fixed ``2**32`` radix (id-space
  independent, unlike ``Graph`` keys), keeping the buffer sorted for
  O(log p) membership tests and order-independent of arrival order.
- **bounded buffer** — ``max_pending``/``max_new_nodes`` cap the overlay
  between compactions; overflow raises :class:`DeltaOverflow` *before*
  any mutation, so a failed ingest batch never half-applies.
- **typed rejection** — malformed arrivals (negative/absurd ids,
  self-loops, non-finite timestamps) raise :class:`MalformedArrival`
  under ``strict=True`` or are quarantined (kept, counted, reported)
  under ``strict=False``; out-of-order timestamps are counted per batch.
- **compaction** — :meth:`DeltaOverlay.compact` merges base + pending
  into a fresh :class:`Graph`; given a path it round-trips the merge
  through a :func:`repro.graph.io.save_csr` container so the result is
  the provider-backed graph every later consumer memory-maps, then
  resets the overlay onto the merged graph as the new base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.graph.graph import Graph
from repro.graph.io import load_csr, save_csr

PathLike = Union[str, Path]

#: Fixed radix for pending-edge keys: independent of any graph's vertex
#: count, so keys stay comparable as the id space grows. Ids must stay
#: below ``2**31`` (anything larger is treated as malformed — far above
#: any graph this codebase trains).
_KEY_RADIX = np.int64(1) << 32
MAX_VERTEX_ID = int(1 << 31) - 1


class StreamError(ValueError):
    """Base class for streaming-tier errors."""


class MalformedArrival(StreamError):
    """An arriving edge record failed validation.

    Attributes:
        reason: short machine-readable tag (``"negative-id"``,
            ``"id-overflow"``, ``"self-loop"``, ``"bad-timestamp"``,
            ``"bad-shape"``, ``"unparseable"``).
        record: the offending record, when available.
    """

    def __init__(self, reason: str, record: object = None) -> None:
        self.reason = reason
        self.record = record
        detail = f": {record!r}" if record is not None else ""
        super().__init__(f"malformed arrival ({reason}){detail}")


class DeltaOverflow(StreamError):
    """The delta overlay's bounded buffer would exceed its cap."""


@dataclass(frozen=True)
class IngestReport:
    """Per-batch ingest accounting returned by :meth:`DeltaOverlay.ingest_pairs`.

    ``accepted`` counts novel edges added to the pending buffer;
    ``duplicates`` counts arrivals already present in the base graph, the
    pending buffer, or repeated within the batch; ``quarantined`` counts
    malformed records set aside under ``strict=False``; ``out_of_order``
    counts arrivals whose timestamp ran backwards relative to the newest
    timestamp seen before them.
    """

    accepted: int = 0
    duplicates: int = 0
    quarantined: int = 0
    out_of_order: int = 0

    def __add__(self, other: "IngestReport") -> "IngestReport":
        return IngestReport(
            self.accepted + other.accepted,
            self.duplicates + other.duplicates,
            self.quarantined + other.quarantined,
            self.out_of_order + other.out_of_order,
        )


@dataclass
class _PendingBuffer:
    """Sorted (keys, pairs) columns of the not-yet-compacted edges."""

    keys: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    pairs: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 2), dtype=np.int64)
    )


class DeltaOverlay:
    """Bounded append-only edge delta over an immutable base graph.

    Args:
        base: the compacted CSR graph arrivals are layered on.
        max_pending: cap on novel edges buffered between compactions.
        max_new_nodes: cap on vertex ids beyond ``base.n_vertices``
            introduced by pending edges (``None`` = unbounded).

    Attributes:
        base: current base graph (replaced by :meth:`compact`).
        quarantined: malformed records set aside by non-strict ingest,
            as ``(reason, record)`` tuples in arrival order.
        last_timestamp: newest finite timestamp ingested so far.
    """

    def __init__(
        self,
        base: Graph,
        max_pending: int = 1 << 20,
        max_new_nodes: Optional[int] = None,
    ) -> None:
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        if max_new_nodes is not None and max_new_nodes < 0:
            raise ValueError("max_new_nodes must be >= 0")
        self.base = base
        self.max_pending = int(max_pending)
        self.max_new_nodes = max_new_nodes
        self.quarantined: list[tuple[str, tuple[int, int]]] = []
        self.last_timestamp = -np.inf
        self._pending = _PendingBuffer()

    # -- views ---------------------------------------------------------------

    @property
    def n_pending(self) -> int:
        """Novel edges buffered since the last compaction."""
        return int(self._pending.keys.size)

    @property
    def pending_pairs(self) -> np.ndarray:
        """Canonical (lo, hi) pending pairs, key-sorted (read-only view)."""
        pairs = self._pending.pairs
        pairs.setflags(write=False)
        return pairs

    @property
    def n_vertices(self) -> int:
        """Vertex count of the graph a compaction would produce."""
        if self._pending.pairs.size == 0:
            return self.base.n_vertices
        return max(self.base.n_vertices, int(self._pending.pairs.max()) + 1)

    @property
    def n_new_nodes(self) -> int:
        return self.n_vertices - self.base.n_vertices

    # -- ingest --------------------------------------------------------------

    def ingest_pairs(
        self,
        pairs: np.ndarray,
        timestamps: Optional[np.ndarray] = None,
        strict: bool = True,
    ) -> IngestReport:
        """Validate, dedup, and buffer a batch of arriving edges.

        Args:
            pairs: (m, 2) integer array of arriving endpoint pairs, in
                arrival order.
            timestamps: optional (m,) float arrival times; used only for
                out-of-order accounting (the overlay itself is unordered).
            strict: raise :class:`MalformedArrival` on the first invalid
                record instead of quarantining it.

        Returns:
            An :class:`IngestReport` for the batch.

        Raises:
            MalformedArrival: invalid record under ``strict=True``, or a
                batch whose shape/dtype cannot be interpreted at all.
            DeltaOverflow: accepting the batch's novel edges would exceed
                ``max_pending`` or ``max_new_nodes``. Raised before any
                state changes.
        """
        pairs = np.asarray(pairs)
        if pairs.size == 0:
            return IngestReport()
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise MalformedArrival("bad-shape", pairs.shape)
        if not np.issubdtype(pairs.dtype, np.integer):
            flt = np.asarray(pairs, dtype=np.float64)
            if not np.all(np.isfinite(flt)) or np.any(flt != np.floor(flt)):
                raise MalformedArrival("unparseable", pairs.dtype)
        pairs = pairs.astype(np.int64)
        m = pairs.shape[0]
        if timestamps is not None:
            timestamps = np.asarray(timestamps, dtype=np.float64)
            if timestamps.shape != (m,):
                raise MalformedArrival("bad-shape", timestamps.shape)

        bad_reason = np.full(m, "", dtype=object)
        neg = (pairs < 0).any(axis=1)
        over = (pairs > MAX_VERTEX_ID).any(axis=1) & ~neg
        loops = (pairs[:, 0] == pairs[:, 1]) & ~neg & ~over
        bad_reason[neg] = "negative-id"
        bad_reason[over] = "id-overflow"
        bad_reason[loops] = "self-loop"
        if timestamps is not None:
            bad_ts = ~np.isfinite(timestamps) & (bad_reason == "")
            bad_reason[bad_ts] = "bad-timestamp"
        bad = bad_reason != ""
        if strict and bad.any():
            i = int(np.argmax(bad))
            raise MalformedArrival(str(bad_reason[i]), tuple(pairs[i]))

        good = ~bad
        report_quarantined = int(bad.sum())
        out_of_order = 0
        last = self.last_timestamp
        if timestamps is not None:
            ts_good = timestamps[good]
            if ts_good.size:
                prev = np.concatenate(([last], ts_good[:-1]))
                running = np.maximum.accumulate(prev)
                out_of_order = int((ts_good < running).sum())
                last = max(last, float(ts_good.max()))

        clean = pairs[good]
        duplicates = 0
        novel_keys = np.zeros(0, dtype=np.int64)
        novel_pairs = clean[:0]
        if clean.size:
            lo = np.minimum(clean[:, 0], clean[:, 1])
            hi = np.maximum(clean[:, 0], clean[:, 1])
            keys = lo * _KEY_RADIX + hi
            ukeys, uidx = np.unique(keys, return_index=True)
            duplicates += int(keys.size - ukeys.size)  # within-batch repeats
            upairs = np.column_stack([lo, hi])[uidx]
            # vs the base graph — only pairs it can possibly contain.
            in_base = np.zeros(ukeys.size, dtype=bool)
            covered = upairs[:, 1] < self.base.n_vertices
            if covered.any():
                in_base[covered] = self.base.has_edges(upairs[covered])
            # vs the pending buffer.
            in_pending = self._member(ukeys)
            known = in_base | in_pending
            duplicates += int(known.sum())
            novel_keys = ukeys[~known]
            novel_pairs = upairs[~known]

        if self.n_pending + novel_keys.size > self.max_pending:
            raise DeltaOverflow(
                f"pending buffer would hold {self.n_pending + novel_keys.size}"
                f" edges (max_pending={self.max_pending}); compact first"
            )
        if self.max_new_nodes is not None and novel_pairs.size:
            top = max(self.n_vertices, int(novel_pairs.max()) + 1)
            if top - self.base.n_vertices > self.max_new_nodes:
                raise DeltaOverflow(
                    f"delta would introduce {top - self.base.n_vertices} new"
                    f" nodes (max_new_nodes={self.max_new_nodes})"
                )

        # All checks passed — commit.
        if bad.any():
            for i in np.flatnonzero(bad):
                self.quarantined.append((str(bad_reason[i]), tuple(pairs[i])))
        if novel_keys.size:
            merged = np.concatenate([self._pending.keys, novel_keys])
            order = np.argsort(merged, kind="stable")
            self._pending.keys = merged[order]
            self._pending.pairs = np.concatenate(
                [self._pending.pairs, novel_pairs]
            )[order]
        self.last_timestamp = last
        return IngestReport(
            accepted=int(novel_keys.size),
            duplicates=duplicates,
            quarantined=report_quarantined,
            out_of_order=out_of_order,
        )

    def _member(self, keys: np.ndarray) -> np.ndarray:
        """Membership of sorted candidate ``keys`` in the pending buffer."""
        have = self._pending.keys
        if not have.size or not keys.size:
            return np.zeros(keys.size, dtype=bool)
        idx = np.minimum(np.searchsorted(have, keys), have.size - 1)
        return have[idx] == keys

    # -- compaction ----------------------------------------------------------

    def compact(self, path: Optional[PathLike] = None) -> Graph:
        """Merge base + pending into a fresh graph and reset onto it.

        Without ``path`` the merged graph is built in memory. With
        ``path`` the merge is persisted as a CSR container
        (:func:`repro.graph.io.save_csr`) and reloaded through
        :func:`repro.graph.io.load_csr`, so the returned graph — which
        becomes the overlay's new base — is backed by read-only memory
        maps exactly like any other compacted graph in the system.

        A compaction with nothing pending still returns (and, with
        ``path``, persists) the base graph, so callers can rely on the
        container existing per generation.
        """
        if self._pending.pairs.size:
            merged = Graph(
                self.n_vertices,
                np.concatenate([self.base.edges, self._pending.pairs]),
            )
        else:
            merged = self.base
        if path is not None:
            save_csr(merged, path)
            merged = load_csr(path)
        self.base = merged
        self._pending = _PendingBuffer()
        return merged
