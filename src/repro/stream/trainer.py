"""Generation loop: ingest a delta, warm-start retrain, publish, repeat.

:class:`StreamTrainer` is the continuous half of the train-to-serve
loop. Each :meth:`~StreamTrainer.run_generation`:

1. **ingests** the generation's arrivals into the
   :class:`~repro.stream.delta.DeltaOverlay` (malformed records are
   quarantined, not fatal — the stream must survive dirty input);
2. **compacts** overlay + base into a fresh CSR container under the
   trainer's workdir, the graph this generation trains on and later
   consumers memory-map;
3. **warm-starts**: the previous generation's state is grown to the new
   vertex count by :func:`repro.core.init.extend_state_informed`
   (neighbor-averaged rows for new nodes), and the sampler's iteration
   counter continues from where the stream left off — so the step-size
   schedule resumes on its annealed tail instead of re-running burn-in.
   Generation 0 cold-starts from
   :func:`repro.core.init.init_state_spectral` (successive projections),
   falling back to random init on degenerate graphs;
4. **trains** a bounded number of iterations — sequentially, or on the
   multiprocess backend (``engine="mp"``);
5. **checkpoints** (:func:`repro.core.checkpoint.save_state_checkpoint`)
   and **publishes** a serving artifact: through the
   :class:`~repro.dist.mp.MultiprocessAMMSBSampler` publish hook on the
   mp engine, or :func:`repro.serve.artifact.export_artifact` (the same
   machinery that hook calls) sequentially. An injected publish failure
   (:class:`repro.faults.StreamFaultPlan`) skips the publish and records
   the error — the previous artifact keeps serving — rather than
   aborting the generation.

The trainer never mutates a served artifact in place: the publish path
is rewritten atomically, and a ``publish_callback`` lets a live
:class:`~repro.serve.server.ModelServer` hot-swap it per generation.

Durability (DESIGN.md §11): every arrival batch is journaled to a
write-ahead :class:`~repro.stream.journal.IngestJournal` under the
workdir *before* it touches the overlay, quarantined records are
mirrored to a :class:`~repro.stream.journal.QuarantineLog` sidecar, and
each generation ends by atomically rewriting ``manifest.json`` — the
single durable record of (next generation, cumulative iteration clock,
digested journal seqno, checkpoint/graph/artifact paths). Journal
segments covered by the manifest are garbage-collected only *after* the
manifest hits disk, so :meth:`StreamTrainer.resume` can always rebuild
the exact pre-crash overlay: load the manifest's checkpoint and graph,
then replay the journal suffix past the digested seqno. A kill at any
point between ingest and manifest loses nothing and duplicates nothing
(overlay dedup absorbs at-least-once replay) — pinned by the
kill-at-every-phase tests and the ``repro chaos-stream`` drill.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.config import AMMSBConfig
from repro.core.checkpoint import load_state_checkpoint, save_state_checkpoint
from repro.core.init import extend_state_informed, init_state_spectral
from repro.core.perplexity import PerplexityEstimator
from repro.core.sampler import AMMSBSampler
from repro.core.state import ModelState, init_state
from repro.graph.graph import Graph
from repro.graph.io import load_csr, save_csr
from repro.graph.split import HeldoutSplit, split_heldout
from repro.serve.artifact import export_artifact
from repro.stream.delta import DeltaOverlay, IngestReport, StreamError
from repro.stream.journal import IngestJournal, QuarantineLog
from repro.stream.source import EdgeArrival, arrivals_to_arrays

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


class ResumeError(StreamError):
    """A stream workdir cannot be resumed (or a fresh start would clobber
    one that could be)."""

    def __init__(self, path: PathLike, reason: str) -> None:
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"stream workdir {self.path}: {reason}")


def _atomic_write_json(path: Path, obj: dict) -> None:
    """tmp + fsync + ``os.replace`` + dir fsync — same idiom as
    :func:`repro.core.checkpoint._atomic_savez`, for small JSON records."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(obj, fh, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform without dir fsync
        pass


@dataclass(frozen=True)
class GenerationReport:
    """What one :meth:`StreamTrainer.run_generation` call did."""

    generation: int
    n_iterations: int
    train_seconds: float
    perplexity: float
    ingest: IngestReport = field(default_factory=IngestReport)
    n_vertices: int = 0
    n_edges: int = 0
    n_new_nodes: int = 0
    checkpoint_path: Optional[Path] = None
    artifact_path: Optional[Path] = None
    published: bool = False
    publish_error: Optional[str] = None


class StreamTrainer:
    """Continuous warm-start training over an arriving edge stream.

    Args:
        base_graph: generation 0's graph (before any arrivals).
        config: sampler configuration shared by every generation.
        workdir: directory for per-generation CSR containers and
            checkpoints (created if missing).
        iterations_per_generation: default training budget per generation.
        heldout_fraction: per-generation held-out split fraction (used
            when no explicit split is passed to ``run_generation``).
        heldout_max_links: cap on held-out links per split.
        publish_path: serving artifact path rewritten each generation
            (``None`` = train without publishing).
        publish_callback: called as ``callback(path, generation)`` after
            each successful publish — the live-server hot-swap hook.
        engine: ``"sequential"`` (in-process sampler) or ``"mp"`` (the
            multiprocess backend; publishes through its publish hook).
        n_workers: worker count for the mp engine.
        faults: optional :class:`repro.faults.StreamFaultPlan`.
        max_pending / max_new_nodes: overlay bounds (see
            :class:`~repro.stream.delta.DeltaOverlay`).
        fsync_batch: journal fsync cadence (1 = every append; the only
            setting with zero acknowledged-loss window — see
            :class:`~repro.stream.journal.IngestJournal`).
        journal_segment_bytes: journal segment roll size.
        history_path: where the serving-side ``MembershipHistory`` is
            checkpointed (recorded in the manifest so a restarted server
            finds it; the trainer itself never writes it).

    A fresh trainer refuses a workdir that already holds a stream
    manifest — that is a crashed or finished run, and silently starting
    over would orphan its journal. Use :meth:`resume` (or point the
    trainer at a clean directory).
    """

    def __init__(
        self,
        base_graph: Graph,
        config: AMMSBConfig,
        workdir: PathLike,
        iterations_per_generation: int = 200,
        heldout_fraction: float = 0.01,
        heldout_max_links: Optional[int] = 2000,
        publish_path: Optional[PathLike] = None,
        publish_callback: Optional[Callable[[Path, int], None]] = None,
        engine: str = "sequential",
        n_workers: int = 2,
        faults=None,
        max_pending: int = 1 << 20,
        max_new_nodes: Optional[int] = None,
        fsync_batch: int = 1,
        journal_segment_bytes: int = 1 << 22,
        history_path: Optional[PathLike] = None,
        _resuming: bool = False,
    ) -> None:
        if engine not in ("sequential", "mp"):
            raise ValueError(f"unknown engine {engine!r}")
        if iterations_per_generation < 1:
            raise ValueError("iterations_per_generation must be >= 1")
        self.config = config
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        if not _resuming and (self.workdir / MANIFEST_NAME).exists():
            raise ResumeError(
                self.workdir,
                "already holds a stream manifest; use StreamTrainer.resume()"
                " or a clean workdir",
            )
        self.iterations_per_generation = int(iterations_per_generation)
        self.heldout_fraction = float(heldout_fraction)
        self.heldout_max_links = heldout_max_links
        self.publish_path = Path(publish_path) if publish_path else None
        self.publish_callback = publish_callback
        self.engine = engine
        self.n_workers = int(n_workers)
        self.faults = faults if faults is not None and not faults.empty else None
        self.overlay = DeltaOverlay(
            base_graph, max_pending=max_pending, max_new_nodes=max_new_nodes
        )
        self.state: Optional[ModelState] = None
        self.iteration = 0  # cumulative across generations (schedule clock)
        self.generation = 0  # next generation index
        self.reports: list[GenerationReport] = []
        self.last_published: Optional[Path] = None
        self.history_path = Path(history_path) if history_path else None
        self.journal = IngestJournal(
            self.workdir / "journal",
            max_segment_bytes=journal_segment_bytes,
            fsync_batch=fsync_batch,
            faults=self.faults,
        )
        self.quarantine_log = QuarantineLog(self.workdir / "quarantine.jsonl")
        #: journal seqno covered by the current base graph (manifest field).
        self.digested_seqno = self.journal.last_seqno if _resuming else -1
        self._checkpoint_path: Optional[Path] = None
        self._graph_path: Optional[Path] = None
        if not _resuming:
            # Persist generation -1's ground truth so a crash before the
            # first generation completes is still resumable: the base
            # graph as a CSR container, plus an initial manifest.
            self._graph_path = self.workdir / "base.csr"
            save_csr(base_graph, self._graph_path)
            self._write_manifest()

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint_path: PathLike,
        base_graph: Graph,
        workdir: PathLike,
        config: Optional[AMMSBConfig] = None,
        **kwargs,
    ) -> "StreamTrainer":
        """Resume streaming from a trained batch checkpoint.

        The checkpoint's state/iteration seed generation 0's warm start
        (its config is used unless overridden), so a long batch run
        converts into a stream without a cold restart.
        """
        state, iteration, ckpt_config = load_state_checkpoint(checkpoint_path)
        if state.n_vertices != base_graph.n_vertices:
            raise ValueError(
                f"checkpoint covers {state.n_vertices} vertices but the base"
                f" graph has {base_graph.n_vertices}"
            )
        trainer = cls(base_graph, config or ckpt_config, workdir, **kwargs)
        trainer.state = state
        trainer.iteration = int(iteration)
        # Re-record the warm start so a pre-generation-0 crash resumes
        # from the batch checkpoint instead of a cold start.
        trainer._checkpoint_path = Path(checkpoint_path)
        trainer._write_manifest()
        return trainer

    # -- durable manifest ----------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.workdir / MANIFEST_NAME

    def _rel_or_abs(self, path: Optional[Path]) -> Optional[str]:
        if path is None:
            return None
        p = Path(path)
        try:
            return str(p.relative_to(self.workdir))
        except ValueError:
            return str(p.resolve())

    def _write_manifest(self) -> None:
        """Atomically record the durable generation frontier.

        Written *last* in every generation (after checkpoint + publish),
        and always *before* journal GC: the manifest's
        ``digested_seqno`` is the promise that every journal frame at or
        below it is already inside ``graph_path``.
        """
        _atomic_write_json(
            self.manifest_path,
            {
                "version": MANIFEST_VERSION,
                "generation": self.generation,
                "iteration": self.iteration,
                "digested_seqno": self.digested_seqno,
                "graph_path": self._rel_or_abs(self._graph_path),
                "checkpoint_path": self._rel_or_abs(self._checkpoint_path),
                "artifact_path": self._rel_or_abs(self.last_published),
                "history_path": self._rel_or_abs(self.history_path),
                "publish_path": self._rel_or_abs(self.publish_path),
            },
        )

    @staticmethod
    def read_manifest(workdir: PathLike) -> dict:
        """Read and validate a stream workdir's manifest (typed errors)."""
        path = Path(workdir) / MANIFEST_NAME
        if not path.exists():
            raise ResumeError(workdir, "no manifest.json (nothing to resume)")
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            raise ResumeError(workdir, f"unreadable manifest ({exc})") from exc
        if not isinstance(manifest, dict):
            raise ResumeError(workdir, "manifest is not an object")
        if manifest.get("version") != MANIFEST_VERSION:
            raise ResumeError(
                workdir,
                f"unsupported manifest version {manifest.get('version')!r}",
            )
        for key in ("generation", "iteration", "digested_seqno", "graph_path"):
            if key not in manifest:
                raise ResumeError(workdir, f"manifest missing {key!r}")
        if manifest["graph_path"] is None:
            raise ResumeError(workdir, "manifest records no graph")
        return manifest

    @classmethod
    def resume(
        cls,
        workdir: PathLike,
        config: Optional[AMMSBConfig] = None,
        **kwargs,
    ) -> "StreamTrainer":
        """Reconstruct a trainer from a (possibly crashed) stream workdir.

        Rebuilds exactly the durable frontier: the manifest's graph
        becomes the overlay base, its checkpoint (if any) restores the
        warm-start state and cumulative iteration clock, and the journal
        suffix past ``digested_seqno`` is replayed through the overlay —
        so edges that were acknowledged but not yet digested are pending
        again, exactly once. Quarantined records re-derived during
        replay are reconciled against the sidecar (no duplicate lines).

        ``kwargs`` are the usual constructor arguments (publish path,
        engine, faults, ...); ``config`` defaults to the checkpoint's.
        """
        workdir = Path(workdir)
        manifest = cls.read_manifest(workdir)

        def _resolve(rec: Optional[str]) -> Optional[Path]:
            if rec is None:
                return None
            p = Path(rec)
            return p if p.is_absolute() else workdir / p

        graph_path = _resolve(manifest["graph_path"])
        try:
            base_graph = load_csr(graph_path)
        except Exception as exc:
            raise ResumeError(
                workdir, f"cannot load digested graph {graph_path} ({exc})"
            ) from exc

        state = None
        iteration = int(manifest["iteration"])
        ckpt_path = _resolve(manifest.get("checkpoint_path"))
        ckpt_config = None
        if ckpt_path is not None:
            state, iteration, ckpt_config = load_state_checkpoint(ckpt_path)
        if config is None:
            config = ckpt_config
        if config is None:
            raise ResumeError(
                workdir,
                "no checkpoint recorded yet — pass the run's config to resume()",
            )
        if "publish_path" not in kwargs and manifest.get("publish_path"):
            kwargs["publish_path"] = _resolve(manifest["publish_path"])
        if "history_path" not in kwargs and manifest.get("history_path"):
            kwargs["history_path"] = _resolve(manifest["history_path"])

        trainer = cls(base_graph, config, workdir, _resuming=True, **kwargs)
        trainer.state = state
        trainer.iteration = iteration
        trainer.generation = int(manifest["generation"])
        trainer.digested_seqno = int(manifest["digested_seqno"])
        trainer._graph_path = graph_path
        trainer._checkpoint_path = ckpt_path
        artifact = _resolve(manifest.get("artifact_path"))
        trainer.last_published = artifact

        # Replay the un-digested journal suffix. Already-persisted
        # quarantine lines are recognized by their seqno tag so replay
        # never duplicates the sidecar.
        persisted = trainer.quarantine_log.read()
        last_q = max((int(r.get("seqno", -1)) for r in persisted), default=-1)
        n_at_last = sum(1 for r in persisted if int(r.get("seqno", -1)) == last_q)
        for entry in trainer.journal.replay(after_seqno=trainer.digested_seqno):
            before = len(trainer.overlay.quarantined)
            trainer.overlay.ingest_pairs(
                entry.pairs, timestamps=entry.timestamps, strict=False
            )
            fresh = trainer.overlay.quarantined[before:]
            if entry.seqno < last_q:
                continue
            if entry.seqno == last_q:
                fresh = fresh[n_at_last:]
            for reason, record in fresh:
                trainer.quarantine_log.append(reason, record, seqno=entry.seqno)
        return trainer

    # -- ingestion -----------------------------------------------------------

    def _crash_if(self, phase: str, generation: int) -> None:
        if self.faults is not None and self.faults.crash_due(phase, generation):
            from repro.faults import InjectedCrash

            raise InjectedCrash(f"{phase} (generation {generation})")

    def ingest(self, arrivals: Sequence[EdgeArrival]) -> IngestReport:
        """Journal, then buffer, a batch of arrivals (fault-mangled first,
        if injected).

        Write-ahead discipline: the batch — exactly as it will hit the
        overlay, i.e. *after* any fault mangling — is durably appended to
        the journal before the overlay sees it, so a crash at any later
        point replays it. Malformed records are quarantined
        (``strict=False``) and mirrored to the sidecar — a dirty stream
        degrades accounting, never the trainer.
        """
        arrivals = list(arrivals)
        if self.faults is not None:
            arrivals = self.faults.mangle_arrivals(arrivals)
        pairs, ts = arrivals_to_arrays(arrivals)
        if len(arrivals) == 0:
            return IngestReport()
        seqno = self.journal.append_edges(pairs, ts)
        self._crash_if("post-journal-append", self.generation)
        before = len(self.overlay.quarantined)
        report = self.overlay.ingest_pairs(pairs, timestamps=ts, strict=False)
        for reason, record in self.overlay.quarantined[before:]:
            self.quarantine_log.append(reason, record, seqno=seqno)
        return report

    # -- the generation loop -------------------------------------------------

    def run_generation(
        self,
        arrivals: Optional[Sequence[EdgeArrival]] = None,
        n_iterations: Optional[int] = None,
        heldout: Optional[HeldoutSplit] = None,
    ) -> GenerationReport:
        """Ingest → compact → warm-start → train → checkpoint → publish.

        Args:
            arrivals: this generation's arrivals (already-``ingest``-ed
                deltas are also picked up; pass ``None`` to train on the
                current overlay alone — generation 0 usually does).
            n_iterations: training budget override.
            heldout: explicit held-out split (its ``train`` graph must
                match this generation's compacted graph); a fresh split
                is drawn otherwise.

        Returns:
            The :class:`GenerationReport`, also appended to ``reports``.
        """
        gen = self.generation
        n_iter = int(n_iterations or self.iterations_per_generation)
        ingest_report = self.ingest(arrivals) if arrivals else IngestReport()

        # Everything journaled up to here goes into this generation's
        # digested graph; the manifest will promise exactly that.
        digest_seqno = self.journal.last_seqno
        n_before = self.overlay.base.n_vertices
        graph_path = self.workdir / f"graph_g{gen:04d}.csr"
        graph = self.overlay.compact(graph_path)
        n_new_nodes = graph.n_vertices - n_before

        if self.state is None:
            rng = np.random.default_rng(self.config.seed)
            try:
                self.state = init_state_spectral(graph, self.config, rng=rng)
            except ValueError:
                self.state = init_state(graph.n_vertices, self.config, rng)
        else:
            self.state = extend_state_informed(self.state, graph, self.config)

        if heldout is None:
            heldout = split_heldout(
                graph,
                self.heldout_fraction,
                rng=np.random.default_rng(self.config.seed + 7919 * (gen + 1)),
                max_links=self.heldout_max_links,
            )
        elif heldout.train.n_vertices != graph.n_vertices:
            raise ValueError(
                "heldout split does not match this generation's graph"
            )

        t0 = time.perf_counter()
        if self.engine == "mp":
            self._train_mp(heldout, n_iter, gen)
        else:
            sampler = AMMSBSampler(
                heldout.train, self.config, heldout=heldout, state=self.state
            )
            sampler.iteration = self.iteration
            sampler.run(n_iter)
            self.state = sampler.state
        train_seconds = time.perf_counter() - t0
        self.iteration += n_iter

        estimator = PerplexityEstimator(
            heldout.heldout_pairs, heldout.heldout_labels, self.config.delta
        )
        perplexity = estimator.single_sample_value(self.state.pi, self.state.beta)

        checkpoint_path = self.workdir / f"checkpoint_g{gen:04d}.npz"
        save_state_checkpoint(
            checkpoint_path, self.state, self.iteration, self.config
        )
        self._crash_if("post-checkpoint-pre-publish", gen)

        published = False
        publish_error: Optional[str] = None
        if self.publish_path is not None:
            if self.faults is not None and self.faults.publish_fails(gen):
                publish_error = f"injected publish failure (generation {gen})"
            elif self.engine != "mp":
                export_artifact(
                    self.publish_path, self.state, self.config,
                    iteration=self.iteration,
                )
                published = True
            else:
                published = self._mp_published
            if published:
                self.last_published = self.publish_path
                if self.publish_callback is not None:
                    self.publish_callback(self.publish_path, gen)
        self._crash_if("post-publish-pre-manifest", gen)

        report = GenerationReport(
            generation=gen,
            n_iterations=n_iter,
            train_seconds=train_seconds,
            perplexity=float(perplexity),
            ingest=ingest_report,
            n_vertices=graph.n_vertices,
            n_edges=graph.n_edges,
            n_new_nodes=n_new_nodes,
            checkpoint_path=checkpoint_path,
            artifact_path=self.publish_path if published else self.last_published,
            published=published,
            publish_error=publish_error,
        )
        self.reports.append(report)
        self.generation += 1

        # Durable commit point: the manifest is the generation's single
        # atomic truth, and only after it lands may the journal GC frames
        # it now covers (GC first + crash would lose the suffix).
        self._graph_path = graph_path
        self._checkpoint_path = checkpoint_path
        self.digested_seqno = digest_seqno
        self._write_manifest()
        self.journal.compact(
            digest_seqno,
            crash_hook=lambda: self._crash_if("mid-compaction", gen),
        )
        return report

    def _train_mp(self, heldout: HeldoutSplit, n_iter: int, gen: int) -> None:
        """One generation on the multiprocess backend (publishes via hook)."""
        from repro.dist.mp import MultiprocessAMMSBSampler

        publish = (
            self.publish_path is not None
            and not (self.faults is not None and self.faults.publish_fails(gen))
        )
        self._mp_published = False
        with MultiprocessAMMSBSampler(
            heldout.train,
            self.config,
            n_workers=self.n_workers,
            heldout=heldout,
            state=self.state,
        ) as sampler:
            sampler.iteration = self.iteration
            sampler.run(n_iter)
            self.state = sampler.state_snapshot()
            if publish:
                sampler.publish_artifact(self.publish_path)
                self._mp_published = True

    def run(
        self,
        batches: Sequence[Sequence[EdgeArrival]],
        n_iterations: Optional[int] = None,
    ) -> list[GenerationReport]:
        """Replay arrival batches, one generation each; returns the reports."""
        return [self.run_generation(batch, n_iterations) for batch in batches]
