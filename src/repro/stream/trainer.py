"""Generation loop: ingest a delta, warm-start retrain, publish, repeat.

:class:`StreamTrainer` is the continuous half of the train-to-serve
loop. Each :meth:`~StreamTrainer.run_generation`:

1. **ingests** the generation's arrivals into the
   :class:`~repro.stream.delta.DeltaOverlay` (malformed records are
   quarantined, not fatal — the stream must survive dirty input);
2. **compacts** overlay + base into a fresh CSR container under the
   trainer's workdir, the graph this generation trains on and later
   consumers memory-map;
3. **warm-starts**: the previous generation's state is grown to the new
   vertex count by :func:`repro.core.init.extend_state_informed`
   (neighbor-averaged rows for new nodes), and the sampler's iteration
   counter continues from where the stream left off — so the step-size
   schedule resumes on its annealed tail instead of re-running burn-in.
   Generation 0 cold-starts from
   :func:`repro.core.init.init_state_spectral` (successive projections),
   falling back to random init on degenerate graphs;
4. **trains** a bounded number of iterations — sequentially, or on the
   multiprocess backend (``engine="mp"``);
5. **checkpoints** (:func:`repro.core.checkpoint.save_state_checkpoint`)
   and **publishes** a serving artifact: through the
   :class:`~repro.dist.mp.MultiprocessAMMSBSampler` publish hook on the
   mp engine, or :func:`repro.serve.artifact.export_artifact` (the same
   machinery that hook calls) sequentially. An injected publish failure
   (:class:`repro.faults.StreamFaultPlan`) skips the publish and records
   the error — the previous artifact keeps serving — rather than
   aborting the generation.

The trainer never mutates a served artifact in place: the publish path
is rewritten atomically, and a ``publish_callback`` lets a live
:class:`~repro.serve.server.ModelServer` hot-swap it per generation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.config import AMMSBConfig
from repro.core.checkpoint import load_state_checkpoint, save_state_checkpoint
from repro.core.init import extend_state_informed, init_state_spectral
from repro.core.perplexity import PerplexityEstimator
from repro.core.sampler import AMMSBSampler
from repro.core.state import ModelState, init_state
from repro.graph.graph import Graph
from repro.graph.split import HeldoutSplit, split_heldout
from repro.serve.artifact import export_artifact
from repro.stream.delta import DeltaOverlay, IngestReport
from repro.stream.source import EdgeArrival, arrivals_to_arrays

PathLike = Union[str, Path]


@dataclass(frozen=True)
class GenerationReport:
    """What one :meth:`StreamTrainer.run_generation` call did."""

    generation: int
    n_iterations: int
    train_seconds: float
    perplexity: float
    ingest: IngestReport = field(default_factory=IngestReport)
    n_vertices: int = 0
    n_edges: int = 0
    n_new_nodes: int = 0
    checkpoint_path: Optional[Path] = None
    artifact_path: Optional[Path] = None
    published: bool = False
    publish_error: Optional[str] = None


class StreamTrainer:
    """Continuous warm-start training over an arriving edge stream.

    Args:
        base_graph: generation 0's graph (before any arrivals).
        config: sampler configuration shared by every generation.
        workdir: directory for per-generation CSR containers and
            checkpoints (created if missing).
        iterations_per_generation: default training budget per generation.
        heldout_fraction: per-generation held-out split fraction (used
            when no explicit split is passed to ``run_generation``).
        heldout_max_links: cap on held-out links per split.
        publish_path: serving artifact path rewritten each generation
            (``None`` = train without publishing).
        publish_callback: called as ``callback(path, generation)`` after
            each successful publish — the live-server hot-swap hook.
        engine: ``"sequential"`` (in-process sampler) or ``"mp"`` (the
            multiprocess backend; publishes through its publish hook).
        n_workers: worker count for the mp engine.
        faults: optional :class:`repro.faults.StreamFaultPlan`.
        max_pending / max_new_nodes: overlay bounds (see
            :class:`~repro.stream.delta.DeltaOverlay`).
    """

    def __init__(
        self,
        base_graph: Graph,
        config: AMMSBConfig,
        workdir: PathLike,
        iterations_per_generation: int = 200,
        heldout_fraction: float = 0.01,
        heldout_max_links: Optional[int] = 2000,
        publish_path: Optional[PathLike] = None,
        publish_callback: Optional[Callable[[Path, int], None]] = None,
        engine: str = "sequential",
        n_workers: int = 2,
        faults=None,
        max_pending: int = 1 << 20,
        max_new_nodes: Optional[int] = None,
    ) -> None:
        if engine not in ("sequential", "mp"):
            raise ValueError(f"unknown engine {engine!r}")
        if iterations_per_generation < 1:
            raise ValueError("iterations_per_generation must be >= 1")
        self.config = config
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.iterations_per_generation = int(iterations_per_generation)
        self.heldout_fraction = float(heldout_fraction)
        self.heldout_max_links = heldout_max_links
        self.publish_path = Path(publish_path) if publish_path else None
        self.publish_callback = publish_callback
        self.engine = engine
        self.n_workers = int(n_workers)
        self.faults = faults if faults is not None and not faults.empty else None
        self.overlay = DeltaOverlay(
            base_graph, max_pending=max_pending, max_new_nodes=max_new_nodes
        )
        self.state: Optional[ModelState] = None
        self.iteration = 0  # cumulative across generations (schedule clock)
        self.generation = 0  # next generation index
        self.reports: list[GenerationReport] = []
        self.last_published: Optional[Path] = None

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint_path: PathLike,
        base_graph: Graph,
        workdir: PathLike,
        config: Optional[AMMSBConfig] = None,
        **kwargs,
    ) -> "StreamTrainer":
        """Resume streaming from a trained batch checkpoint.

        The checkpoint's state/iteration seed generation 0's warm start
        (its config is used unless overridden), so a long batch run
        converts into a stream without a cold restart.
        """
        state, iteration, ckpt_config = load_state_checkpoint(checkpoint_path)
        if state.n_vertices != base_graph.n_vertices:
            raise ValueError(
                f"checkpoint covers {state.n_vertices} vertices but the base"
                f" graph has {base_graph.n_vertices}"
            )
        trainer = cls(base_graph, config or ckpt_config, workdir, **kwargs)
        trainer.state = state
        trainer.iteration = int(iteration)
        return trainer

    # -- ingestion -----------------------------------------------------------

    def ingest(self, arrivals: Sequence[EdgeArrival]) -> IngestReport:
        """Buffer a batch of arrivals (fault-mangled first, if injected).

        Malformed records are quarantined (``strict=False``) — a dirty
        stream degrades accounting, never the trainer.
        """
        arrivals = list(arrivals)
        if self.faults is not None:
            arrivals = self.faults.mangle_arrivals(arrivals)
        pairs, ts = arrivals_to_arrays(arrivals)
        return self.overlay.ingest_pairs(pairs, timestamps=ts, strict=False)

    # -- the generation loop -------------------------------------------------

    def run_generation(
        self,
        arrivals: Optional[Sequence[EdgeArrival]] = None,
        n_iterations: Optional[int] = None,
        heldout: Optional[HeldoutSplit] = None,
    ) -> GenerationReport:
        """Ingest → compact → warm-start → train → checkpoint → publish.

        Args:
            arrivals: this generation's arrivals (already-``ingest``-ed
                deltas are also picked up; pass ``None`` to train on the
                current overlay alone — generation 0 usually does).
            n_iterations: training budget override.
            heldout: explicit held-out split (its ``train`` graph must
                match this generation's compacted graph); a fresh split
                is drawn otherwise.

        Returns:
            The :class:`GenerationReport`, also appended to ``reports``.
        """
        gen = self.generation
        n_iter = int(n_iterations or self.iterations_per_generation)
        ingest_report = self.ingest(arrivals) if arrivals else IngestReport()

        n_before = self.overlay.base.n_vertices
        graph = self.overlay.compact(self.workdir / f"graph_g{gen:04d}.csr")
        n_new_nodes = graph.n_vertices - n_before

        if self.state is None:
            rng = np.random.default_rng(self.config.seed)
            try:
                self.state = init_state_spectral(graph, self.config, rng=rng)
            except ValueError:
                self.state = init_state(graph.n_vertices, self.config, rng)
        else:
            self.state = extend_state_informed(self.state, graph, self.config)

        if heldout is None:
            heldout = split_heldout(
                graph,
                self.heldout_fraction,
                rng=np.random.default_rng(self.config.seed + 7919 * (gen + 1)),
                max_links=self.heldout_max_links,
            )
        elif heldout.train.n_vertices != graph.n_vertices:
            raise ValueError(
                "heldout split does not match this generation's graph"
            )

        t0 = time.perf_counter()
        if self.engine == "mp":
            self._train_mp(heldout, n_iter, gen)
        else:
            sampler = AMMSBSampler(
                heldout.train, self.config, heldout=heldout, state=self.state
            )
            sampler.iteration = self.iteration
            sampler.run(n_iter)
            self.state = sampler.state
        train_seconds = time.perf_counter() - t0
        self.iteration += n_iter

        estimator = PerplexityEstimator(
            heldout.heldout_pairs, heldout.heldout_labels, self.config.delta
        )
        perplexity = estimator.single_sample_value(self.state.pi, self.state.beta)

        checkpoint_path = self.workdir / f"checkpoint_g{gen:04d}.npz"
        save_state_checkpoint(
            checkpoint_path, self.state, self.iteration, self.config
        )

        published = False
        publish_error: Optional[str] = None
        if self.publish_path is not None:
            if self.faults is not None and self.faults.publish_fails(gen):
                publish_error = f"injected publish failure (generation {gen})"
            elif self.engine != "mp":
                export_artifact(
                    self.publish_path, self.state, self.config,
                    iteration=self.iteration,
                )
                published = True
            else:
                published = self._mp_published
            if published:
                self.last_published = self.publish_path
                if self.publish_callback is not None:
                    self.publish_callback(self.publish_path, gen)

        report = GenerationReport(
            generation=gen,
            n_iterations=n_iter,
            train_seconds=train_seconds,
            perplexity=float(perplexity),
            ingest=ingest_report,
            n_vertices=graph.n_vertices,
            n_edges=graph.n_edges,
            n_new_nodes=n_new_nodes,
            checkpoint_path=checkpoint_path,
            artifact_path=self.publish_path if published else self.last_published,
            published=published,
            publish_error=publish_error,
        )
        self.reports.append(report)
        self.generation += 1
        return report

    def _train_mp(self, heldout: HeldoutSplit, n_iter: int, gen: int) -> None:
        """One generation on the multiprocess backend (publishes via hook)."""
        from repro.dist.mp import MultiprocessAMMSBSampler

        publish = (
            self.publish_path is not None
            and not (self.faults is not None and self.faults.publish_fails(gen))
        )
        self._mp_published = False
        with MultiprocessAMMSBSampler(
            heldout.train,
            self.config,
            n_workers=self.n_workers,
            heldout=heldout,
            state=self.state,
        ) as sampler:
            sampler.iteration = self.iteration
            sampler.run(n_iter)
            self.state = sampler.state_snapshot()
            if publish:
                sampler.publish_artifact(self.publish_path)
                self._mp_published = True

    def run(
        self,
        batches: Sequence[Sequence[EdgeArrival]],
        n_iterations: Optional[int] = None,
    ) -> list[GenerationReport]:
        """Replay arrival batches, one generation each; returns the reports."""
        return [self.run_generation(batch, n_iterations) for batch in batches]
