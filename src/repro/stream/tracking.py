"""Cross-generation community alignment, drift scores, and change events.

Each streaming generation publishes a fresh :class:`~repro.serve
.artifact.ModelArtifact`, but MMSB posteriors are identifiable only up
to a relabeling of the K communities — community 3 of generation 7 need
not be community 3 of generation 8. :class:`MembershipHistory` restores
a single label space across generations:

- **alignment** — every recorded artifact's pi is permuted to best match
  the *previous aligned* generation over the node rows the two share
  (:func:`repro.core.estimation.align_communities`, Hungarian with the
  deterministic tie-break). Aligning each generation to its aligned
  predecessor composes the permutations, so all snapshots live in the
  generation-0 ("canonical") label space.
- **drift scores** — per community, ``1 - cosine(prev column, new
  column)`` over the shared rows: 0 for an unchanged community, toward 1
  as its membership profile rotates away.
- **events** — per shared node, a :class:`DriftEvent` when its dominant
  community changed or its membership row moved more than
  ``event_threshold`` in L1.

The history keeps a bounded ring (``window`` generations) of *top-K*
snapshots — not full pi matrices — plus one full aligned pi as the next
alignment reference, so memory stays O(window · N · top_k) no matter how
long the stream runs. It is the storage behind the serving tier's
``membership_drift`` endpoint and is retained across artifact hot-swaps.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import zipfile
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.estimation import align_communities
from repro.serve.artifact import DEFAULT_TOP_K, ModelArtifact, _top_communities
from repro.stream.delta import StreamError

PathLike = Union[str, Path]

HISTORY_FORMAT_VERSION = 1


@dataclass(frozen=True)
class DriftEvent:
    """One node's membership changed notably between two generations.

    ``kind`` is ``"top-change"`` (dominant community flipped; implies
    the L1 test may or may not also fire) or ``"shift"`` (same dominant
    community, but total membership moved more than the threshold).
    Community labels are in canonical (generation-0 aligned) space.
    """

    node: int
    generation: int
    kind: str
    old_top: int
    new_top: int
    l1_change: float


@dataclass(frozen=True)
class _Snapshot:
    """One generation's aligned top-K memberships (ring-buffer entry)."""

    generation: int
    node_ids: np.ndarray  # (N,) external ids, row order
    top_communities: np.ndarray  # (N, top_k) canonical labels
    top_weights: np.ndarray  # (N, top_k)
    community_drift: np.ndarray  # (K,) vs previous generation; zeros for first
    permutation: np.ndarray  # artifact label -> canonical label composition


class MembershipHistory:
    """Bounded ring of aligned membership snapshots across generations.

    Thread-safe: :meth:`record` runs on the publisher thread while
    :meth:`drift` answers queries from server workers.

    Args:
        window: generations retained (older snapshots fall off the ring).
        top_k: communities kept per node per snapshot.
        event_threshold: L1 movement that turns a membership shift into a
            :class:`DriftEvent` even when the dominant community held.
        max_events_per_generation: cap on emitted events per generation
            (largest movers win), bounding event memory on noisy streams.
    """

    def __init__(
        self,
        window: int = 8,
        top_k: int = DEFAULT_TOP_K,
        event_threshold: float = 0.25,
        max_events_per_generation: int = 1024,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < event_threshold <= 2.0:
            raise ValueError("event_threshold must be in (0, 2]")
        self.window = int(window)
        self.top_k = int(top_k)
        self.event_threshold = float(event_threshold)
        self.max_events_per_generation = int(max_events_per_generation)
        self._lock = threading.Lock()
        self._ring: deque[_Snapshot] = deque(maxlen=self.window)
        self._events: deque[list[DriftEvent]] = deque(maxlen=self.window)
        # Full aligned pi + ids of the newest generation: the next
        # alignment reference. Not part of the ring (only one is kept).
        self._ref_pi: Optional[np.ndarray] = None
        self._ref_ids: Optional[np.ndarray] = None
        self._first_seen: dict[int, int] = {}
        #: content version of the last recorded artifact — lets a
        #: restarted server skip re-recording the artifact the persisted
        #: history already ends on.
        self.last_version: Optional[str] = None

    # -- recording -----------------------------------------------------------

    @property
    def n_generations(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def generations(self) -> list[int]:
        with self._lock:
            return [s.generation for s in self._ring]

    def record(self, artifact: ModelArtifact, generation: int) -> list[DriftEvent]:
        """Align and snapshot a freshly published artifact.

        Returns the drift events emitted for this generation (also
        retrievable per node through :meth:`drift`).
        """
        pi = np.asarray(artifact.pi, dtype=np.float64)
        node_ids = np.asarray(artifact.node_ids, dtype=np.int64).copy()
        with self._lock:
            if self._ring and generation <= self._ring[-1].generation:
                raise ValueError(
                    f"generation {generation} not after"
                    f" {self._ring[-1].generation}"
                )
            if self._ref_pi is not None and pi.shape[1] != self._ref_pi.shape[1]:
                raise ValueError(
                    f"community count changed: {pi.shape[1]} vs"
                    f" {self._ref_pi.shape[1]}"
                )
            k = pi.shape[1]
            events: list[DriftEvent] = []
            if self._ref_pi is None:
                aligned = pi.copy()
                perm = np.arange(k, dtype=np.int64)
                drift = np.zeros(k)
            else:
                common, prev_rows, new_rows = np.intersect1d(
                    self._ref_ids, node_ids, return_indices=True
                )
                if common.size:
                    prev_block = self._ref_pi[prev_rows]
                    _, cols = align_communities(pi[new_rows], prev_block)
                else:
                    cols = np.arange(k, dtype=np.int64)
                aligned = pi[:, cols]
                perm = np.asarray(cols, dtype=np.int64)
                drift = np.zeros(k)
                if common.size:
                    new_block = aligned[new_rows]
                    num = np.einsum("ij,ij->j", prev_block, new_block)
                    den = np.linalg.norm(prev_block, axis=0) * np.linalg.norm(
                        new_block, axis=0
                    )
                    ok = den > 1e-12
                    drift[ok] = 1.0 - num[ok] / den[ok]
                    drift = np.clip(drift, 0.0, None)
                    events = self._node_events(
                        generation, common, prev_block, new_block
                    )
            tops, weights = _top_communities(aligned, self.top_k)
            self._ring.append(
                _Snapshot(
                    generation=int(generation),
                    node_ids=node_ids,
                    top_communities=tops,
                    top_weights=weights,
                    community_drift=drift,
                    permutation=perm,
                )
            )
            self._events.append(events)
            for v in node_ids:
                self._first_seen.setdefault(int(v), int(generation))
            self._ref_pi = aligned
            self._ref_ids = node_ids
            self.last_version = artifact.version
            return list(events)

    def record_next(self, artifact: ModelArtifact) -> list[DriftEvent]:
        """Record at the next generation index after the newest retained.

        The restart-safe entry point: a reloaded history keeps its own
        generation numbering (a fresh server's counter would collide
        with :meth:`record`'s strictly-increasing check).
        """
        with self._lock:
            nxt = self._ring[-1].generation + 1 if self._ring else 0
        return self.record(artifact, nxt)

    def _node_events(
        self,
        generation: int,
        common: np.ndarray,
        prev_block: np.ndarray,
        new_block: np.ndarray,
    ) -> list[DriftEvent]:
        old_top = np.argmax(prev_block, axis=1)
        new_top = np.argmax(new_block, axis=1)
        l1 = np.abs(new_block - prev_block).sum(axis=1)
        flipped = old_top != new_top
        shifted = ~flipped & (l1 > self.event_threshold)
        hot = np.flatnonzero(flipped | shifted)
        if hot.size > self.max_events_per_generation:
            # Keep the largest movers (flips outrank same-top shifts).
            score = l1[hot] + 10.0 * flipped[hot]
            hot = hot[np.argsort(-score, kind="stable")]
            hot = np.sort(hot[: self.max_events_per_generation])
        return [
            DriftEvent(
                node=int(common[i]),
                generation=int(generation),
                kind="top-change" if flipped[i] else "shift",
                old_top=int(old_top[i]),
                new_top=int(new_top[i]),
                l1_change=float(l1[i]),
            )
            for i in hot
        ]

    # -- queries -------------------------------------------------------------

    def community_drift(self, generation: Optional[int] = None) -> np.ndarray:
        """Per-community drift scores for a retained generation (default last)."""
        with self._lock:
            snap = self._find(generation)
            return snap.community_drift.copy()

    def drift(self, node: int, last: Optional[int] = None) -> dict:
        """How ``node``'s communities changed over the retained window.

        Args:
            node: external node id.
            last: restrict to the most recent ``last`` retained
                generations (default: the whole window).

        Returns:
            A plain dict (server-serializable): ``node``,
            ``first_seen_generation``, ``generations`` — a list of
            ``{"generation", "communities", "weights"}`` in canonical
            label space, oldest first, with generations predating the
            node absent — and ``events``, this node's drift events in the
            same span.

        Raises:
            KeyError: the node appears in no retained generation.
            ValueError: ``last`` is not a positive count.
        """
        node = int(node)
        if last is not None and last < 1:
            raise ValueError("last must be >= 1")
        with self._lock:
            snaps = list(self._ring)
            event_lists = list(self._events)
        if last is not None:
            snaps = snaps[-last:]
            event_lists = event_lists[-last:]
        history = []
        seen = False
        for snap in snaps:
            rows = np.flatnonzero(snap.node_ids == node)
            if not rows.size:
                continue
            seen = True
            r = int(rows[0])
            history.append(
                {
                    "generation": snap.generation,
                    "communities": snap.top_communities[r].tolist(),
                    "weights": snap.top_weights[r].tolist(),
                }
            )
        if not seen:
            raise KeyError(f"node {node} not in any retained generation")
        events = [
            {
                "generation": e.generation,
                "kind": e.kind,
                "old_top": e.old_top,
                "new_top": e.new_top,
                "l1_change": e.l1_change,
            }
            for evs in event_lists
            for e in evs
            if e.node == node
        ]
        return {
            "node": node,
            "first_seen_generation": self._first_seen.get(node),
            "generations": history,
            "events": events,
        }

    def _find(self, generation: Optional[int]) -> _Snapshot:
        if not self._ring:
            raise ValueError("no generations recorded")
        if generation is None:
            return self._ring[-1]
        for snap in self._ring:
            if snap.generation == generation:
                return snap
        raise KeyError(f"generation {generation} not retained")

    # -- persistence ---------------------------------------------------------

    def save(self, path: PathLike) -> Path:
        """Atomically checkpoint the full history (ring, events, alignment
        reference, first-seen map) to an ``.npz`` beside the artifact.

        Uses the tmp+fsync+replace idiom, so a crash mid-save leaves the
        previous checkpoint intact. :meth:`load` restores a history that
        continues exactly where this one stopped — including the aligned
        label space, so drift stays in canonical generation-0 labels
        across a server restart.
        """
        from repro.core.checkpoint import _atomic_savez

        with self._lock:
            meta = {
                "version": HISTORY_FORMAT_VERSION,
                "window": self.window,
                "top_k": self.top_k,
                "event_threshold": self.event_threshold,
                "max_events_per_generation": self.max_events_per_generation,
                "generations": [s.generation for s in self._ring],
                "events": [
                    [dataclasses.asdict(e) for e in evs] for evs in self._events
                ],
                "last_version": self.last_version,
            }
            arrays: dict[str, np.ndarray] = {}
            for i, s in enumerate(self._ring):
                arrays[f"s{i}_node_ids"] = s.node_ids
                arrays[f"s{i}_tops"] = s.top_communities
                arrays[f"s{i}_weights"] = s.top_weights
                arrays[f"s{i}_drift"] = s.community_drift
                arrays[f"s{i}_perm"] = s.permutation
            if self._ref_pi is not None:
                arrays["ref_pi"] = self._ref_pi
                arrays["ref_ids"] = self._ref_ids
            fs = (
                np.array(sorted(self._first_seen.items()), dtype=np.int64)
                if self._first_seen
                else np.zeros((0, 2), dtype=np.int64)
            )
            arrays["first_seen"] = fs
        return _atomic_savez(path, _meta=json.dumps(meta), **arrays)

    @classmethod
    def load(cls, path: PathLike) -> "MembershipHistory":
        """Restore a history checkpointed by :meth:`save` (typed errors)."""
        p = Path(path)
        if not p.exists():
            raise StreamError(f"membership history {p}: file does not exist")
        try:
            data = np.load(str(p), allow_pickle=False)
        except (zipfile.BadZipFile, OSError, ValueError) as exc:
            raise StreamError(
                f"membership history {p}: corrupt archive ({exc})"
            ) from exc
        with data:
            try:
                meta = json.loads(str(data["_meta"]))
            except (KeyError, json.JSONDecodeError, ValueError) as exc:
                raise StreamError(
                    f"membership history {p}: unreadable metadata ({exc})"
                ) from exc
            if meta.get("version") != HISTORY_FORMAT_VERSION:
                raise StreamError(
                    f"membership history {p}: unsupported version"
                    f" {meta.get('version')!r}"
                )
            try:
                hist = cls(
                    window=int(meta["window"]),
                    top_k=int(meta["top_k"]),
                    event_threshold=float(meta["event_threshold"]),
                    max_events_per_generation=int(
                        meta["max_events_per_generation"]
                    ),
                )
                for i, gen in enumerate(meta["generations"]):
                    hist._ring.append(
                        _Snapshot(
                            generation=int(gen),
                            node_ids=data[f"s{i}_node_ids"].copy(),
                            top_communities=data[f"s{i}_tops"].copy(),
                            top_weights=data[f"s{i}_weights"].copy(),
                            community_drift=data[f"s{i}_drift"].copy(),
                            permutation=data[f"s{i}_perm"].copy(),
                        )
                    )
                for evs in meta["events"]:
                    hist._events.append([DriftEvent(**e) for e in evs])
                if "ref_pi" in data:
                    hist._ref_pi = data["ref_pi"].copy()
                    hist._ref_ids = data["ref_ids"].copy()
                hist._first_seen = {
                    int(a): int(b) for a, b in data["first_seen"]
                }
                hist.last_version = meta.get("last_version")
            except (KeyError, TypeError, ValueError) as exc:
                raise StreamError(
                    f"membership history {p}: invalid contents ({exc})"
                ) from exc
        return hist
