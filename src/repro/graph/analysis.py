"""Graph statistics used for dataset validation and exploration.

The Table II stand-ins claim to preserve the structural character of the
SNAP originals; this module provides the statistics those claims are
checked with (degree distribution, clustering, components), plus general
exploration helpers for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph


@dataclass(frozen=True)
class GraphSummary:
    """Headline statistics of a graph."""

    n_vertices: int
    n_edges: int
    avg_degree: float
    max_degree: int
    degree_gini: float
    clustering_coefficient: float
    n_components: int
    largest_component_fraction: float

    def as_dict(self) -> dict:
        return {
            "N": self.n_vertices,
            "|E|": self.n_edges,
            "avg_deg": self.avg_degree,
            "max_deg": self.max_degree,
            "deg_gini": self.degree_gini,
            "clustering": self.clustering_coefficient,
            "components": self.n_components,
            "lcc_frac": self.largest_component_fraction,
        }


def degree_histogram(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """(degrees, counts) of the degree distribution, sorted by degree."""
    values, counts = np.unique(graph.degrees, return_counts=True)
    return values, counts


def degree_gini(graph: Graph) -> float:
    """Gini coefficient of the degree distribution (0 = regular graph,
    -> 1 for extreme hub dominance). Social graphs typically land ~0.5."""
    d = np.sort(graph.degrees.astype(np.float64))
    n = d.size
    if n == 0 or d.sum() == 0:
        return 0.0
    cum = np.cumsum(d)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def clustering_coefficient(graph: Graph, sample: int | None = 2000,
                           rng: np.random.Generator | None = None) -> float:
    """Average local clustering coefficient.

    Exact for graphs with <= ``sample`` vertices; otherwise estimated on a
    uniform vertex sample (the per-vertex computation is O(d^2 log d)).
    """
    n = graph.n_vertices
    if sample is not None and n > sample:
        rng = rng or np.random.default_rng(0)
        vertices = rng.choice(n, size=sample, replace=False)
    else:
        vertices = np.arange(n)
    total = 0.0
    counted = 0
    for v in vertices:
        nbrs = graph.neighbors(int(v))
        d = nbrs.size
        if d < 2:
            continue
        # Count edges among neighbors via vectorized membership.
        pairs_a = np.repeat(nbrs, d)
        pairs_b = np.tile(nbrs, d)
        keep = pairs_a < pairs_b
        links = graph.has_edges(np.column_stack([pairs_a[keep], pairs_b[keep]]))
        total += 2.0 * links.sum() / (d * (d - 1))
        counted += 1
    return total / counted if counted else 0.0


def connected_components(graph: Graph) -> np.ndarray:
    """Component label per vertex (0-based, in discovery order).

    Iterative BFS over the CSR adjacency; O(N + E).
    """
    n = graph.n_vertices
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            v = stack.pop()
            for u in graph.neighbors(v):
                u = int(u)
                if labels[u] == -1:
                    labels[u] = current
                    stack.append(u)
        current += 1
    return labels


def summarize(graph: Graph, clustering_sample: int | None = 2000) -> GraphSummary:
    """Compute a :class:`GraphSummary`."""
    labels = connected_components(graph)
    _, sizes = np.unique(labels, return_counts=True)
    degrees = graph.degrees
    return GraphSummary(
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
        avg_degree=float(degrees.mean()) if graph.n_vertices else 0.0,
        max_degree=int(degrees.max()) if graph.n_vertices else 0,
        degree_gini=degree_gini(graph),
        clustering_coefficient=clustering_coefficient(graph, clustering_sample),
        n_components=int(sizes.size),
        largest_component_fraction=float(sizes.max() / graph.n_vertices),
    )
