"""Synthetic graph generators with ground-truth overlapping communities.

Two generators:

- :func:`generate_ammsb_graph` samples from the a-MMSB generative model
  itself (Section II-A of the paper) using the Poisson multigraph trick of
  Ball-Karrer-Newman, which avoids the O(N^2) loop over all pairs and is
  exact in the sparse limit. This is what the SNAP stand-ins are built from.
- :func:`planted_overlapping_graph` plants an explicit cover (each vertex
  belongs to 1..3 communities) with within/between link probabilities —
  handy for recovery tests because membership is crisp.

Both return the graph plus a :class:`GroundTruth` carrying the memberships
that metrics can score against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.graph.graph import Graph


@dataclass(frozen=True)
class GroundTruth:
    """Planted community structure.

    Attributes:
        pi: (N, K) mixed-membership matrix used to generate the graph
            (rows sum to 1).
        beta: (K,) community strengths.
        covers: list of K integer arrays — vertices assigned to each
            community by thresholding pi (for cover-based metrics).
    """

    pi: np.ndarray
    beta: np.ndarray
    covers: list[np.ndarray] = field(default_factory=list)

    @property
    def n_communities(self) -> int:
        return int(self.pi.shape[1])


def _covers_from_pi(pi: np.ndarray, threshold: float = 0.25) -> list[np.ndarray]:
    """Threshold mixed memberships into discrete covers."""
    covers = []
    for k in range(pi.shape[1]):
        members = np.flatnonzero(pi[:, k] >= threshold)
        if members.size == 0:
            members = np.array([int(np.argmax(pi[:, k]))], dtype=np.int64)
        covers.append(members.astype(np.int64))
    return covers


def sample_mixed_membership(
    n_vertices: int,
    n_communities: int,
    alpha: float,
    rng: np.random.Generator,
    concentration: float = 0.0,
) -> np.ndarray:
    """Sample pi rows from Dirichlet(alpha), optionally biased to a home
    community to get assortative structure at small alpha.

    ``concentration > 0`` adds that mass to one random "home" community per
    vertex before normalizing, which produces the crisp-but-overlapping
    memberships real social graphs show.
    """
    pi = rng.gamma(alpha, 1.0, size=(n_vertices, n_communities))
    if concentration > 0:
        home = rng.integers(0, n_communities, size=n_vertices)
        pi[np.arange(n_vertices), home] += concentration
    pi /= pi.sum(axis=1, keepdims=True)
    return pi


def generate_ammsb_graph(
    n_vertices: int,
    n_communities: int,
    alpha: float = 0.05,
    eta: tuple[float, float] = (5.0, 1.0),
    delta: float = 1e-7,
    rng: Optional[np.random.Generator] = None,
    target_edges: Optional[int] = None,
    concentration: float = 2.0,
    degree_heterogeneity: float = 0.0,
) -> tuple[Graph, GroundTruth]:
    """Sample a graph from the a-MMSB generative process.

    Uses the Poisson approximation: the number of within-community-k links
    is Poisson with mean ``beta_k/2 * (sum_a pi_ak)^2`` and endpoints are
    drawn proportional to ``pi[:, k]``; background (delta) links are uniform
    pairs. Exact in the sparse regime the model targets (all SNAP graphs in
    Table II have density < 1e-3).

    Args:
        n_vertices: N.
        n_communities: K.
        alpha: Dirichlet hyperparameter for pi.
        eta: Beta hyperparameters (eta1, eta0) for community strengths.
        delta: background (inter-community) link probability.
        rng: random generator.
        target_edges: if given, community strengths are rescaled so the
            expected number of edges matches (used by the SNAP stand-ins to
            hit Table II densities).
        concentration: home-community bias (see
            :func:`sample_mixed_membership`).
        degree_heterogeneity: sigma of a log-normal per-vertex degree
            propensity (degree-corrected blockmodel style). 0 disables;
            ~0.75 gives the hub-dominated degree distributions (Gini
            ~0.3-0.4) of real social graphs, which plain a-MMSB lacks.

    Returns:
        ``(graph, ground_truth)``.
    """
    if n_vertices < 2 or n_communities < 1:
        raise ValueError("need N >= 2 and K >= 1")
    if degree_heterogeneity < 0:
        raise ValueError("degree_heterogeneity must be >= 0")
    rng = rng or np.random.default_rng(0)
    pi = sample_mixed_membership(n_vertices, n_communities, alpha, rng, concentration)
    beta = rng.beta(eta[0], eta[1], size=n_communities)
    if degree_heterogeneity > 0:
        propensity = rng.lognormal(0.0, degree_heterogeneity, size=n_vertices)
    else:
        propensity = np.ones(n_vertices)

    weighted = pi * propensity[:, None]
    mass = weighted.sum(axis=0)  # sum_a w_a pi_ak, shape (K,)
    expected_within = beta * (mass**2 - (weighted**2).sum(axis=0)) / 2.0
    expected_bg = delta * n_vertices * (n_vertices - 1) / 2.0
    if target_edges is not None:
        scale = target_edges / max(expected_within.sum() + expected_bg, 1e-12)
        beta = np.minimum(beta * scale, 0.95)
        expected_within = beta * (mass**2 - (weighted**2).sum(axis=0)) / 2.0

    bg_p = propensity / propensity.sum()
    chunks: list[np.ndarray] = []
    for k in range(n_communities):
        m_k = rng.poisson(max(expected_within[k], 0.0))
        if m_k == 0:
            continue
        p_k = weighted[:, k] / mass[k]
        a = rng.choice(n_vertices, size=m_k, p=p_k)
        b = rng.choice(n_vertices, size=m_k, p=p_k)
        chunks.append(np.column_stack([a, b]))
    m_bg = rng.poisson(expected_bg)
    if m_bg > 0:
        a = rng.choice(n_vertices, size=m_bg, p=bg_p)
        b = rng.choice(n_vertices, size=m_bg, p=bg_p)
        chunks.append(np.column_stack([a, b]))

    if chunks:
        raw = np.vstack(chunks)
        raw = raw[raw[:, 0] != raw[:, 1]]
        lo = np.minimum(raw[:, 0], raw[:, 1])
        hi = np.maximum(raw[:, 0], raw[:, 1])
        keys = lo * np.int64(n_vertices) + hi
        _, unique_idx = np.unique(keys, return_index=True)
        edges = np.column_stack([lo, hi])[unique_idx]
    else:
        edges = np.zeros((0, 2), dtype=np.int64)

    graph = Graph(n_vertices, edges)
    truth = GroundTruth(pi=pi, beta=beta, covers=_covers_from_pi(pi))
    return graph, truth


def planted_overlapping_graph(
    n_vertices: int,
    n_communities: int,
    memberships_per_vertex: int = 2,
    p_in: float = 0.3,
    p_out: float = 0.001,
    rng: Optional[np.random.Generator] = None,
) -> tuple[Graph, GroundTruth]:
    """Plant an explicit overlapping cover.

    Each vertex joins ``memberships_per_vertex`` communities chosen uniformly
    without replacement; pairs sharing >= 1 community link with ``p_in``,
    others with ``p_out``. Sampling is done per community with the Poisson
    trick plus a uniform background, mirroring
    :func:`generate_ammsb_graph`.
    """
    if memberships_per_vertex < 1 or memberships_per_vertex > n_communities:
        raise ValueError("memberships_per_vertex out of range")
    rng = rng or np.random.default_rng(0)

    membership = np.zeros((n_vertices, n_communities), dtype=bool)
    for v in range(n_vertices):
        ks = rng.choice(n_communities, size=memberships_per_vertex, replace=False)
        membership[v, ks] = True

    chunks: list[np.ndarray] = []
    for k in range(n_communities):
        members = np.flatnonzero(membership[:, k])
        s = members.size
        if s < 2:
            continue
        m_k = rng.poisson(p_in * s * (s - 1) / 2.0)
        if m_k == 0:
            continue
        a = members[rng.integers(0, s, size=m_k)]
        b = members[rng.integers(0, s, size=m_k)]
        chunks.append(np.column_stack([a, b]))
    m_bg = rng.poisson(p_out * n_vertices * (n_vertices - 1) / 2.0)
    if m_bg > 0:
        a = rng.integers(0, n_vertices, size=m_bg)
        b = rng.integers(0, n_vertices, size=m_bg)
        chunks.append(np.column_stack([a, b]))

    if chunks:
        raw = np.vstack(chunks)
        raw = raw[raw[:, 0] != raw[:, 1]]
        lo = np.minimum(raw[:, 0], raw[:, 1])
        hi = np.maximum(raw[:, 0], raw[:, 1])
        keys = lo * np.int64(n_vertices) + hi
        _, unique_idx = np.unique(keys, return_index=True)
        edges = np.column_stack([lo, hi])[unique_idx]
    else:
        edges = np.zeros((0, 2), dtype=np.int64)

    pi = membership.astype(np.float64)
    pi /= pi.sum(axis=1, keepdims=True)
    covers = [np.flatnonzero(membership[:, k]).astype(np.int64) for k in range(n_communities)]
    beta = np.full(n_communities, p_in)
    graph = Graph(n_vertices, edges)
    return graph, GroundTruth(pi=pi, beta=beta, covers=covers)
