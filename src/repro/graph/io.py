"""Graph serialization: SNAP-style edge lists and compact NPZ.

SNAP distributes graphs as whitespace-separated edge lists with ``#``
comments; :func:`load_edge_list` accepts that format (so real downloads can
be dropped in where the synthetic stand-ins are used today), and
:func:`save_npz` / :func:`load_npz` provide a fast binary round-trip for
generated datasets.
"""

from __future__ import annotations

import io as _io
from pathlib import Path
from typing import Union

import numpy as np

from repro.graph.graph import Graph

PathLike = Union[str, Path]


def load_edge_list(path: PathLike, n_vertices: int | None = None) -> Graph:
    """Load a SNAP-format edge list.

    Vertex ids are remapped densely (SNAP files have sparse id spaces) in
    first-appearance order unless ``n_vertices`` is given, in which case ids
    are taken literally and must be < n_vertices. Duplicate undirected edges
    and self-loops are dropped (SNAP lists each undirected edge twice).
    """
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)  # empty-input warning
        raw = np.loadtxt(str(path), comments="#", dtype=np.int64, ndmin=2)
    if raw.size == 0:
        raise ValueError(f"no edges in {path}")
    if raw.shape[1] != 2:
        raise ValueError(f"expected 2 columns, got {raw.shape[1]}")
    if n_vertices is None:
        ids, inverse = np.unique(raw, return_inverse=True)
        raw = inverse.reshape(raw.shape)
        n_vertices = int(ids.size)
    raw = raw[raw[:, 0] != raw[:, 1]]
    lo = np.minimum(raw[:, 0], raw[:, 1])
    hi = np.maximum(raw[:, 0], raw[:, 1])
    keys = lo * np.int64(n_vertices) + hi
    _, idx = np.unique(keys, return_index=True)
    return Graph(n_vertices, np.column_stack([lo, hi])[idx])


def save_edge_list(graph: Graph, path: PathLike, header: str = "") -> None:
    """Write a SNAP-style edge list (one canonical direction per edge)."""
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        fh.write(f"# Nodes: {graph.n_vertices} Edges: {graph.n_edges}\n")
        np.savetxt(fh, graph.edges, fmt="%d")


def save_npz(graph: Graph, path: PathLike) -> None:
    """Binary round-trip save."""
    np.savez_compressed(str(path), n_vertices=graph.n_vertices, edges=graph.edges)


def load_npz(path: PathLike) -> Graph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(str(path)) as data:
        return Graph(int(data["n_vertices"]), data["edges"])


def from_networkx(g) -> Graph:  # pragma: no cover - optional dependency
    """Convert a networkx graph (relabeling vertices densely)."""
    import networkx as nx

    mapping = {v: i for i, v in enumerate(g.nodes())}
    edges = np.array([[mapping[a], mapping[b]] for a, b in g.edges() if a != b], dtype=np.int64)
    return Graph(g.number_of_nodes(), edges)
