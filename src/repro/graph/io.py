"""Graph serialization: SNAP edge lists, compact NPZ, and a mmap CSR container.

SNAP distributes graphs as whitespace-separated edge lists with ``#``
comments; :func:`load_edge_list` accepts that format (so real downloads can
be dropped in where the synthetic stand-ins are used today), and
:func:`save_npz` / :func:`load_npz` provide a fast binary round-trip for
generated datasets.

For graphs that should not be re-parsed or re-sorted on every load,
:func:`save_csr` / :func:`load_csr` persist the *already-canonical* CSR
arrays (``edges``/``keys``/``indptr``/``indices``) in a
:mod:`repro.store` container — one raw ``.npy`` per array plus a
sha256-sealed manifest — so :func:`load_csr` can hand read-only memory
maps straight to :meth:`repro.graph.graph.Graph.from_csr`: load time is
O(manifest) and RSS grows only with the pages a workload actually
touches. ``repro convert-graph`` builds the container once from an edge
list or NPZ.
"""

from __future__ import annotations

import itertools
import warnings
from pathlib import Path
from typing import Union

import numpy as np

from repro.graph.graph import Graph
from repro.store import ArrayProvider, Container, StoreError, write_container

PathLike = Union[str, Path]

GRAPH_CSR_KIND = "repro-graph-csr/1"

# Lines fed to the tokenizer per chunk in load_edge_list. Bounds parser
# peak memory at ~chunk size regardless of file size.
_CHUNK_LINES = 1 << 16


#: per-chunk streaming dedup canonicalizes raw pairs under this fixed
#: radix, so ids must stay below it; larger ids fall back to one final
#: dedup pass (and would overflow Graph's own int64 keys long before).
_DEDUP_RADIX = np.int64(1) << 32


def load_edge_list(
    path: PathLike,
    n_vertices: int | None = None,
    chunk_lines: int = _CHUNK_LINES,
    dedup: bool = True,
) -> Graph:
    """Load a SNAP-format edge list, stream-parsing in bounded chunks.

    Vertex ids are remapped densely (SNAP files have sparse id spaces) in
    sorted order unless ``n_vertices`` is given, in which case ids are
    taken literally and must be < n_vertices. Duplicate undirected edges
    (repeated *or* reversed — SNAP lists each undirected edge twice) and
    self-loops are dropped either way; ``dedup`` only selects *when*:

    - ``dedup=True`` (default): duplicates are folded away per chunk
      against the running unique set, so peak memory tracks the number
      of *unique* edges — the right mode for streaming sources that
      replay dirty, repetitive data.
    - ``dedup=False``: the legacy whole-file pass — every raw pair is
      kept until the end and deduplicated once. Identical result, higher
      peak memory on files with many repeats.

    ``#`` comment lines and blank lines are ignored anywhere in the file.
    The file is parsed ``chunk_lines`` lines at a time through NumPy's C
    tokenizer, and self-loops are dropped per chunk, so peak parser
    memory is O(chunk) + O(edges kept) instead of the whole-text +
    whole-array peak a single ``np.loadtxt`` call incurs.
    """
    if chunk_lines <= 0:
        raise ValueError("chunk_lines must be positive")
    parts: list[np.ndarray] = []
    kept_keys: np.ndarray | None = None  # sorted unique canonical keys so far
    kept_pairs: np.ndarray | None = None  # matching (lo, hi) rows
    streaming = bool(dedup)
    n_cols: int | None = None
    with open(path, "r", encoding="utf-8") as fh:
        while True:
            lines = list(itertools.islice(fh, chunk_lines))
            if not lines:
                break
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", UserWarning)  # empty-chunk warning
                arr = np.loadtxt(lines, comments="#", dtype=np.int64, ndmin=2)
            if arr.size == 0:
                continue  # all-comment / all-blank chunk
            if n_cols is None:
                n_cols = arr.shape[1]
                if n_cols != 2:
                    raise ValueError(f"expected 2 columns, got {n_cols}")
            elif arr.shape[1] != n_cols:
                raise ValueError(f"inconsistent column count: {arr.shape[1]} != {n_cols}")
            arr = arr[arr[:, 0] != arr[:, 1]]
            if streaming and arr.size and int(arr.max()) >= int(_DEDUP_RADIX >> 1):
                # Ids too large for the fixed-radix keys: migrate to the
                # accumulate-then-dedup path (same result).
                streaming = False
                if kept_pairs is not None:
                    parts.append(kept_pairs)
                    kept_keys = kept_pairs = None
            if not streaming:
                parts.append(arr)
                continue
            if arr.size == 0:
                continue
            lo = np.minimum(arr[:, 0], arr[:, 1])
            hi = np.maximum(arr[:, 0], arr[:, 1])
            keys = lo * _DEDUP_RADIX + hi
            keys, idx = np.unique(keys, return_index=True)
            pairs = np.column_stack([lo, hi])[idx]
            if kept_keys is not None and kept_keys.size:
                fresh = (
                    np.searchsorted(kept_keys, keys)
                    >= kept_keys.size
                ) | (
                    kept_keys[np.minimum(np.searchsorted(kept_keys, keys),
                                         kept_keys.size - 1)]
                    != keys
                )
                keys, pairs = keys[fresh], pairs[fresh]
                merged = np.concatenate([kept_keys, keys])
                order = np.argsort(merged, kind="stable")
                kept_keys = merged[order]
                kept_pairs = np.concatenate([kept_pairs, pairs])[order]
            else:
                kept_keys, kept_pairs = keys, pairs
    if kept_pairs is not None:
        raw = kept_pairs
    elif parts:
        raw = np.concatenate(parts) if len(parts) > 1 else parts[0]
    else:
        raise ValueError(f"no edges in {path}")
    if raw.size == 0:
        raise ValueError(f"no edges in {path}")
    if n_vertices is None:
        ids, inverse = np.unique(raw, return_inverse=True)
        raw = inverse.reshape(raw.shape)
        n_vertices = int(ids.size)
    lo = np.minimum(raw[:, 0], raw[:, 1])
    hi = np.maximum(raw[:, 0], raw[:, 1])
    keys = lo * np.int64(n_vertices) + hi
    _, idx = np.unique(keys, return_index=True)
    return Graph(n_vertices, np.column_stack([lo, hi])[idx])


def save_edge_list(graph: Graph, path: PathLike, header: str = "") -> None:
    """Write a SNAP-style edge list (one canonical direction per edge)."""
    with open(path, "w", encoding="utf-8") as fh:
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        fh.write(f"# Nodes: {graph.n_vertices} Edges: {graph.n_edges}\n")
        np.savetxt(fh, graph.edges, fmt="%d")


def save_npz(graph: Graph, path: PathLike) -> None:
    """Binary round-trip save."""
    np.savez_compressed(str(path), n_vertices=graph.n_vertices, edges=graph.edges)


def load_npz(path: PathLike) -> Graph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(str(path)) as data:
        return Graph(int(data["n_vertices"]), data["edges"])


# -- mmap CSR container ------------------------------------------------------


def save_csr(graph: Graph, path: PathLike, overwrite: bool = True) -> Path:
    """Persist a graph's canonical CSR arrays as a store container.

    The container holds ``edges`` (m, 2), ``keys`` (m,), ``indptr``
    (N+1,), and ``indices`` (2m,) exactly as :class:`Graph` keeps them —
    canonicalized, deduped, row-sorted — so :func:`load_csr` can adopt
    the mapped bytes without any re-sorting.
    """
    return write_container(
        path,
        {
            "edges": graph.edges,
            "keys": graph.keys,
            "indptr": graph._csr_indptr,
            "indices": graph._csr_indices,
        },
        kind=GRAPH_CSR_KIND,
        meta={"n_vertices": int(graph.n_vertices), "n_edges": int(graph.n_edges)},
        overwrite=overwrite,
    )


def load_csr(
    path: PathLike,
    provider: Union[str, ArrayProvider, None] = "mmap",
    verify: str = "none",
    validate: bool = False,
) -> Graph:
    """Open a CSR container as a :class:`Graph` over provider-backed arrays.

    With the default ``mmap`` provider the arrays are read-only memory
    maps: construction touches only the manifest and the ``.npy``
    headers, and samplers/serving pull pages in on demand (one physical
    copy shared across processes through the page cache).

    ``Graph`` adopts all four arrays at construction, so any digest
    verification here is *eager by definition* — hence the default
    ``verify="none"``: the sealed manifest and per-array header checks
    still run (O(manifest)), but content digests are left to an explicit
    pass (``verify="eager"``/``"touch"``, both equivalent here, cost one
    sequential hashing read of every array — page-cache traffic, not
    process RSS). ``validate=True`` additionally runs
    :meth:`Graph.from_csr`'s structural invariants.
    """
    c = Container(path, provider=provider, verify=verify)
    if c.kind != GRAPH_CSR_KIND:
        raise StoreError(path, f"not a graph CSR container (kind={c.kind!r})")
    return Graph.from_csr(
        n_vertices=int(c.meta["n_vertices"]),
        edges=c.array("edges"),
        keys=c.array("keys"),
        indptr=c.array("indptr"),
        indices=c.array("indices"),
        validate=validate,
    )


def convert_graph(
    input_path: PathLike, output_path: PathLike, n_vertices: int | None = None
) -> Graph:
    """Build a CSR container from an edge list or NPZ (``repro convert-graph``).

    ``.npz`` inputs load through :func:`load_npz`; anything else is
    parsed as a SNAP edge list. Returns the loaded graph after writing
    the container to ``output_path``.
    """
    input_path = Path(input_path)
    if input_path.suffix == ".npz":
        graph = load_npz(input_path)
    else:
        graph = load_edge_list(input_path, n_vertices=n_vertices)
    save_csr(graph, output_path)
    return graph


def from_networkx(g) -> Graph:  # pragma: no cover - optional dependency
    """Convert a networkx graph (relabeling vertices densely)."""
    import networkx as nx

    mapping = {v: i for i, v in enumerate(g.nodes())}
    edges = np.array([[mapping[a], mapping[b]] for a, b in g.edges() if a != b], dtype=np.int64)
    return Graph(g.number_of_nodes(), edges)
