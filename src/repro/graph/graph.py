"""Compact undirected graph with CSR adjacency and O(log d) edge queries.

The SG-MCMC algorithm needs three graph operations, all of which must be
fast and vectorized:

- enumerate the neighbors of a vertex (CSR slice) — used when the master
  scatters the mini-batch together with the touched slice of the edge set;
- test whether a pair is linked (``y_ab``) for whole arrays of pairs at
  once — used by update_phi on sampled neighbor sets and by the
  perplexity kernel on the held-out set;
- sample uniform non-link pairs — used by the held-out split and the
  stratified mini-batch sampler.

Edges are stored canonically (``a < b``) in a sorted key array
(``key = a * N + b``), so membership tests are a vectorized
``np.searchsorted``. The CSR arrays cover both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np


def edge_key(a: int, b: int, n: int) -> int:
    """Canonical scalar key of the undirected pair (a, b) in an n-vertex graph."""
    if a == b:
        raise ValueError(f"self-loop ({a},{a}) has no edge key")
    lo, hi = (a, b) if a < b else (b, a)
    return int(lo) * n + int(hi)


def edge_keys(pairs: np.ndarray, n: int) -> np.ndarray:
    """Vectorized :func:`edge_key` for an (m, 2) int array of pairs."""
    pairs = np.asarray(pairs)
    lo = np.minimum(pairs[:, 0], pairs[:, 1]).astype(np.int64)
    hi = np.maximum(pairs[:, 0], pairs[:, 1]).astype(np.int64)
    return lo * np.int64(n) + hi


class Graph:
    """Immutable undirected graph.

    Args:
        n_vertices: number of vertices (ids ``0 .. n-1``).
        edges: (m, 2) integer array of undirected edges. Duplicates and
            self-loops are rejected.

    Attributes:
        n_vertices: N.
        n_edges: number of undirected edges.
        edges: (m, 2) canonicalized (``a < b``), sorted by key.
    """

    def __init__(self, n_vertices: int, edges: np.ndarray) -> None:
        if n_vertices <= 0:
            raise ValueError("graph needs at least one vertex")
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must be (m, 2), got {edges.shape}")
        if edges.size and (edges.min() < 0 or edges.max() >= n_vertices):
            raise ValueError("edge endpoint out of range")
        if edges.size and np.any(edges[:, 0] == edges[:, 1]):
            raise ValueError("self-loops are not allowed")

        self.n_vertices = int(n_vertices)
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        keys = lo * np.int64(n_vertices) + hi
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        if keys.size and np.any(np.diff(keys) == 0):
            raise ValueError("duplicate edges are not allowed")
        self._keys = keys
        self.edges = np.column_stack([lo[order], hi[order]])
        self.n_edges = int(keys.size)

        # CSR over both directions.
        src = np.concatenate([self.edges[:, 0], self.edges[:, 1]])
        dst = np.concatenate([self.edges[:, 1], self.edges[:, 0]])
        order2 = np.argsort(src, kind="stable")
        self._csr_indices = dst[order2]
        self._csr_indptr = np.zeros(n_vertices + 1, dtype=np.int64)
        np.add.at(self._csr_indptr, src + 1, 1)
        np.cumsum(self._csr_indptr, out=self._csr_indptr)
        self._sort_adjacency()

    @classmethod
    def from_csr(
        cls,
        n_vertices: int,
        edges: np.ndarray,
        keys: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        validate: bool = True,
    ) -> "Graph":
        """Construct a graph over already-canonical CSR arrays, zero-copy.

        ``__init__`` re-canonicalizes from scratch: an O(m log m) sort of
        the key array, an ``np.add.at`` histogram, and a per-row lexsort
        of the adjacency — all of which allocate fresh arrays. When the
        arrays come out of a trusted producer (the CSR container written
        by :func:`repro.graph.io.save_csr`, whose bytes are sealed by
        per-array sha256 digests), that work is pure overhead and the
        copies defeat memory mapping. This fast path adopts the arrays
        *as given* — no sort, no copy; ``self._csr_indptr is indptr``
        holds afterwards — so a multi-GB graph can be served from
        read-only mapped files with only the touched pages resident.

        Args:
            n_vertices: N.
            edges: (m, 2) canonical edges (``lo < hi``), sorted by key.
            keys: (m,) sorted canonical keys (``lo * N + hi``).
            indptr: (N+1,) CSR row pointers over both edge directions.
            indices: (2m,) CSR neighbor ids, sorted within each row.
            validate: run O(N + m) *non-allocating-heavy* invariants
                (shape/monotonicity/range). Disable only for bytes you
                have digest-verified.
        """
        edges = np.asarray(edges)
        keys = np.asarray(keys)
        indptr = np.asarray(indptr)
        indices = np.asarray(indices)
        if validate:
            n = int(n_vertices)
            if n <= 0:
                raise ValueError("graph needs at least one vertex")
            if edges.ndim != 2 or edges.shape[1] != 2:
                raise ValueError(f"edges must be (m, 2), got {edges.shape}")
            m = edges.shape[0]
            if keys.shape != (m,):
                raise ValueError(f"keys must be ({m},), got {keys.shape}")
            if indptr.shape != (n + 1,):
                raise ValueError(f"indptr must be ({n + 1},), got {indptr.shape}")
            if indices.shape != (2 * m,):
                raise ValueError(f"indices must be ({2 * m},), got {indices.shape}")
            if m and (int(indptr[0]) != 0 or int(indptr[-1]) != 2 * m):
                raise ValueError("indptr endpoints inconsistent with edge count")
            if np.any(np.diff(indptr) < 0):
                raise ValueError("indptr must be non-decreasing")
            if keys.size and np.any(np.diff(keys) <= 0):
                raise ValueError("keys must be strictly increasing (canonical, deduped)")
            if indices.size and (int(indices.min()) < 0 or int(indices.max()) >= n):
                raise ValueError("CSR index out of range")
        g = cls.__new__(cls)
        g.n_vertices = int(n_vertices)
        g.edges = edges
        g.n_edges = int(edges.shape[0])
        g._keys = keys
        g._csr_indptr = indptr
        g._csr_indices = indices
        return g

    def _sort_adjacency(self) -> None:
        indptr, indices = self._csr_indptr, self._csr_indices
        # Vectorized per-row sort: sort by (row, value) pairs.
        rows = np.repeat(np.arange(self.n_vertices, dtype=np.int64), np.diff(indptr))
        order = np.lexsort((indices, rows))
        self._csr_indices = indices[order]

    # -- queries -----------------------------------------------------------

    @property
    def degrees(self) -> np.ndarray:
        """Vertex degrees, shape (N,)."""
        return np.diff(self._csr_indptr)

    def degree(self, v: int) -> int:
        return int(self._csr_indptr[v + 1] - self._csr_indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of ``v`` (a view; do not mutate)."""
        return self._csr_indices[self._csr_indptr[v] : self._csr_indptr[v + 1]]

    def has_edge(self, a: int, b: int) -> bool:
        if a == b:
            return False
        k = edge_key(a, b, self.n_vertices)
        i = np.searchsorted(self._keys, k)
        return bool(i < self._keys.size and self._keys[i] == k)

    def has_edges(self, pairs: np.ndarray) -> np.ndarray:
        """Vectorized linkedness test for an (m, 2) array; self-pairs -> False."""
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size == 0:
            return np.zeros(0, dtype=bool)
        # Self-pairs produce key a*N+a, which cannot collide with any
        # canonical key lo*N+hi (lo < hi < N has a unique decomposition),
        # so they naturally test False.
        lo = np.minimum(pairs[:, 0], pairs[:, 1])
        hi = np.maximum(pairs[:, 0], pairs[:, 1])
        keys = lo * np.int64(self.n_vertices) + hi
        if not self._keys.size:
            return np.zeros(len(pairs), dtype=bool)
        idx = np.minimum(np.searchsorted(self._keys, keys), self._keys.size - 1)
        return self._keys[idx] == keys

    def adjacency_slice(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """CSR sub-slices for a vertex set.

        Returns ``(indptr, indices)`` of a compacted CSR that holds, for each
        requested vertex in order, its neighbor list. This is exactly the
        "subset of E touched by the mini-batch" the master scatters to the
        workers (paper Section III-A).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        counts = self._csr_indptr[vertices + 1] - self._csr_indptr[vertices]
        out_indptr = np.zeros(len(vertices) + 1, dtype=np.int64)
        np.cumsum(counts, out=out_indptr[1:])
        out_indices = np.empty(int(out_indptr[-1]), dtype=np.int64)
        for i, v in enumerate(vertices):
            out_indices[out_indptr[i] : out_indptr[i + 1]] = self.neighbors(int(v))
        return out_indptr, out_indices

    # -- sampling ----------------------------------------------------------

    def sample_nonlink_pairs(
        self, m: int, rng: np.random.Generator, exclude_keys: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Sample ``m`` uniform unordered non-linked, non-self pairs.

        Rejection sampling; with the sparse graphs this model targets
        (density well below 1e-2) the expected number of rounds is ~1.
        ``exclude_keys`` (sorted) lets callers also avoid e.g. held-out pairs.
        """
        if m < 0:
            raise ValueError("m must be >= 0")
        n = self.n_vertices
        if n < 2:
            raise ValueError("need >= 2 vertices to sample pairs")
        rows: list[np.ndarray] = []
        n_found = 0
        seen: set[int] = set()  # dedupe within the sample
        max_rounds = 100
        for _ in range(max_rounds):
            if n_found >= m:
                break
            need = (m - n_found) * 2 + 16
            a = rng.integers(0, n, size=need)
            b = rng.integers(0, n, size=need)
            ok = a != b
            cand = np.column_stack([np.minimum(a, b), np.maximum(a, b)])[ok]
            keys = cand[:, 0] * np.int64(n) + cand[:, 1]
            linked = np.zeros(len(cand), dtype=bool)
            if self._keys.size:
                idx = np.minimum(np.searchsorted(self._keys, keys), self._keys.size - 1)
                linked = self._keys[idx] == keys
            keep = ~linked
            if exclude_keys is not None and exclude_keys.size:
                idx = np.minimum(np.searchsorted(exclude_keys, keys), exclude_keys.size - 1)
                keep &= exclude_keys[idx] != keys
            for row, k in zip(cand[keep], keys[keep]):
                if int(k) not in seen:
                    seen.add(int(k))
                    rows.append(row)
                    n_found += 1
                    if n_found >= m:
                        break
        if n_found < m:
            raise RuntimeError(f"could not sample {m} non-link pairs (graph too dense?)")
        return np.array(rows[:m], dtype=np.int64).reshape(m, 2)

    # -- derived quantities --------------------------------------------------

    @property
    def density(self) -> float:
        n = self.n_vertices
        total = n * (n - 1) / 2
        return self.n_edges / total if total else 0.0

    def subgraph(self, remove_keys: np.ndarray) -> "Graph":
        """Graph with the edges whose keys appear in ``remove_keys`` removed."""
        remove_keys = np.sort(np.asarray(remove_keys, dtype=np.int64))
        if remove_keys.size == 0:
            return Graph(self.n_vertices, self.edges)
        idx = np.minimum(np.searchsorted(remove_keys, self._keys), remove_keys.size - 1)
        keep = remove_keys[idx] != self._keys
        return Graph(self.n_vertices, self.edges[keep])

    @property
    def keys(self) -> np.ndarray:
        """Sorted canonical keys of all edges (read-only view)."""
        return self._keys

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Graph(N={self.n_vertices}, |E|={self.n_edges})"
