"""SNAP dataset registry (Table II) and deterministic synthetic stand-ins.

The paper evaluates on six SNAP graphs. This environment has no network
access, so the full downloads are unavailable; per the reproduction's
substitution rule we keep the *full-scale shapes* (N, \\|E\\|, #ground-truth
communities — exactly the quantities the analytic scaling experiments need)
in :data:`DATASETS`, and generate *scaled-down synthetic stand-ins* from the
a-MMSB generative model for experiments that run the real sampler
(convergence, recovery). The stand-in preserves:

- the vertex/edge ratio (average degree), which drives the per-vertex cost
  of the mini-batch stages;
- a community count scaled by the same factor, so community sizes match;
- deterministic generation from a per-dataset seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.generators import GroundTruth, generate_ammsb_graph
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Full-scale stats of a SNAP graph (paper Table II) + stand-in config."""

    name: str
    n_vertices: int
    n_edges: int
    n_ground_truth_communities: int
    description: str
    seed: int

    @property
    def avg_degree(self) -> float:
        return 2.0 * self.n_edges / self.n_vertices

    def scaled(self, scale: float) -> tuple[int, int, int]:
        """(N, target_edges, K) for a stand-in at ``scale`` of full size.

        Average degree is preserved; the community count shrinks with the
        square root of the scale so average community size also shrinks
        (communities in small graphs cannot keep full-scale sizes). K is
        clamped so the mean community holds at least ~2x the average degree
        worth of members — below that the generative model cannot reach the
        target edge count — and to [4, 512] overall.
        """
        n = max(64, int(round(self.n_vertices * scale)))
        m = max(n, int(round(n * self.avg_degree / 2.0)))
        k = int(round(self.n_ground_truth_communities * np.sqrt(scale)))
        k_max_density = max(4, int(n / max(2.0 * self.avg_degree, 8.0)))
        k = int(np.clip(k, 4, min(512, k_max_density)))
        return n, m, k


#: Table II of the paper, verbatim.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "com-LiveJournal", 3_997_962, 34_681_189, 287_512,
            "Online blogging social network", seed=101,
        ),
        DatasetSpec(
            "com-Friendster", 65_608_366, 1_806_067_135, 957_154,
            "Online gaming social network", seed=102,
        ),
        DatasetSpec(
            "com-Orkut", 3_072_441, 117_185_083, 6_288_363,
            "Online social network", seed=103,
        ),
        DatasetSpec(
            "com-Youtube", 1_134_890, 2_987_624, 8_385,
            "Video-sharing social network", seed=104,
        ),
        DatasetSpec(
            "com-DBLP", 317_080, 1_049_866, 13_477,
            "Computer science bibliography collaboration network", seed=105,
        ),
        DatasetSpec(
            "com-Amazon", 334_863, 925_872, 75_149,
            "Product co-purchasing network", seed=106,
        ),
    ]
}


def load_dataset(
    name: str,
    scale: float = 1e-3,
    alpha: float = 0.05,
    delta: float = 1e-6,
    concentration: float = 30.0,
    degree_heterogeneity: float = 0.75,
) -> tuple[Graph, GroundTruth, DatasetSpec]:
    """Generate the deterministic stand-in for a Table II dataset.

    Args:
        name: one of the Table II names (see :data:`DATASETS`).
        scale: linear down-scaling factor for N (default 1/1000).
        alpha: Dirichlet concentration for the generative model.
        delta: background link probability.
        concentration: home-community bias of the generated memberships.
            The default is high (crisp memberships): SNAP ground-truth
            communities are discrete sets, and diffuse-membership graphs
            have an oracle-perplexity floor so close to the random-init
            value that convergence curves are unreadable.

    Returns:
        ``(graph, ground_truth, full_scale_spec)``.
    """
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    spec = DATASETS[name]
    n, m, k = spec.scaled(scale)
    # Degree heterogeneity concentrates draws on hubs, so the multigraph
    # dedup eats a chunk of the target edges; inflate the Poisson target
    # until the realized count lands within 10% (deterministic: the seed
    # incorporates the attempt index).
    target = m
    graph = truth = None
    for attempt in range(4):
        rng = np.random.default_rng(spec.seed + 7919 * attempt)
        graph, truth = generate_ammsb_graph(
            n_vertices=n,
            n_communities=k,
            alpha=alpha,
            delta=delta,
            rng=rng,
            target_edges=int(target),
            concentration=concentration,
            degree_heterogeneity=degree_heterogeneity,
        )
        if graph.n_edges >= 0.9 * m:
            break
        target *= m / max(graph.n_edges, 1)
    return graph, truth, spec


def table2_rows() -> list[dict[str, object]]:
    """Rows of Table II (full-scale stats), ready for tabular printing."""
    return [
        {
            "Name": s.name,
            "#Vertices": s.n_vertices,
            "#Edges": s.n_edges,
            "#Ground-truth communities": s.n_ground_truth_communities,
            "Description": s.description,
        }
        for s in DATASETS.values()
    ]
