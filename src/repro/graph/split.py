"""Train / held-out split of a graph for perplexity evaluation.

Following the paper (Section II-C) and [Li, Ahn, Welling 2015], the
held-out set ``E_h`` contains an equal number of *linked* and *non-linked*
vertex pairs; the linked held-out pairs are removed from the training
graph. Perplexity (Eqn 7) is the exponentiated negative average held-out
log-likelihood over both kinds of pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph, edge_keys


@dataclass(frozen=True)
class HeldoutSplit:
    """The result of :func:`split_heldout`.

    Attributes:
        train: training graph (held-out links removed).
        heldout_pairs: (H, 2) vertex pairs in the held-out set.
        heldout_labels: (H,) bool, True where the pair is a link in the
            original graph.
    """

    train: Graph
    heldout_pairs: np.ndarray
    heldout_labels: np.ndarray

    @property
    def n_heldout(self) -> int:
        return int(len(self.heldout_pairs))

    @property
    def n_links(self) -> int:
        return int(self.heldout_labels.sum())

    def partition(self, n_parts: int, part: int) -> tuple[np.ndarray, np.ndarray]:
        """Static partition of E_h used by the distributed perplexity stage.

        Pairs are dealt round-robin so links and non-links stay balanced
        across ranks.
        """
        if not 0 <= part < n_parts:
            raise ValueError(f"part {part} out of range [0, {n_parts})")
        sel = slice(part, None, n_parts)
        return self.heldout_pairs[sel], self.heldout_labels[sel]


def split_heldout(
    graph: Graph,
    heldout_fraction: float = 0.01,
    rng: np.random.Generator | None = None,
    max_links: int | None = None,
) -> HeldoutSplit:
    """Split ``graph`` into a training graph and a balanced held-out set.

    Args:
        graph: the full graph.
        heldout_fraction: fraction of links moved to the held-out set; the
            same number of non-link pairs is added.
        rng: random generator (required for reproducibility; defaults to
            a fixed seed).
        max_links: optional cap on the number of held-out links.

    Returns:
        A :class:`HeldoutSplit`.
    """
    if not 0.0 < heldout_fraction < 1.0:
        raise ValueError("heldout_fraction must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    n_links = max(1, int(round(graph.n_edges * heldout_fraction)))
    if max_links is not None:
        n_links = min(n_links, max_links)
    if n_links >= graph.n_edges:
        raise ValueError("held-out set would consume the whole graph")

    link_idx = rng.choice(graph.n_edges, size=n_links, replace=False)
    link_pairs = graph.edges[np.sort(link_idx)]
    link_keys = edge_keys(link_pairs, graph.n_vertices)

    nonlink_pairs = graph.sample_nonlink_pairs(n_links, rng)

    train = graph.subgraph(remove_keys=link_keys)

    pairs = np.vstack([link_pairs, nonlink_pairs])
    labels = np.concatenate([
        np.ones(n_links, dtype=bool),
        np.zeros(n_links, dtype=bool),
    ])
    # Shuffle so static partitions are balanced even without round-robin.
    perm = rng.permutation(len(pairs))
    return HeldoutSplit(train=train, heldout_pairs=pairs[perm], heldout_labels=labels[perm])
