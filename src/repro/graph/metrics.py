"""Community-recovery metrics for overlapping covers.

Used by the recovery tests and examples to check that the sampler actually
finds the planted structure (the paper relies on held-out perplexity only,
but its datasets come with ground-truth communities — Table II — so we also
score recovered covers against them):

- :func:`best_match_f1` — average best-match F1 between two covers, the
  standard score in Yang & Leskovec [5];
- :func:`overlapping_nmi` — normalized mutual information for covers
  (Lancichinetti-Fortunato-Kertesz), information-theoretic and robust to
  community-count mismatch;
- :func:`covers_from_pi` — extract discrete covers from an estimated
  mixed-membership matrix.
"""

from __future__ import annotations

import numpy as np

Cover = list[np.ndarray]


def covers_from_pi(pi: np.ndarray, threshold: float = 0.2, min_size: int = 1) -> Cover:
    """Threshold a mixed-membership matrix into covers.

    A vertex joins community k when ``pi[v, k] >= threshold``; every vertex
    additionally joins its argmax community so no vertex is orphaned.
    Communities smaller than ``min_size`` are dropped.
    """
    if pi.ndim != 2:
        raise ValueError("pi must be (N, K)")
    n, k = pi.shape
    member = pi >= threshold
    member[np.arange(n), pi.argmax(axis=1)] = True
    covers = [np.flatnonzero(member[:, j]).astype(np.int64) for j in range(k)]
    return [c for c in covers if c.size >= min_size]


def _f1(pred: np.ndarray, true: np.ndarray) -> float:
    inter = np.intersect1d(pred, true, assume_unique=True).size
    if inter == 0:
        return 0.0
    precision = inter / pred.size
    recall = inter / true.size
    return 2 * precision * recall / (precision + recall)


def best_match_f1(pred: Cover, true: Cover) -> float:
    """Symmetric average best-match F1 between two covers (in [0, 1])."""
    if not pred or not true:
        return 0.0
    pred = [np.unique(c) for c in pred]
    true = [np.unique(c) for c in true]
    f1_matrix = np.array([[_f1(p, t) for t in true] for p in pred])
    forward = f1_matrix.max(axis=1).mean()
    backward = f1_matrix.max(axis=0).mean()
    return 0.5 * (forward + backward)


def _h(p: float) -> float:
    """Entropy contribution -p*log2(p), with h(0) = 0."""
    return 0.0 if p <= 0 else float(-p * np.log2(p))


def overlapping_nmi(pred: Cover, true: Cover, n_vertices: int) -> float:
    """LFK normalized mutual information between covers (in [0, 1]).

    Implements the measure of Lancichinetti, Fortunato & Kertesz (2009):
    each community is a binary vertex indicator; the conditional entropy
    H(X_k | Y_l) is minimized over l subject to the LFK validity constraint,
    normalized by H(X_k), and averaged; the measure is symmetrized.
    Returns 1.0 for identical covers and ~0 for independent ones.
    """
    if not pred or not true:
        return 0.0
    x = _indicator(pred, n_vertices)
    y = _indicator(true, n_vertices)
    return 1.0 - 0.5 * (_lfk_cond(x, y) + _lfk_cond(y, x))


def _indicator(cover: Cover, n: int) -> np.ndarray:
    mat = np.zeros((len(cover), n), dtype=bool)
    for i, c in enumerate(cover):
        mat[i, np.asarray(c, dtype=np.int64)] = True
    return mat


def _lfk_cond(x: np.ndarray, y: np.ndarray) -> float:
    """Average normalized conditional entropy H(X|Y)/H(X), LFK-corrected."""
    n = x.shape[1]
    total = 0.0
    count = 0
    for k in range(x.shape[0]):
        xk = x[k]
        px1 = float(xk.mean())
        hx = _h(px1) + _h(1 - px1)
        if hx <= 0:
            continue  # degenerate community (all or none); skip
        best = hx  # worst case: no information
        for l in range(y.shape[0]):
            yl = y[l]
            # Joint distribution of the two indicators.
            p11 = float(np.logical_and(xk, yl).mean())
            p10 = float(np.logical_and(xk, ~yl).mean())
            p01 = float(np.logical_and(~xk, yl).mean())
            p00 = float(np.logical_and(~xk, ~yl).mean())
            h11, h10, h01, h00 = _h(p11), _h(p10), _h(p01), _h(p00)
            # LFK validity: only accept l if the "aligned" terms dominate,
            # otherwise complementary labelings would look informative.
            if h11 + h00 < h01 + h10:
                continue
            py1 = float(yl.mean())
            hy = _h(py1) + _h(1 - py1)
            h_cond = (h11 + h10 + h01 + h00) - hy
            best = min(best, h_cond)
        total += best / hx
        count += 1
    return total / count if count else 1.0


def conductance(graph, community: np.ndarray) -> float:
    """Conductance of a vertex set: cut edges / min(vol, vol_complement).

    Lower is better; dense well-separated communities score near 0.
    """
    community = np.unique(np.asarray(community, dtype=np.int64))
    if community.size == 0 or community.size == graph.n_vertices:
        return 1.0
    inside = np.zeros(graph.n_vertices, dtype=bool)
    inside[community] = True
    degrees = graph.degrees
    vol = int(degrees[community].sum())
    vol_comp = int(degrees.sum()) - vol
    cut = 0
    for v in community:
        nbrs = graph.neighbors(int(v))
        cut += int((~inside[nbrs]).sum())
    denom = min(vol, vol_comp)
    return cut / denom if denom > 0 else 1.0
