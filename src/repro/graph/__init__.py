"""Graph substrate: compact graphs, IO, splits, generators, metrics.

The paper evaluates on six SNAP graphs (Table II). This environment has no
network access, so :mod:`repro.graph.datasets` provides deterministic
synthetic stand-ins generated from the a-MMSB generative model itself, with
the full-scale shapes (N, \\|E\\|, #ground-truth communities) kept in a
registry for the analytic scaling experiments.
"""

from repro.graph.graph import Graph, edge_key, edge_keys
from repro.graph.split import HeldoutSplit, split_heldout
from repro.graph.generators import (
    GroundTruth,
    generate_ammsb_graph,
    planted_overlapping_graph,
)
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset

__all__ = [
    "Graph",
    "edge_key",
    "edge_keys",
    "HeldoutSplit",
    "split_heldout",
    "GroundTruth",
    "generate_ammsb_graph",
    "planted_overlapping_graph",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
]
