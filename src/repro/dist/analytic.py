"""Closed-form iteration timing at full paper scale.

The functional distributed engine executes every kernel, which is
impossible at com-Friendster scale in this environment (pi alone would be
3 TB at K = 12288). The scaling figures, however, depend only on the
workload *shape* — N, |E|, K, M, n, C, |E_h| — so this module evaluates
the calibrated :class:`~repro.cluster.costmodel.CostModel` directly on
Table II's full-scale numbers. The functional engine and this analytic
mode share the same cost model; tests cross-validate them on shapes small
enough to run both.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.costmodel import CostModel, SingleNodeModel, StageTimes, WorkloadShape
from repro.cluster.spec import ClusterSpec, MachineSpec, das5
from repro.graph.datasets import DATASETS


def dataset_shape(
    name: str,
    n_communities: int,
    mini_batch_vertices: int = 16384,
    neighbor_sample_size: int = 32,
    heldout_fraction: float = 0.01,
    perplexity_interval: int = 144,
) -> WorkloadShape:
    """Build a full-scale WorkloadShape from a Table II dataset.

    ``heldout_fraction`` follows the convention of the split module: that
    fraction of links, plus the same number of non-links.
    """
    spec = DATASETS[name]
    return WorkloadShape(
        n_vertices=spec.n_vertices,
        n_edges=spec.n_edges,
        n_communities=n_communities,
        mini_batch_vertices=mini_batch_vertices,
        neighbor_sample_size=neighbor_sample_size,
        heldout_pairs=int(2 * heldout_fraction * spec.n_edges),
        perplexity_interval=perplexity_interval,
    )


def analytic_iteration(
    shape: WorkloadShape,
    cluster: Optional[ClusterSpec] = None,
    n_workers: int = 64,
    pipelined: bool = True,
) -> StageTimes:
    """Stage breakdown of one iteration at the given scale."""
    cluster = cluster or das5(n_workers)
    if not cluster.fits_in_memory(shape.n_vertices, shape.n_communities):
        raise MemoryError(
            f"pi ({cluster.pi_storage_bytes(shape.n_vertices, shape.n_communities) / 2**30:.0f} GiB)"
            f" does not fit in {cluster.n_workers} workers' collective memory;"
            f" need >= {cluster.min_workers(shape.n_vertices, shape.n_communities)} workers"
        )
    return CostModel(cluster).iteration(shape, pipelined=pipelined)


def analytic_single_node(
    shape: WorkloadShape,
    machine: MachineSpec,
    threads: Optional[int] = None,
) -> StageTimes:
    """Vertical-scaling comparator: one shared-memory machine (Fig 4)."""
    needed = shape.n_vertices * (shape.n_communities + 1) * 4
    if needed > machine.memory_bytes * 0.9:
        raise MemoryError(
            f"pi needs {needed / 2**30:.0f} GiB but {machine.name}"
            f" has {machine.memory_bytes / 2**30:.0f} GiB"
        )
    return SingleNodeModel(machine, threads or machine.cores).iteration(shape)


def strong_scaling(
    shape: WorkloadShape,
    worker_counts: list[int],
    n_iterations: int = 2048,
    pipelined: bool = True,
) -> list[dict[str, float]]:
    """Figure 1 sweep: total + per-phase cumulative time vs cluster size."""
    rows = []
    for c in worker_counts:
        t = analytic_iteration(shape, cluster=das5(c), pipelined=pipelined)
        rows.append(
            {
                "workers": c,
                "total_s": t.total * n_iterations,
                "update_phi_pi_s": (t.update_phi + t.update_pi) * n_iterations,
                "minibatch_deploy_s": t.draw_deploy * n_iterations,
                "update_beta_theta_s": t.update_beta_theta * n_iterations,
                "perplexity_s": t.perplexity_amortized * n_iterations,
            }
        )
    base = rows[0]["total_s"]
    for r in rows:
        r["speedup"] = base / r["total_s"]
    return rows


def weak_scaling(
    base_shape: WorkloadShape,
    worker_counts: list[int],
    communities_per_worker: int,
    pipelined: bool = True,
) -> list[dict[str, float]]:
    """Figure 2 sweep: K grows proportionally with the cluster size."""
    rows = []
    for c in worker_counts:
        shape = WorkloadShape(
            n_vertices=base_shape.n_vertices,
            n_edges=base_shape.n_edges,
            n_communities=communities_per_worker * c,
            mini_batch_vertices=base_shape.mini_batch_vertices,
            neighbor_sample_size=base_shape.neighbor_sample_size,
            heldout_pairs=base_shape.heldout_pairs,
            perplexity_interval=base_shape.perplexity_interval,
        )
        t = analytic_iteration(shape, cluster=das5(c), pipelined=pipelined)
        rows.append(
            {
                "workers": c,
                "communities": shape.n_communities,
                "seconds_per_iteration": t.total,
            }
        )
    return rows
