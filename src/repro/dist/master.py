"""Master rank: owns E, draws mini-batches, partitions work.

The master is rank 0. It is the only rank holding the full edge set (13.5
GB for com-Friendster in the paper — too large to replicate), the
mini-batch sampler state, and the authoritative copy of theta. In the
pipelined configuration the master prepares iteration ``t+1``'s mini-batch
while the workers compute iteration ``t``'s update_phi (Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import AMMSBConfig
from repro.core.minibatch import Minibatch, MinibatchSampler
from repro.dist.partition import WorkerShard, partition_minibatch
from repro.graph.graph import Graph


@dataclass
class MasterDraw:
    """A prepared mini-batch with its per-worker shards."""

    minibatch: Minibatch
    shards: list[WorkerShard]

    def scatter_payload_bytes(self) -> int:
        return sum(s.payload_bytes() for s in self.shards)


class MasterContext:
    """State and behaviour of rank 0.

    Args:
        graph: the full training graph (master-only).
        config: shared configuration.
        n_workers: worker count.
        heldout_keys: sorted canonical keys of held-out pairs.
    """

    def __init__(
        self,
        graph: Graph,
        config: AMMSBConfig,
        n_workers: int,
        heldout_keys: Optional[np.ndarray] = None,
        ship_adjacency: bool = True,
    ) -> None:
        self.graph = graph
        self.config = config
        self.n_workers = n_workers
        # False when workers hold a shared mapped graph (dist.mp
        # graph_path mode): shards then carry no adjacency slices.
        self.ship_adjacency = ship_adjacency
        self.rng = np.random.default_rng(config.seed)
        self.theta_noise_rng = np.random.default_rng(config.seed + 7)
        self.minibatch_sampler = MinibatchSampler(graph, config, heldout_keys=heldout_keys)
        self._prefetched: Optional[MasterDraw] = None

    def draw(self, minibatch: Optional[Minibatch] = None) -> MasterDraw:
        """Draw (or accept an injected) mini-batch and build shards."""
        if minibatch is None:
            minibatch = self.minibatch_sampler.sample(self.rng)
        shards = partition_minibatch(
            self.graph, minibatch, self.n_workers, with_adjacency=self.ship_adjacency
        )
        return MasterDraw(minibatch=minibatch, shards=shards)

    def next_draw(self, minibatch: Optional[Minibatch] = None) -> MasterDraw:
        """Return the prefetched draw if present, else draw now.

        The pipelined runtime calls :meth:`prefetch` during update_phi of
        the previous iteration; the non-pipelined runtime never prefetches,
        so this degrades to a synchronous draw.
        """
        if minibatch is not None:
            # Injected mini-batches (replay/testing) bypass the prefetch.
            self._prefetched = None
            return self.draw(minibatch)
        if self._prefetched is not None:
            out, self._prefetched = self._prefetched, None
            return out
        return self.draw()

    def prefetch(self) -> None:
        """Prepare the next iteration's draw (overlapped with update_phi)."""
        if self._prefetched is None:
            self._prefetched = self.draw()

    def theta_noise(self, shape: tuple[int, ...]) -> np.ndarray:
        """Deterministic master-side noise stream for the theta update."""
        return self.theta_noise_rng.standard_normal(shape)
