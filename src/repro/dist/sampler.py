"""Distributed BSP orchestration of SG-MCMC with simulated timing.

One :class:`DistributedAMMSBSampler` iteration executes the paper's stage
sequence (Section III-C):

1. **draw/deploy** — the master draws the mini-batch and scatters, per
   worker, its vertices + adjacency slice + strata (in the pipelined
   configuration this was prefetched during the previous update_phi);
2. **sample neighbors** — each worker draws V_n for its vertices;
3. **update_phi** — each worker batch-reads the pi rows it needs from the
   DKV store and runs the phi kernel; *barrier*;
4. **update_pi** — workers write the new ``[pi | phi_sum]`` rows; *barrier*;
5. **update_beta/theta** — workers compute h-scaled theta-gradient
   partials from DKV-fresh pi; MPI reduce; master updates theta and
   broadcasts beta;
6. periodically, **perplexity** over the statically partitioned E_h.

Every stage really executes (the result is a valid SG-MCMC run, validated
against the sequential reference), while a simulated clock charges each
stage from the calibrated :class:`~repro.cluster.costmodel.CostModel`
using the *actual* traffic and op counts of the run; stage time is the
max over workers (BSP barrier semantics). Pipelining changes only the
clock composition, exactly as in Section III-D.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.config import AMMSBConfig
from repro.cluster.comm import Communicator
from repro.cluster.costmodel import CostModel, StageTimes
from repro.cluster.dkv import DKVStore, DKVTraffic
from repro.cluster.spec import ClusterSpec, das5
from repro.faults import FaultPlan
from repro.core.minibatch import Minibatch, NeighborSample
from repro.core.state import ModelState, init_state
from repro.dist.master import MasterContext
from repro.dist.worker import WorkerContext
from repro.dist.partition import partition_heldout
from repro.graph.graph import Graph, edge_keys
from repro.graph.split import HeldoutSplit

#: DKV client id used by the master (it is not a DKV server, so every
#: master read is remote — matching the paper's master/worker split).
MASTER_CLIENT = -1


@dataclass
class DistributedTiming:
    """Simulated-clock record of a run."""

    per_iteration: list[StageTimes] = field(default_factory=list)
    perplexity_passes: list[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(t.total for t in self.per_iteration) + sum(self.perplexity_passes)

    def mean_stage_times(self) -> dict[str, float]:
        """Average per-iteration breakdown (seconds)."""
        if not self.per_iteration:
            return {}
        keys = self.per_iteration[0].as_dict().keys()
        n = len(self.per_iteration)
        return {
            k: sum(t.as_dict()[k] for t in self.per_iteration) / n for k in keys
        }


class DistributedAMMSBSampler:
    """Master-worker distributed SG-MCMC for a-MMSB.

    Args:
        graph: training graph (conceptually master-only).
        config: shared configuration.
        cluster: cluster spec (worker count, machine, network). Defaults
            to 4 DAS5 workers.
        heldout: optional held-out split, statically partitioned across
            all ranks for distributed perplexity.
        pipelined: enable the double-buffering/prefetch pipeline of
            Section III-D (changes the simulated clock, and the master
            genuinely prefetches the next mini-batch).
        state: optional initial state (random otherwise).
        faults: optional :class:`~repro.faults.FaultPlan`. DKV server
            stalls degrade into retries / circuit-broken stale pi reads
            (real staleness in the numerics, extra simulated seconds in
            the clock); worker stalls are charged as straggler time at
            barriers; a stall past ``comm_timeout`` raises
            :class:`~repro.faults.CommTimeout` instead of hanging. An
            empty plan is bit-identical to ``faults=None``.
        comm_timeout: collective deadline in simulated seconds (armed
            only when a fault plan is present).
    """

    def __init__(
        self,
        graph: Graph,
        config: AMMSBConfig,
        cluster: Optional[ClusterSpec] = None,
        heldout: Optional[HeldoutSplit] = None,
        pipelined: bool = True,
        state: Optional[ModelState] = None,
        faults: Optional[FaultPlan] = None,
        comm_timeout: Optional[float] = 60.0,
    ) -> None:
        self.graph = graph
        self.config = config
        self.cluster = cluster or das5(4)
        self.pipelined = pipelined
        self.cost = CostModel(self.cluster)
        self.faults = None if faults is None or faults.empty else faults
        n_workers = self.cluster.n_workers
        self.comm = Communicator(
            n_workers + 1,
            faults=self.faults,
            timeout=comm_timeout if self.faults is not None else None,
        )

        heldout_keys = None
        self._heldout = heldout
        if heldout is not None:
            heldout_keys = np.sort(edge_keys(heldout.heldout_pairs, graph.n_vertices))
        self.master = MasterContext(graph, config, n_workers, heldout_keys)

        k = config.n_communities
        self.dkv = DKVStore(
            graph.n_vertices,
            k + 1,
            n_workers,
            dtype=np.dtype(config.dtype),
            faults=self.faults,
        )
        init = state if state is not None else init_state(graph.n_vertices, config, self.master.rng)
        self.dkv.populate(np.concatenate([init.pi, init.phi_sum[:, None]], axis=1))
        self.theta = init.theta.copy()

        self.workers = [
            WorkerContext(w, config, graph.n_vertices, self.dkv, heldout_keys)
            for w in range(n_workers)
        ]

        # Static E_h partition over all ranks (master participates too).
        self._heldout_parts: list[tuple[np.ndarray, np.ndarray]] = []
        self._prob_sums: list[np.ndarray] = []
        self._prob_count = 0
        if heldout is not None:
            self._heldout_parts = partition_heldout(
                heldout.heldout_pairs, heldout.heldout_labels, n_workers + 1
            )
            self._prob_sums = [np.zeros(len(p)) for p, _ in self._heldout_parts]

        self.iteration = 0
        self.timing = DistributedTiming()

    # -- derived views ----------------------------------------------------------

    @property
    def beta(self) -> np.ndarray:
        return self.theta[:, 1] / self.theta.sum(axis=1)

    def state_snapshot(self) -> ModelState:
        """Gather the distributed state into a local ModelState (for
        metrics/tests; the paper would checkpoint the same way)."""
        values = self.dkv.snapshot()
        return ModelState(
            pi=values[:, :-1].copy(), phi_sum=values[:, -1].copy(), theta=self.theta.copy()
        )

    # -- timing helpers -----------------------------------------------------------

    def _read_time(self, traffic: DKVTraffic) -> float:
        """Simulated time of one worker's synchronous batched DKV reads."""
        c = self.cost
        local_bytes = traffic.bytes_total - traffic.bytes_remote
        t = traffic.n_requests * c.c_dkv_request
        t += traffic.bytes_remote / c.dkv_read_bw_loaded
        t += local_bytes / (self.cluster.machine.memory_bandwidth * 0.5)
        return t

    def _write_time(self, traffic: DKVTraffic) -> float:
        c = self.cost
        local_bytes = traffic.bytes_total - traffic.bytes_remote
        t = traffic.n_requests * c.c_dkv_request
        t += traffic.bytes_remote / self.cluster.network.bandwidth
        t += local_bytes / (self.cluster.machine.memory_bandwidth * 0.5)
        return t

    # -- one iteration --------------------------------------------------------------

    def step(
        self,
        minibatch: Optional[Minibatch] = None,
        neighbor_samples: Optional[list[NeighborSample]] = None,
        phi_noise: Optional[np.ndarray] = None,
        theta_noise: Optional[np.ndarray] = None,
    ) -> StageTimes:
        """Run one distributed iteration.

        The optional arguments inject a fixed mini-batch / neighbor sets /
        noise for replay against the sequential reference (used by the
        equivalence tests); in normal operation they are all drawn
        internally.
        """
        cfg = self.config
        cost = self.cost
        n_workers = self.cluster.n_workers
        t = StageTimes()
        # Fault windows are indexed by iteration; advance the DKV clock.
        if self.faults is not None:
            self.dkv.set_iteration(self.iteration)

        # -- stage 1: draw + deploy (master) --------------------------------
        draw = self.master.next_draw(minibatch)
        shards = self.comm.scatter([None] + list(draw.shards))[1:]
        payload = draw.scatter_payload_bytes()
        t.draw_deploy = (
            draw.minibatch.n_vertices * cost.c_draw_per_vertex
            + payload / self.cluster.network.bandwidth
            + self.cluster.network.latency
        )

        # -- stage 2+3: neighbor sampling + update_phi (workers) ------------
        eps_phi = cfg.step_phi.at(self.iteration)
        beta = self.beta
        results = []
        t_sample = t_load = t_comp = 0.0
        vertex_order = draw.minibatch.vertices
        for w, worker in enumerate(self.workers):
            shard = shards[w]
            if neighbor_samples is not None:
                ns = neighbor_samples[w]
            else:
                ns = worker.sample_neighbors(shard)
            noise_w = None
            if phi_noise is not None:
                # phi_noise rows follow minibatch.vertices order; shard w
                # holds vertices [w::n_workers] of that order.
                noise_w = phi_noise[w::n_workers]
            res = worker.update_phi_pi(shard, ns, beta, eps_phi, noise=noise_w)
            results.append(res)
            t_sample = max(t_sample, shard.vertices.size * cfg.neighbor_sample_size * cost.c_neighbor_draw)
            t_load = max(t_load, self._read_time(res.read_traffic))
            t_comp = max(t_comp, res.ops_phi / cost.node_kernel_rate())
        t.sample_neighbors = t_sample
        t.load_pi = t_load + self.dkv.fault_stats.drain_delay()
        t.update_phi_compute = t_comp
        straggler_lag = self.comm.barrier(iteration=self.iteration)

        # Pipelined: the master prepares the *next* mini-batch while the
        # workers are inside update_phi (this really happens — the next
        # step() consumes the prefetched draw).
        if self.pipelined and minibatch is None:
            self.master.prefetch()

        # -- stage 4: update_pi (write-back) ---------------------------------
        t_pi = 0.0
        for worker, res in zip(self.workers, results):
            traffic = worker.write_pi(res)
            t_pi = max(
                t_pi,
                res.ops_pi / cost.node_kernel_rate() + self._write_time(traffic),
            )
        t.update_pi = t_pi + self.dkv.fault_stats.drain_delay()
        self.comm.barrier(iteration=self.iteration)

        # -- stage 5: update_beta/theta ---------------------------------------
        partials = []
        t_beta_work = 0.0
        for w, worker in enumerate(self.workers):
            grad, traffic, ops = worker.theta_partial(shards[w], self.theta)
            partials.append(grad)
            t_beta_work = max(
                t_beta_work,
                ops * cost.c_beta_element + self._read_time(traffic),
            )
        t_beta_work += self.dkv.fault_stats.drain_delay()
        grad_total = self.comm.reduce(
            [np.zeros_like(self.theta)] + partials, iteration=self.iteration
        )
        if theta_noise is None:
            theta_noise = self.master.theta_noise(self.theta.shape)
        from repro.core import gradients

        self.theta = gradients.update_theta(
            self.theta,
            grad_total,
            eps_t=cfg.step_theta.at(self.iteration),
            eta=cfg.eta,
            scale=1.0,
            noise=theta_noise,
        )
        self.comm.bcast(self.beta)
        import math as _math

        theta_bytes = self.theta.nbytes
        steps = max(1, _math.ceil(_math.log2(self.cluster.n_nodes)))
        t.update_beta_theta = (
            t_beta_work
            + cost.tree_collective_time(theta_bytes)
            + steps * cost.reduce_straggler_per_step
            + cfg.n_communities / cost.node_kernel_rate(threads=1)
            + cost.tree_collective_time(cfg.n_communities * 8)
        )
        # BSP semantics: an injected straggler delays every barrier party.
        t.barriers = 2 * cost.barrier_time() + straggler_lag

        # -- clock composition (Section III-D) ---------------------------------
        if self.pipelined:
            parts = (t.load_pi, t.update_phi_compute, t.draw_deploy)
            residual = (t.load_pi + t.update_phi_compute) / cost.pipeline_chunks
            t.update_phi = max(parts) + residual
            t.update_beta_theta += cost.beta_load_interference * t.load_pi
            t.total = (
                t.sample_neighbors
                + t.update_phi
                + t.update_pi
                + t.update_beta_theta
                + t.barriers
            )
        else:
            t.update_phi = t.load_pi + t.update_phi_compute
            t.total = (
                t.draw_deploy
                + t.sample_neighbors
                + t.update_phi
                + t.update_pi
                + t.update_beta_theta
                + t.barriers
            )

        self.iteration += 1
        self.timing.per_iteration.append(t)
        return t

    # -- perplexity --------------------------------------------------------------

    def evaluate_perplexity(self) -> float:
        """One distributed perplexity pass (Eqn 7, sample-averaged).

        Each rank evaluates its static E_h slice against DKV-fresh pi,
        accumulates into its local running probability sums, and the
        log-average is reduced to the master.
        """
        if not self._heldout_parts:
            raise RuntimeError("no held-out split was provided")
        beta = self.beta
        t_pass = 0.0
        # Master's slice: read through the DKV as a pure client.
        log_sum = 0.0
        count = 0
        self._prob_count += 1
        for rank, (pairs, labels) in enumerate(self._heldout_parts):
            if rank == 0:
                if len(pairs):
                    values, traffic = self.dkv.read_batch(MASTER_CLIENT, pairs.reshape(-1))
                    from repro.core.perplexity import link_probability

                    pi_pairs = values[:, :-1].reshape(len(pairs), 2, self.config.n_communities)
                    p1 = link_probability(pi_pairs[:, 0], pi_pairs[:, 1], beta, self.config.delta)
                    probs = np.where(labels, p1, 1.0 - p1)
                else:
                    probs, traffic = np.zeros(0), DKVTraffic()
            else:
                probs, traffic = self.workers[rank - 1].perplexity_partial(pairs, labels, beta)
            self._prob_sums[rank] += probs
            avg = self._prob_sums[rank] / self._prob_count
            log_sum += float(np.log(np.maximum(avg, 1e-12)).sum())
            count += len(pairs)
            compute = len(pairs) * self.config.n_communities / self.cost.node_kernel_rate()
            load = (
                traffic.n_requests * self.cost.c_dkv_request
                + traffic.bytes_remote / self.cluster.network.bandwidth
            )
            t_pass = max(t_pass, compute + load)
        reduced = self.comm.reduce([np.array([log_sum, count])] + [np.zeros(2)] * self.cluster.n_workers)
        t_pass += self.cost.tree_collective_time(16)
        t_pass += self.dkv.fault_stats.drain_delay()
        self.timing.perplexity_passes.append(t_pass)
        return float(np.exp(-reduced[0] / max(reduced[1], 1)))

    # -- driver -------------------------------------------------------------------

    def run(self, n_iterations: int, perplexity_every: int = 0) -> list[StageTimes]:
        """Run iterations; optionally evaluate perplexity periodically.

        Returns the per-iteration simulated stage times.
        """
        out = []
        for _ in range(n_iterations):
            out.append(self.step())
            if (
                perplexity_every
                and self._heldout_parts
                and self.iteration % perplexity_every == 0
            ):
                self.evaluate_perplexity()
        return out

    def last_perplexity(self) -> float:
        """Recompute the current averaged perplexity without a new sample."""
        if not self._heldout_parts or self._prob_count == 0:
            return float("inf")
        log_sum = 0.0
        count = 0
        for rank, (pairs, _labels) in enumerate(self._heldout_parts):
            avg = self._prob_sums[rank] / self._prob_count
            log_sum += float(np.log(np.maximum(avg, 1e-12)).sum())
            count += len(pairs)
        return float(np.exp(-log_sum / max(count, 1)))
