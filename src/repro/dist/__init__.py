"""Distributed master-worker SG-MCMC engine (the paper's contribution).

- :mod:`repro.dist.partition` — mini-batch and vertex partitioning plus
  the adjacency-slice machinery the master scatters with the mini-batch;
- :mod:`repro.dist.master` — master rank: draws mini-batches, partitions
  them, owns the full edge set E;
- :mod:`repro.dist.worker` — worker rank: neighbor sampling, update_phi /
  update_pi against the DKV store, theta-gradient partials, perplexity
  partials;
- :mod:`repro.dist.sampler` — the BSP orchestration with per-stage
  simulated timing (functional mode);
- :mod:`repro.dist.analytic` — closed-form iteration timing at full paper
  scale (no kernel execution), driving the scaling figures.
"""

from repro.dist.sampler import DistributedAMMSBSampler, DistributedTiming
from repro.dist.analytic import analytic_iteration, dataset_shape
from repro.dist.mp import MultiprocessAMMSBSampler

__all__ = [
    "DistributedAMMSBSampler",
    "DistributedTiming",
    "MultiprocessAMMSBSampler",
    "analytic_iteration",
    "dataset_shape",
]
