"""Real multi-process distributed execution with failure recovery.

The in-process :class:`~repro.dist.sampler.DistributedAMMSBSampler`
executes ranks sequentially (with a simulated clock). This module runs
the same master-worker protocol across **operating-system processes**:

- the global ``[pi | phi_sum]`` table lives in POSIX shared memory (the
  shared-memory analogue of the RDMA DKV store — every worker maps the
  same pages);
- the master (the parent process) draws mini-batches and ships each
  worker its shard (vertices, adjacency slice, strata) over a pipe —
  exactly the scatter of Section III-A;
- workers run the *same kernels* and the *same per-worker RNG streams*
  as the in-process engine, so the two backends produce bit-identical
  states (tested in ``tests/test_mp_backend.py``);
- the stage protocol preserves the paper's hazard discipline: phi is
  computed from a consistent snapshot, then written back only after a
  barrier (compute-ack round trip), then theta partials are reduced.

This is genuine parallelism (one process per worker, no GIL sharing);
on a multi-core host the phi stage scales with worker count.

Failure model (see DESIGN.md "Failure model & degradation"): every
result collection carries a poll deadline, so a dead or wedged worker
can never hang the master. A worker whose process exits (detected via
``Process.exitcode``) — or that stays silent past ``heartbeat_timeout``
and is fenced by termination — is removed from the active set, its
shard is re-partitioned across the survivors, and the interrupted
iteration is retried. A mid-iteration loss is safe for SG-MCMC: phi
writes target disjoint rows, so a partially applied iteration is just
one extra stochastic step; correctness degrades to staleness, never to
corruption. Opt-in auto-checkpointing (``checkpoint_path`` +
``checkpoint_every``) reuses :mod:`repro.core.checkpoint`'s atomic
writer so a master crash can resume from the last durable state.
Every command/result carries a sequence number; results from an aborted
round are recognized and dropped, so recovery never mis-attributes a
straggler's answer.

:class:`~repro.faults.FaultPlan` injection (worker crashes via
``os._exit``, stalls via ``time.sleep``) exercises exactly these paths
in the chaos tests.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import select
import struct
import time
from multiprocessing import connection as mp_connection
from multiprocessing.reduction import ForkingPickler
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.config import AMMSBConfig
from repro.core import gradients, kernels
from repro.core.minibatch import NeighborSample, concat_strata
from repro.core.state import ModelState, init_state
from repro.dist.master import MasterContext
from repro.dist.partition import WorkerShard
from repro.faults import FaultPlan, WorkerCrashed
from repro.graph.graph import Graph, edge_keys
from repro.graph.split import HeldoutSplit


@dataclass
class _PhiResult:
    vertices: np.ndarray
    new_values: np.ndarray


@dataclass(frozen=True)
class RecoveryEvent:
    """One healed failure: which workers were lost and when."""

    iteration: int
    workers: tuple[int, ...]
    stalled: bool


def _worker_loop(
    worker_id: int,
    shm_name: str,
    table_shape: tuple[int, int],
    dtype_str: str,
    config: AMMSBConfig,
    n_vertices: int,
    heldout_keys: Optional[np.ndarray],
    faults: Optional[FaultPlan],
    pipes: list,
    graph_path: Optional[str] = None,
) -> None:
    """Worker process: command loop over the shared pi table.

    Every result message is ``(tag, worker_id, seq, key, payload)`` where
    ``seq`` echoes the command's sequence number — the master uses it to
    drop stragglers from rounds aborted by a failure. ``res_send`` is
    this worker's PRIVATE result pipe: a worker that dies mid-send can
    corrupt only its own channel, never wedge a peer (a shared queue's
    write lock would be abandoned by an abrupt ``os._exit`` and block
    every survivor — exactly the failure the chaos tests inject).

    ``pipes`` is the full pipe table, one ``(cmd_recv, cmd_send,
    res_recv, res_send)`` tuple per worker. Forked children inherit
    EVERY end, so the first thing a worker does is close everything
    that is not its own ``cmd_recv``/``res_send``. Without this
    hygiene, pipe EOF semantics are fiction: a worker killed mid-send
    (SIGKILL, OOM) leaves its result pipe held open by siblings and by
    the master's own inherited write end, so the partial message never
    terminates in EOF and the master blocks forever in ``recv()``; the
    master closing its pipe ends at shutdown likewise never surfaces as
    ``BrokenPipeError``/``EOFError`` here.

    ``graph_path`` (a CSR container from ``repro convert-graph``) turns
    on shared-graph mode: the worker memory-maps the full graph
    read-only — every worker process shares ONE physical copy through
    the page cache — and answers ``y_ab`` from it directly, so shards
    arrive without adjacency slices.
    """
    cmd_recv, _, _, res_send = pipes[worker_id]
    for i, (cr, cs, rr, rs) in enumerate(pipes):
        cs.close()
        rr.close()
        if i != worker_id:
            cr.close()
            rs.close()
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        mapped_graph: Optional[Graph] = None
        if graph_path is not None:
            from repro.graph.io import load_csr

            mapped_graph = load_csr(graph_path, provider="mmap")
        def send_result(msg) -> None:
            try:
                res_send.send(msg)
            except (BrokenPipeError, OSError):
                # Master closed its end (shutdown) or died: no reader
                # left, nothing useful to do in this process.
                os._exit(0)

        table = np.ndarray(table_shape, dtype=np.dtype(dtype_str), buffer=shm.buf)
        # Same streams as WorkerContext, so backends agree bit-for-bit.
        rng = np.random.default_rng(config.seed + 1009 * (worker_id + 1))
        noise_rng = np.random.default_rng(config.seed + 2003 * (worker_id + 1))
        backend = kernels.resolve_backend(config.kernel_backend)
        if backend.name != config.kernel_backend:
            config = config.with_updates(kernel_backend=backend.name)
        backend.warmup()
        workspace = kernels.KernelWorkspace()
        hk = (
            np.sort(np.asarray(heldout_keys, dtype=np.int64))
            if heldout_keys is not None and len(heldout_keys)
            else np.zeros(0, dtype=np.int64)
        )
        k = config.n_communities
        pending: Optional[_PhiResult] = None
        shard: Optional[WorkerShard] = None

        def in_heldout(keys: np.ndarray) -> np.ndarray:
            if not hk.size or not keys.size:
                return np.zeros(keys.shape, dtype=bool)
            idx = np.minimum(np.searchsorted(hk, keys), hk.size - 1)
            return hk[idx] == keys

        def sample_neighbors(sh: WorkerShard) -> NeighborSample:
            vs = sh.vertices
            m = vs.size
            n_sample = config.neighbor_sample_size
            neighbors = rng.integers(0, n_vertices, size=(m, n_sample))
            mask = neighbors != vs[:, None]
            lo = np.minimum(vs[:, None], neighbors)
            hi = np.maximum(vs[:, None], neighbors)
            mask &= ~in_heldout(lo * np.int64(n_vertices) + hi)
            if sh.adjacency is not None:
                labels = sh.adjacency.links_against(neighbors) & mask
            else:
                # Shared-graph mode: the adjacency never left the master;
                # test linkedness against the mapped CSR. Identical
                # semantics to links_against (self-pairs test False).
                pairs = np.column_stack(
                    [np.repeat(vs, neighbors.shape[1]), neighbors.reshape(-1)]
                )
                labels = mapped_graph.has_edges(pairs).reshape(neighbors.shape) & mask
            empty = ~mask.any(axis=1)
            if np.any(empty):
                rows = np.flatnonzero(empty)
                repl = (vs[rows] + 1) % n_vertices
                neighbors[rows, 0] = repl
                mask[rows, 0] = repl != vs[rows]
                labels[rows, 0] = False
            return NeighborSample(neighbors=neighbors, labels=labels, mask=mask)

        while True:
            try:
                cmd = cmd_recv.recv()
            except (EOFError, OSError):
                # Master closed its end (prompt shutdown) or died —
                # possibly mid-frame, which surfaces as OSError rather
                # than EOFError; either way there is no more work.
                break
            op = cmd[0]
            if op == "stop":
                break
            seq = cmd[1]
            if op == "phi_compute":
                _, _, shard, beta, eps_t, iteration = cmd
                if faults is not None:
                    # Injected process faults for the chaos tests: a crash
                    # is an abrupt death (no cleanup, like a real SIGKILL
                    # or OOM); a stall is a wedged worker.
                    stall = faults.worker_stall_seconds(worker_id, iteration)
                    if stall > 0:
                        time.sleep(stall)
                    if faults.crash_due(worker_id, iteration):
                        os._exit(23)
                vs = shard.vertices
                if vs.size == 0:
                    pending = _PhiResult(vs, np.zeros((0, k + 1)))
                    send_result(("phi_done", worker_id, seq, worker_id, None))
                    continue
                ns = sample_neighbors(shard)
                all_keys = np.concatenate([vs, ns.neighbors.reshape(-1)])
                values = table[all_keys]
                pi_a = values[: vs.size, :-1]
                phi_sum_a = values[: vs.size, -1]
                pi_b = values[vs.size:, :-1].reshape(vs.size, -1, k)
                grad = backend.phi_gradient_sum(
                    pi_a, phi_sum_a, pi_b, ns.labels, beta, config.delta,
                    mask=ns.mask, workspace=workspace,
                )
                counts = np.maximum(ns.counts, 1)
                noise = noise_rng.standard_normal(pi_a.shape)
                new_phi = backend.update_phi(
                    pi_a * phi_sum_a[:, None],
                    grad,
                    eps_t=eps_t,
                    alpha=config.effective_alpha,
                    scale=n_vertices / counts,
                    noise=noise,
                    phi_floor=config.phi_floor,
                    phi_clip=config.phi_clip,
                    workspace=workspace,
                )
                sums = new_phi.sum(axis=1)
                pending = _PhiResult(
                    vs,
                    np.concatenate([new_phi / sums[:, None], sums[:, None]], axis=1),
                )
                send_result(("phi_done", worker_id, seq, worker_id, None))
            elif op == "pi_write":
                assert pending is not None
                if pending.vertices.size:
                    table[pending.vertices] = pending.new_values
                send_result(("write_done", worker_id, seq, worker_id, None))
            elif op == "theta_partial":
                _, _, theta = cmd
                assert shard is not None
                # Same strata batching as WorkerContext.theta_partial, so
                # the backends stay bit-identical.
                if shard.strata:
                    pairs, labels, weights = concat_strata(shard.strata)
                    values = table[pairs.reshape(-1)]
                    pi_pairs = values[:, :-1].reshape(len(pairs), 2, k)
                    grad = backend.theta_gradient_weighted(
                        pi_pairs[:, 0],
                        pi_pairs[:, 1],
                        labels,
                        theta,
                        config.delta,
                        weights=weights,
                        workspace=workspace,
                    )
                else:
                    grad = np.zeros_like(theta)
                send_result(("theta", worker_id, seq, worker_id, grad))
            elif op == "perplexity":
                _, _, part, pairs, labels, beta = cmd
                from repro.core.perplexity import link_probability

                if len(pairs):
                    values = table[pairs.reshape(-1)]
                    pi_pairs = values[:, :-1].reshape(len(pairs), 2, k)
                    p1 = link_probability(
                        pi_pairs[:, 0], pi_pairs[:, 1], beta, config.delta
                    )
                    probs = np.where(labels, p1, 1.0 - p1)
                else:
                    probs = np.zeros(0)
                send_result(("perp", worker_id, seq, part, probs))
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown command {op!r}")
    finally:
        shm.close()


class MultiprocessAMMSBSampler:
    """Master-worker SG-MCMC across OS processes with shared-memory pi.

    Use as a context manager (or call :meth:`close`) so the worker
    processes and the shared-memory segment are released::

        with MultiprocessAMMSBSampler(graph, config, n_workers=4) as s:
            s.run(1000)
            state = s.state_snapshot()

    Args:
        graph: training graph.
        config: shared configuration.
        n_workers: worker process count.
        heldout: optional held-out split (enables perplexity).
        state: optional initial state.
        faults: optional :class:`~repro.faults.FaultPlan`; worker crashes
            and stalls in the plan are injected inside the worker
            processes, exercising the recovery machinery below. An empty
            plan is bit-identical to ``faults=None``.
        heartbeat_timeout: real seconds the master waits for a stage
            result before fencing silent-but-alive workers as dead (a
            worker whose *process* exited is detected within
            ``poll_interval`` regardless).
        poll_interval: granularity, in real seconds, of the per-worker
            result-pipe polling (``connection.wait`` timeouts while
            collecting, and writability waits while a command send
            finds a full pipe).
        shutdown_timeout: grace period :meth:`close` allows workers to
            exit before escalating to ``terminate()``.
        checkpoint_path: opt-in auto-checkpoint target (atomic writes via
            :mod:`repro.core.checkpoint`).
        checkpoint_every: iterations between auto-checkpoints (0 = only
            explicit :meth:`save_checkpoint` calls).
        publish_path: opt-in serving-artifact target; the training loop
            periodically exports an immutable
            :class:`~repro.serve.artifact.ModelArtifact` here (atomic
            replace, so a :class:`~repro.serve.server.ModelServer`
            watching the path can hot-swap mid-run).
        publish_every: iterations between artifact publishes (0 = only
            explicit :meth:`publish_artifact` calls).
        graph_path: opt-in shared-graph mode. Path to a CSR container
            (built once with ``repro convert-graph``) matching ``graph``;
            each worker memory-maps it read-only, so all workers share
            one physical copy of the graph through the page cache and
            the master stops shipping per-iteration adjacency slices
            entirely (smaller scatter payloads, flat worker RSS).
            Bit-identical results to the default ship-adjacency mode.
    """

    def __init__(
        self,
        graph: Graph,
        config: AMMSBConfig,
        n_workers: int = 2,
        heldout: Optional[HeldoutSplit] = None,
        state: Optional[ModelState] = None,
        faults: Optional[FaultPlan] = None,
        heartbeat_timeout: float = 30.0,
        poll_interval: float = 0.05,
        shutdown_timeout: float = 5.0,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 0,
        publish_path: Optional[Union[str, Path]] = None,
        publish_every: int = 0,
        graph_path: Optional[Union[str, Path]] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if heartbeat_timeout <= 0 or poll_interval <= 0 or shutdown_timeout < 0:
            raise ValueError("timeouts must be positive")
        self.graph = graph
        self.config = config
        self.n_workers = n_workers
        self.faults = None if faults is None or faults.empty else faults
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.poll_interval = float(poll_interval)
        self.shutdown_timeout = float(shutdown_timeout)
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.checkpoint_every = int(checkpoint_every)
        self.publish_path = Path(publish_path) if publish_path else None
        self.publish_every = int(publish_every)
        self.recoveries: list[RecoveryEvent] = []

        self.graph_path = Path(graph_path) if graph_path else None
        if self.graph_path is not None:
            from repro.store import read_manifest

            meta = read_manifest(self.graph_path).get("meta", {})
            if int(meta.get("n_vertices", -1)) != graph.n_vertices:
                raise ValueError(
                    f"graph_path container has n_vertices={meta.get('n_vertices')}, "
                    f"training graph has {graph.n_vertices}"
                )

        heldout_keys = None
        if heldout is not None:
            heldout_keys = np.sort(edge_keys(heldout.heldout_pairs, graph.n_vertices))
        self.master = MasterContext(
            graph, config, n_workers, heldout_keys,
            ship_adjacency=self.graph_path is None,
        )

        k = config.n_communities
        init = state if state is not None else init_state(
            graph.n_vertices, config, self.master.rng
        )
        dtype = np.dtype(config.dtype)
        table = np.concatenate([init.pi, init.phi_sum[:, None]], axis=1).astype(dtype)
        self._shm = shared_memory.SharedMemory(create=True, size=table.nbytes)
        self._table = np.ndarray(table.shape, dtype=dtype, buffer=self._shm.buf)
        self._table[:] = table
        self.theta = init.theta.copy()

        self._heldout = heldout
        self._heldout_parts: list[tuple[np.ndarray, np.ndarray]] = []
        self._prob_sums: list[np.ndarray] = []
        self._prob_count = 0
        if heldout is not None:
            from repro.dist.partition import partition_heldout

            self._heldout_parts = partition_heldout(
                heldout.heldout_pairs, heldout.heldout_labels, n_workers
            )
            self._prob_sums = [np.zeros(len(p)) for p, _ in self._heldout_parts]

        ctx = mp.get_context("fork")
        # One PRIVATE command pipe and one PRIVATE result pipe per
        # worker; results are polled with a timeout via
        # connection.wait() — the heartbeat that makes hangs impossible.
        # A single shared queue would couple the workers through its
        # write lock: a worker dying abruptly (os._exit, SIGKILL, OOM)
        # mid-send would abandon the lock and wedge every survivor, so
        # a crash of one worker became a stall of all of them.
        #
        # All pipes are created BEFORE any fork and the full table is
        # handed to every worker, so each side can close the ends that
        # are not its own (see _worker_loop). Command write ends are
        # non-blocking: _send interleaves result draining while a pipe
        # is full instead of deadlocking against a worker that is
        # itself blocked writing a large result.
        pipes = []
        for _ in range(n_workers):
            cmd_recv, cmd_send = ctx.Pipe(duplex=False)
            res_recv, res_send = ctx.Pipe(duplex=False)
            pipes.append((cmd_recv, cmd_send, res_recv, res_send))
        self._cmd_pipes = [p[1] for p in pipes]
        self._res_pipes = [p[2] for p in pipes]
        for send in self._cmd_pipes:
            os.set_blocking(send.fileno(), False)
        #: Results drained opportunistically during _send, consumed by
        #: the next _collect.
        self._stash: list = []
        #: Workers whose result pipe has hit EOF (dead senders) — kept
        #: out of every subsequent wait/poll set.
        self._res_eof: set[int] = set()
        self._procs = []
        for w in range(n_workers):
            proc = ctx.Process(
                target=_worker_loop,
                args=(
                    w,
                    self._shm.name,
                    table.shape,
                    str(dtype),
                    config,
                    graph.n_vertices,
                    heldout_keys,
                    self.faults,
                    pipes,
                    str(self.graph_path) if self.graph_path is not None else None,
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        # The master never touches the worker-side ends again: close
        # them so EOF/BrokenPipeError semantics actually hold (a dead
        # worker's result pipe must reach EOF; a worker writing after
        # close() must get BrokenPipeError, not block).
        for cmd_recv, _, _, res_send in pipes:
            cmd_recv.close()
            res_send.close()
        #: Worker ids still alive and holding shards (shrinks on recovery).
        self._active: list[int] = list(range(n_workers))
        self._seq = 0
        self.iteration = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def active_workers(self) -> tuple[int, ...]:
        """Ids of the workers currently carrying shards."""
        return tuple(self._active)

    def close(self) -> None:
        """Stop workers and release the shared-memory segment.

        Prompt even when a worker is wedged mid-command: the stop message
        and the pipe close wake any worker blocked in ``recv()``
        immediately; whoever is still alive after ``shutdown_timeout``
        (e.g. wedged inside a computation) is terminated and reaped.
        """
        if self._closed:
            return
        self._closed = True
        for w in self._active:
            try:
                self._cmd_pipes[w].send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for pipe in self._cmd_pipes:
            try:
                pipe.close()
            except OSError:  # pragma: no cover - already closed
                pass
        deadline = time.monotonic() + self.shutdown_timeout
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc.is_alive():
                proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - terminate ignored
                proc.kill()
                proc.join()
        for conn in self._res_pipes:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass

    def __enter__(self) -> "MultiprocessAMMSBSampler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- protocol helpers ------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _send(self, worker: int, payload: tuple) -> None:
        """Scatter one command without ever deadlocking on a full pipe.

        A plain blocking ``Connection.send`` can wedge the whole run:
        when the target worker is itself blocked writing a large result
        (> the ~64KB pipe buffer) that the master has not yet started
        collecting — e.g. several held-out parts shipped back-to-back
        to one survivor after recovery shrank the active set — the
        command pipe never drains and both sides block forever, outside
        the reach of the heartbeat. The command fds are non-blocking:
        while a pipe is full this loop drains every worker's result
        pipe into :attr:`_stash` (consumed by the next :meth:`_collect`)
        so the worker's pending send can complete and it returns to
        ``recv``. A worker whose command pipe stays full past
        ``heartbeat_timeout`` is fenced by termination, exactly like a
        silent worker in :meth:`_collect`.
        """
        conn = self._cmd_pipes[worker]
        if conn.closed:
            return
        data = bytes(ForkingPickler.dumps(payload))
        n = len(data)
        # Frame exactly like Connection.send so the worker-side recv()
        # stays untouched: "!i" length header (the >2GB form is the
        # -1 marker + "!Q" length).
        if n <= 0x7FFFFFFF:
            buf = memoryview(struct.pack("!i", n) + data)
        else:  # pragma: no cover - >2GB command
            buf = memoryview(struct.pack("!i", -1) + struct.pack("!Q", n) + data)
        fd = conn.fileno()
        pos = 0
        deadline = time.monotonic() + self.heartbeat_timeout
        while pos < len(buf):
            try:
                pos += os.write(fd, buf[pos:])
                continue
            except BlockingIOError:
                pass
            except OSError:
                # The worker died with its pipe (EPIPE); the collect
                # deadline turns this into a WorkerCrashed with context.
                return
            # Pipe full: the worker is busy, possibly blocked writing a
            # result. Drain results so it can make progress, then wait
            # (bounded) for writability or for more results to drain.
            self._drain_results()
            if self._procs[worker].exitcode is not None:
                return
            if time.monotonic() > deadline:
                # Wedged with a full command pipe past the heartbeat:
                # fence it so the failure set is stable; the next
                # _collect reports it dead and recovery heals the loss.
                self._procs[worker].terminate()
                self._procs[worker].join(timeout=2.0)
                return
            readable = [
                self._res_pipes[w]
                for w in self._active
                if w not in self._res_eof and not self._res_pipes[w].closed
            ]
            try:
                select.select(readable, [fd], [], self.poll_interval)
            except OSError:  # pragma: no cover - fd closed under us
                return

    def _drain_results(self) -> None:
        """Stash every already-available result message, without waiting.

        Called while a command send is blocked on a full pipe: the
        target worker may be mid-write of a large result, and consuming
        it is what lets the worker finish and drain its command pipe.
        Messages go to :attr:`_stash`; :meth:`_collect` consumes them
        first, and its sequence-number check drops stale rounds.
        """
        for w in list(self._active):
            if w in self._res_eof:
                continue
            conn = self._res_pipes[w]
            try:
                while not conn.closed and conn.poll(0):
                    self._stash.append(conn.recv())
            except (EOFError, OSError):
                # Sender died with its pipe; exitcode checks name it.
                self._res_eof.add(w)

    def _collect(self, expected_tag: str, keys: Sequence[int], seq: int) -> dict:
        """Gather one result per key, with heartbeat-based failure detection.

        Returns ``{key: payload}``. Raises :class:`WorkerCrashed` listing
        every worker found dead (process exited) or fenced (silent past
        ``heartbeat_timeout`` — those are terminated first, so the failure
        set is stable by the time the caller recovers).
        """
        remaining = set(keys)
        out: dict = {}
        deadline = time.monotonic() + self.heartbeat_timeout
        while remaining:
            # Results drained while _send waited on a full pipe come
            # first; only then poll the live pipes.
            msgs, self._stash = self._stash, []
            if not msgs:
                by_conn = {
                    self._res_pipes[w]: w
                    for w in self._active
                    if w not in self._res_eof and not self._res_pipes[w].closed
                }
                if by_conn:
                    ready = mp_connection.wait(
                        list(by_conn), timeout=self.poll_interval
                    )
                else:
                    # Every channel is gone; fall through to the
                    # exitcode check at poll granularity.
                    ready = []
                    time.sleep(self.poll_interval)
                for conn in ready:
                    try:
                        msgs.append(conn.recv())
                    except (EOFError, OSError):
                        # The sender died with its pipe; only ITS channel
                        # is gone — the exitcode check below names it.
                        # Never wait on it again (EOF stays readable).
                        self._res_eof.add(by_conn[conn])
            progressed = False
            for msg in msgs:
                tag, worker, mseq, key, payload = msg
                if mseq != seq:
                    progressed = True  # alive, just a straggler
                    continue  # from an aborted round; drop
                if tag != expected_tag or key not in remaining:
                    raise RuntimeError(
                        f"protocol error: expected {expected_tag} for {sorted(remaining)}, "
                        f"got {tag} key={key} from worker {worker}"
                    )
                remaining.discard(key)
                out[key] = payload
                progressed = True
            if not remaining or progressed:
                continue
            dead = [
                w for w in self._active if self._procs[w].exitcode is not None
            ]
            if dead:
                raise WorkerCrashed(dead)
            if time.monotonic() > deadline:
                # Alive but silent past the heartbeat: fence by
                # termination so the recovery set cannot race.
                silent = sorted(
                    {w for w in self._active if self._expects(w, remaining, expected_tag)}
                )
                if not silent:  # pragma: no cover - defensive
                    silent = sorted(self._active)
                for w in silent:
                    self._procs[w].terminate()
                for w in silent:
                    self._procs[w].join(timeout=2.0)
                raise WorkerCrashed(silent, stalled=True)
        return out

    def _expects(self, worker: int, remaining: set, tag: str) -> bool:
        """Is ``worker`` responsible for any still-missing key?"""
        if tag == "perp":
            n = len(self._active)
            return any(
                self._active[key % n] == worker for key in remaining
            )
        return worker in remaining

    def _recover(self, crash: WorkerCrashed) -> None:
        """Heal a failure: drop the dead workers, re-partition their load.

        The master's partitioner is simply told the new worker count;
        from the retried iteration on, every mini-batch (and the held-out
        evaluation parts) is spread across the survivors only — the dead
        worker's shard re-partitioned mid-run, as the paper's static
        layout never could.
        """
        lost = [w for w in crash.workers if w in self._active]
        for w in lost:
            self._active.remove(w)
            proc = self._procs[w]
            if proc.exitcode is None:
                proc.terminate()
            proc.join(timeout=2.0)
            try:
                self._cmd_pipes[w].close()
            except OSError:  # pragma: no cover
                pass
            try:
                self._res_pipes[w].close()
            except OSError:  # pragma: no cover
                pass
        if lost:
            self.recoveries.append(
                RecoveryEvent(self.iteration, tuple(lost), crash.stalled)
            )
        if not self._active:
            self.close()
            raise RuntimeError(
                f"all workers lost at iteration {self.iteration}"
            ) from crash
        self.master.n_workers = len(self._active)

    # -- derived views ------------------------------------------------------------

    @property
    def beta(self) -> np.ndarray:
        return self.theta[:, 1] / self.theta.sum(axis=1)

    def state_snapshot(self) -> ModelState:
        return ModelState(
            pi=self._table[:, :-1].copy(),
            phi_sum=self._table[:, -1].copy(),
            theta=self.theta.copy(),
        )

    # -- checkpointing --------------------------------------------------------------

    def save_checkpoint(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Atomically write the current model state (see
        :func:`repro.core.checkpoint.save_state_checkpoint`)."""
        from repro.core.checkpoint import save_state_checkpoint

        target = Path(path) if path is not None else self.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured")
        return save_state_checkpoint(
            target, self.state_snapshot(), self.iteration, self.config
        )

    @classmethod
    def from_checkpoint(
        cls,
        path: Union[str, Path],
        graph: Graph,
        heldout: Optional[HeldoutSplit] = None,
        **kwargs,
    ) -> "MultiprocessAMMSBSampler":
        """Resume a run from an auto-checkpoint.

        Restores model state and the iteration counter (and therefore the
        step-size schedule). RNG streams restart from their seeds — this
        is coarse-grained disaster recovery for a crashed *master*, not
        the bit-exact single-process resume of
        :func:`repro.core.checkpoint.load_checkpoint`.
        """
        from repro.core.checkpoint import load_state_checkpoint

        state, iteration, config = load_state_checkpoint(path)
        sampler = cls(graph, config, heldout=heldout, state=state, **kwargs)
        sampler.iteration = iteration
        return sampler

    def _maybe_autocheckpoint(self) -> None:
        if (
            self.checkpoint_path is not None
            and self.checkpoint_every > 0
            and self.iteration % self.checkpoint_every == 0
        ):
            self.save_checkpoint()

    # -- serving-artifact publication -------------------------------------------------

    def publish_artifact(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Atomically export the current posterior as a serving artifact.

        The write goes through the same tmp+fsync+replace machinery as
        checkpoints, so a serving process re-loading the path sees either
        the previous artifact or the new one, never a torn file.
        """
        from repro.serve.artifact import export_artifact

        target = Path(path) if path is not None else self.publish_path
        if target is None:
            raise ValueError("no publish path configured")
        return export_artifact(
            target, self.state_snapshot(), self.config, iteration=self.iteration
        )

    def _maybe_publish(self) -> None:
        if (
            self.publish_path is not None
            and self.publish_every > 0
            and self.iteration % self.publish_every == 0
        ):
            self.publish_artifact()

    # -- iteration -------------------------------------------------------------------

    def step(self) -> None:
        """One BSP iteration across the worker processes.

        Retries transparently when workers are lost mid-iteration: the
        failure is healed (:meth:`_recover`) and the iteration re-runs on
        the survivors. Worker losses are visible in :attr:`recoveries`.
        """
        if self._closed:
            raise RuntimeError("sampler is closed")
        while True:
            try:
                self._step_once()
                break
            except WorkerCrashed as crash:
                self._recover(crash)
        self.iteration += 1
        self._maybe_autocheckpoint()
        self._maybe_publish()

    def _step_once(self) -> None:
        cfg = self.config
        active = list(self._active)
        draw = self.master.next_draw()
        eps_phi = cfg.step_phi.at(self.iteration)
        beta = self.beta
        # Stage: scatter + phi compute (reads only) ... barrier.
        seq = self._next_seq()
        for idx, w in enumerate(active):
            self._send(
                w, ("phi_compute", seq, draw.shards[idx], beta, eps_phi, self.iteration)
            )
        self._collect("phi_done", active, seq)
        # Stage: pi write-back (disjoint rows) ... barrier.
        seq = self._next_seq()
        for w in active:
            self._send(w, ("pi_write", seq))
        self._collect("write_done", active, seq)
        # Stage: theta partials -> reduce at master -> update.
        seq = self._next_seq()
        for w in active:
            self._send(w, ("theta_partial", seq, self.theta))
        partials = self._collect("theta", active, seq)
        grad_total = np.zeros_like(self.theta)
        for w in active:
            grad_total += partials[w]
        self.theta = gradients.update_theta(
            self.theta,
            grad_total,
            eps_t=cfg.step_theta.at(self.iteration),
            eta=cfg.eta,
            scale=1.0,
            noise=self.master.theta_noise(self.theta.shape),
        )

    def run(self, n_iterations: int, perplexity_every: int = 0) -> None:
        for _ in range(n_iterations):
            self.step()
            if (
                perplexity_every
                and self._heldout_parts
                and self.iteration % perplexity_every == 0
            ):
                self.evaluate_perplexity()

    def evaluate_perplexity(self) -> float:
        """Distributed perplexity over the statically partitioned E_h.

        The static parts outlive worker losses: part ``j`` is evaluated
        by survivor ``active[j % len(active)]``, so a shrunken worker set
        still covers every held-out pair.
        """
        if not self._heldout_parts:
            raise RuntimeError("no held-out split was provided")
        while True:
            try:
                probs = self._perplexity_once()
                break
            except WorkerCrashed as crash:
                self._recover(crash)
        self._prob_count += 1
        log_sum = 0.0
        count = 0
        for j, p in probs.items():
            self._prob_sums[j] += p
            avg = self._prob_sums[j] / self._prob_count
            log_sum += float(np.log(np.maximum(avg, 1e-12)).sum())
            count += len(p)
        return float(np.exp(-log_sum / max(count, 1)))

    def _perplexity_once(self) -> dict[int, np.ndarray]:
        beta = self.beta
        seq = self._next_seq()
        n = len(self._active)
        for j, (pairs, labels) in enumerate(self._heldout_parts):
            self._send(self._active[j % n], ("perplexity", seq, j, pairs, labels, beta))
        return self._collect("perp", range(len(self._heldout_parts)), seq)
