"""Real multi-process distributed execution.

The in-process :class:`~repro.dist.sampler.DistributedAMMSBSampler`
executes ranks sequentially (with a simulated clock). This module runs
the same master-worker protocol across **operating-system processes**:

- the global ``[pi | phi_sum]`` table lives in POSIX shared memory (the
  shared-memory analogue of the RDMA DKV store — every worker maps the
  same pages);
- the master (the parent process) draws mini-batches and ships each
  worker its shard (vertices, adjacency slice, strata) over a pipe —
  exactly the scatter of Section III-A;
- workers run the *same kernels* and the *same per-worker RNG streams*
  as the in-process engine, so the two backends produce bit-identical
  states (tested in ``tests/test_mp_backend.py``);
- the stage protocol preserves the paper's hazard discipline: phi is
  computed from a consistent snapshot, then written back only after a
  barrier (compute-ack round trip), then theta partials are reduced.

This is genuine parallelism (one process per worker, no GIL sharing);
on a multi-core host the phi stage scales with worker count.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.config import AMMSBConfig
from repro.core import gradients
from repro.core.minibatch import NeighborSample
from repro.core.state import ModelState, init_state
from repro.dist.master import MasterContext
from repro.dist.partition import WorkerShard
from repro.graph.graph import Graph, edge_keys
from repro.graph.split import HeldoutSplit


@dataclass
class _PhiResult:
    vertices: np.ndarray
    new_values: np.ndarray


def _worker_loop(
    worker_id: int,
    shm_name: str,
    table_shape: tuple[int, int],
    dtype_str: str,
    config: AMMSBConfig,
    n_vertices: int,
    heldout_keys: Optional[np.ndarray],
    cmd_recv,
    res_send,
) -> None:
    """Worker process: command loop over the shared pi table."""
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        table = np.ndarray(table_shape, dtype=np.dtype(dtype_str), buffer=shm.buf)
        # Same streams as WorkerContext, so backends agree bit-for-bit.
        rng = np.random.default_rng(config.seed + 1009 * (worker_id + 1))
        noise_rng = np.random.default_rng(config.seed + 2003 * (worker_id + 1))
        hk = (
            np.sort(np.asarray(heldout_keys, dtype=np.int64))
            if heldout_keys is not None and len(heldout_keys)
            else np.zeros(0, dtype=np.int64)
        )
        k = config.n_communities
        pending: Optional[_PhiResult] = None
        shard: Optional[WorkerShard] = None

        def in_heldout(keys: np.ndarray) -> np.ndarray:
            if not hk.size or not keys.size:
                return np.zeros(keys.shape, dtype=bool)
            idx = np.minimum(np.searchsorted(hk, keys), hk.size - 1)
            return hk[idx] == keys

        def sample_neighbors(sh: WorkerShard) -> NeighborSample:
            vs = sh.vertices
            m = vs.size
            n_sample = config.neighbor_sample_size
            neighbors = rng.integers(0, n_vertices, size=(m, n_sample))
            mask = neighbors != vs[:, None]
            lo = np.minimum(vs[:, None], neighbors)
            hi = np.maximum(vs[:, None], neighbors)
            mask &= ~in_heldout(lo * np.int64(n_vertices) + hi)
            labels = sh.adjacency.links_against(neighbors) & mask
            empty = ~mask.any(axis=1)
            if np.any(empty):
                rows = np.flatnonzero(empty)
                repl = (vs[rows] + 1) % n_vertices
                neighbors[rows, 0] = repl
                mask[rows, 0] = repl != vs[rows]
                labels[rows, 0] = False
            return NeighborSample(neighbors=neighbors, labels=labels, mask=mask)

        while True:
            cmd = cmd_recv.recv()
            op = cmd[0]
            if op == "stop":
                break
            elif op == "phi_compute":
                _, shard, beta, eps_t = cmd
                vs = shard.vertices
                if vs.size == 0:
                    pending = _PhiResult(vs, np.zeros((0, k + 1)))
                    res_send.put(("phi_done", worker_id))
                    continue
                ns = sample_neighbors(shard)
                all_keys = np.concatenate([vs, ns.neighbors.reshape(-1)])
                values = table[all_keys]
                pi_a = values[: vs.size, :-1]
                phi_sum_a = values[: vs.size, -1]
                pi_b = values[vs.size:, :-1].reshape(vs.size, -1, k)
                grad = gradients.phi_gradient_sum(
                    pi_a, phi_sum_a, pi_b, ns.labels, beta, config.delta, mask=ns.mask
                )
                counts = np.maximum(ns.counts, 1)
                noise = noise_rng.standard_normal(pi_a.shape)
                new_phi = gradients.update_phi(
                    pi_a * phi_sum_a[:, None],
                    grad,
                    eps_t=eps_t,
                    alpha=config.effective_alpha,
                    scale=n_vertices / counts,
                    noise=noise,
                    phi_floor=config.phi_floor,
                    phi_clip=config.phi_clip,
                )
                sums = new_phi.sum(axis=1)
                pending = _PhiResult(
                    vs,
                    np.concatenate([new_phi / sums[:, None], sums[:, None]], axis=1),
                )
                res_send.put(("phi_done", worker_id))
            elif op == "pi_write":
                assert pending is not None
                if pending.vertices.size:
                    table[pending.vertices] = pending.new_values
                res_send.put(("write_done", worker_id))
            elif op == "theta_partial":
                _, theta = cmd
                grad = np.zeros_like(theta)
                assert shard is not None
                for stratum in shard.strata:
                    values = table[stratum.pairs.reshape(-1)]
                    pi_pairs = values[:, :-1].reshape(len(stratum.pairs), 2, k)
                    grad += stratum.scale * gradients.theta_gradient_sum(
                        pi_pairs[:, 0],
                        pi_pairs[:, 1],
                        stratum.labels.astype(np.int64),
                        theta,
                        config.delta,
                    )
                res_send.put(("theta", worker_id, grad))
            elif op == "perplexity":
                _, pairs, labels, beta = cmd
                from repro.core.perplexity import link_probability

                if len(pairs):
                    values = table[pairs.reshape(-1)]
                    pi_pairs = values[:, :-1].reshape(len(pairs), 2, k)
                    p1 = link_probability(
                        pi_pairs[:, 0], pi_pairs[:, 1], beta, config.delta
                    )
                    probs = np.where(labels, p1, 1.0 - p1)
                else:
                    probs = np.zeros(0)
                res_send.put(("perp", worker_id, probs))
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown command {op!r}")
    finally:
        shm.close()


class MultiprocessAMMSBSampler:
    """Master-worker SG-MCMC across OS processes with shared-memory pi.

    Use as a context manager (or call :meth:`close`) so the worker
    processes and the shared-memory segment are released::

        with MultiprocessAMMSBSampler(graph, config, n_workers=4) as s:
            s.run(1000)
            state = s.state_snapshot()

    Args:
        graph: training graph.
        config: shared configuration.
        n_workers: worker process count.
        heldout: optional held-out split (enables perplexity).
        state: optional initial state.
    """

    def __init__(
        self,
        graph: Graph,
        config: AMMSBConfig,
        n_workers: int = 2,
        heldout: Optional[HeldoutSplit] = None,
        state: Optional[ModelState] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.graph = graph
        self.config = config
        self.n_workers = n_workers

        heldout_keys = None
        if heldout is not None:
            heldout_keys = np.sort(edge_keys(heldout.heldout_pairs, graph.n_vertices))
        self.master = MasterContext(graph, config, n_workers, heldout_keys)

        k = config.n_communities
        init = state if state is not None else init_state(
            graph.n_vertices, config, self.master.rng
        )
        dtype = np.dtype(config.dtype)
        table = np.concatenate([init.pi, init.phi_sum[:, None]], axis=1).astype(dtype)
        self._shm = shared_memory.SharedMemory(create=True, size=table.nbytes)
        self._table = np.ndarray(table.shape, dtype=dtype, buffer=self._shm.buf)
        self._table[:] = table
        self.theta = init.theta.copy()

        self._heldout = heldout
        self._heldout_parts: list[tuple[np.ndarray, np.ndarray]] = []
        self._prob_sums: list[np.ndarray] = []
        self._prob_count = 0
        if heldout is not None:
            from repro.dist.partition import partition_heldout

            self._heldout_parts = partition_heldout(
                heldout.heldout_pairs, heldout.heldout_labels, n_workers
            )
            self._prob_sums = [np.zeros(len(p)) for p, _ in self._heldout_parts]

        ctx = mp.get_context("fork")
        self._cmd_pipes = []
        self._res_queue = ctx.SimpleQueue()
        self._procs = []
        for w in range(n_workers):
            recv, send = ctx.Pipe(duplex=False)
            self._cmd_pipes.append(send)
            proc = ctx.Process(
                target=_worker_loop,
                args=(
                    w,
                    self._shm.name,
                    table.shape,
                    str(dtype),
                    config,
                    graph.n_vertices,
                    heldout_keys,
                    recv,
                    self._res_queue,
                ),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        self.iteration = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Stop workers and release the shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        for pipe in self._cmd_pipes:
            try:
                pipe.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - watchdog
                proc.terminate()
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass

    def __enter__(self) -> "MultiprocessAMMSBSampler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- protocol helpers ------------------------------------------------------

    def _collect(self, expected_tag: str) -> list:
        out = [None] * self.n_workers
        for _ in range(self.n_workers):
            msg = self._res_queue.get()
            if msg[0] != expected_tag:
                raise RuntimeError(f"expected {expected_tag}, got {msg[0]}")
            out[msg[1]] = msg[2] if len(msg) > 2 else True
        return out

    # -- derived views ------------------------------------------------------------

    @property
    def beta(self) -> np.ndarray:
        return self.theta[:, 1] / self.theta.sum(axis=1)

    def state_snapshot(self) -> ModelState:
        return ModelState(
            pi=self._table[:, :-1].copy(),
            phi_sum=self._table[:, -1].copy(),
            theta=self.theta.copy(),
        )

    # -- iteration -------------------------------------------------------------------

    def step(self) -> None:
        """One BSP iteration across the worker processes."""
        if self._closed:
            raise RuntimeError("sampler is closed")
        cfg = self.config
        draw = self.master.next_draw()
        eps_phi = cfg.step_phi.at(self.iteration)
        beta = self.beta
        # Stage: scatter + phi compute (reads only) ... barrier.
        for w, shard in enumerate(draw.shards):
            self._cmd_pipes[w].send(("phi_compute", shard, beta, eps_phi))
        self._collect("phi_done")
        # Stage: pi write-back (disjoint rows) ... barrier.
        for pipe in self._cmd_pipes:
            pipe.send(("pi_write",))
        self._collect("write_done")
        # Stage: theta partials -> reduce at master -> update.
        for pipe in self._cmd_pipes:
            pipe.send(("theta_partial", self.theta))
        partials = self._collect("theta")
        grad_total = np.zeros_like(self.theta)
        for g in partials:
            grad_total += g
        self.theta = gradients.update_theta(
            self.theta,
            grad_total,
            eps_t=cfg.step_theta.at(self.iteration),
            eta=cfg.eta,
            scale=1.0,
            noise=self.master.theta_noise(self.theta.shape),
        )
        self.iteration += 1

    def run(self, n_iterations: int, perplexity_every: int = 0) -> None:
        for _ in range(n_iterations):
            self.step()
            if (
                perplexity_every
                and self._heldout_parts
                and self.iteration % perplexity_every == 0
            ):
                self.evaluate_perplexity()

    def evaluate_perplexity(self) -> float:
        """Distributed perplexity over the statically partitioned E_h."""
        if not self._heldout_parts:
            raise RuntimeError("no held-out split was provided")
        beta = self.beta
        for w, (pairs, labels) in enumerate(self._heldout_parts):
            self._cmd_pipes[w].send(("perplexity", pairs, labels, beta))
        probs = self._collect("perp")
        self._prob_count += 1
        log_sum = 0.0
        count = 0
        for w, p in enumerate(probs):
            self._prob_sums[w] += p
            avg = self._prob_sums[w] / self._prob_count
            log_sum += float(np.log(np.maximum(avg, 1e-12)).sum())
            count += len(p)
        return float(np.exp(-log_sum / max(count, 1)))
