"""Worker rank: neighbor sampling and the update kernels against the DKV.

A worker never touches the global graph or the full pi matrix. Its inputs
per iteration are exactly what the master scattered (its
:class:`~repro.dist.partition.WorkerShard`) plus values it reads from the
DKV store; its outputs are DKV writes (new pi rows) and a theta-gradient
partial sum handed to the MPI reduce.

The numerical kernels are the shared ones from :mod:`repro.core.gradients`
— a worker computes exactly what the sequential sampler would compute for
its slice of the mini-batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import AMMSBConfig
from repro.core import kernels
from repro.core.minibatch import NeighborSample, concat_strata
from repro.cluster.dkv import DKVStore, DKVTraffic
from repro.dist.partition import WorkerShard


@dataclass
class PhiStageResult:
    """What update_phi/update_pi produced at one worker."""

    vertices: np.ndarray
    new_values: np.ndarray  # (m, K+1): new pi rows + phi_sum
    read_traffic: DKVTraffic
    write_traffic: Optional[DKVTraffic] = None
    ops_phi: int = 0
    ops_pi: int = 0


class WorkerContext:
    """State and behaviour of one worker rank.

    Args:
        worker: 0-based worker index (DKV server id; MPI rank worker+1).
        config: shared configuration.
        n_vertices: N (needed for neighbor sampling and update scales).
        dkv: the distributed KV store holding ``[pi | phi_sum]`` rows.
        heldout_keys: sorted canonical held-out keys (broadcast at init),
            masked out of neighbor sets.
    """

    def __init__(
        self,
        worker: int,
        config: AMMSBConfig,
        n_vertices: int,
        dkv: DKVStore,
        heldout_keys: Optional[np.ndarray] = None,
    ) -> None:
        self.worker = worker
        self.config = config
        self.n_vertices = n_vertices
        self.dkv = dkv
        self.heldout_keys = (
            np.sort(np.asarray(heldout_keys, dtype=np.int64))
            if heldout_keys is not None and len(heldout_keys)
            else np.zeros(0, dtype=np.int64)
        )
        # Independent per-worker streams; offsets keep them disjoint from
        # the master's streams for any worker count.
        self.rng = np.random.default_rng(config.seed + 1009 * (worker + 1))
        self.noise_rng = np.random.default_rng(config.seed + 2003 * (worker + 1))
        self.kernels = kernels.resolve_backend(config.kernel_backend)
        if self.kernels.name != config.kernel_backend:
            self.config = config = config.with_updates(kernel_backend=self.kernels.name)
        self.kernels.warmup()
        self.workspace = kernels.KernelWorkspace()

    # -- neighbor sampling ----------------------------------------------------

    def _in_heldout(self, keys: np.ndarray) -> np.ndarray:
        if not self.heldout_keys.size or not keys.size:
            return np.zeros(keys.shape, dtype=bool)
        idx = np.minimum(
            np.searchsorted(self.heldout_keys, keys), self.heldout_keys.size - 1
        )
        return self.heldout_keys[idx] == keys

    def sample_neighbors(self, shard: WorkerShard) -> NeighborSample:
        """Draw V_n per shard vertex; labels come from the scattered
        adjacency slice — the worker has no other view of E."""
        vertices = shard.vertices
        m = vertices.size
        n_sample = self.config.neighbor_sample_size
        n = self.n_vertices
        neighbors = self.rng.integers(0, n, size=(m, n_sample))
        mask = neighbors != vertices[:, None]
        lo = np.minimum(vertices[:, None], neighbors)
        hi = np.maximum(vertices[:, None], neighbors)
        keys = lo * np.int64(n) + hi
        mask &= ~self._in_heldout(keys)
        labels = shard.adjacency.links_against(neighbors) & mask
        empty = ~mask.any(axis=1)
        if np.any(empty):
            rows = np.flatnonzero(empty)
            repl = (vertices[rows] + 1) % n
            neighbors[rows, 0] = repl
            mask[rows, 0] = repl != vertices[rows]
            labels[rows, 0] = False
        return NeighborSample(neighbors=neighbors, labels=labels, mask=mask)

    # -- update_phi / update_pi --------------------------------------------------

    def update_phi_pi(
        self,
        shard: WorkerShard,
        neighbor_sample: NeighborSample,
        beta: np.ndarray,
        eps_t: float,
        noise: Optional[np.ndarray] = None,
    ) -> PhiStageResult:
        """Load pi from the DKV, run Eqns 5-6 for the shard, produce new rows.

        The write-back is separate (:meth:`write_pi`) because the paper
        puts an MPI barrier between update_phi and update_pi for memory
        consistency.
        """
        cfg = self.config
        vs = shard.vertices
        m = vs.size
        if m == 0:
            return PhiStageResult(
                vertices=vs,
                new_values=np.zeros((0, self.dkv.value_dim)),
                read_traffic=DKVTraffic(),
            )
        # One batched DKV read covers the shard vertices and all neighbors.
        all_keys = np.concatenate([vs, neighbor_sample.neighbors.reshape(-1)])
        values, read_traffic = self.dkv.read_batch(self.worker, all_keys)
        pi_a = values[:m, :-1]
        phi_sum_a = values[:m, -1]
        pi_b = values[m:, :-1].reshape(m, -1, cfg.n_communities)

        grad = self.kernels.phi_gradient_sum(
            pi_a,
            phi_sum_a,
            pi_b,
            neighbor_sample.labels,
            beta,
            cfg.delta,
            mask=neighbor_sample.mask,
            workspace=self.workspace,
        )
        counts = np.maximum(neighbor_sample.counts, 1)
        scale = self.n_vertices / counts
        if noise is None:
            noise = self.noise_rng.standard_normal(pi_a.shape)
        phi_a = pi_a * phi_sum_a[:, None]
        new_phi = self.kernels.update_phi(
            phi_a,
            grad,
            eps_t=eps_t,
            alpha=cfg.effective_alpha,
            scale=scale,
            noise=noise,
            phi_floor=cfg.phi_floor,
            phi_clip=cfg.phi_clip,
            workspace=self.workspace,
        )
        sums = new_phi.sum(axis=1)
        new_values = np.concatenate([new_phi / sums[:, None], sums[:, None]], axis=1)
        return PhiStageResult(
            vertices=vs,
            new_values=new_values,
            read_traffic=read_traffic,
            ops_phi=int(m * neighbor_sample.neighbors.shape[1] * cfg.n_communities),
            ops_pi=int(m * cfg.n_communities),
        )

    def write_pi(self, result: PhiStageResult) -> DKVTraffic:
        """update_pi stage: write the new ``[pi | phi_sum]`` rows through
        the DKV store (unique vertices, so no write/write hazards)."""
        if result.vertices.size == 0:
            return DKVTraffic()
        traffic = self.dkv.write_batch(self.worker, result.vertices, result.new_values)
        result.write_traffic = traffic
        return traffic

    # -- update_beta partials -------------------------------------------------------

    def theta_partial(
        self, shard: WorkerShard, theta: np.ndarray
    ) -> tuple[np.ndarray, DKVTraffic, int]:
        """h-scaled theta-gradient partial sum over this worker's strata.

        All strata are concatenated into one batched DKV read (fresh
        values — the stage runs after the update_pi barrier) and one
        weighted kernel call, instead of a per-stratum Python loop.
        """
        cfg = self.config
        if not shard.strata:
            return np.zeros_like(theta), DKVTraffic(), 0
        pairs, labels, weights = concat_strata(shard.strata)
        values, traffic = self.dkv.read_batch(self.worker, pairs.reshape(-1))
        pi_pairs = values[:, :-1].reshape(len(pairs), 2, cfg.n_communities)
        grad = self.kernels.theta_gradient_weighted(
            pi_pairs[:, 0],
            pi_pairs[:, 1],
            labels,
            theta,
            cfg.delta,
            weights=weights,
            workspace=self.workspace,
        )
        ops = len(pairs) * cfg.n_communities
        return grad, traffic, ops

    # -- perplexity partials ------------------------------------------------------------

    def perplexity_partial(
        self, pairs: np.ndarray, labels: np.ndarray, beta: np.ndarray
    ) -> tuple[np.ndarray, DKVTraffic]:
        """Per-pair link probabilities for this rank's static E_h slice."""
        from repro.core.perplexity import link_probability

        if len(pairs) == 0:
            return np.zeros(0), DKVTraffic()
        values, traffic = self.dkv.read_batch(self.worker, pairs.reshape(-1))
        pi_pairs = values[:, :-1].reshape(len(pairs), 2, self.config.n_communities)
        p1 = link_probability(pi_pairs[:, 0], pi_pairs[:, 1], beta, self.config.delta)
        return np.where(labels, p1, 1.0 - p1), traffic
