"""Partitioning of mini-batches, strata, and adjacency slices.

The master owns E; workers never see the whole graph. For each iteration
the master scatters, per worker:

- its share of the mini-batch vertices (round-robin for balance),
- the CSR adjacency slice of exactly those vertices ("the subset of E
  touched by the mini-batch", paper Section III-A) — this is what lets a
  worker answer ``y_ab`` for any pair whose first endpoint is one of its
  mini-batch vertices,
- its share of the mini-batch strata (whole strata, round-robin), used by
  the update_beta stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.minibatch import Minibatch, Stratum
from repro.graph.graph import Graph


@dataclass(frozen=True)
class AdjacencySlice:
    """Compact CSR over an explicit vertex list (the scattered E-subset)."""

    vertices: np.ndarray  # (m,) vertex ids, in slice order
    indptr: np.ndarray  # (m+1,)
    indices: np.ndarray  # (nnz,) neighbor ids, sorted per row

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    def payload_bytes(self) -> int:
        return int(self.vertices.nbytes + self.indptr.nbytes + self.indices.nbytes)

    def row(self, i: int) -> np.ndarray:
        """Sorted adjacency of ``vertices[i]``."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def links_against(self, neighbors: np.ndarray) -> np.ndarray:
        """Vectorized ``y_ab`` for a (m, n) neighbor matrix.

        Row i is tested against the adjacency of ``vertices[i]`` with a
        per-row binary search (rows are sorted).
        """
        m, n = neighbors.shape
        if m != self.vertices.size:
            raise ValueError("neighbor matrix row count != slice vertices")
        out = np.zeros((m, n), dtype=bool)
        for i in range(m):
            adj = self.row(i)
            if adj.size == 0:
                continue
            pos = np.searchsorted(adj, neighbors[i])
            pos = np.minimum(pos, adj.size - 1)
            out[i] = adj[pos] == neighbors[i]
        return out


def adjacency_slice(graph: Graph, vertices: np.ndarray) -> AdjacencySlice:
    """Extract the CSR slice of ``vertices`` from the master's graph."""
    vertices = np.asarray(vertices, dtype=np.int64)
    indptr, indices = graph.adjacency_slice(vertices)
    return AdjacencySlice(vertices=vertices, indptr=indptr, indices=indices)


@dataclass(frozen=True)
class WorkerShard:
    """Everything one worker receives for one iteration.

    ``adjacency`` is ``None`` when the runtime gives every worker a
    shared read-only memory-mapped graph instead (``graph_path`` mode in
    :mod:`repro.dist.mp`): the worker then answers ``y_ab`` straight
    from the mapped CSR, and the per-iteration adjacency payload
    disappears from the scatter entirely.
    """

    worker: int  # 0-based worker index (rank = worker + 1)
    vertices: np.ndarray  # this worker's mini-batch vertices
    adjacency: AdjacencySlice | None  # adjacency of exactly those vertices
    strata: list[Stratum] = field(default_factory=list)  # for update_beta

    def payload_bytes(self) -> int:
        strata_bytes = sum(
            s.pairs.nbytes + s.labels.nbytes + 8 for s in self.strata
        )
        adj_bytes = self.adjacency.payload_bytes() if self.adjacency is not None else 0
        return int(self.vertices.nbytes + adj_bytes + strata_bytes)


def partition_minibatch(
    graph: Graph, minibatch: Minibatch, n_workers: int, with_adjacency: bool = True
) -> list[WorkerShard]:
    """Split a mini-batch into per-worker shards.

    Vertices are dealt round-robin (they arrive sorted and degree-skewed,
    so round-robin balances both count and expected adjacency size);
    strata are dealt whole, round-robin by index.

    ``with_adjacency=False`` skips the CSR slice extraction and ships
    ``adjacency=None`` — for workers that hold a shared mapped graph.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    shards = []
    for w in range(n_workers):
        vs = minibatch.vertices[w::n_workers]
        shards.append(
            WorkerShard(
                worker=w,
                vertices=vs,
                adjacency=adjacency_slice(graph, vs) if with_adjacency else None,
                strata=list(minibatch.strata[w::n_workers]),
            )
        )
    return shards


def partition_heldout(
    pairs: np.ndarray, labels: np.ndarray, n_ranks: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Static round-robin partition of E_h over all machines (master too)."""
    return [(pairs[r::n_ranks], labels[r::n_ranks]) for r in range(n_ranks)]
