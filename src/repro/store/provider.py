"""Array providers: a small indirection over where big arrays live.

The storage tier separates *what* an array is (shape, dtype, contents)
from *where* it is materialized. Two providers cover the reproduction's
needs:

- ``resident`` — plain heap ndarrays. Loads read the whole file into
  anonymous memory; allocations are ``np.zeros``. This is the default
  for training-sized problems and the only provider whose arrays are
  safe to mutate freely.
- ``mmap`` — file-backed memory maps. Loads return a read-only
  ``np.memmap`` over the on-disk ``.npy`` payload (RSS grows only with
  the pages actually touched, and the kernel may evict them under
  pressure); allocations create an *unlinked* temporary file-backed map,
  so scratch space is swappable and can never leak a file on disk even
  if the process dies.

Query results are bit-identical across providers: a memory map of an
``.npy`` file aliases the exact bytes ``resident`` would read, and every
kernel consumes the values, not the storage class.

Select a provider by name (``get_provider("mmap")``), by instance, or
let ``get_provider(None)`` fall back to ``$REPRO_ARRAY_PROVIDER`` and
then ``resident``.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

PathLike = Union[str, Path]

ENV_VAR = "REPRO_ARRAY_PROVIDER"


class ArrayProvider:
    """Interface: load arrays from ``.npy`` files and allocate scratch."""

    name: str = "abstract"

    def load(self, path: PathLike) -> np.ndarray:
        """Materialize the array stored at ``path`` (a ``.npy`` file)."""
        raise NotImplementedError

    def allocate(self, shape, dtype) -> np.ndarray:
        """Return a writable zero-initialized array of the given shape/dtype."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class ResidentProvider(ArrayProvider):
    """Heap-resident arrays: full reads, ``np.zeros`` scratch."""

    name = "resident"

    def load(self, path: PathLike) -> np.ndarray:
        return np.load(str(path), allow_pickle=False)

    def allocate(self, shape, dtype) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)


class MmapProvider(ArrayProvider):
    """File-backed arrays: read-only maps for loads, unlinked maps for scratch.

    Args:
        scratch_dir: directory for scratch backing files (default: the
            system temp dir). Backing files are unlinked immediately after
            mapping, so nothing persists — but the filesystem must have
            room for the mapped bytes.
    """

    name = "mmap"

    def __init__(self, scratch_dir: Optional[PathLike] = None) -> None:
        self.scratch_dir = Path(scratch_dir) if scratch_dir is not None else None

    def load(self, path: PathLike) -> np.ndarray:
        return np.load(str(path), mmap_mode="r", allow_pickle=False)

    def allocate(self, shape, dtype) -> np.ndarray:
        shape = (int(shape),) if np.isscalar(shape) else tuple(int(s) for s in shape)
        directory = str(self.scratch_dir) if self.scratch_dir is not None else None
        fd, tmp = tempfile.mkstemp(suffix=".npy", prefix="repro-scratch-", dir=directory)
        os.close(fd)
        try:
            arr = np.lib.format.open_memmap(tmp, mode="w+", dtype=np.dtype(dtype), shape=shape)
        finally:
            # POSIX keeps the mapping alive after unlink; the pages are
            # reclaimed when the last reference drops.
            os.unlink(tmp)
        return arr


_PROVIDERS: dict[str, ArrayProvider] = {
    ResidentProvider.name: ResidentProvider(),
    MmapProvider.name: MmapProvider(),
}


def available_providers() -> list[str]:
    return sorted(_PROVIDERS)


def get_provider(spec: Union[str, ArrayProvider, None] = None) -> ArrayProvider:
    """Resolve a provider from a name, an instance, or the environment.

    ``None`` consults ``$REPRO_ARRAY_PROVIDER`` and defaults to
    ``resident``. Unknown names raise ``ValueError`` listing the choices.
    """
    if isinstance(spec, ArrayProvider):
        return spec
    if spec is None:
        spec = os.environ.get(ENV_VAR, "") or ResidentProvider.name
    try:
        return _PROVIDERS[spec]
    except KeyError:
        raise ValueError(
            f"unknown array provider {spec!r}; available: {available_providers()}"
        ) from None
