"""Atomic on-disk array containers with per-array integrity digests.

A *container* is a directory holding one raw little-endian ``.npy`` file
per named array plus a ``manifest.json`` describing them:

=================  =====================================================
entry              contents
=================  =====================================================
``manifest.json``  schema, ``kind`` (caller format tag), caller ``meta``,
                   per-array ``{file, sha256, shape, dtype, nbytes}``,
                   and a ``content_version`` sealing all of the above
``<name>.npy``     the array payload, NumPy format v1, native layout
=================  =====================================================

Because every array is an uncompressed ``.npy``, a reader can map it
(``np.load(mmap_mode="r")``) and answer queries with only the touched
pages resident — the property the serving tier's v2 artifact format and
the CSR graph container are built on.

Writes are atomic: arrays and manifest land in a hidden temp directory
next to the target, every file and the directory are fsynced, and the
temp dir is renamed into place (an existing container is rotated aside
first and deleted after the rename — a crash between those two steps
leaves the rotated copy behind rather than losing data).

Integrity is layered so opening stays O(manifest):

1. opening a :class:`Container` parses the manifest and recomputes
   ``content_version`` over its fields — corrupt or tampered manifests
   (including any edited per-array digest) fail immediately with
   :class:`StoreCorrupt`, with zero array bytes read;
2. each array's ``.npy`` header is checked against the manifest's
   shape/dtype when the array is first opened;
3. full per-array sha256 digests are verified *lazily*: on first touch
   (``verify="touch"``, the default) or only via an explicit
   :meth:`Container.verify_all` pass (``verify="none"``), so a
   multi-GB container never forces a full read just to start serving.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Iterator, Mapping, Optional, Union

import numpy as np

from repro.store.provider import ArrayProvider, get_provider

PathLike = Union[str, Path]

SCHEMA = "repro-store/1"
MANIFEST_NAME = "manifest.json"
VERIFY_MODES = ("touch", "eager", "none")


class StoreError(ValueError):
    """A container could not be read or written."""

    def __init__(self, path: PathLike, reason: str) -> None:
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"{self.path}: {reason}")


class StoreCorrupt(StoreError):
    """Container bytes do not match their recorded digests/headers."""


def _fsync_dir(path: Path) -> None:
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _sha256_file(path: Path, chunk: int = 1 << 22) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk)
            if not block:
                break
            h.update(block)
    return h.hexdigest()


def _canonical_json(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_version(kind: str, meta: Mapping, arrays: Mapping[str, Mapping]) -> str:
    """Deterministic version sealing kind + meta + every array digest."""
    payload = _canonical_json({"kind": kind, "meta": meta, "arrays": arrays})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _native_little(arr: np.ndarray) -> np.ndarray:
    arr = np.ascontiguousarray(arr)
    if arr.dtype.byteorder == ">":
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    return arr


def is_container(path: PathLike) -> bool:
    """True when ``path`` is a directory holding a store manifest."""
    p = Path(path)
    return p.is_dir() and (p / MANIFEST_NAME).is_file()


def write_container(
    path: PathLike,
    arrays: Mapping[str, np.ndarray],
    kind: str,
    meta: Optional[Mapping] = None,
    overwrite: bool = True,
) -> Path:
    """Atomically write ``arrays`` as a container directory at ``path``.

    Array names become file names, so they must be simple identifiers.
    Returns the final path. With ``overwrite=False`` an existing target
    raises :class:`StoreError`.
    """
    path = Path(path)
    meta = dict(meta or {})
    if not arrays:
        raise StoreError(path, "container needs at least one array")
    for name in arrays:
        if not name.isidentifier():
            raise StoreError(path, f"array name {name!r} is not a valid identifier")
    if path.exists() and not overwrite:
        raise StoreError(path, "target exists and overwrite=False")

    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}-{os.urandom(4).hex()}"
    tmp.mkdir(parents=True, exist_ok=False)
    try:
        entries: dict[str, dict] = {}
        for name, arr in arrays.items():
            arr = _native_little(np.asarray(arr))
            fname = f"{name}.npy"
            fpath = tmp / fname
            with open(fpath, "wb") as fh:
                np.save(fh, arr, allow_pickle=False)
                fh.flush()
                os.fsync(fh.fileno())
            entries[name] = {
                "file": fname,
                "sha256": _sha256_file(fpath),
                "shape": list(arr.shape),
                "dtype": np.lib.format.dtype_to_descr(arr.dtype),
                "nbytes": int(arr.nbytes),
            }
        manifest = {
            "schema": SCHEMA,
            "kind": str(kind),
            "meta": meta,
            "arrays": entries,
            "content_version": content_version(str(kind), meta, entries),
        }
        mpath = tmp / MANIFEST_NAME
        with open(mpath, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        _fsync_dir(tmp)

        old: Optional[Path] = None
        if path.exists():
            old = path.parent / f".{path.name}.old-{os.getpid()}-{os.urandom(4).hex()}"
            os.replace(path, old)
        os.replace(tmp, path)
        _fsync_dir(path.parent)
        if old is not None:
            shutil.rmtree(old, ignore_errors=True)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return path


def read_manifest(path: PathLike) -> dict:
    """Parse and consistency-check a container manifest (no array reads).

    Raises :class:`StoreError` for missing/foreign files and
    :class:`StoreCorrupt` when the manifest does not parse, declares the
    wrong schema, or its recorded ``content_version`` does not match a
    recomputation over its own fields (catching any single-field edit).
    """
    path = Path(path)
    mpath = path / MANIFEST_NAME
    if not mpath.is_file():
        raise StoreError(path, f"not a store container (missing {MANIFEST_NAME})")
    try:
        with open(mpath, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as exc:
        raise StoreCorrupt(path, f"unreadable manifest: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("schema") != SCHEMA:
        raise StoreCorrupt(path, f"unsupported store schema {manifest.get('schema')!r}")
    for field in ("kind", "meta", "arrays", "content_version"):
        if field not in manifest:
            raise StoreCorrupt(path, f"manifest missing field {field!r}")
    expect = content_version(manifest["kind"], manifest["meta"], manifest["arrays"])
    if manifest["content_version"] != expect:
        raise StoreCorrupt(
            path,
            f"manifest content_version mismatch (recorded {manifest['content_version']}, "
            f"recomputed {expect}) — manifest edited or damaged",
        )
    return manifest


class Container:
    """Read side of a container: provider-backed arrays + lazy digests.

    Args:
        path: container directory.
        provider: array provider name or instance (default ``mmap`` — the
            whole point of the format).
        verify: ``"touch"`` (default) digest-checks each array the first
            time it is opened; ``"eager"`` digests everything up front;
            ``"none"`` skips digests (header shape/dtype checks and the
            manifest seal still apply) — pair with :meth:`verify_all`.
    """

    def __init__(
        self,
        path: PathLike,
        provider: Union[str, ArrayProvider, None] = "mmap",
        verify: str = "touch",
    ) -> None:
        if verify not in VERIFY_MODES:
            raise ValueError(f"verify must be one of {VERIFY_MODES}, got {verify!r}")
        self.path = Path(path)
        self.provider = get_provider(provider)
        self.manifest = read_manifest(self.path)
        self.kind: str = self.manifest["kind"]
        self.meta: dict = self.manifest["meta"]
        self._verify_on_touch = verify == "touch"
        self._arrays: dict[str, np.ndarray] = {}
        self._verified: set[str] = set()
        if verify == "eager":
            self.verify_all()

    # -- introspection ---------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self.manifest["arrays"])

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __contains__(self, name: str) -> bool:
        return name in self.manifest["arrays"]

    def entry(self, name: str) -> dict:
        try:
            return self.manifest["arrays"][name]
        except KeyError:
            raise StoreError(self.path, f"container has no array {name!r}") from None

    def nbytes(self) -> int:
        """Total payload bytes across all arrays (from the manifest)."""
        return sum(int(e["nbytes"]) for e in self.manifest["arrays"].values())

    @property
    def content_version(self) -> str:
        return self.manifest["content_version"]

    # -- integrity -------------------------------------------------------

    def verify(self, name: str) -> None:
        """Digest-check one array now (memoized; raises StoreCorrupt)."""
        if name in self._verified:
            return
        entry = self.entry(name)
        fpath = self.path / entry["file"]
        if not fpath.is_file():
            raise StoreCorrupt(self.path, f"array file {entry['file']!r} is missing")
        digest = _sha256_file(fpath)
        if digest != entry["sha256"]:
            raise StoreCorrupt(
                self.path,
                f"array {name!r} sha256 mismatch (recorded {entry['sha256'][:16]}…, "
                f"computed {digest[:16]}…)",
            )
        self._verified.add(name)

    def verify_all(self) -> None:
        """Digest-check every array (the explicit full-verify pass)."""
        for name in self.names():
            self.verify(name)

    # -- access ----------------------------------------------------------

    def array(self, name: str) -> np.ndarray:
        """Open one array through the provider (memoized).

        The ``.npy`` header is always checked against the manifest;
        the content digest is checked here only in ``verify="touch"``
        mode.
        """
        if name in self._arrays:
            return self._arrays[name]
        entry = self.entry(name)
        fpath = self.path / entry["file"]
        if not fpath.is_file():
            raise StoreCorrupt(self.path, f"array file {entry['file']!r} is missing")
        if self._verify_on_touch:
            self.verify(name)
        try:
            arr = self.provider.load(fpath)
        except (OSError, ValueError) as exc:
            raise StoreCorrupt(self.path, f"array {name!r} unreadable: {exc}") from exc
        if list(arr.shape) != list(entry["shape"]):
            raise StoreCorrupt(
                self.path,
                f"array {name!r} shape {list(arr.shape)} != manifest {entry['shape']}",
            )
        if np.lib.format.dtype_to_descr(arr.dtype) != entry["dtype"]:
            raise StoreCorrupt(
                self.path,
                f"array {name!r} dtype {np.lib.format.dtype_to_descr(arr.dtype)!r} "
                f"!= manifest {entry['dtype']!r}",
            )
        self._arrays[name] = arr
        return arr

    def __getitem__(self, name: str) -> np.ndarray:
        return self.array(name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mb = self.nbytes() / 1e6
        return (
            f"Container({self.path.name!r}, kind={self.kind!r}, "
            f"arrays={self.names()}, {mb:.1f} MB, provider={self.provider.name})"
        )
