"""Out-of-core storage tier: array providers + atomic digest-sealed containers.

``repro.store`` is the memory architecture under the million-node path
(DESIGN.md section 10): an :class:`~repro.store.provider.ArrayProvider`
abstraction (``resident`` heap arrays vs read-only ``mmap`` views) and an
atomic on-disk :class:`~repro.store.container.Container` format (one raw
``.npy`` per array + a sha256-sealed JSON manifest) that the serving
tier's v2 artifacts and the CSR graph container are both built on.
"""

from repro.store.container import (
    Container,
    StoreCorrupt,
    StoreError,
    content_version,
    is_container,
    read_manifest,
    write_container,
)
from repro.store.provider import (
    ArrayProvider,
    MmapProvider,
    ResidentProvider,
    available_providers,
    get_provider,
)

__all__ = [
    "Container",
    "StoreCorrupt",
    "StoreError",
    "content_version",
    "is_container",
    "read_manifest",
    "write_container",
    "ArrayProvider",
    "MmapProvider",
    "ResidentProvider",
    "available_providers",
    "get_provider",
]
