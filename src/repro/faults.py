"""Deterministic fault injection for the distributed runtime.

The paper's 65-node DAS5 runs assume a fault-free cluster; a production
deployment cannot. Li/Ahn/Welling's SG-MCMC sampler tolerates stale pi
reads, which is exactly the property a deployment should exploit for
graceful degradation: a slow, stalled, or dead component should cost
throughput, never correctness.

This module is the single source of truth for *what goes wrong and when*.
A :class:`FaultPlan` is a seeded, immutable schedule of faults that every
distributed layer consumes:

- :mod:`repro.sim.network` / :mod:`repro.sim.rdma` — link latency spikes,
  bandwidth degradation, and RDMA op failures on the simulated fabric;
- :mod:`repro.cluster.dkv` — DKV server stalls, answered with per-batch
  timeouts, bounded exponential-backoff retries, per-server circuit
  breaking, and stale-snapshot fallback;
- :mod:`repro.cluster.comm` — barrier/collective deadlines that raise a
  typed :class:`CommTimeout` instead of hanging;
- :mod:`repro.dist.mp` — worker crashes and stalls at a given iteration,
  detected by the master's heartbeat and healed by re-partitioning the
  dead worker's shard across survivors.

Determinism: the plan owns its own RNG streams (seeded at construction),
so a fixed plan produces a fixed fault sequence, independent of the model
RNG streams. An *empty* plan (no faults configured) is guaranteed to be a
no-op: every consumer bypasses the fault paths entirely, so runs are
bit-identical to a build without this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np


# -- typed failures ---------------------------------------------------------


class FaultError(RuntimeError):
    """Base class for failures surfaced by the fault-tolerance layer."""


class CommTimeout(FaultError):
    """A barrier/collective deadline expired waiting on a rank."""

    def __init__(self, op: str, worker: int, lag: float, timeout: float) -> None:
        self.op = op
        self.worker = worker
        self.lag = lag
        self.timeout = timeout
        lag_s = "inf" if math.isinf(lag) else f"{lag:.3g}s"
        super().__init__(
            f"{op}: worker {worker} lagged {lag_s} past the {timeout:.3g}s deadline"
        )


class DKVTimeout(FaultError):
    """A DKV batch exhausted its retries and stale fallback was disabled."""

    def __init__(self, server: int, attempts: int) -> None:
        self.server = server
        self.attempts = attempts
        super().__init__(
            f"DKV server {server} unresponsive after {attempts} attempts"
        )


class WorkerCrashed(FaultError):
    """One or more worker processes died (or were fenced as dead)."""

    def __init__(self, workers: Sequence[int], stalled: bool = False) -> None:
        self.workers = tuple(sorted(workers))
        self.stalled = stalled
        kind = "stalled past heartbeat deadline" if stalled else "crashed"
        super().__init__(f"worker(s) {list(self.workers)} {kind}")


# -- fault event types ------------------------------------------------------


@dataclass(frozen=True)
class ServerStall:
    """DKV server ``server`` is unresponsive during an iteration window.

    ``flaky_attempts > 0`` models transient slowness instead of a hard
    stall: within the window, retry attempt ``flaky_attempts`` (0-based)
    and later succeed — so a bounded backoff ladder rides it out.
    """

    server: int
    start: int
    duration: int = 1
    flaky_attempts: int = 0

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ValueError("server must be >= 0")
        if self.start < 0 or self.duration < 1:
            raise ValueError("need start >= 0 and duration >= 1")
        if self.flaky_attempts < 0:
            raise ValueError("flaky_attempts must be >= 0")

    def blocks(self, iteration: int, attempt: int) -> bool:
        if not self.start <= iteration < self.start + self.duration:
            return False
        return self.flaky_attempts == 0 or attempt < self.flaky_attempts


@dataclass(frozen=True)
class LinkDegradation:
    """Degrade traffic touching ``node`` (``-1`` = every node) during a
    simulated-time window: latency multiplied, bandwidth divided."""

    node: int = -1
    start: float = 0.0
    duration: float = math.inf
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1")
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    def active(self, node: int, now: float) -> bool:
        if self.node >= 0 and self.node != node:
            return False
        return self.start <= now < self.start + self.duration


@dataclass(frozen=True)
class WorkerCrash:
    """Worker process ``worker`` dies when it begins iteration ``iteration``."""

    worker: int
    iteration: int

    def __post_init__(self) -> None:
        if self.worker < 0 or self.iteration < 0:
            raise ValueError("worker and iteration must be >= 0")


@dataclass(frozen=True)
class WorkerStall:
    """Worker ``worker`` stalls ``seconds`` at iteration ``iteration``
    (real seconds in the multiprocess backend, simulated lag elsewhere)."""

    worker: int
    iteration: int
    seconds: float

    def __post_init__(self) -> None:
        if self.worker < 0 or self.iteration < 0:
            raise ValueError("worker and iteration must be >= 0")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")


# -- the plan ---------------------------------------------------------------


class FaultPlan:
    """A seeded, deterministic schedule of faults.

    Args:
        seed: seed of the plan's private RNG streams (RDMA failure draws).
        server_stalls: DKV server stall windows.
        link_faults: fabric latency/bandwidth degradation windows.
        worker_crashes: process deaths at a given iteration.
        worker_stalls: process stalls at a given iteration.
        rdma_failure_rate: i.i.d. probability that a posted RDMA op fails
            at the transport level (retried by the DKV client).
    """

    def __init__(
        self,
        seed: int = 0,
        server_stalls: Iterable[ServerStall] = (),
        link_faults: Iterable[LinkDegradation] = (),
        worker_crashes: Iterable[WorkerCrash] = (),
        worker_stalls: Iterable[WorkerStall] = (),
        rdma_failure_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= rdma_failure_rate < 1.0:
            raise ValueError("rdma_failure_rate must be in [0, 1)")
        self.seed = int(seed)
        self.server_stalls = tuple(server_stalls)
        self.link_faults = tuple(link_faults)
        self.worker_crashes = tuple(worker_crashes)
        self.worker_stalls = tuple(worker_stalls)
        self.rdma_failure_rate = float(rdma_failure_rate)
        self._rdma_rng = np.random.default_rng(self.seed + 0x5DF0)
        self.rdma_draws = 0

    # -- classification ----------------------------------------------------

    @property
    def empty(self) -> bool:
        """True when the plan schedules nothing — consumers must bypass
        every fault path, keeping runs bit-identical to a plain build."""
        return not (
            self.server_stalls
            or self.link_faults
            or self.worker_crashes
            or self.worker_stalls
            or self.rdma_failure_rate > 0.0
        )

    # -- DKV server stalls --------------------------------------------------

    def server_stalled(self, server: int, iteration: int, attempt: int = 0) -> bool:
        """Would attempt ``attempt`` against ``server`` time out now?"""
        return any(
            s.server == server and s.blocks(iteration, attempt)
            for s in self.server_stalls
        )

    # -- fabric degradation -------------------------------------------------

    def link_factors(self, src: int, dst: int, now: float) -> tuple[float, float]:
        """(latency multiplier, bandwidth divisor) for a transfer between
        ``src`` and ``dst`` at simulated time ``now``. Overlapping faults
        compose multiplicatively."""
        lat = 1.0
        bw = 1.0
        for f in self.link_faults:
            if f.active(src, now) or f.active(dst, now):
                lat *= f.latency_factor
                bw *= f.bandwidth_factor
        return lat, bw

    # -- RDMA op failures ---------------------------------------------------

    def rdma_op_fails(self) -> bool:
        """Deterministic Bernoulli draw from the plan's private stream."""
        if self.rdma_failure_rate <= 0.0:
            return False
        self.rdma_draws += 1
        return bool(self._rdma_rng.random() < self.rdma_failure_rate)

    # -- worker lifecycle ---------------------------------------------------

    def crash_due(self, worker: int, iteration: int) -> bool:
        """Should ``worker`` die on entering ``iteration``?"""
        return any(
            c.worker == worker and c.iteration == iteration
            for c in self.worker_crashes
        )

    def worker_stall_seconds(self, worker: int, iteration: int) -> float:
        """Total injected stall for ``worker`` at ``iteration``."""
        return sum(
            s.seconds
            for s in self.worker_stalls
            if s.worker == worker and s.iteration == iteration
        )

    def max_worker_lag(self, iteration: int) -> tuple[int, float]:
        """(worker, lag seconds) of the worst laggard at ``iteration``.

        A crashed worker lags forever (``inf``); a stalled one lags its
        stall. Used by :class:`~repro.cluster.comm.Communicator` deadlines.
        """
        worst = (-1, 0.0)
        for c in self.worker_crashes:
            if c.iteration <= iteration:
                return c.worker, math.inf
        for s in self.worker_stalls:
            if s.iteration == iteration and s.seconds > worst[1]:
                worst = (s.worker, s.seconds)
        return worst

    # -- display ------------------------------------------------------------

    def describe(self) -> str:
        if self.empty:
            return "FaultPlan(empty)"
        parts = [f"seed={self.seed}"]
        if self.server_stalls:
            parts.append(f"{len(self.server_stalls)} server stall(s)")
        if self.link_faults:
            parts.append(f"{len(self.link_faults)} link fault(s)")
        if self.worker_crashes:
            parts.append(f"{len(self.worker_crashes)} worker crash(es)")
        if self.worker_stalls:
            parts.append(f"{len(self.worker_stalls)} worker stall(s)")
        if self.rdma_failure_rate:
            parts.append(f"rdma_failure_rate={self.rdma_failure_rate:g}")
        return "FaultPlan(" + ", ".join(parts) + ")"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.describe()


def chaos_plan(
    seed: int = 0,
    n_workers: int = 4,
    crash_iteration: int = 5,
    stall_server: int = 0,
    stall_start: int = 2,
    stall_duration: int = 2,
    rdma_failure_rate: float = 0.05,
) -> FaultPlan:
    """A canonical chaos drill: one worker crash, one DKV server stall,
    and a background RDMA failure rate — the acceptance scenario for the
    chaos tests and the ``repro chaos`` CLI drill."""
    if n_workers < 2:
        raise ValueError("chaos drill needs >= 2 workers to survive a crash")
    rng = np.random.default_rng(seed)
    victim = int(rng.integers(n_workers))
    return FaultPlan(
        seed=seed,
        server_stalls=(ServerStall(stall_server, stall_start, stall_duration),),
        worker_crashes=(WorkerCrash(victim, crash_iteration),),
        rdma_failure_rate=rdma_failure_rate,
    )
