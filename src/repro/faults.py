"""Deterministic fault injection for the distributed runtime.

The paper's 65-node DAS5 runs assume a fault-free cluster; a production
deployment cannot. Li/Ahn/Welling's SG-MCMC sampler tolerates stale pi
reads, which is exactly the property a deployment should exploit for
graceful degradation: a slow, stalled, or dead component should cost
throughput, never correctness.

This module is the single source of truth for *what goes wrong and when*.
A :class:`FaultPlan` is a seeded, immutable schedule of faults that every
distributed layer consumes:

- :mod:`repro.sim.network` / :mod:`repro.sim.rdma` — link latency spikes,
  bandwidth degradation, and RDMA op failures on the simulated fabric;
- :mod:`repro.cluster.dkv` — DKV server stalls, answered with per-batch
  timeouts, bounded exponential-backoff retries, per-server circuit
  breaking, and stale-snapshot fallback;
- :mod:`repro.cluster.comm` — barrier/collective deadlines that raise a
  typed :class:`CommTimeout` instead of hanging;
- :mod:`repro.dist.mp` — worker crashes and stalls at a given iteration,
  detected by the master's heartbeat and healed by re-partitioning the
  dead worker's shard across survivors.

The streaming tier has its own fault domain too (:class:`StreamFaultPlan`):
malformed and out-of-order edge arrivals mangled into the stream before
ingestion, mid-generation publish failures, injected process kills at
the trainer's durable-write phase boundaries (:data:`CRASH_PHASES`),
torn journal frame writes, and transient source I/O errors. The
consumers (:class:`repro.stream.trainer.StreamTrainer`,
:class:`repro.stream.journal.IngestJournal`,
:class:`repro.stream.follow.FollowSupervisor`,
:class:`repro.stream.delta.DeltaOverlay`) quarantine bad records,
recover from the journal + manifest, and keep the last-known-good
artifact serving — see DESIGN.md §11.

The serving tier has its own fault domain (:class:`ServeFaultPlan`):
artifact corruption/truncation on disk, worker-*thread* crashes and
stalls inside :class:`~repro.serve.server.ModelServer`, engine latency
spikes, and swap-time publish failures. The serve consumers mirror the
training discipline — typed errors, watchdog respawn, last-known-good
rollback — see :mod:`repro.serve.server` and DESIGN.md §8.

Determinism: each plan owns its own RNG streams (seeded at
construction), so a fixed plan produces a fixed fault sequence,
independent of the model RNG streams. An *empty* plan (no faults
configured) is guaranteed to be a no-op: every consumer bypasses the
fault paths entirely, so runs are bit-identical to a build without this
module.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

import numpy as np


# -- typed failures ---------------------------------------------------------


class FaultError(RuntimeError):
    """Base class for failures surfaced by the fault-tolerance layer."""


class CommTimeout(FaultError):
    """A barrier/collective deadline expired waiting on a rank."""

    def __init__(self, op: str, worker: int, lag: float, timeout: float) -> None:
        self.op = op
        self.worker = worker
        self.lag = lag
        self.timeout = timeout
        lag_s = "inf" if math.isinf(lag) else f"{lag:.3g}s"
        super().__init__(
            f"{op}: worker {worker} lagged {lag_s} past the {timeout:.3g}s deadline"
        )


class DKVTimeout(FaultError):
    """A DKV batch exhausted its retries and stale fallback was disabled."""

    def __init__(self, server: int, attempts: int) -> None:
        self.server = server
        self.attempts = attempts
        super().__init__(
            f"DKV server {server} unresponsive after {attempts} attempts"
        )


class WorkerCrashed(FaultError):
    """One or more worker processes died (or were fenced as dead)."""

    def __init__(self, workers: Sequence[int], stalled: bool = False) -> None:
        self.workers = tuple(sorted(workers))
        self.stalled = stalled
        kind = "stalled past heartbeat deadline" if stalled else "crashed"
        super().__init__(f"worker(s) {list(self.workers)} {kind}")


class InjectedCrash(FaultError):
    """A scheduled process kill fired (stands in for ``kill -9``).

    Raised by the streaming tier's durability drills at an injected
    crash point: the process state past this point is considered gone,
    and recovery must come from what was already durable on disk
    (journal segments, manifest, checkpoints). Tests and the
    ``chaos-stream`` drill catch it at the top level and then resume
    from disk, exactly as a supervisor restarting a dead process would.
    """

    def __init__(self, where: str) -> None:
        self.where = where
        super().__init__(f"injected crash at {where}")


# -- fault event types ------------------------------------------------------


@dataclass(frozen=True)
class ServerStall:
    """DKV server ``server`` is unresponsive during an iteration window.

    ``flaky_attempts > 0`` models transient slowness instead of a hard
    stall: within the window, retry attempt ``flaky_attempts`` (0-based)
    and later succeed — so a bounded backoff ladder rides it out.
    """

    server: int
    start: int
    duration: int = 1
    flaky_attempts: int = 0

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ValueError("server must be >= 0")
        if self.start < 0 or self.duration < 1:
            raise ValueError("need start >= 0 and duration >= 1")
        if self.flaky_attempts < 0:
            raise ValueError("flaky_attempts must be >= 0")

    def blocks(self, iteration: int, attempt: int) -> bool:
        if not self.start <= iteration < self.start + self.duration:
            return False
        return self.flaky_attempts == 0 or attempt < self.flaky_attempts


@dataclass(frozen=True)
class LinkDegradation:
    """Degrade traffic touching ``node`` (``-1`` = every node) during a
    simulated-time window: latency multiplied, bandwidth divided."""

    node: int = -1
    start: float = 0.0
    duration: float = math.inf
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1")
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    def active(self, node: int, now: float) -> bool:
        if self.node >= 0 and self.node != node:
            return False
        return self.start <= now < self.start + self.duration


@dataclass(frozen=True)
class WorkerCrash:
    """Worker process ``worker`` dies when it begins iteration ``iteration``."""

    worker: int
    iteration: int

    def __post_init__(self) -> None:
        if self.worker < 0 or self.iteration < 0:
            raise ValueError("worker and iteration must be >= 0")


@dataclass(frozen=True)
class WorkerStall:
    """Worker ``worker`` stalls ``seconds`` at iteration ``iteration``
    (real seconds in the multiprocess backend, simulated lag elsewhere)."""

    worker: int
    iteration: int
    seconds: float

    def __post_init__(self) -> None:
        if self.worker < 0 or self.iteration < 0:
            raise ValueError("worker and iteration must be >= 0")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")


# -- the plan ---------------------------------------------------------------


class FaultPlan:
    """A seeded, deterministic schedule of faults.

    Args:
        seed: seed of the plan's private RNG streams (RDMA failure draws).
        server_stalls: DKV server stall windows.
        link_faults: fabric latency/bandwidth degradation windows.
        worker_crashes: process deaths at a given iteration.
        worker_stalls: process stalls at a given iteration.
        rdma_failure_rate: i.i.d. probability that a posted RDMA op fails
            at the transport level (retried by the DKV client).
    """

    def __init__(
        self,
        seed: int = 0,
        server_stalls: Iterable[ServerStall] = (),
        link_faults: Iterable[LinkDegradation] = (),
        worker_crashes: Iterable[WorkerCrash] = (),
        worker_stalls: Iterable[WorkerStall] = (),
        rdma_failure_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= rdma_failure_rate < 1.0:
            raise ValueError("rdma_failure_rate must be in [0, 1)")
        self.seed = int(seed)
        self.server_stalls = tuple(server_stalls)
        self.link_faults = tuple(link_faults)
        self.worker_crashes = tuple(worker_crashes)
        self.worker_stalls = tuple(worker_stalls)
        self.rdma_failure_rate = float(rdma_failure_rate)
        self._rdma_rng = np.random.default_rng(self.seed + 0x5DF0)
        self.rdma_draws = 0

    # -- classification ----------------------------------------------------

    @property
    def empty(self) -> bool:
        """True when the plan schedules nothing — consumers must bypass
        every fault path, keeping runs bit-identical to a plain build."""
        return not (
            self.server_stalls
            or self.link_faults
            or self.worker_crashes
            or self.worker_stalls
            or self.rdma_failure_rate > 0.0
        )

    # -- DKV server stalls --------------------------------------------------

    def server_stalled(self, server: int, iteration: int, attempt: int = 0) -> bool:
        """Would attempt ``attempt`` against ``server`` time out now?"""
        return any(
            s.server == server and s.blocks(iteration, attempt)
            for s in self.server_stalls
        )

    # -- fabric degradation -------------------------------------------------

    def link_factors(self, src: int, dst: int, now: float) -> tuple[float, float]:
        """(latency multiplier, bandwidth divisor) for a transfer between
        ``src`` and ``dst`` at simulated time ``now``. Overlapping faults
        compose multiplicatively."""
        lat = 1.0
        bw = 1.0
        for f in self.link_faults:
            if f.active(src, now) or f.active(dst, now):
                lat *= f.latency_factor
                bw *= f.bandwidth_factor
        return lat, bw

    # -- RDMA op failures ---------------------------------------------------

    def rdma_op_fails(self) -> bool:
        """Deterministic Bernoulli draw from the plan's private stream."""
        if self.rdma_failure_rate <= 0.0:
            return False
        self.rdma_draws += 1
        return bool(self._rdma_rng.random() < self.rdma_failure_rate)

    # -- worker lifecycle ---------------------------------------------------

    def crash_due(self, worker: int, iteration: int) -> bool:
        """Should ``worker`` die on entering ``iteration``?"""
        return any(
            c.worker == worker and c.iteration == iteration
            for c in self.worker_crashes
        )

    def worker_stall_seconds(self, worker: int, iteration: int) -> float:
        """Total injected stall for ``worker`` at ``iteration``."""
        return sum(
            s.seconds
            for s in self.worker_stalls
            if s.worker == worker and s.iteration == iteration
        )

    def max_worker_lag(self, iteration: int) -> tuple[int, float]:
        """(worker, lag seconds) of the worst laggard at ``iteration``.

        A crashed worker lags forever (``inf``); a stalled one lags its
        stall. Used by :class:`~repro.cluster.comm.Communicator` deadlines.
        """
        worst = (-1, 0.0)
        for c in self.worker_crashes:
            if c.iteration <= iteration:
                return c.worker, math.inf
        for s in self.worker_stalls:
            if s.iteration == iteration and s.seconds > worst[1]:
                worst = (s.worker, s.seconds)
        return worst

    # -- display ------------------------------------------------------------

    def describe(self) -> str:
        if self.empty:
            return "FaultPlan(empty)"
        parts = [f"seed={self.seed}"]
        if self.server_stalls:
            parts.append(f"{len(self.server_stalls)} server stall(s)")
        if self.link_faults:
            parts.append(f"{len(self.link_faults)} link fault(s)")
        if self.worker_crashes:
            parts.append(f"{len(self.worker_crashes)} worker crash(es)")
        if self.worker_stalls:
            parts.append(f"{len(self.worker_stalls)} worker stall(s)")
        if self.rdma_failure_rate:
            parts.append(f"rdma_failure_rate={self.rdma_failure_rate:g}")
        return "FaultPlan(" + ", ".join(parts) + ")"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.describe()


def chaos_plan(
    seed: int = 0,
    n_workers: int = 4,
    crash_iteration: int = 5,
    stall_server: int = 0,
    stall_start: int = 2,
    stall_duration: int = 2,
    rdma_failure_rate: float = 0.05,
) -> FaultPlan:
    """A canonical chaos drill: one worker crash, one DKV server stall,
    and a background RDMA failure rate — the acceptance scenario for the
    chaos tests and the ``repro chaos`` CLI drill."""
    if n_workers < 2:
        raise ValueError("chaos drill needs >= 2 workers to survive a crash")
    rng = np.random.default_rng(seed)
    victim = int(rng.integers(n_workers))
    return FaultPlan(
        seed=seed,
        server_stalls=(ServerStall(stall_server, stall_start, stall_duration),),
        worker_crashes=(WorkerCrash(victim, crash_iteration),),
        rdma_failure_rate=rdma_failure_rate,
    )


# -- serving-tier fault domain ----------------------------------------------

#: supported on-disk artifact corruption modes (see ServeFaultPlan.corrupt_file).
ARTIFACT_FAULT_MODES = ("flip", "truncate", "payload")


@dataclass(frozen=True)
class ArtifactFault:
    """Corrupt the artifact file used by the ``publish``-th publish attempt.

    ``mode`` selects the damage: ``flip`` XORs bytes mid-archive (caught
    by the zip CRC layer), ``truncate`` cuts the file short (caught by
    the archive opener), ``payload`` rewrites the arrays while keeping
    the recorded content version (caught only by the SHA-256 verify).
    """

    publish: int
    mode: str = "flip"

    def __post_init__(self) -> None:
        if self.publish < 0:
            raise ValueError("publish must be >= 0")
        if self.mode not in ARTIFACT_FAULT_MODES:
            raise ValueError(f"mode must be one of {ARTIFACT_FAULT_MODES}")


@dataclass(frozen=True)
class ServeWorkerCrash:
    """Serve worker thread ``worker`` dies starting its ``batch``-th batch.

    Batch counters are per worker *slot* and survive a respawn (the
    replacement thread inherits the counter), so a scheduled crash fires
    exactly once.
    """

    worker: int
    batch: int

    def __post_init__(self) -> None:
        if self.worker < 0 or self.batch < 0:
            raise ValueError("worker and batch must be >= 0")


@dataclass(frozen=True)
class ServeWorkerStall:
    """Serve worker thread ``worker`` stalls ``seconds`` at its
    ``batch``-th batch (real wall-clock seconds, holding the batch)."""

    worker: int
    batch: int
    seconds: float

    def __post_init__(self) -> None:
        if self.worker < 0 or self.batch < 0:
            raise ValueError("worker and batch must be >= 0")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")


@dataclass(frozen=True)
class SwapFailure:
    """The server's ``publish``-th accepted publish fails mid-swap
    (after the new artifact is installed, before the swap commits)."""

    publish: int

    def __post_init__(self) -> None:
        if self.publish < 0:
            raise ValueError("publish must be >= 0")


class ServeFaultPlan:
    """A seeded, deterministic schedule of serving-tier faults.

    Consumed by :class:`~repro.serve.server.ModelServer` (worker
    crashes/stalls, swap failures), :class:`~repro.serve.engine.QueryEngine`
    (latency spikes), and the chaos-serve drill
    (:func:`repro.bench.servebench.run_chaos_serve`, artifact
    corruption). Mirrors :class:`FaultPlan`: private RNG streams, an
    empty plan is a guaranteed no-op, and a fixed plan reproduces a
    fixed fault sequence (``tests/test_serve_faults.py`` pins this with
    hypothesis).

    Args:
        seed: seed of the plan's private RNG streams.
        artifact_faults: on-disk corruption of publish payloads,
            indexed by the *drill's* publish-attempt counter.
        worker_crashes: serve worker-thread deaths at a per-slot batch
            index.
        worker_stalls: serve worker-thread stalls at a per-slot batch
            index.
        swap_failures: mid-swap failures, indexed by the *server's*
            accepted-publish counter.
        spike_rate: i.i.d. probability that one engine call sleeps
            ``spike_seconds`` (latency spike).
        spike_seconds: duration of one injected latency spike.
    """

    def __init__(
        self,
        seed: int = 0,
        artifact_faults: Iterable[ArtifactFault] = (),
        worker_crashes: Iterable[ServeWorkerCrash] = (),
        worker_stalls: Iterable[ServeWorkerStall] = (),
        swap_failures: Iterable[SwapFailure] = (),
        spike_rate: float = 0.0,
        spike_seconds: float = 0.0,
    ) -> None:
        if not 0.0 <= spike_rate < 1.0:
            raise ValueError("spike_rate must be in [0, 1)")
        if spike_seconds < 0.0:
            raise ValueError("spike_seconds must be >= 0")
        self.seed = int(seed)
        self.artifact_faults = tuple(artifact_faults)
        self.worker_crashes = tuple(worker_crashes)
        self.worker_stalls = tuple(worker_stalls)
        self.swap_failures = tuple(swap_failures)
        self.spike_rate = float(spike_rate)
        self.spike_seconds = float(spike_seconds)
        # Private streams; the lock makes draws safe from concurrent serve
        # worker threads (the *sequence* of draws stays deterministic).
        self._rng_lock = threading.Lock()
        self._spike_rng = np.random.default_rng(self.seed + 0x5E12)
        self._corrupt_rng = np.random.default_rng(self.seed + 0xC0DE)
        self.spike_draws = 0

    @property
    def empty(self) -> bool:
        """True when nothing is scheduled — consumers must bypass every
        fault path, keeping serving bit-identical to a plain build."""
        return not (
            self.artifact_faults
            or self.worker_crashes
            or self.worker_stalls
            or self.swap_failures
            or (self.spike_rate > 0.0 and self.spike_seconds > 0.0)
        )

    # -- engine latency spikes ----------------------------------------------

    def engine_delay(self) -> float:
        """Seconds of injected latency for one engine call (usually 0)."""
        if self.spike_rate <= 0.0 or self.spike_seconds <= 0.0:
            return 0.0
        with self._rng_lock:
            self.spike_draws += 1
            hit = bool(self._spike_rng.random() < self.spike_rate)
        return self.spike_seconds if hit else 0.0

    # -- worker-thread lifecycle --------------------------------------------

    def worker_crash_due(self, worker: int, batch: int) -> bool:
        """Should serve worker ``worker`` die starting batch ``batch``?"""
        return any(
            c.worker == worker and c.batch == batch for c in self.worker_crashes
        )

    def worker_stall_seconds(self, worker: int, batch: int) -> float:
        """Total injected stall for serve worker ``worker`` at ``batch``."""
        return sum(
            s.seconds
            for s in self.worker_stalls
            if s.worker == worker and s.batch == batch
        )

    # -- publish / artifact faults ------------------------------------------

    def swap_fails(self, publish: int) -> bool:
        """Does the server's ``publish``-th accepted publish fail mid-swap?"""
        return any(f.publish == publish for f in self.swap_failures)

    def artifact_fault(self, publish: int) -> Optional[str]:
        """Corruption mode scheduled for publish attempt ``publish``, if any."""
        for f in self.artifact_faults:
            if f.publish == publish:
                return f.mode
        return None

    def corrupt_file(self, path: Union[str, Path], mode: str) -> None:
        """Apply ``mode`` damage to the real file at ``path``.

        Deterministic: the damaged bytes come from the plan's private
        corruption stream, so a fixed plan applied to fixed bytes
        produces a fixed corrupted file.
        """
        p = Path(path)
        if mode not in ARTIFACT_FAULT_MODES:
            raise ValueError(f"mode must be one of {ARTIFACT_FAULT_MODES}")
        if mode == "truncate":
            data = p.read_bytes()
            p.write_bytes(data[: max(1, int(len(data) * 0.6))])
            return
        if mode == "flip":
            data = bytearray(p.read_bytes())
            with self._rng_lock:
                # Damage the middle of the archive (member data, not the
                # zip end-of-central-directory), so the file still *opens*
                # and the CRC/verify layers have to catch it.
                lo, hi = len(data) // 4, max(len(data) // 4 + 1, len(data) // 2)
                offsets = self._corrupt_rng.integers(lo, hi, size=64)
                masks = self._corrupt_rng.integers(1, 256, size=64)
            for off, mask in zip(offsets, masks):
                data[int(off)] ^= int(mask)
            p.write_bytes(bytes(data))
            return
        # mode == "payload": rewrite a *structurally valid* archive whose
        # arrays no longer match the recorded content version — swap two pi
        # rows (all shape/simplex invariants still hold). Only the SHA-256
        # verify layer can catch this one.
        with np.load(p, allow_pickle=False) as data:
            arrays = {key: data[key].copy() for key in data.files}
        pi = arrays["pi"]
        if pi.shape[0] >= 2:
            pi[[0, 1]] = pi[[1, 0]]
        else:  # pragma: no cover - degenerate single-row artifact
            arrays["beta"] = arrays["beta"][::-1].copy()
        np.savez(p, **arrays)

    # -- display ------------------------------------------------------------

    def describe(self) -> str:
        if self.empty:
            return "ServeFaultPlan(empty)"
        parts = [f"seed={self.seed}"]
        if self.artifact_faults:
            modes = ",".join(f.mode for f in self.artifact_faults)
            parts.append(f"{len(self.artifact_faults)} artifact fault(s) [{modes}]")
        if self.worker_crashes:
            parts.append(f"{len(self.worker_crashes)} worker crash(es)")
        if self.worker_stalls:
            parts.append(f"{len(self.worker_stalls)} worker stall(s)")
        if self.swap_failures:
            parts.append(f"{len(self.swap_failures)} swap failure(s)")
        if self.spike_rate > 0.0 and self.spike_seconds > 0.0:
            parts.append(
                f"spikes {self.spike_rate:g}x{self.spike_seconds * 1e3:g}ms"
            )
        return "ServeFaultPlan(" + ", ".join(parts) + ")"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.describe()


# -- streaming-tier fault domain ---------------------------------------------

#: arrival corruption modes StreamFaultPlan.mangle_arrivals cycles through.
ARRIVAL_FAULT_MODES = ("self-loop", "negative-id", "id-overflow")


@dataclass(frozen=True)
class PublishFailure:
    """The trainer's publish for ``generation`` fails mid-generation.

    The generation still trains and checkpoints; only the artifact
    rewrite is suppressed, so the serving tier keeps answering from the
    last successfully published generation.
    """

    generation: int

    def __post_init__(self) -> None:
        if self.generation < 0:
            raise ValueError("generation must be >= 0")


#: the trainer's durable-generation phases at which a crash can be injected,
#: in execution order (see repro.stream.trainer.StreamTrainer.run_generation).
CRASH_PHASES = (
    "post-journal-append",
    "mid-compaction",
    "post-checkpoint-pre-publish",
    "post-publish-pre-manifest",
)


@dataclass(frozen=True)
class TrainerCrash:
    """The streaming trainer dies (:class:`InjectedCrash`) when generation
    ``generation`` reaches phase ``phase``.

    Phases are the durable-write boundaries of
    :meth:`~repro.stream.trainer.StreamTrainer.run_generation`; killing at
    each one exercises a distinct recovery path (see DESIGN.md §11
    recovery matrix). ``mid-compaction`` fires *inside*
    :meth:`~repro.stream.journal.IngestJournal.compact`, after the active
    segment is sealed but before obsolete segments are unlinked.
    """

    phase: str
    generation: int

    def __post_init__(self) -> None:
        if self.phase not in CRASH_PHASES:
            raise ValueError(f"phase must be one of {CRASH_PHASES}")
        if self.generation < 0:
            raise ValueError("generation must be >= 0")


@dataclass(frozen=True)
class JournalTear:
    """The journal's ``append``-th frame write is torn: a partial frame
    reaches the segment file (no fsync) and the process dies
    (:class:`InjectedCrash`) before the append is acknowledged.

    Models a kill mid-``write(2)``. The torn tail must be detected and
    truncated on the next :class:`~repro.stream.journal.IngestJournal`
    open; because the append was never acknowledged, the caller re-feeds
    the batch and overlay dedup keeps the semantics exactly-once.
    """

    append: int

    def __post_init__(self) -> None:
        if self.append < 0:
            raise ValueError("append must be >= 0")


@dataclass(frozen=True)
class SourceFault:
    """Polls ``poll`` .. ``poll + errors - 1`` of the live source raise
    ``OSError`` (transient I/O failure; poll counters are the follow
    supervisor's attempt indices). The supervisor must ride it out with
    jittered exponential backoff, or raise a typed ``SourceStalled``
    once the stall deadline expires.
    """

    poll: int
    errors: int = 1

    def __post_init__(self) -> None:
        if self.poll < 0:
            raise ValueError("poll must be >= 0")
        if self.errors < 1:
            raise ValueError("errors must be >= 1")

    def hits(self, poll: int) -> bool:
        return self.poll <= poll < self.poll + self.errors


class StreamFaultPlan:
    """A seeded, deterministic schedule of streaming-tier faults.

    Consumed by :class:`repro.stream.trainer.StreamTrainer`, which runs
    every arrival batch through :meth:`mangle_arrivals` before ingestion
    and consults :meth:`publish_fails` before publishing. Mirrors the
    other plans: private RNG stream, an empty plan is a guaranteed no-op,
    and a fixed plan mangles a fixed stream identically.

    The mangler is duck-typed over arrival records — any frozen
    dataclass with ``(timestamp, src, dst)`` fields (i.e.
    :class:`repro.stream.source.EdgeArrival`) works — so this module
    never imports :mod:`repro.stream`.

    Args:
        seed: seed of the plan's private RNG stream.
        malformed_rate: i.i.d. probability that an arrival is corrupted
            into a malformed record (mode cycled deterministically
            through ``ARRIVAL_FAULT_MODES``).
        out_of_order_rate: i.i.d. probability that an arrival's timestamp
            is pushed far into the past.
        publish_failures: generations whose publish is suppressed.
        trainer_crashes: injected process kills at durable-write phase
            boundaries of the generation loop (see :data:`CRASH_PHASES`).
        journal_tears: torn journal frame writes, indexed by the
            journal's lifetime append counter.
        source_faults: transient ``OSError`` windows on live-source
            polls, indexed by the follow supervisor's poll counter.
    """

    def __init__(
        self,
        seed: int = 0,
        malformed_rate: float = 0.0,
        out_of_order_rate: float = 0.0,
        publish_failures: Iterable[PublishFailure] = (),
        trainer_crashes: Iterable[TrainerCrash] = (),
        journal_tears: Iterable[JournalTear] = (),
        source_faults: Iterable[SourceFault] = (),
    ) -> None:
        if not 0.0 <= malformed_rate < 1.0:
            raise ValueError("malformed_rate must be in [0, 1)")
        if not 0.0 <= out_of_order_rate < 1.0:
            raise ValueError("out_of_order_rate must be in [0, 1)")
        self.seed = int(seed)
        self.malformed_rate = float(malformed_rate)
        self.out_of_order_rate = float(out_of_order_rate)
        self.publish_failures = tuple(publish_failures)
        self.trainer_crashes = tuple(trainer_crashes)
        self.journal_tears = tuple(journal_tears)
        self.source_faults = tuple(source_faults)
        self._rng = np.random.default_rng(self.seed + 0x57E4)
        self.mangle_draws = 0

    @property
    def empty(self) -> bool:
        """True when nothing is scheduled — consumers must bypass every
        fault path, keeping streaming bit-identical to a plain build."""
        return not (
            self.malformed_rate > 0.0
            or self.out_of_order_rate > 0.0
            or self.publish_failures
            or self.trainer_crashes
            or self.journal_tears
            or self.source_faults
        )

    # -- arrival mangling ----------------------------------------------------

    def mangle_arrivals(self, arrivals: Sequence) -> list:
        """Return ``arrivals`` with scheduled corruption applied.

        Each record independently draws malformed-then-out-of-order from
        the plan's private stream (two draws per record, so the fault
        sequence is independent of which faults are enabled). Corruption
        rebuilds records via :func:`dataclasses.replace`; the originals
        are never mutated.
        """
        import dataclasses

        if self.empty or not arrivals:
            return list(arrivals)
        out = []
        n_mangled = 0
        for a in arrivals:
            self.mangle_draws += 2
            bad = self._rng.random() < self.malformed_rate
            late = self._rng.random() < self.out_of_order_rate
            if bad:
                mode = ARRIVAL_FAULT_MODES[n_mangled % len(ARRIVAL_FAULT_MODES)]
                n_mangled += 1
                if mode == "self-loop":
                    a = dataclasses.replace(a, dst=a.src)
                elif mode == "negative-id":
                    a = dataclasses.replace(a, src=-1)
                else:  # id-overflow
                    a = dataclasses.replace(a, dst=(1 << 31) + 7)
            elif late:
                a = dataclasses.replace(a, timestamp=a.timestamp - 1e6)
            out.append(a)
        return out

    # -- publish suppression -------------------------------------------------

    def publish_fails(self, generation: int) -> bool:
        """Is the publish for ``generation`` scheduled to fail?"""
        return any(f.generation == generation for f in self.publish_failures)

    # -- durability faults ---------------------------------------------------

    def crash_due(self, phase: str, generation: int) -> bool:
        """Should the trainer die at ``phase`` of ``generation``?"""
        return any(
            c.phase == phase and c.generation == generation
            for c in self.trainer_crashes
        )

    def journal_tear_due(self, append_index: int) -> bool:
        """Is the journal's ``append_index``-th frame write torn?"""
        return any(t.append == append_index for t in self.journal_tears)

    def source_io_fails(self, poll_index: int) -> bool:
        """Does the live source's ``poll_index``-th poll raise OSError?"""
        return any(f.hits(poll_index) for f in self.source_faults)

    # -- display ------------------------------------------------------------

    def describe(self) -> str:
        if self.empty:
            return "StreamFaultPlan(empty)"
        parts = [f"seed={self.seed}"]
        if self.malformed_rate:
            parts.append(f"malformed_rate={self.malformed_rate:g}")
        if self.out_of_order_rate:
            parts.append(f"out_of_order_rate={self.out_of_order_rate:g}")
        if self.publish_failures:
            gens = ",".join(str(f.generation) for f in self.publish_failures)
            parts.append(f"publish failure(s) @ gen {gens}")
        if self.trainer_crashes:
            where = ",".join(
                f"{c.phase}@g{c.generation}" for c in self.trainer_crashes
            )
            parts.append(f"trainer crash(es) [{where}]")
        if self.journal_tears:
            idx = ",".join(str(t.append) for t in self.journal_tears)
            parts.append(f"journal tear(s) @ append {idx}")
        if self.source_faults:
            polls = ",".join(
                f"{f.poll}x{f.errors}" for f in self.source_faults
            )
            parts.append(f"source fault(s) @ poll {polls}")
        return "StreamFaultPlan(" + ", ".join(parts) + ")"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.describe()


def chaos_serve_plan(
    seed: int = 0,
    n_workers: int = 2,
    crash_batch: int = 3,
    spike_rate: float = 0.05,
    spike_seconds: float = 0.002,
) -> ServeFaultPlan:
    """The canonical serving chaos drill: two corrupt publish payloads
    (one caught by the archive/CRC layer, one only by the SHA-256
    verify), one mid-swap failure on the first publish the server
    actually accepts, one worker-thread crash, and background engine
    latency spikes — the acceptance scenario for ``repro chaos-serve``
    and ``tests/test_serve_faults.py``."""
    if n_workers < 1:
        raise ValueError("serve chaos drill needs >= 1 worker thread")
    rng = np.random.default_rng(seed)
    victim = int(rng.integers(n_workers))
    return ServeFaultPlan(
        seed=seed,
        artifact_faults=(
            ArtifactFault(publish=0, mode="truncate"),
            ArtifactFault(publish=1, mode="payload"),
        ),
        swap_failures=(SwapFailure(publish=0),),
        worker_crashes=(ServeWorkerCrash(victim, crash_batch),),
        spike_rate=spike_rate,
        spike_seconds=spike_seconds,
    )
