"""Model selection: choosing K by held-out perplexity.

The paper's introduction motivates Bayesian graphical models partly by
model selection; in practice the number of latent communities K is picked
by held-out fit. This example sweeps K on a graph with 6 planted
communities, stops each run with the convergence monitor, and shows that
held-out perplexity (and link-prediction AUC) select the right order of
model.

Run:  python examples/model_selection.py
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import format_table
from repro.config import AMMSBConfig, StepSizeConfig
from repro.core.diagnostics import ConvergenceMonitor, effective_sample_size, geweke_z
from repro.core.perplexity import link_prediction_auc
from repro.core.sampler import AMMSBSampler
from repro.graph.generators import planted_overlapping_graph
from repro.graph.split import split_heldout

TRUE_K = 6


def main() -> None:
    rng = np.random.default_rng(0)
    graph, _ = planted_overlapping_graph(
        400, TRUE_K, memberships_per_vertex=1, p_in=0.3, p_out=0.002, rng=rng
    )
    split = split_heldout(graph, 0.04, rng=np.random.default_rng(1))
    print(f"graph: {graph} with {TRUE_K} planted communities\n")

    rows = []
    for k in (2, 4, 6, 10, 16):
        cfg = AMMSBConfig(
            n_communities=k,
            mini_batch_vertices=64,
            neighbor_sample_size=32,
            step_phi=StepSizeConfig(a=0.05),
            step_theta=StepSizeConfig(a=0.05),
            seed=123,
        )
        sampler = AMMSBSampler(split.train, cfg, heldout=split)
        monitor = ConvergenceMonitor(window=6, rel_tol=0.003, min_checkpoints=10)
        beta_trace = []
        while sampler.iteration < 6000:
            sampler.run(150, perplexity_every=50)
            beta_trace.append(float(sampler.state.beta.mean()))
            if monitor.update(sampler.perplexity_estimator.value()):
                break
        auc = link_prediction_auc(
            sampler.state.pi, sampler.state.beta,
            split.heldout_pairs, split.heldout_labels, cfg.delta,
        )
        trace = np.array(beta_trace)
        rows.append(
            {
                "K": k,
                "iterations": sampler.iteration,
                "perplexity": monitor.best,
                "auc": auc,
                "ess(beta)": effective_sample_size(trace) if len(trace) >= 4 else float("nan"),
                "geweke_z": geweke_z(trace) if len(trace) >= 20 else float("nan"),
            }
        )
        print(f"  K={k:2d}: stopped at iteration {sampler.iteration}, "
              f"perplexity {monitor.best:.3f}, AUC {auc:.3f}")

    print()
    print(format_table(rows, title="model selection by held-out fit"))
    best = min(rows, key=lambda r: r["perplexity"])
    print(f"\nselected K = {best['K']} (true K = {TRUE_K})")
    print("under-fitted models (K < 6) score clearly worse; over-fitted "
          "ones waste capacity but degrade gracefully — the usual a-MMSB "
          "model-selection picture.")


if __name__ == "__main__":
    main()
