"""Quickstart: detect overlapping communities in a small graph.

Generates a graph with planted overlapping communities, runs the
sequential SG-MCMC sampler (Algorithm 1 of the paper), and reports
held-out perplexity plus recovery metrics against the planted truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.config import AMMSBConfig, StepSizeConfig
from repro.core.estimation import PosteriorMean, extract_communities
from repro.core.sampler import AMMSBSampler
from repro.graph.generators import planted_overlapping_graph
from repro.graph.metrics import best_match_f1, overlapping_nmi
from repro.graph.split import split_heldout


def main() -> None:
    # 1. A 400-vertex graph; every vertex belongs to 1-2 of 6 communities.
    rng = np.random.default_rng(0)
    graph, truth = planted_overlapping_graph(
        n_vertices=400,
        n_communities=6,
        memberships_per_vertex=2,
        p_in=0.35,
        p_out=0.001,
        rng=rng,
    )
    print(f"graph: {graph}")

    # 2. Hold out 3% of links (plus matched non-links) for perplexity.
    split = split_heldout(graph, heldout_fraction=0.03, rng=rng)
    print(f"held-out pairs: {split.n_heldout} ({split.n_links} links)")

    # 3. Configure and run the SG-MCMC sampler.
    config = AMMSBConfig(
        n_communities=6,
        mini_batch_vertices=64,
        neighbor_sample_size=32,
        step_phi=StepSizeConfig(a=0.05),
        step_theta=StepSizeConfig(a=0.05),
        seed=42,
    )
    sampler = AMMSBSampler(split.train, config, heldout=split)
    posterior = PosteriorMean(graph.n_vertices, config.n_communities)

    for round_idx in range(5):
        sampler.run(800, perplexity_every=50)
        print(
            f"iteration {sampler.iteration:5d}  "
            f"perplexity {sampler.perplexity_estimator.value():.3f}"
        )
    # Average a handful of late posterior samples for the point estimate.
    for _ in range(4):
        sampler.run(250)
        posterior.record(sampler.state.pi, sampler.state.beta)

    # 4. Extract overlapping communities from the posterior mean.
    covers = extract_communities(posterior.pi, threshold=0.25)
    print(f"\nrecovered {len(covers)} communities, sizes: {[c.size for c in covers]}")
    f1 = best_match_f1(covers, truth.covers)
    nmi = overlapping_nmi(covers, truth.covers, graph.n_vertices)
    print(f"recovery vs planted truth: best-match F1 = {f1:.3f}, NMI = {nmi:.3f}")

    overlap = sum(1 for v in range(graph.n_vertices)
                  if sum(v in c for c in covers) >= 2)
    print(f"vertices assigned to >= 2 communities: {overlap}")


if __name__ == "__main__":
    main()
