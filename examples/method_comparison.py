"""Inference-method comparison: SG-MCMC vs SVI vs full-batch Langevin/MH.

Reproduces the qualitative claim behind the paper's choice of algorithm
(Section I: the SG-MCMC method of [16] 'turned out to be faster and more
accurate than the SVB method'): on the same graph and budget, the
mini-batch SG-MCMC sampler reaches a lower held-out perplexity than the
stochastic variational baseline, while the classic full-batch methods pay
O(N^2 K) per iteration.

Run:  python examples/method_comparison.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import format_table
from repro.config import AMMSBConfig, StepSizeConfig
from repro.core.mcmc_batch import BatchLangevinAMMSB
from repro.core.sampler import AMMSBSampler
from repro.core.svi import SVIAMMSB
from repro.graph.generators import planted_overlapping_graph
from repro.graph.split import split_heldout


def main() -> None:
    rng = np.random.default_rng(0)
    graph, truth = planted_overlapping_graph(
        300, 4, memberships_per_vertex=1, p_in=0.25, p_out=0.003, rng=rng
    )
    split = split_heldout(graph, 0.05, rng=np.random.default_rng(1))
    print(f"graph: {graph}, held-out pairs: {split.n_heldout}")

    config = AMMSBConfig(
        n_communities=4,
        mini_batch_vertices=48,
        neighbor_sample_size=32,
        step_phi=StepSizeConfig(a=0.05),
        step_theta=StepSizeConfig(a=0.05),
        seed=7,
    )

    rows = []

    # SG-MCMC (the paper's algorithm): cheap O(n) iterations.
    t0 = time.perf_counter()
    sgmcmc = AMMSBSampler(split.train, config, heldout=split)
    sgmcmc.run(4000, perplexity_every=100)
    rows.append(
        {
            "method": "SG-MCMC (paper)",
            "iterations": 4000,
            "seconds": time.perf_counter() - t0,
            "perplexity": sgmcmc.perplexity_estimator.value(),
        }
    )

    # Stochastic variational inference baseline.
    t0 = time.perf_counter()
    svi = SVIAMMSB(split.train, config, heldout=split)
    svi.run(4000, perplexity_every=100)
    rows.append(
        {
            "method": "SVI (Gopalan et al.)",
            "iterations": 4000,
            "seconds": time.perf_counter() - t0,
            "perplexity": svi.perplexity_estimator.value(),
        }
    )

    # Full-batch unadjusted Langevin: exact gradients, O(N^2 K) / iter.
    t0 = time.perf_counter()
    lmc = BatchLangevinAMMSB(split.train, config, heldout=split)
    lmc.run(300, perplexity_every=20)
    rows.append(
        {
            "method": "full-batch Langevin",
            "iterations": 300,
            "seconds": time.perf_counter() - t0,
            "perplexity": lmc.perplexity_estimator.value(),
        }
    )

    # Exact MH random-walk chain: correct but slow-mixing.
    t0 = time.perf_counter()
    mh = BatchLangevinAMMSB(split.train, config, heldout=split, mh_test=True)
    mh.run(300, perplexity_every=20)
    accept = float(np.mean([s.accepted for s in mh.history]))
    rows.append(
        {
            "method": f"random-walk MH (accept={accept:.2f})",
            "iterations": 300,
            "seconds": time.perf_counter() - t0,
            "perplexity": mh.perplexity_estimator.value(),
        }
    )

    print()
    print(format_table(rows, title="held-out perplexity by method (lower is better)"))
    best = min(rows, key=lambda r: r["perplexity"])
    print(f"\nbest: {best['method']}")


if __name__ == "__main__":
    main()
