"""Social-network analysis on a LiveJournal-like graph.

Uses the com-LiveJournal synthetic stand-in (same average degree and
community-size statistics as the SNAP graph at 1/1000 scale), detects
overlapping communities with the multi-threaded engine, and mines the
result: bridge users (high membership entropy), community quality
(conductance), and recovery against the generative ground truth.

Run:  python examples/social_network_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.config import AMMSBConfig, StepSizeConfig
from repro.core.estimation import PosteriorMean, extract_communities, membership_entropy
from repro.graph.datasets import load_dataset
from repro.graph.metrics import best_match_f1, conductance
from repro.graph.split import split_heldout
from repro.parallel.sampler import ThreadedAMMSBSampler


def main() -> None:
    graph, truth, spec = load_dataset("com-LiveJournal", scale=2.5e-4)
    print(f"{spec.name} stand-in: {graph} (full scale: N={spec.n_vertices:,}, "
          f"|E|={spec.n_edges:,})")
    print(f"ground-truth communities in stand-in: {truth.n_communities}")

    split = split_heldout(graph, 0.02, rng=np.random.default_rng(1))
    config = AMMSBConfig(
        n_communities=truth.n_communities,
        mini_batch_vertices=max(128, graph.n_vertices // 8),
        neighbor_sample_size=32,
        step_phi=StepSizeConfig(a=0.05),
        step_theta=StepSizeConfig(a=0.05),
        seed=3,
    )
    sampler = ThreadedAMMSBSampler(split.train, config, heldout=split, n_threads=4)
    posterior = PosteriorMean(graph.n_vertices, config.n_communities)

    print("\ntraining (multi-threaded engine):")
    for _ in range(5):
        sampler.run(600, perplexity_every=50)
        posterior.record(sampler.state.pi, sampler.state.beta)
        print(f"  iter {sampler.iteration:5d}  "
              f"perplexity {sampler.perplexity_estimator.value():.3f}")

    pi = posterior.pi
    covers = extract_communities(pi, threshold=0.25, min_size=3)
    print(f"\ndetected {len(covers)} communities "
          f"(sizes: {sorted((c.size for c in covers), reverse=True)[:10]} ...)")

    # Community quality: conductance of the 5 largest detected communities.
    print("\nconductance of the largest detected communities:")
    for i, c in enumerate(covers[:5]):
        phi = conductance(graph, c)
        print(f"  community {i}: size {c.size:4d}  conductance {phi:.3f}")

    # Bridge users: vertices whose memberships span several communities.
    entropy = membership_entropy(pi)
    bridges = np.argsort(entropy)[-5:][::-1]
    print("\ntop bridge users (highest membership entropy):")
    for v in bridges:
        top = np.argsort(pi[v])[-3:][::-1]
        shares = ", ".join(f"k{int(k)}:{pi[v, k]:.2f}" for k in top)
        print(f"  vertex {int(v):5d}  degree {graph.degree(int(v)):3d}  {shares}")

    f1 = best_match_f1(covers, truth.covers)
    print(f"\nrecovery vs generative ground truth: best-match F1 = {f1:.3f}")


if __name__ == "__main__":
    main()
