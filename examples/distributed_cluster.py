"""Distributed execution on a simulated DAS5 cluster.

Runs the real master-worker SG-MCMC engine (every kernel executes; the
cluster — MPI collectives, RDMA DKV store, FDR InfiniBand — is simulated
and billed by the calibrated cost model) on a Friendster-like stand-in,
compares pipelined vs non-pipelined stage breakdowns, and then projects
the run to the paper's full scale (65 nodes, K = 12288) analytically.

Run:  python examples/distributed_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import format_table
from repro.cluster.spec import das5
from repro.config import AMMSBConfig, StepSizeConfig
from repro.dist.analytic import analytic_iteration, dataset_shape
from repro.dist.sampler import DistributedAMMSBSampler
from repro.graph.datasets import load_dataset
from repro.graph.split import split_heldout


def main() -> None:
    graph, truth, spec = load_dataset("com-Friendster", scale=2e-4)
    print(f"{spec.name} stand-in: {graph}")

    split = split_heldout(graph, 0.01, rng=np.random.default_rng(0))
    config = AMMSBConfig(
        n_communities=truth.n_communities,
        mini_batch_vertices=512,
        neighbor_sample_size=32,
        step_phi=StepSizeConfig(a=0.05),
        step_theta=StepSizeConfig(a=0.05),
        seed=11,
    )

    rows = []
    for pipelined in (False, True):
        sampler = DistributedAMMSBSampler(
            split.train, config, cluster=das5(8), heldout=split, pipelined=pipelined
        )
        sampler.run(200, perplexity_every=50)
        means = sampler.timing.mean_stage_times()
        rows.append(
            {
                "mode": "pipelined" if pipelined else "plain",
                "draw_deploy_ms": means["draw_deploy"] * 1e3,
                "load_pi_ms": means["load_pi"] * 1e3,
                "phi_compute_ms": means["update_phi_compute"] * 1e3,
                "update_phi_ms": means["update_phi"] * 1e3,
                "beta_ms": means["update_beta_theta"] * 1e3,
                "total_ms": means["total"] * 1e3,
                "perplexity": sampler.last_perplexity(),
            }
        )
    print()
    print(format_table(rows, title="8 simulated DAS5 workers, 200 iterations (stand-in)"))
    print("\n(pipelining changes only the simulated clock — the perplexity "
          "columns match because the math is identical)")

    # Full-scale projection: the paper's Table III configuration.
    print("\nfull-scale analytic projection (com-Friendster, K=12288, 64+1 nodes):")
    proj_rows = []
    shape = dataset_shape("com-Friendster", 12288)
    for pipelined in (False, True):
        t = analytic_iteration(shape, cluster=das5(64), pipelined=pipelined)
        proj_rows.append(
            {
                "mode": "pipelined" if pipelined else "plain",
                "ms_per_iteration": t.total * 1e3,
                "update_phi_ms": t.update_phi * 1e3,
                "hours_for_40k_iter": t.total * 40_000 / 3600.0,
            }
        )
    print(format_table(proj_rows))
    print("\npaper Table III reports 450 (plain) and 365 (pipelined) ms; "
          "Figure 6-a reports convergence in 3-4 hours.")


if __name__ == "__main__":
    main()
