"""run_until_converged driver tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AMMSBConfig, StepSizeConfig
from repro.core.diagnostics import ConvergenceMonitor
from repro.core.sampler import AMMSBSampler
from repro.graph.split import split_heldout


class TestRunUntilConverged:
    def test_requires_heldout(self, planted, config):
        graph, _ = planted
        s = AMMSBSampler(graph, config)
        with pytest.raises(RuntimeError):
            s.run_until_converged()

    def test_stops_within_budget(self, planted):
        graph, _ = planted
        split = split_heldout(graph, 0.03, np.random.default_rng(5))
        cfg = AMMSBConfig(
            n_communities=4,
            mini_batch_vertices=48,
            neighbor_sample_size=24,
            seed=11,
            step_phi=StepSizeConfig(a=0.05),
            step_theta=StepSizeConfig(a=0.05),
        )
        s = AMMSBSampler(split.train, cfg, heldout=split)
        best, iters = s.run_until_converged(
            max_iterations=6000,
            checkpoint_every=150,
            monitor=ConvergenceMonitor(window=5, rel_tol=0.01, min_checkpoints=8),
        )
        assert iters <= 6000
        assert np.isfinite(best)
        assert best < 3.5  # actually learned something
        assert s.iteration == iters

    def test_hard_budget_respected(self, planted, config):
        graph, _ = planted
        split = split_heldout(graph, 0.03, np.random.default_rng(5))
        s = AMMSBSampler(split.train, config, heldout=split)
        # An impossible tolerance: the monitor never fires; the budget caps.
        monitor = ConvergenceMonitor(window=3, rel_tol=-1.0, min_checkpoints=2)
        _, iters = s.run_until_converged(
            max_iterations=300, checkpoint_every=100, monitor=monitor
        )
        assert iters == 300
