"""Crash-at-every-phase resume: exactly-once generations from the journal."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.config import AMMSBConfig, StepSizeConfig
from repro.faults import CRASH_PHASES, InjectedCrash, StreamFaultPlan, TrainerCrash
from repro.graph.io import load_csr
from repro.store.container import read_manifest
from repro.stream import EdgeArrival, ResumeError, StreamTrainer, SyntheticArrivalSource

N_ITER = 8


def _config(seed=11):
    return AMMSBConfig(
        n_communities=4,
        mini_batch_vertices=32,
        neighbor_sample_size=16,
        seed=seed,
        step_phi=StepSizeConfig(a=0.05),
        step_theta=StepSizeConfig(a=0.05),
    )


@pytest.fixture()
def stream(planted):
    graph, _ = planted
    source = SyntheticArrivalSource(graph, base_fraction=0.85, seed=3)
    return source.base_graph(), list(source.batches(4))


def _trainer(base, tmp_path, **kwargs):
    kwargs.setdefault("iterations_per_generation", N_ITER)
    kwargs.setdefault("publish_path", tmp_path / "artifact.npz")
    kwargs.setdefault("heldout_fraction", 0.05)
    return StreamTrainer(base, _config(), tmp_path / "work", **kwargs)


def _final_state(workdir: Path):
    """(content_version, edge keys, n_vertices) of the digested CSR."""
    manifest = StreamTrainer.read_manifest(workdir)
    graph_path = Path(manifest["graph_path"])
    if not graph_path.is_absolute():
        graph_path = workdir / graph_path
    graph = load_csr(graph_path, provider="resident")
    version = read_manifest(graph_path)["content_version"]
    return version, frozenset(int(k) for k in graph.keys), graph.n_vertices


class TestManifest:
    def test_written_from_birth_and_refused_on_reuse(self, stream, tmp_path):
        base, _ = stream
        trainer = _trainer(base, tmp_path)
        manifest = StreamTrainer.read_manifest(tmp_path / "work")
        assert manifest["generation"] == 0
        assert manifest["digested_seqno"] == -1
        with pytest.raises(ResumeError, match="already holds"):
            _trainer(base, tmp_path)
        trainer.journal.close()

    def test_tracks_each_generation(self, stream, tmp_path):
        base, batches = stream
        trainer = _trainer(base, tmp_path)
        trainer.run_generation(batches[0])
        manifest = StreamTrainer.read_manifest(tmp_path / "work")
        assert manifest["generation"] == 1
        assert manifest["iteration"] == N_ITER
        assert manifest["digested_seqno"] == trainer.journal.last_seqno
        assert manifest["artifact_path"]

    def test_resume_missing_workdir_raises(self, tmp_path):
        with pytest.raises(ResumeError, match="manifest"):
            StreamTrainer.resume(tmp_path / "nowhere")


class TestCrashResume:
    @pytest.mark.parametrize("phase", CRASH_PHASES)
    def test_kill_then_resume_matches_uninterrupted(
        self, stream, tmp_path, phase
    ):
        base, batches = stream

        # Uninterrupted reference.
        ref = _trainer(base, tmp_path / "ref")
        for batch in batches:
            ref.run_generation(batch)
        ref_version, ref_keys, ref_n = _final_state(tmp_path / "ref" / "work")
        ref.journal.close()

        # Killed at `phase` during generation 2, then resumed.
        crash_at = 2
        faults = StreamFaultPlan(
            seed=0, trainer_crashes=(TrainerCrash(phase=phase, generation=crash_at),)
        )
        trainer = _trainer(base, tmp_path / "kill", faults=faults)
        with pytest.raises(InjectedCrash, match=phase):
            for batch in batches:
                trainer.run_generation(batch)
        trainer.journal.close()  # the dead process's handle

        resumed = StreamTrainer.resume(
            (tmp_path / "kill") / "work",
            iterations_per_generation=N_ITER,
            heldout_fraction=0.05,
        )
        # At-least-once delivery: the crashed batch is re-fed; the journal
        # and overlay must fold it back to exactly-once state.
        for batch in batches[crash_at:]:
            resumed.run_generation(batch)
        version, keys, n = _final_state((tmp_path / "kill") / "work")
        assert keys == ref_keys
        assert n == ref_n
        assert version == ref_version
        resumed.journal.close()

    def test_resume_restores_clock_and_schedule(self, stream, tmp_path):
        base, batches = stream
        trainer = _trainer(base, tmp_path)
        trainer.run_generation(batches[0])
        iteration, generation = trainer.iteration, trainer.generation
        trainer.journal.close()
        resumed = StreamTrainer.resume(
            tmp_path / "work", iterations_per_generation=N_ITER,
            heldout_fraction=0.05,
        )
        assert resumed.iteration == iteration
        assert resumed.generation == generation
        assert resumed.last_published is not None
        rep = resumed.run_generation(batches[1])
        assert rep.generation == generation
        assert resumed.iteration == iteration + N_ITER
        resumed.journal.close()

    def test_post_crash_journal_replay_restores_pending(self, stream, tmp_path):
        base, batches = stream
        faults = StreamFaultPlan(
            seed=0,
            trainer_crashes=(
                TrainerCrash(phase="post-journal-append", generation=1),
            ),
        )
        trainer = _trainer(base, tmp_path, faults=faults)
        trainer.run_generation(batches[0])
        with pytest.raises(InjectedCrash):
            trainer.run_generation(batches[1])
        journaled = trainer.journal.last_seqno
        trainer.journal.close()
        resumed = StreamTrainer.resume(
            tmp_path / "work", iterations_per_generation=N_ITER,
            heldout_fraction=0.05,
        )
        # The journaled-but-undigested batch is back in the overlay.
        assert resumed.journal.last_seqno == journaled
        assert resumed.overlay.n_pending > 0
        resumed.journal.close()

    def test_quarantine_records_survive_crash_without_duplication(
        self, stream, tmp_path
    ):
        base, batches = stream
        bad = [
            EdgeArrival(timestamp=0.25, src=-9, dst=4),
            EdgeArrival(timestamp=0.35, src=6, dst=6),
        ]
        faults = StreamFaultPlan(
            seed=0,
            trainer_crashes=(
                TrainerCrash(phase="post-journal-append", generation=1),
            ),
        )
        trainer = _trainer(base, tmp_path, faults=faults)
        trainer.run_generation(batches[0] + bad)
        assert len(trainer.quarantine_log) == 2
        with pytest.raises(InjectedCrash):
            trainer.run_generation(batches[1])
        trainer.journal.close()
        resumed = StreamTrainer.resume(
            tmp_path / "work", iterations_per_generation=N_ITER,
            heldout_fraction=0.05,
        )
        # Replaying the journal suffix must not re-append sidecar records.
        records = resumed.quarantine_log.read()
        assert [r["reason"] for r in records] == ["negative-id", "self-loop"]
        resumed.journal.close()

    def test_mid_compaction_crash_gc_finishes_next_generation(
        self, stream, tmp_path
    ):
        base, batches = stream
        faults = StreamFaultPlan(
            seed=0,
            trainer_crashes=(TrainerCrash(phase="mid-compaction", generation=1),),
        )
        trainer = _trainer(
            base, tmp_path, faults=faults, journal_segment_bytes=1 << 10
        )
        trainer.run_generation(batches[0])
        with pytest.raises(InjectedCrash):
            trainer.run_generation(batches[1])
        trainer.journal.close()
        resumed = StreamTrainer.resume(
            tmp_path / "work", iterations_per_generation=N_ITER,
            heldout_fraction=0.05,
        )
        # The manifest committed generation 1 before the crash, so the
        # interrupted GC is finished by the next generation's compact.
        before = resumed.journal.n_segments
        resumed.run_generation(batches[2])
        assert resumed.journal.n_segments <= before
        version, keys, _ = _final_state(tmp_path / "work")
        assert resumed.journal.compactions >= 1
        resumed.journal.close()
