"""Machine/cluster spec tests (memory feasibility drives Fig 1/2/6 sizing)."""

from __future__ import annotations

import pytest

from repro.cluster.spec import DAS5_NODE, HPC_CLOUD_NODE, ClusterSpec, das5
from repro.graph.datasets import DATASETS


class TestMachineSpec:
    def test_das5_shape(self):
        assert DAS5_NODE.cores == 16
        assert DAS5_NODE.clock_ghz == 2.40
        assert DAS5_NODE.memory_bytes == 64 * 2**30

    def test_kernel_rate_scales_with_threads(self):
        r1 = DAS5_NODE.kernel_ops_per_sec(1)
        r8 = DAS5_NODE.kernel_ops_per_sec(8)
        assert r8 == pytest.approx(8 * r1)

    def test_kernel_rate_saturates_at_bandwidth_roofline(self):
        """The 40-core HPC Cloud VM is NOT 40x a single core — this memory
        roofline is what keeps Figure 4-a's vertical scaling sublinear."""
        r40 = HPC_CLOUD_NODE.kernel_ops_per_sec(40)
        r1 = HPC_CLOUD_NODE.kernel_ops_per_sec(1)
        assert r40 < 40 * r1
        assert r40 == pytest.approx(HPC_CLOUD_NODE.memory_bandwidth / 24.0)

    def test_threads_capped_at_cores(self):
        assert DAS5_NODE.kernel_ops_per_sec(64) == DAS5_NODE.kernel_ops_per_sec(16)


class TestClusterSpec:
    def test_n_nodes_includes_master(self):
        assert das5(64).n_nodes == 65  # the paper's "65 compute nodes"

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_workers=0)

    def test_friendster_needs_8_workers_at_k1024(self):
        """Paper Figure 1: 'the x-axis starts from 8 worker nodes as the
        data set is too large to fit into the collective memory of a
        smaller cluster' (com-Friendster, K = 1024)."""
        fr = DATASETS["com-Friendster"]
        for c in (2, 4):
            assert not das5(c).fits_in_memory(fr.n_vertices, 1024)
        assert das5(8).fits_in_memory(fr.n_vertices, 1024)
        assert das5(1).min_workers(fr.n_vertices, 1024) in (5, 6, 7, 8)

    def test_max_communities_matches_paper_fig6a(self):
        """Paper Figure 6-a: K = 12K 'fully occupied the aggregate memory
        resources of all 64 worker nodes' for com-Friendster."""
        fr = DATASETS["com-Friendster"]
        k_max = das5(64).max_communities(fr.n_vertices)
        assert 10_000 < k_max < 16_000

    def test_pi_storage_bytes(self):
        spec = das5(4)
        assert spec.pi_storage_bytes(1000, 7) == 1000 * 8 * 4
