"""Chaos tests for the multiprocess backend: crash, stall, recovery.

These tests kill and wedge real worker processes and assert the master
detects the failure, re-partitions the dead worker's shard across the
survivors, and finishes the run — without ever hanging (every wait in
the master carries a poll deadline).
"""

from __future__ import annotations

import os
import signal
import time
from multiprocessing import connection as mp_connection

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointError, load_state_checkpoint
from repro.dist.mp import MultiprocessAMMSBSampler
from repro.faults import FaultPlan, WorkerCrash, WorkerStall, chaos_plan
from repro.graph.split import HeldoutSplit

FAST = dict(heartbeat_timeout=15.0, poll_interval=0.02, shutdown_timeout=2.0)


class TestCrashRecovery:
    def test_killed_worker_is_replaced_by_survivors(self, split, config):
        """A worker dying mid-run must not stop or corrupt the run: the
        master re-partitions its shard and completes all iterations."""
        plan = FaultPlan(seed=1, worker_crashes=(WorkerCrash(worker=1, iteration=3),))
        with MultiprocessAMMSBSampler(
            split.train, config, n_workers=3, heldout=split, faults=plan, **FAST
        ) as s:
            s.run(8, perplexity_every=4)
            assert s.iteration == 8
            assert s.active_workers == (0, 2)
            assert len(s.recoveries) == 1
            ev = s.recoveries[0]
            assert ev.workers == (1,) and ev.iteration == 3 and not ev.stalled
            # Survivors carry the whole load from the retried iteration on.
            assert s.master.n_workers == 2
            snap = s.state_snapshot()
            snap.validate()
            perp = s.evaluate_perplexity()
            assert np.isfinite(perp) and perp > 1.0

    def test_multiple_crashes_leave_one_survivor(self, split, config):
        plan = FaultPlan(
            seed=2,
            worker_crashes=(
                WorkerCrash(worker=0, iteration=1),
                WorkerCrash(worker=2, iteration=3),
            ),
        )
        with MultiprocessAMMSBSampler(
            split.train, config, n_workers=3, faults=plan, **FAST
        ) as s:
            s.run(5)
            assert s.iteration == 5
            assert s.active_workers == (1,)
            assert len(s.recoveries) == 2
            s.state_snapshot().validate()

    def test_all_workers_lost_raises(self, split, config):
        plan = FaultPlan(seed=3, worker_crashes=(WorkerCrash(worker=0, iteration=1),))
        s = MultiprocessAMMSBSampler(split.train, config, n_workers=1, faults=plan, **FAST)
        try:
            s.step()
            with pytest.raises(RuntimeError, match="all workers lost"):
                s.step()
        finally:
            s.close()

    def test_wedged_worker_is_fenced_by_heartbeat(self, split, config):
        """A worker that stays silent (but alive) past the heartbeat is
        terminated and treated exactly like a crash."""
        plan = FaultPlan(
            seed=4, worker_stalls=(WorkerStall(worker=1, iteration=2, seconds=30.0),)
        )
        with MultiprocessAMMSBSampler(
            split.train,
            config,
            n_workers=3,
            faults=plan,
            heartbeat_timeout=0.5,
            poll_interval=0.02,
            shutdown_timeout=2.0,
        ) as s:
            t0 = time.monotonic()
            s.run(5)
            elapsed = time.monotonic() - t0
            assert s.iteration == 5
            assert s.active_workers == (0, 2)
            assert len(s.recoveries) == 1 and s.recoveries[0].stalled
            assert elapsed < 15.0  # fenced at ~0.5s, never waited the 30s out

    def test_short_stall_rides_out_without_recovery(self, split, config):
        """A stall shorter than the heartbeat costs time, not a worker."""
        plan = FaultPlan(
            seed=5, worker_stalls=(WorkerStall(worker=0, iteration=1, seconds=0.2),)
        )
        with MultiprocessAMMSBSampler(
            split.train, config, n_workers=2, faults=plan, **FAST
        ) as s:
            s.run(3)
            assert s.active_workers == (0, 1)
            assert s.recoveries == []


class TestPipeDiscipline:
    def test_sigkilled_worker_result_pipe_reaches_eof(self, split, config):
        """Regression: forked workers used to inherit (and keep open)
        the master's and every sibling's copies of all pipe ends, so a
        SIGKILLed worker's result pipe never delivered EOF — a worker
        killed mid-send left a partial pickle that blocked the master
        in recv() forever. With per-end hygiene the kill surfaces as
        EOF within bounded time, and recovery heals it normally."""
        s = MultiprocessAMMSBSampler(split.train, config, n_workers=2, **FAST)
        try:
            victim = s._procs[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            assert victim.exitcode is not None
            ready = mp_connection.wait([s._res_pipes[0]], timeout=5.0)
            assert ready, "dead worker's result pipe never reached EOF"
            with pytest.raises((EOFError, OSError)):
                s._res_pipes[0].recv()
            s.step()  # the loss still heals through the normal path
            assert s.active_workers == (1,)
            assert len(s.recoveries) == 1
        finally:
            s.close()

    def test_perplexity_after_shrink_does_not_deadlock(self, split, config):
        """Regression: after recovery shrinks the active set, the master
        ships several held-out parts back-to-back to the same survivor.
        With plain blocking sends the master wedged writing the second
        command (pipe full, worker busy) while the worker wedged writing
        its >64KB probs result for the first (the master, not yet in
        _collect, never drained it) — a deadlock outside the heartbeat's
        reach. Parts here are sized so both the command and the result
        overflow the 64KB pipe buffer."""
        rng = np.random.default_rng(7)
        n = split.train.n_vertices
        a = rng.integers(0, n, size=40000)
        b = rng.integers(0, n, size=40000)
        keep = a != b
        pairs = np.column_stack([a[keep], b[keep]]).astype(np.int64)
        labels = rng.random(len(pairs)) < 0.1
        heldout = HeldoutSplit(split.train, pairs, labels)
        plan = FaultPlan(seed=9, worker_crashes=(WorkerCrash(worker=1, iteration=1),))
        with MultiprocessAMMSBSampler(
            split.train, config, n_workers=2, heldout=heldout, faults=plan, **FAST
        ) as s:
            s.run(2)
            assert s.active_workers == (0,)
            # Both ~20k-pair parts (≈320KB command, ≈160KB result) now
            # go to worker 0 back-to-back.
            for part_pairs, _ in s._heldout_parts:
                assert part_pairs.nbytes > 65536
            perp = s.evaluate_perplexity()
            assert np.isfinite(perp) and perp > 1.0


class TestPromptClose:
    def test_close_terminates_wedged_worker_promptly(self, split, config):
        """Regression: close() must not block behind a wedged worker.

        Worker 0 is sent real work while a fault plan wedges it for 30
        simulated-real seconds; close() must return within the shutdown
        timeout (plus slack), not after the stall finishes.
        """
        plan = FaultPlan(
            seed=6, worker_stalls=(WorkerStall(worker=0, iteration=0, seconds=30.0),)
        )
        s = MultiprocessAMMSBSampler(
            split.train,
            config,
            n_workers=2,
            faults=plan,
            heartbeat_timeout=60.0,
            shutdown_timeout=1.0,
        )
        draw = s.master.draw()
        s._send(0, ("phi_compute", 1, draw.shards[0], s.beta, 0.01, 0))
        time.sleep(0.3)  # let worker 0 enter the stall
        t0 = time.monotonic()
        s.close()
        elapsed = time.monotonic() - t0
        assert elapsed < 5.0
        for proc in s._procs:
            assert proc.exitcode is not None  # all reaped

    def test_close_is_idempotent_and_step_after_close_raises(self, split, config):
        s = MultiprocessAMMSBSampler(split.train, config, n_workers=2)
        s.close()
        s.close()
        with pytest.raises(RuntimeError, match="closed"):
            s.step()


class TestAutoCheckpoint:
    def test_periodic_checkpoints_and_resume(self, split, config, tmp_path):
        ckpt = tmp_path / "auto.npz"
        with MultiprocessAMMSBSampler(
            split.train,
            config,
            n_workers=2,
            checkpoint_path=ckpt,
            checkpoint_every=3,
            **FAST,
        ) as s:
            s.run(6)
            saved = s.state_snapshot()
        assert ckpt.exists()
        state, iteration, cfg = load_state_checkpoint(ckpt)
        assert iteration == 6
        assert cfg == config
        np.testing.assert_array_equal(state.pi, saved.pi)
        with MultiprocessAMMSBSampler.from_checkpoint(
            ckpt, split.train, n_workers=2, **FAST
        ) as resumed:
            assert resumed.iteration == 6
            np.testing.assert_array_equal(resumed.state_snapshot().pi, saved.pi)
            resumed.run(2)
            assert resumed.iteration == 8

    def test_checkpoint_survives_crash_recovery(self, split, config, tmp_path):
        """Auto-checkpointing keeps working after a worker loss."""
        ckpt = tmp_path / "chaos.npz"
        plan = FaultPlan(seed=8, worker_crashes=(WorkerCrash(worker=1, iteration=2),))
        with MultiprocessAMMSBSampler(
            split.train,
            config,
            n_workers=2,
            faults=plan,
            checkpoint_path=ckpt,
            checkpoint_every=2,
            **FAST,
        ) as s:
            s.run(4)
            assert len(s.recoveries) == 1
        state, iteration, _ = load_state_checkpoint(ckpt)
        assert iteration == 4
        state.validate()

    def test_missing_checkpoint_is_typed_error(self, split, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            MultiprocessAMMSBSampler.from_checkpoint(
                tmp_path / "nope.npz", split.train
            )


class TestChaosDrill:
    def test_acceptance_drill_completes(self, split, config):
        """The acceptance scenario: >=1 worker crash (real process),
        >=1 DKV server stall, >=5% RDMA failures — everything completes,
        nothing hangs, degradation is visible in the accounting."""
        from repro.cluster.dkv import timed_read_batch
        from repro.cluster.spec import das5
        from repro.dist.sampler import DistributedAMMSBSampler

        plan = chaos_plan(seed=2026, n_workers=3, crash_iteration=3)
        assert plan.worker_crashes and plan.server_stalls
        assert plan.rdma_failure_rate >= 0.05

        # Real process crash, healed by repartitioning.
        t0 = time.monotonic()
        with MultiprocessAMMSBSampler(
            split.train, config, n_workers=3, faults=plan, **FAST
        ) as s:
            s.run(8)
            assert s.iteration == 8
            assert len(s.recoveries) == 1
            assert len(s.active_workers) == 2
            s.state_snapshot().validate()
        assert time.monotonic() - t0 < 60.0

        # DKV server stall on the simulated cluster: stale degradation.
        sim_plan = FaultPlan(
            seed=plan.seed,
            server_stalls=plan.server_stalls,
            worker_stalls=plan.worker_stalls,
        )
        d = DistributedAMMSBSampler(
            split.train, config, cluster=das5(3), faults=sim_plan
        )
        d.run(6)
        assert d.dkv.fault_stats.stale_batches > 0
        d.state_snapshot().validate()

        # RDMA transport failures on the simulated fabric: slower, done.
        elapsed = timed_read_batch(256, 1024, depth=8, faults=plan)
        assert np.isfinite(elapsed) and elapsed > 0.0
        assert plan.rdma_draws > 0
