"""Kernel backend equivalence suite (tentpole contract).

The ``fused`` backend must match ``reference`` bit-for-bit in float64
(it replays the same ufunc operation order, just into preallocated
buffers) and to tolerance in float32 (where the reference path silently
upcasts to float64 while fused stays in float32). Shapes are randomized
with hypothesis; a reused workspace must never leak state between calls.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import gradients, kernels

REF = kernels.get_backend("reference")
FUSED = kernels.get_backend("fused")


def _phi_case(rng, m, n, k, dtype=np.float64, masked=True):
    pi_a = rng.dirichlet(np.ones(k), size=m).astype(dtype)
    phi_sum = (rng.gamma(5.0, 1.0, size=m) + 1.0).astype(dtype)
    pi_b = rng.dirichlet(np.ones(k), size=(m, n)).astype(dtype)
    y = rng.random((m, n)) < 0.2
    beta = rng.uniform(0.05, 0.95, k)
    mask = (rng.random((m, n)) < 0.9) if masked else None
    return pi_a, phi_sum, pi_b, y, beta, mask


def _theta_case(rng, e, k, dtype=np.float64):
    pi_a = rng.dirichlet(np.ones(k), size=e).astype(dtype)
    pi_b = rng.dirichlet(np.ones(k), size=e).astype(dtype)
    y = (rng.random(e) < 0.5).astype(np.int64)
    theta = rng.gamma(3.0, 1.0, size=(k, 2)) + 0.5
    weights = rng.uniform(0.5, 40.0, size=e)
    return pi_a, pi_b, y, theta, weights


class TestFloat64BitExact:
    """float64: fused must equal reference exactly, not just closely."""

    @given(
        m=st.integers(min_value=1, max_value=40),
        n=st.integers(min_value=1, max_value=20),
        k=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=10_000),
        masked=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_phi_gradient(self, m, n, k, seed, masked):
        rng = np.random.default_rng(seed)
        pi_a, phi_sum, pi_b, y, beta, mask = _phi_case(rng, m, n, k, masked=masked)
        ws = kernels.KernelWorkspace()
        ref = REF.phi_gradient_sum(pi_a, phi_sum, pi_b, y, beta, 1e-4, mask=mask)
        got = FUSED.phi_gradient_sum(
            pi_a, phi_sum, pi_b, y, beta, 1e-4, mask=mask, workspace=ws
        )
        np.testing.assert_array_equal(np.asarray(got), ref)

    @given(
        m=st.integers(min_value=1, max_value=40),
        k=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=10_000),
        array_scale=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_update_phi(self, m, k, seed, array_scale):
        rng = np.random.default_rng(seed)
        phi = rng.gamma(2.0, 1.0, size=(m, k)) + 1e-3
        grad = rng.standard_normal((m, k)) * 10.0
        noise = rng.standard_normal((m, k))
        scale = rng.uniform(1.0, 500.0, size=(m, 1)) if array_scale else 250.0
        ws = kernels.KernelWorkspace()
        ref = REF.update_phi(phi, grad, 0.01, 0.1, scale, noise)
        got = FUSED.update_phi(phi, grad, 0.01, 0.1, scale, noise, workspace=ws)
        np.testing.assert_array_equal(np.asarray(got), ref)

    @given(
        e=st.integers(min_value=1, max_value=200),
        k=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=10_000),
        weighted=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_theta_gradient(self, e, k, seed, weighted):
        rng = np.random.default_rng(seed)
        pi_a, pi_b, y, theta, weights = _theta_case(rng, e, k)
        if not weighted:
            weights = None
        ws = kernels.KernelWorkspace()
        ref = REF.theta_gradient_weighted(pi_a, pi_b, y, theta, 1e-4, weights=weights)
        got = FUSED.theta_gradient_weighted(
            pi_a, pi_b, y, theta, 1e-4, weights=weights, workspace=ws
        )
        np.testing.assert_array_equal(np.asarray(got), ref)

    def test_update_theta_same_function(self):
        """theta is (K, 2); fused delegates to the reference update."""
        rng = np.random.default_rng(0)
        theta = rng.gamma(3.0, 1.0, size=(16, 2)) + 0.5
        grad = rng.standard_normal((16, 2))
        noise = rng.standard_normal((16, 2))
        ref = REF.update_theta(theta, grad, 0.01, (1.0, 1.0), 5.0, noise)
        got = FUSED.update_theta(theta, grad, 0.01, (1.0, 1.0), 5.0, noise)
        np.testing.assert_array_equal(got, ref)


class TestFloat32Tolerance:
    """float32 inputs: fused stays in float32 and tracks the float64
    reference to single-precision tolerance."""

    @given(
        m=st.integers(min_value=1, max_value=24),
        n=st.integers(min_value=1, max_value=12),
        k=st.integers(min_value=2, max_value=32),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_phi_gradient(self, m, n, k, seed):
        rng = np.random.default_rng(seed)
        pi_a, phi_sum, pi_b, y, beta, mask = _phi_case(
            rng, m, n, k, dtype=np.float32
        )
        ws = kernels.KernelWorkspace()
        got = FUSED.phi_gradient_sum(
            pi_a, phi_sum, pi_b, y, beta, 1e-4, mask=mask, workspace=ws
        )
        assert np.asarray(got).dtype == np.float32
        ref = REF.phi_gradient_sum(
            pi_a.astype(np.float64),
            phi_sum.astype(np.float64),
            pi_b.astype(np.float64),
            y, beta, 1e-4, mask=mask,
        )
        # Relative to the gradient magnitude: entries mix 1/phi terms of
        # very different scales, so compare against the row norm.
        scale = np.maximum(np.abs(ref).max(), 1.0)
        np.testing.assert_allclose(
            np.asarray(got, dtype=np.float64) / scale, ref / scale,
            rtol=0, atol=5e-5,
        )

    @given(
        e=st.integers(min_value=1, max_value=100),
        k=st.integers(min_value=2, max_value=32),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_theta_gradient(self, e, k, seed):
        rng = np.random.default_rng(seed)
        pi_a, pi_b, y, theta, weights = _theta_case(rng, e, k, dtype=np.float32)
        ws = kernels.KernelWorkspace()
        got = FUSED.theta_gradient_weighted(
            pi_a, pi_b, y, theta, 1e-4, weights=weights, workspace=ws
        )
        # theta itself is float64, so the gradient stays float64.
        assert np.asarray(got).dtype == np.float64
        ref = REF.theta_gradient_weighted(
            pi_a.astype(np.float64), pi_b.astype(np.float64), y, theta, 1e-4,
            weights=weights,
        )
        scale = np.maximum(np.abs(ref).max(), 1.0)
        np.testing.assert_allclose(
            np.asarray(got) / scale, ref / scale, rtol=0, atol=2e-3
        )


class TestWorkspaceReuse:
    """One workspace across many different calls must never leak state."""

    def test_shrinking_and_growing_shapes(self):
        rng = np.random.default_rng(7)
        ws = kernels.KernelWorkspace()
        for m, n, k in [(8, 4, 16), (20, 10, 32), (3, 2, 5), (20, 10, 32), (1, 1, 1)]:
            pi_a, phi_sum, pi_b, y, beta, mask = _phi_case(rng, m, n, k)
            fresh = kernels.KernelWorkspace()
            reused = np.array(
                FUSED.phi_gradient_sum(
                    pi_a, phi_sum, pi_b, y, beta, 1e-4, mask=mask, workspace=ws
                )
            )
            clean = np.array(
                FUSED.phi_gradient_sum(
                    pi_a, phi_sum, pi_b, y, beta, 1e-4, mask=mask, workspace=fresh
                )
            )
            np.testing.assert_array_equal(reused, clean)

    def test_interleaved_kernels_share_workspace(self):
        rng = np.random.default_rng(8)
        ws = kernels.KernelWorkspace()
        for _ in range(3):
            pi_a, phi_sum, pi_b, y, beta, mask = _phi_case(rng, 12, 6, 24)
            t_pi_a, t_pi_b, t_y, theta, weights = _theta_case(rng, 50, 24)
            got_phi = np.array(
                FUSED.phi_gradient_sum(
                    pi_a, phi_sum, pi_b, y, beta, 1e-4, mask=mask, workspace=ws
                )
            )
            got_theta = np.array(
                FUSED.theta_gradient_weighted(
                    t_pi_a, t_pi_b, t_y, theta, 1e-4, weights=weights, workspace=ws
                )
            )
            np.testing.assert_array_equal(
                got_phi,
                REF.phi_gradient_sum(pi_a, phi_sum, pi_b, y, beta, 1e-4, mask=mask),
            )
            np.testing.assert_array_equal(
                got_theta,
                REF.theta_gradient_weighted(
                    t_pi_a, t_pi_b, t_y, theta, 1e-4, weights=weights
                ),
            )

    def test_dtype_switch_reallocates(self):
        rng = np.random.default_rng(9)
        ws = kernels.KernelWorkspace()
        pi_a, phi_sum, pi_b, y, beta, mask = _phi_case(rng, 6, 4, 8)
        FUSED.phi_gradient_sum(pi_a, phi_sum, pi_b, y, beta, 1e-4, mask=mask, workspace=ws)
        pi_a32, phi_sum32, pi_b32 = (
            pi_a.astype(np.float32), phi_sum.astype(np.float32),
            pi_b.astype(np.float32),
        )
        got = FUSED.phi_gradient_sum(
            pi_a32, phi_sum32, pi_b32, y, beta, 1e-4, mask=mask, workspace=ws
        )
        assert np.asarray(got).dtype == np.float32

    def test_workspace_buffers_grow_never_shrink(self):
        ws = kernels.KernelWorkspace()
        a = ws.array("x", (10,), np.float64)
        assert a.shape == (10,)
        b = ws.array("x", (4,), np.float64)
        assert b.shape == (4,)
        # capacity stayed at 10 elements
        assert ws.buffers()["x"].size == 10
        c = ws.array("x", (32,), np.float64)
        assert c.shape == (32,)
        assert ws.buffers()["x"].size == 32


class TestRegistry:
    def test_available(self):
        names = kernels.available_backends()
        assert "reference" in names and "fused" in names

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.get_backend("does-not-exist")

    def test_register_custom_backend(self):
        ref = kernels.get_backend("reference")
        custom = kernels.KernelBackend(
            "custom-test",
            phi_gradient_sum=ref.phi_gradient_sum,
            update_phi=ref.update_phi,
            theta_gradient_weighted=ref.theta_gradient_weighted,
            update_theta=ref.update_theta,
        )
        try:
            kernels.register_backend(custom)
            assert kernels.get_backend("custom-test") is custom
        finally:
            kernels._REGISTRY.pop("custom-test", None)

    def test_config_env_override(self, monkeypatch):
        from repro.config import AMMSBConfig

        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
        assert AMMSBConfig().kernel_backend == "reference"
        monkeypatch.delenv("REPRO_KERNEL_BACKEND")
        assert AMMSBConfig().kernel_backend == "fused"

    def test_sampler_rejects_unknown_backend(self):
        from repro.config import AMMSBConfig
        from repro.core.sampler import AMMSBSampler
        from repro.graph.generators import planted_overlapping_graph

        graph, _ = planted_overlapping_graph(
            40, 2, 1, rng=np.random.default_rng(0)
        )
        cfg = AMMSBConfig(n_communities=4, kernel_backend="no-such-backend")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            AMMSBSampler(graph, cfg)


class TestWeightedThetaGradient:
    """The weighted batched call equals the per-stratum scale loop."""

    def test_matches_per_stratum_loop(self):
        rng = np.random.default_rng(11)
        k = 16
        theta = rng.gamma(3.0, 1.0, size=(k, 2)) + 0.5
        strata = []
        for scale in (3.0, 40.0, 0.5):
            e = int(rng.integers(5, 40))
            pi_a = rng.dirichlet(np.ones(k), size=e)
            pi_b = rng.dirichlet(np.ones(k), size=e)
            y = (rng.random(e) < 0.5).astype(np.int64)
            strata.append((pi_a, pi_b, y, scale))
        looped = np.zeros_like(theta)
        for pi_a, pi_b, y, scale in strata:
            looped += scale * gradients.theta_gradient_sum(
                pi_a, pi_b, y, theta, 1e-4
            )
        cat = lambda i: np.concatenate([s[i] for s in strata])
        weights = np.concatenate(
            [np.full(len(s[2]), s[3]) for s in strata]
        )
        for backend in (REF, FUSED):
            got = backend.theta_gradient_weighted(
                cat(0), cat(1), cat(2), theta, 1e-4,
                weights=weights, workspace=kernels.KernelWorkspace(),
            )
            np.testing.assert_allclose(np.asarray(got), looped, rtol=1e-12)


class TestLinkProbabilityKernel:
    """The serving hot path kernel obeys the same backend contract."""

    @given(
        h=st.integers(min_value=1, max_value=80),
        k=st.integers(min_value=1, max_value=48),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_float64_bit_exact(self, h, k, seed):
        rng = np.random.default_rng(seed)
        pi_a = rng.dirichlet(np.ones(k), size=h)
        pi_b = rng.dirichlet(np.ones(k), size=h)
        beta = rng.uniform(0.05, 0.95, k)
        ws = kernels.KernelWorkspace()
        ref = REF.link_probability(pi_a, pi_b, beta, 1e-7)
        got = FUSED.link_probability(pi_a, pi_b, beta, 1e-7, workspace=ws)
        np.testing.assert_array_equal(np.asarray(got), ref)

    @given(
        h=st.integers(min_value=1, max_value=60),
        k=st.integers(min_value=2, max_value=32),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_float32_stays_float32(self, h, k, seed):
        rng = np.random.default_rng(seed)
        pi_a = rng.dirichlet(np.ones(k), size=h).astype(np.float32)
        pi_b = rng.dirichlet(np.ones(k), size=h).astype(np.float32)
        beta = rng.uniform(0.05, 0.95, k)
        ws = kernels.KernelWorkspace()
        got = FUSED.link_probability(pi_a, pi_b, beta, 1e-7, workspace=ws)
        assert np.asarray(got).dtype == np.float32
        ref = REF.link_probability(
            pi_a.astype(np.float64), pi_b.astype(np.float64), beta, 1e-7
        )
        np.testing.assert_allclose(np.asarray(got), ref, rtol=2e-4, atol=2e-6)

    def test_values_clipped_to_open_interval(self):
        # degenerate memberships drive p toward 0/1; the floor must hold
        k = 4
        pi_a = np.eye(k)[:2]
        pi_b = np.eye(k)[:2]
        beta = np.array([1.0 - 1e-16, 0.5, 0.5, 0.5])
        for backend in (REF, FUSED):
            p = np.asarray(backend.link_probability(pi_a, pi_b, beta, 1e-12))
            assert np.all((p > 0) & (p < 1))

    def test_broadcast_row_matches_pairwise(self):
        """recommend_edges relies on broadcast pi_a being bit-identical."""
        rng = np.random.default_rng(5)
        k, n = 8, 30
        pi = rng.dirichlet(np.ones(k), size=n)
        beta = rng.uniform(0.05, 0.95, k)
        ws = kernels.KernelWorkspace()
        row = np.broadcast_to(pi[3], pi.shape)
        got = np.array(FUSED.link_probability(row, pi, beta, 1e-7, workspace=ws))
        pairwise = np.array(
            FUSED.link_probability(np.tile(pi[3], (n, 1)), pi, beta, 1e-7)
        )
        np.testing.assert_array_equal(got, pairwise)
