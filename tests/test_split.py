"""Held-out split invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.graph import edge_keys
from repro.graph.split import split_heldout


class TestSplit:
    def test_balanced_links_nonlinks(self, planted, rng):
        graph, _ = planted
        s = split_heldout(graph, 0.05, rng)
        assert s.n_links == s.n_heldout // 2
        assert s.heldout_labels.sum() == (~s.heldout_labels).sum()

    def test_heldout_links_removed_from_train(self, planted, rng):
        graph, _ = planted
        s = split_heldout(graph, 0.05, rng)
        link_pairs = s.heldout_pairs[s.heldout_labels]
        assert not s.train.has_edges(link_pairs).any()
        assert s.train.n_edges == graph.n_edges - s.n_links

    def test_heldout_labels_match_original_graph(self, planted, rng):
        graph, _ = planted
        s = split_heldout(graph, 0.05, rng)
        np.testing.assert_array_equal(graph.has_edges(s.heldout_pairs), s.heldout_labels)

    def test_nonlink_pairs_never_linked(self, planted, rng):
        graph, _ = planted
        s = split_heldout(graph, 0.05, rng)
        nonlinks = s.heldout_pairs[~s.heldout_labels]
        assert not graph.has_edges(nonlinks).any()

    def test_no_duplicate_heldout_pairs(self, planted, rng):
        graph, _ = planted
        s = split_heldout(graph, 0.05, rng)
        keys = edge_keys(s.heldout_pairs, graph.n_vertices)
        assert np.unique(keys).size == s.n_heldout

    def test_max_links_cap(self, planted, rng):
        graph, _ = planted
        s = split_heldout(graph, 0.5, rng, max_links=10)
        assert s.n_links == 10

    def test_invalid_fraction(self, planted, rng):
        graph, _ = planted
        for frac in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ValueError):
                split_heldout(graph, frac, rng)

    def test_deterministic_given_rng(self, planted):
        graph, _ = planted
        s1 = split_heldout(graph, 0.05, np.random.default_rng(3))
        s2 = split_heldout(graph, 0.05, np.random.default_rng(3))
        np.testing.assert_array_equal(s1.heldout_pairs, s2.heldout_pairs)
        np.testing.assert_array_equal(s1.heldout_labels, s2.heldout_labels)


class TestPartition:
    def test_partition_covers_everything(self, planted, rng):
        graph, _ = planted
        s = split_heldout(graph, 0.05, rng)
        parts = [s.partition(4, r) for r in range(4)]
        total = sum(len(p) for p, _ in parts)
        assert total == s.n_heldout
        all_keys = np.sort(
            np.concatenate([edge_keys(p, graph.n_vertices) for p, _ in parts])
        )
        np.testing.assert_array_equal(
            all_keys, np.sort(edge_keys(s.heldout_pairs, graph.n_vertices))
        )

    def test_partition_roughly_balanced(self, planted, rng):
        graph, _ = planted
        s = split_heldout(graph, 0.05, rng)
        sizes = [len(s.partition(5, r)[0]) for r in range(5)]
        assert max(sizes) - min(sizes) <= 1
        # label balance within ~30% of half, thanks to the shuffle
        for r in range(5):
            _, labels = s.partition(5, r)
            if len(labels) >= 10:
                frac = labels.mean()
                assert 0.2 < frac < 0.8

    def test_partition_bad_rank(self, planted, rng):
        graph, _ = planted
        s = split_heldout(graph, 0.05, rng)
        with pytest.raises(ValueError):
            s.partition(4, 4)
