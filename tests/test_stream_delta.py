"""Delta overlay: ingest validation, dedup accounting, bounds, compaction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.io import load_csr
from repro.stream import DeltaOverflow, DeltaOverlay, MalformedArrival


def _overlay(tiny_graph, **kwargs):
    return DeltaOverlay(tiny_graph, **kwargs)


class TestIngest:
    def test_novel_edges_buffered(self, tiny_graph):
        ov = _overlay(tiny_graph)
        report = ov.ingest_pairs(np.array([[0, 4], [5, 6]]))
        assert report.accepted == 2
        assert ov.n_pending == 2
        assert ov.n_vertices == 7  # vertex 6 is new
        assert ov.n_new_nodes == 1

    def test_canonicalization_and_duplicate_accounting(self, tiny_graph):
        ov = _overlay(tiny_graph)
        # (1, 0) is a base edge reversed; (4, 0) twice in the batch.
        report = ov.ingest_pairs(np.array([[1, 0], [4, 0], [0, 4]]))
        assert report.accepted == 1
        assert report.duplicates == 2
        # Re-ingesting the novel pair now hits the pending buffer.
        again = ov.ingest_pairs(np.array([[0, 4]]))
        assert again.accepted == 0 and again.duplicates == 1
        assert ov.n_pending == 1

    def test_order_independent_buffer(self, tiny_graph):
        a = _overlay(tiny_graph)
        b = _overlay(tiny_graph)
        pairs = np.array([[0, 5], [2, 4], [0, 4]])
        a.ingest_pairs(pairs)
        for row in pairs[::-1]:
            b.ingest_pairs(row[None, :])
        np.testing.assert_array_equal(a.pending_pairs, b.pending_pairs)

    def test_strict_raises_on_first_bad_record(self, tiny_graph):
        ov = _overlay(tiny_graph)
        with pytest.raises(MalformedArrival, match="self-loop"):
            ov.ingest_pairs(np.array([[0, 4], [3, 3]]), strict=True)
        with pytest.raises(MalformedArrival, match="negative-id"):
            ov.ingest_pairs(np.array([[-1, 2]]), strict=True)
        with pytest.raises(MalformedArrival, match="id-overflow"):
            ov.ingest_pairs(np.array([[0, 1 << 40]]), strict=True)
        assert ov.n_pending == 0  # nothing half-applied

    def test_quarantine_keeps_the_batch_going(self, tiny_graph):
        ov = _overlay(tiny_graph)
        report = ov.ingest_pairs(
            np.array([[0, 4], [3, 3], [-1, 2], [0, 5]]), strict=False
        )
        assert report.accepted == 2
        assert report.quarantined == 2
        reasons = [r for r, _ in ov.quarantined]
        assert reasons == ["self-loop", "negative-id"]

    def test_bad_timestamp_quarantined(self, tiny_graph):
        ov = _overlay(tiny_graph)
        report = ov.ingest_pairs(
            np.array([[0, 4], [0, 5]]),
            timestamps=np.array([1.0, np.nan]),
            strict=False,
        )
        assert report.quarantined == 1 and report.accepted == 1

    def test_out_of_order_counted_across_batches(self, tiny_graph):
        ov = _overlay(tiny_graph)
        r1 = ov.ingest_pairs(np.array([[0, 4]]), timestamps=np.array([10.0]))
        assert r1.out_of_order == 0
        r2 = ov.ingest_pairs(
            np.array([[0, 5], [1, 4]]), timestamps=np.array([5.0, 11.0])
        )
        assert r2.out_of_order == 1
        assert ov.last_timestamp == 11.0

    def test_bad_shape_always_raises(self, tiny_graph):
        ov = _overlay(tiny_graph)
        with pytest.raises(MalformedArrival, match="bad-shape"):
            ov.ingest_pairs(np.arange(6).reshape(2, 3), strict=False)
        with pytest.raises(MalformedArrival, match="unparseable"):
            ov.ingest_pairs(np.array([[0.5, 2.0]]), strict=False)

    def test_float_integral_pairs_accepted(self, tiny_graph):
        ov = _overlay(tiny_graph)
        report = ov.ingest_pairs(np.array([[0.0, 4.0]]))
        assert report.accepted == 1

    def test_empty_batch_is_a_noop(self, tiny_graph):
        ov = _overlay(tiny_graph)
        report = ov.ingest_pairs(np.zeros((0, 2), dtype=np.int64))
        assert report.accepted == 0 and ov.n_pending == 0


class TestBounds:
    def test_max_pending_overflow_before_mutation(self, tiny_graph):
        ov = _overlay(tiny_graph, max_pending=2)
        ov.ingest_pairs(np.array([[0, 4]]))
        with pytest.raises(DeltaOverflow, match="compact first"):
            ov.ingest_pairs(np.array([[0, 5], [1, 4]]))
        # The failed batch changed nothing.
        assert ov.n_pending == 1
        assert ov.quarantined == []

    def test_max_new_nodes_overflow_before_mutation(self, tiny_graph):
        ov = _overlay(tiny_graph, max_new_nodes=1)
        ov.ingest_pairs(np.array([[0, 6]]))  # one new node: fine
        with pytest.raises(DeltaOverflow, match="new"):
            ov.ingest_pairs(np.array([[0, 7]]))
        assert ov.n_pending == 1 and ov.n_vertices == 7

    def test_duplicates_never_count_against_the_cap(self, tiny_graph):
        ov = _overlay(tiny_graph, max_pending=1)
        ov.ingest_pairs(np.array([[0, 4]]))
        # Same edge again: duplicate, not overflow.
        report = ov.ingest_pairs(np.array([[4, 0]]))
        assert report.duplicates == 1


class TestCompaction:
    """Base + delta -> container -> reload == from-scratch merge (bit-identical)."""

    def test_round_trip_matches_from_scratch_merge(self, tiny_graph, tmp_path):
        delta = np.array([[0, 4], [2, 6], [5, 7]])
        ov = _overlay(tiny_graph)
        ov.ingest_pairs(delta)
        compacted = ov.compact(tmp_path / "g.csr")

        scratch = Graph(8, np.concatenate([tiny_graph.edges, delta]))
        assert compacted.n_vertices == scratch.n_vertices
        np.testing.assert_array_equal(
            np.asarray(compacted.edges), np.asarray(scratch.edges)
        )
        np.testing.assert_array_equal(compacted.degrees, scratch.degrees)
        # The persisted container reloads to the same graph.
        reloaded = load_csr(tmp_path / "g.csr")
        np.testing.assert_array_equal(
            np.asarray(reloaded.edges), np.asarray(compacted.edges)
        )

    def test_compact_resets_the_overlay(self, tiny_graph, tmp_path):
        ov = _overlay(tiny_graph)
        ov.ingest_pairs(np.array([[0, 4]]))
        merged = ov.compact(tmp_path / "g.csr")
        assert ov.n_pending == 0
        assert ov.base is merged
        # The absorbed edge now dedups against the new base.
        report = ov.ingest_pairs(np.array([[0, 4]]))
        assert report.accepted == 0 and report.duplicates == 1

    def test_compact_without_path_stays_in_memory(self, tiny_graph):
        ov = _overlay(tiny_graph)
        ov.ingest_pairs(np.array([[0, 4]]))
        merged = ov.compact()
        assert merged.n_edges == tiny_graph.n_edges + 1

    def test_compact_with_nothing_pending_persists_base(self, tiny_graph, tmp_path):
        ov = _overlay(tiny_graph)
        merged = ov.compact(tmp_path / "g.csr")
        assert merged.n_edges == tiny_graph.n_edges
        assert (tmp_path / "g.csr").exists()

    def test_ingest_compact_ingest_cycle(self, tiny_graph, tmp_path):
        """Two generations of ingest+compact equal one big merge."""
        ov = _overlay(tiny_graph)
        ov.ingest_pairs(np.array([[0, 4], [2, 6]]))
        ov.compact(tmp_path / "g0.csr")
        ov.ingest_pairs(np.array([[5, 7], [0, 6]]))
        final = ov.compact(tmp_path / "g1.csr")
        scratch = Graph(
            8,
            np.concatenate(
                [tiny_graph.edges, [[0, 4], [2, 6], [5, 7], [0, 6]]]
            ),
        )
        np.testing.assert_array_equal(
            np.asarray(final.edges), np.asarray(scratch.edges)
        )
