"""Generative-model graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import (
    generate_ammsb_graph,
    planted_overlapping_graph,
    sample_mixed_membership,
)


class TestMixedMembership:
    def test_rows_are_simplex(self, rng):
        pi = sample_mixed_membership(100, 8, alpha=0.1, rng=rng, concentration=2.0)
        assert pi.shape == (100, 8)
        assert (pi >= 0).all()
        np.testing.assert_allclose(pi.sum(axis=1), 1.0)

    def test_concentration_sharpens(self):
        flat = sample_mixed_membership(500, 8, 0.1, np.random.default_rng(1), concentration=0.0)
        sharp = sample_mixed_membership(500, 8, 0.1, np.random.default_rng(1), concentration=5.0)
        assert sharp.max(axis=1).mean() > flat.max(axis=1).mean()


class TestAMMSBGenerator:
    def test_basic_shapes(self, rng):
        g, t = generate_ammsb_graph(200, 5, rng=rng)
        assert g.n_vertices == 200
        assert t.pi.shape == (200, 5)
        assert t.beta.shape == (5,)
        assert len(t.covers) == 5
        assert ((t.beta > 0) & (t.beta < 1)).all()

    def test_target_edges_hit_approximately(self, rng):
        target = 3000
        g, _ = generate_ammsb_graph(500, 8, rng=rng, target_edges=target)
        assert 0.6 * target < g.n_edges < 1.4 * target

    def test_deterministic_given_rng(self):
        g1, t1 = generate_ammsb_graph(150, 4, rng=np.random.default_rng(5))
        g2, t2 = generate_ammsb_graph(150, 4, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(g1.edges, g2.edges)
        np.testing.assert_array_equal(t1.pi, t2.pi)

    def test_assortative_structure(self, rng):
        """Linked pairs overlap in membership far more than random pairs."""
        g, t = generate_ammsb_graph(400, 6, rng=rng, target_edges=3000, delta=1e-8)
        link_overlap = (t.pi[g.edges[:, 0]] * t.pi[g.edges[:, 1]]).sum(axis=1).mean()
        rnd = rng.integers(0, 400, size=(3000, 2))
        rnd = rnd[rnd[:, 0] != rnd[:, 1]]
        rand_overlap = (t.pi[rnd[:, 0]] * t.pi[rnd[:, 1]]).sum(axis=1).mean()
        assert link_overlap > 3 * rand_overlap

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            generate_ammsb_graph(1, 4, rng=rng)
        with pytest.raises(ValueError):
            generate_ammsb_graph(10, 0, rng=rng)

    def test_covers_nonempty(self, rng):
        _, t = generate_ammsb_graph(100, 10, rng=rng)
        assert all(c.size >= 1 for c in t.covers)


class TestPlantedGenerator:
    def test_membership_count(self, rng):
        _, t = planted_overlapping_graph(120, 6, memberships_per_vertex=2, rng=rng)
        memberships = (t.pi > 0).sum(axis=1)
        assert (memberships == 2).all()

    def test_within_community_density_higher(self, rng):
        g, t = planted_overlapping_graph(
            200, 4, memberships_per_vertex=1, p_in=0.3, p_out=0.002, rng=rng
        )
        home = t.pi.argmax(axis=1)
        same = home[g.edges[:, 0]] == home[g.edges[:, 1]]
        # With p_in >> p_out nearly all edges are within-community.
        assert same.mean() > 0.8

    def test_invalid_membership_count(self, rng):
        with pytest.raises(ValueError):
            planted_overlapping_graph(50, 3, memberships_per_vertex=4, rng=rng)
        with pytest.raises(ValueError):
            planted_overlapping_graph(50, 3, memberships_per_vertex=0, rng=rng)

    def test_covers_partition_with_overlap(self, rng):
        _, t = planted_overlapping_graph(90, 3, memberships_per_vertex=2, rng=rng)
        sizes = sum(c.size for c in t.covers)
        assert sizes == 2 * 90  # every vertex appears in exactly 2 covers
