"""Micro-batching server: batching, backpressure, cache, hot-swap."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.config import AMMSBConfig
from repro.core.state import ModelState, init_state
from repro.serve.artifact import build_artifact
from repro.serve.engine import QueryEngine
from repro.serve.server import ENDPOINTS, ModelServer, ServerOverloaded


def _artifact(n=40, k=4, seed=0):
    cfg = AMMSBConfig(n_communities=k, seed=seed)
    state = init_state(n, cfg, np.random.default_rng(seed))
    return build_artifact(state, cfg)


def _perturbed(art, seed=1):
    rng = np.random.default_rng(seed)
    pi = art.pi * rng.uniform(0.9, 1.1, size=art.pi.shape)
    state = ModelState(
        pi=pi / pi.sum(axis=1, keepdims=True),
        phi_sum=np.ones(art.n_nodes),
        theta=art.theta.copy(),
    )
    return build_artifact(state, art.config, iteration=art.iteration + 1)


@pytest.fixture()
def manual_server():
    """n_workers=0: the test drains the queue with process_once()."""
    server = ModelServer(_artifact(), n_workers=0, max_batch=4, cache_size=8)
    yield server
    server.close()


class TestManualBatching:
    def test_empty_flush_is_noop(self, manual_server):
        assert manual_server.process_once() == 0
        assert manual_server.metrics.snapshot()["batching"]["batches"] == 0

    def test_coalesces_up_to_max_batch(self, manual_server):
        futs = [
            manual_server.link_probability(np.array([[i, i + 1]]))
            for i in range(6)  # 6 distinct requests, max_batch=4
        ]
        assert manual_server.process_once() == 4
        assert manual_server.process_once() == 2
        assert all(f.done() for f in futs)
        snap = manual_server.metrics.snapshot()
        assert snap["batching"]["batches"] == 2
        assert snap["batching"]["batched_requests"] == 6

    def test_oversized_request_is_one_batch_entry(self, manual_server):
        """A single request larger than max_batch still goes through whole."""
        big = np.column_stack([np.arange(30), (np.arange(30) + 1) % 40])
        fut = manual_server.link_probability(big)
        assert manual_server.process_once() == 1
        assert len(fut.result(timeout=5)) == 30

    def test_batched_results_match_unbatched(self, manual_server):
        engine = QueryEngine(manual_server.artifact)
        pairs = [np.array([[0, 1], [2, 3]]), np.array([[4, 5]])]
        futs = [manual_server.link_probability(p) for p in pairs]
        manual_server.process_once()
        for p, f in zip(pairs, futs):
            np.testing.assert_array_equal(
                f.result(timeout=5), engine.link_probability(p)
            )

    def test_mixed_endpoints_in_one_batch(self, manual_server):
        f1 = manual_server.link_probability(np.array([[0, 1]]))
        f2 = manual_server.membership(3)
        f3 = manual_server.community_members(0, 5)
        f4 = manual_server.recommend_edges(2, 3)
        assert manual_server.process_once() == 4
        engine = QueryEngine(manual_server.artifact)
        np.testing.assert_array_equal(
            f1.result(5), engine.link_probability(np.array([[0, 1]]))
        )
        assert f2.result(5) == engine.membership(3)
        assert f3.result(5) == engine.community_members(0, 5)
        assert f4.result(5) == engine.recommend_edges(2, 3)

    def test_bad_request_fails_future_not_batch(self, manual_server):
        good = manual_server.link_probability(np.array([[0, 1]]))
        bad = manual_server.membership(9999)  # unknown node id
        manual_server.process_once()
        assert good.result(timeout=5) is not None
        with pytest.raises(KeyError):
            bad.result(timeout=5)
        assert manual_server.metrics.snapshot()["endpoints"]["membership"]["errors"] == 1


class TestBackpressure:
    def test_overload_raises_typed_error(self):
        with ModelServer(
            _artifact(), n_workers=0, queue_limit=3, cache_size=0
        ) as server:
            for i in range(3):
                server.membership(i)
            with pytest.raises(ServerOverloaded) as ei:
                server.membership(3)
            assert ei.value.queue_limit == 3
            assert server.metrics.snapshot()["rejected"] == 1
            # draining makes room again
            server.process_once()
            server.membership(3)

    def test_submit_after_close_rejected(self):
        server = ModelServer(_artifact(), n_workers=0)
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.membership(0)


class TestCache:
    def test_hit_returns_same_result_without_queue(self, manual_server):
        pairs = np.array([[0, 1], [2, 3]])
        f1 = manual_server.link_probability(pairs)
        manual_server.process_once()
        f2 = manual_server.link_probability(pairs)  # cache hit: already done
        assert f2.done()
        np.testing.assert_array_equal(f1.result(5), f2.result(5))
        snap = manual_server.metrics.snapshot()
        assert snap["cache"]["hits"] == 1 and snap["cache"]["misses"] == 1
        assert snap["queue_depth"] == 0

    def test_lru_eviction_accounting(self):
        with ModelServer(
            _artifact(), n_workers=0, max_batch=64, cache_size=4
        ) as server:
            for i in range(6):  # 6 distinct entries into a 4-slot cache
                server.membership(i)
            server.process_once()
            snap = server.metrics.snapshot()
            assert snap["cache"]["evictions"] == 2
            # oldest entries (0, 1) were evicted -> miss; newest hit
            server.membership(5)
            server.membership(0)
            snap = server.metrics.snapshot()
            assert snap["cache"]["hits"] == 1
            assert snap["cache"]["misses"] == 7

    def test_cache_disabled(self):
        with ModelServer(_artifact(), n_workers=0, cache_size=0) as server:
            server.membership(1)
            server.process_once()
            server.membership(1)
            server.process_once()
            snap = server.metrics.snapshot()
            assert snap["cache"]["hits"] == 0 and snap["cache"]["misses"] == 0


class TestHotSwap:
    def test_generation_bump_invalidates_cache(self, manual_server):
        art = manual_server.artifact
        f1 = manual_server.membership(0)
        manual_server.process_once()
        manual_server.publish(_perturbed(art))
        f2 = manual_server.membership(0)  # same query, new generation -> miss
        manual_server.process_once()
        snap = manual_server.metrics.snapshot()
        assert snap["cache"]["hits"] == 0 and snap["cache"]["misses"] == 2
        assert f1.result(5) != f2.result(5)
        assert manual_server.generation == 1

    def test_results_reflect_new_artifact(self, manual_server):
        art = manual_server.artifact
        new = _perturbed(art)
        manual_server.publish(new)
        fut = manual_server.link_probability(np.array([[0, 1]]))
        manual_server.process_once()
        expect = QueryEngine(new).link_probability(np.array([[0, 1]]))
        np.testing.assert_array_equal(fut.result(5), expect)

    def test_invalid_artifact_rejected(self, manual_server):
        art = manual_server.artifact
        bad = _perturbed(art)
        bad.pi[0] = -1.0  # frozen dataclass, but arrays are mutable
        with pytest.raises(ValueError):
            manual_server.publish(bad)
        assert manual_server.generation == 0

    def test_swap_under_load_zero_dropped(self):
        """Continuous traffic across a publish: every future completes."""
        art = _artifact(n=60, k=4)
        new = _perturbed(art)
        with ModelServer(
            art, n_workers=2, max_batch=8, max_delay_ms=0.2, cache_size=0
        ) as server:
            swapped = threading.Event()

            def swapper():
                swapped.wait(timeout=30)
                server.publish(new)

            t = threading.Thread(target=swapper)
            t.start()
            rng = np.random.default_rng(0)
            futs = []
            for i in range(300):
                pairs = rng.integers(0, 60, size=(4, 2))
                futs.append((pairs, server.link_probability(pairs)))
                if i == 150:
                    swapped.set()
            t.join(timeout=30)
            errors = 0
            for pairs, fut in futs:
                p = fut.result(timeout=30)
                if len(p) != len(pairs) or not np.all((p > 0) & (p < 1)):
                    errors += 1
            assert errors == 0
            snap = server.stats()
            assert snap["hot_swaps"] == 1
            assert snap["artifact"]["generation"] == 1
            assert snap["endpoints"]["link_probability"]["errors"] == 0
            assert snap["endpoints"]["link_probability"]["requests"] == 300


class TestThreadedWorkers:
    def test_round_trip_through_worker_pool(self):
        with ModelServer(_artifact(), n_workers=2, max_delay_ms=0.1) as server:
            engine = QueryEngine(server.artifact)
            pairs = np.array([[0, 1], [2, 3], [4, 5]])
            got = server.query("link_probability", pairs, timeout=30)
            np.testing.assert_array_equal(got, engine.link_probability(pairs))
            assert server.query("membership", 7, timeout=30) == engine.membership(7)

    def test_close_drains_queued_work(self):
        server = ModelServer(_artifact(), n_workers=1, max_delay_ms=0.1)
        futs = [server.membership(i) for i in range(20)]
        server.close()
        done = sum(1 for f in futs if f.done() and not f.cancelled())
        cancelled = sum(1 for f in futs if f.cancelled())
        assert done + cancelled == 20

    def test_unknown_endpoint_rejected(self):
        with ModelServer(_artifact(), n_workers=0) as server:
            with pytest.raises(ValueError, match="unknown endpoint"):
                server.query("bogus")
            assert set(ENDPOINTS) == {
                "link_probability", "membership",
                "community_members", "recommend_edges",
                "membership_drift",
            }


class TestSizingValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": -1},
            {"max_batch": 0},
            {"queue_limit": 0},
            {"cache_size": -1},
            {"max_delay_ms": -0.5},
        ],
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            ModelServer(_artifact(), **kwargs)


class TestMembershipDrift:
    """The drift endpoint rides the history retained across hot-swaps."""

    def _drain(self, server, fut):
        server.process_once()
        return fut.result(timeout=5)

    def test_disabled_without_drift_window(self):
        with ModelServer(_artifact(), n_workers=0) as server:
            with pytest.raises(ValueError, match="drift_window"):
                server.membership_drift(0)

    def test_engine_requires_history(self):
        engine = QueryEngine(_artifact())
        with pytest.raises(ValueError, match="without drift tracking"):
            engine.membership_drift(0, None)

    def test_initial_artifact_is_generation_zero(self):
        with ModelServer(_artifact(), n_workers=0, drift_window=4) as server:
            d = self._drain(server, server.membership_drift(3))
            assert d["node"] == 3
            assert d["first_seen_generation"] == 0
            assert len(d["generations"]) == 1

    def test_history_survives_hot_swap(self):
        art = _artifact()
        with ModelServer(art, n_workers=0, drift_window=4) as server:
            server.publish(_perturbed(art))
            d = self._drain(server, server.membership_drift(0))
            gens = [g["generation"] for g in d["generations"]]
            assert len(gens) == 2 and gens[0] < gens[1]

    def test_failed_publish_not_recorded(self, tmp_path):
        art = _artifact()
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"garbage")
        with ModelServer(art, n_workers=0, drift_window=4) as server:
            with pytest.raises(Exception):
                server.publish_path(bad)
            d = self._drain(server, server.membership_drift(0))
            assert len(d["generations"]) == 1

    def test_unknown_node_error_propagates(self):
        with ModelServer(_artifact(), n_workers=0, drift_window=4) as server:
            fut = server.membership_drift(10_000)
            server.process_once()
            with pytest.raises(KeyError):
                fut.result(timeout=5)

    def test_drift_answers_through_worker_threads(self):
        art = _artifact()
        with ModelServer(art, n_workers=2, drift_window=4) as server:
            server.publish(_perturbed(art))
            d = server.query("membership_drift", 1, None)
            assert len(d["generations"]) == 2


class TestHistoryPersistence:
    """drift history checkpointed beside the artifact survives restarts."""

    def _drain(self, server, fut):
        server.process_once()
        return fut.result(timeout=5)

    def test_restart_resumes_drift_history(self, tmp_path):
        art = _artifact()
        swapped = _perturbed(art)
        hpath = tmp_path / "history.npz"
        with ModelServer(
            art, n_workers=0, drift_window=4, history_path=hpath
        ) as server:
            server.publish(swapped)
        assert hpath.exists()
        # Restart on the already-recorded artifact: the history reloads
        # and the same version is NOT recorded twice.
        with ModelServer(
            swapped, n_workers=0, drift_window=4, history_path=hpath
        ) as server:
            d = self._drain(server, server.membership_drift(0))
            assert [g["generation"] for g in d["generations"]] == [0, 1]

    def test_restart_with_new_artifact_extends_history(self, tmp_path):
        art = _artifact()
        hpath = tmp_path / "history.npz"
        with ModelServer(
            art, n_workers=0, drift_window=4, history_path=hpath
        ) as server:
            server.publish(_perturbed(art))
        with ModelServer(
            _perturbed(art, seed=9), n_workers=0, drift_window=4,
            history_path=hpath,
        ) as server:
            d = self._drain(server, server.membership_drift(0))
            assert [g["generation"] for g in d["generations"]] == [0, 1, 2]

    def test_fresh_history_written_at_startup(self, tmp_path):
        hpath = tmp_path / "history.npz"
        with ModelServer(
            _artifact(), n_workers=0, drift_window=4, history_path=hpath
        ):
            pass
        assert hpath.exists()

    def test_no_history_path_keeps_memory_only_behavior(self):
        art = _artifact()
        with ModelServer(art, n_workers=0, drift_window=4) as server:
            server.publish(_perturbed(art))
            d = self._drain(server, server.membership_drift(0))
            assert len(d["generations"]) == 2
