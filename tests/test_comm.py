"""Communicator collective semantics + accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.comm import (
    Communicator,
    partition_blocks,
    partition_round_robin,
)


class TestCollectives:
    def test_scatter_identity(self):
        comm = Communicator(4)
        chunks = [np.arange(i + 1) for i in range(4)]
        out = comm.scatter(chunks)
        for a, b in zip(out, chunks):
            np.testing.assert_array_equal(a, b)

    def test_scatter_wrong_count(self):
        with pytest.raises(ValueError):
            Communicator(3).scatter([1, 2])

    def test_reduce_equals_numpy_sum(self):
        comm = Communicator(5)
        vals = [np.arange(4) * i for i in range(5)]
        total = comm.reduce(vals)
        np.testing.assert_array_equal(total, np.sum(vals, axis=0))

    def test_reduce_custom_op(self):
        comm = Communicator(3)
        out = comm.reduce([np.array([3]), np.array([7]), np.array([5])], op=np.maximum)
        assert out[0] == 7

    def test_allreduce_broadcasts_total(self):
        comm = Communicator(3)
        out = comm.allreduce([np.array([1.0]), np.array([2.0]), np.array([3.0])])
        assert len(out) == 3
        for v in out:
            assert v[0] == pytest.approx(6.0)

    def test_bcast_shares_value(self):
        comm = Communicator(4)
        out = comm.bcast({"beta": np.ones(3)})
        assert len(out) == 4
        assert all(o is out[0] for o in out)

    def test_gather(self):
        comm = Communicator(3)
        out = comm.gather(["a", "b", "c"])
        assert out == ["a", "b", "c"]

    def test_barrier_counted(self):
        comm = Communicator(2)
        comm.barrier()
        comm.barrier()
        assert comm.barriers == 2

    def test_send_records_remote_only(self):
        comm = Communicator(3)
        comm.send(0, 1, np.zeros(10))
        b = comm.stats.bytes_sent
        comm.send(2, 2, np.zeros(100))  # local: free
        assert comm.stats.bytes_sent == b


class TestAccounting:
    def test_scatter_bytes_exclude_root_chunk(self):
        comm = Communicator(3)
        chunks = [np.zeros(100), np.zeros(10), np.zeros(20)]
        comm.scatter(chunks)
        assert comm.stats.by_op["scatter"] == 30 * 8

    def test_bcast_bytes_scale_with_size(self):
        c2 = Communicator(2)
        c8 = Communicator(8)
        payload = np.zeros(16)
        c2.bcast(payload)
        c8.bcast(payload)
        assert c8.stats.bytes_sent == 7 * payload.nbytes
        assert c2.stats.bytes_sent == 1 * payload.nbytes

    def test_mixed_payload_sizes(self):
        comm = Communicator(2)
        comm.send(0, 1, {"a": np.zeros(4), "b": [1, 2.5], "c": "xyz"})
        assert comm.stats.bytes_sent >= 4 * 8 + 2 * 8 + 3

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Communicator(0)


class TestPartitionHelpers:
    @given(n=st.integers(min_value=0, max_value=200), size=st.integers(min_value=1, max_value=17))
    @settings(max_examples=50, deadline=None)
    def test_round_robin_partitions(self, n, size):
        items = np.arange(n)
        parts = partition_round_robin(items, size)
        assert len(parts) == size
        recombined = np.sort(np.concatenate(parts)) if n else np.array([])
        np.testing.assert_array_equal(recombined, items)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    @given(n=st.integers(min_value=0, max_value=200), size=st.integers(min_value=1, max_value=17))
    @settings(max_examples=50, deadline=None)
    def test_blocks_cover_range(self, n, size):
        blocks = partition_blocks(n, size)
        assert len(blocks) == size
        flat = [i for a, b in blocks for i in range(a, b)]
        assert flat == list(range(n))
