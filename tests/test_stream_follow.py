"""Supervised live tailing: triggers, backoff, stall deadlines, drains."""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest

from repro.config import AMMSBConfig, StepSizeConfig
from repro.faults import SourceFault, StreamFaultPlan
from repro.stream import (
    FileTailSource,
    FollowSupervisor,
    SourceStalled,
    StreamTrainer,
    SyntheticArrivalSource,
    TriggerPolicy,
    follow_stream,
    write_arrival_file,
)


class FakeTime:
    """Deterministic clock + sleep pair for supervisor tests."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, s):
        self.sleeps.append(s)
        self.now += s


class ListSource:
    """Scripted source: each poll() pops the next canned batch / error."""

    def __init__(self, script):
        self.script = list(script)

    def poll(self):
        if not self.script:
            return []
        item = self.script.pop(0)
        if isinstance(item, Exception):
            raise item
        return item


def _config(seed=5):
    return AMMSBConfig(
        n_communities=4,
        mini_batch_vertices=32,
        neighbor_sample_size=16,
        seed=seed,
        step_phi=StepSizeConfig(a=0.05),
        step_theta=StepSizeConfig(a=0.05),
    )


@pytest.fixture()
def stream(planted):
    graph, _ = planted
    source = SyntheticArrivalSource(graph, base_fraction=0.85, seed=3)
    return source.base_graph(), source.arrivals()


def _trainer(base, tmp_path):
    return StreamTrainer(
        base,
        _config(),
        tmp_path / "work",
        iterations_per_generation=8,
        publish_path=tmp_path / "artifact.npz",
        heldout_fraction=0.05,
    )


def _supervisor(source, ft, **kwargs):
    kwargs.setdefault("poll_interval_s", 0.1)
    kwargs.setdefault("backoff_initial_s", 0.1)
    kwargs.setdefault("stall_deadline_s", 30.0)
    return FollowSupervisor(source, sleep=ft.sleep, clock=ft.clock, **kwargs)


class TestTriggerPolicy:
    def test_nothing_pending_never_fires(self):
        assert TriggerPolicy(max_edges=1).due(0, 1e9, 100) is None

    def test_unarmed_fires_every_batch(self):
        policy = TriggerPolicy()
        assert not policy.armed
        assert policy.due(1, 0.0, 100) == "every-batch"

    def test_edges_trigger(self):
        policy = TriggerPolicy(max_edges=10)
        assert policy.due(9, 1e9, 100) is None or True  # seconds unarmed
        assert policy.due(10, 0.0, 100) == "edges"
        assert policy.due(9, 0.0, 100) is None

    def test_seconds_trigger_needs_pending(self):
        policy = TriggerPolicy(max_seconds=60.0)
        assert policy.due(0, 120.0, 100) is None
        assert policy.due(1, 120.0, 100) == "seconds"
        assert policy.due(1, 30.0, 100) is None

    def test_drift_trigger_is_a_fraction_of_base(self):
        policy = TriggerPolicy(drift_threshold=0.1)
        assert policy.due(9, 0.0, 100) is None
        assert policy.due(10, 0.0, 100) == "drift"

    def test_precedence_edges_first(self):
        policy = TriggerPolicy(max_edges=5, max_seconds=1.0, drift_threshold=0.01)
        assert policy.due(5, 100.0, 10) == "edges"

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_edges": 0}, {"max_seconds": 0.0}, {"drift_threshold": 0.0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TriggerPolicy(**kwargs)


class TestFollowSupervisor:
    def test_transient_errors_backoff_then_recover(self):
        ft = FakeTime()
        src = ListSource([OSError("flap"), OSError("flap"), [1, 2], []])
        sup = _supervisor(src, ft, backoff_jitter=0.0)
        assert sup.poll() == []
        assert sup.poll() == []
        assert sup.poll() == [1, 2]
        assert sup.failures == 2 and sup.consecutive_failures == 0
        # exponential: second backoff doubles the first.
        assert ft.sleeps == [0.1, 0.2]

    def test_backoff_capped(self):
        ft = FakeTime()
        src = ListSource([OSError("x")] * 6)
        sup = _supervisor(
            src, ft, backoff_jitter=0.0, backoff_max_s=0.4,
            stall_deadline_s=None,
        )
        for _ in range(6):
            sup.poll()
        assert max(ft.sleeps) == 0.4

    def test_jitter_bounded(self):
        ft = FakeTime()
        src = ListSource([OSError("x")] * 20)
        sup = _supervisor(
            src, ft, backoff_jitter=0.5, backoff_max_s=0.1,
            stall_deadline_s=None,
        )
        for _ in range(20):
            sup.poll()
        assert all(0.05 <= s <= 0.15 for s in ft.sleeps[2:])

    def test_stall_deadline_raises_typed_error(self):
        ft = FakeTime()
        src = ListSource([OSError("gone")] * 100)
        sup = _supervisor(src, ft, backoff_jitter=0.0, stall_deadline_s=1.0)
        with pytest.raises(SourceStalled, match="unreadable") as err:
            for _ in range(100):
                sup.poll()
        assert err.value.failures > 1

    def test_success_resets_the_stall_window(self):
        ft = FakeTime()
        script = ([OSError("x")] * 5 + [[1]]) * 40
        sup = _supervisor(
            ListSource(script), ft, backoff_jitter=0.0,
            backoff_initial_s=0.2, stall_deadline_s=1e4,
        )
        for _ in range(len(script)):
            sup.poll()  # never stalls: each success resets the window

    def test_injected_source_faults(self):
        ft = FakeTime()
        src = ListSource([[1], [2], [3]])
        sup = _supervisor(
            src, ft, backoff_jitter=0.0,
            faults=StreamFaultPlan(
                seed=0, source_faults=(SourceFault(poll=1, errors=2),)
            ),
        )
        results = [sup.poll() for _ in range(5)]
        assert results == [[1], [], [], [2], [3]]
        assert sup.failures == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FollowSupervisor(ListSource([]), poll_interval_s=-1)
        with pytest.raises(ValueError):
            FollowSupervisor(ListSource([]), backoff_initial_s=0)
        with pytest.raises(ValueError):
            FollowSupervisor(ListSource([]), backoff_jitter=1.0)
        with pytest.raises(ValueError):
            FollowSupervisor(ListSource([]), stall_deadline_s=0)


class TestFollowStream:
    def test_edges_trigger_fires_and_idle_exit_drains(self, stream, tmp_path):
        base, arrivals = stream
        feed = write_arrival_file(tmp_path / "feed.txt", arrivals)
        trainer = _trainer(base, tmp_path)
        ft = FakeTime()
        sup = _supervisor(FileTailSource(feed, strict=False), ft)
        report = follow_stream(
            trainer,
            sup,
            TriggerPolicy(max_edges=max(1, len(arrivals) // 2)),
            idle_exit_polls=3,
            n_iterations=8,
        )
        assert report.stop_reason == "idle"
        assert report.arrivals == len(arrivals)
        assert "edges" in report.triggers
        assert trainer.overlay.n_pending == 0  # drained before returning
        trainer.journal.close()

    def test_stop_event_drains_pending(self, stream, tmp_path):
        base, arrivals = stream
        feed = write_arrival_file(tmp_path / "feed.txt", arrivals)
        trainer = _trainer(base, tmp_path)
        ft = FakeTime()
        sup = _supervisor(FileTailSource(feed, strict=False), ft)
        stop = threading.Event()
        polls = []
        original = sup.poll

        def poll_then_stop():
            out = original()
            polls.append(len(out))
            stop.set()
            return out

        sup.poll = poll_then_stop
        report = follow_stream(
            trainer,
            sup,
            TriggerPolicy(max_edges=10**9),  # never fires on its own
            stop_event=stop,
            n_iterations=8,
        )
        assert report.stop_reason == "stop-event"
        assert report.drained and len(report.generations) == 1
        assert report.triggers == ["drain"]
        assert trainer.overlay.n_pending == 0
        trainer.journal.close()

    def test_max_generations_bounds_the_loop(self, stream, tmp_path):
        base, arrivals = stream
        feed = write_arrival_file(tmp_path / "feed.txt", arrivals)
        trainer = _trainer(base, tmp_path)
        ft = FakeTime()
        sup = _supervisor(FileTailSource(feed, strict=False), ft)
        report = follow_stream(
            trainer, sup, TriggerPolicy(), max_generations=1, n_iterations=8
        )
        assert report.stop_reason == "max-generations"
        assert len(report.generations) == 1
        trainer.journal.close()

    def test_sigterm_drains_and_restores_handler(self, stream, tmp_path):
        base, arrivals = stream
        feed = write_arrival_file(tmp_path / "feed.txt", arrivals)
        trainer = _trainer(base, tmp_path)
        sup = FollowSupervisor(
            FileTailSource(feed, strict=False), poll_interval_s=0.01
        )
        before = signal.getsignal(signal.SIGTERM)
        timer = threading.Timer(0.3, os.kill, (os.getpid(), signal.SIGTERM))
        timer.start()
        try:
            report = follow_stream(
                trainer,
                sup,
                TriggerPolicy(max_edges=10**9),
                install_signal_handlers=True,
                max_wall_s=30.0,
                n_iterations=8,
            )
        finally:
            timer.cancel()
        assert report.stop_reason == "signal:SIGTERM"
        assert report.drained
        assert trainer.overlay.n_pending == 0
        assert signal.getsignal(signal.SIGTERM) is before
        trainer.journal.close()

    def test_rotation_mid_follow_keeps_every_edge(self, stream, tmp_path):
        base, arrivals = stream
        cut = 3 * len(arrivals) // 4
        feed = write_arrival_file(tmp_path / "feed.txt", arrivals[:cut])
        tail = FileTailSource(feed, strict=False)
        trainer = _trainer(base, tmp_path)
        ft = FakeTime()
        sup = _supervisor(tail, ft)
        follow_stream(trainer, sup, TriggerPolicy(), idle_exit_polls=2,
                      n_iterations=8)
        # Rotate to a strictly smaller replacement holding the tail.
        write_arrival_file(tmp_path / "feed.next", arrivals[cut:])
        (tmp_path / "feed.next").replace(feed)
        follow_stream(trainer, sup, TriggerPolicy(), idle_exit_polls=2,
                      n_iterations=8)
        assert tail.n_rotations == 1
        expected = {
            (min(a.src, a.dst), max(a.src, a.dst)) for a in arrivals
        }
        digested = {
            (int(lo), int(hi)) for lo, hi in trainer.overlay.base.edges
        }
        assert expected <= digested
        trainer.journal.close()
