"""RDMA verb layer tests."""

from __future__ import annotations

import pytest

from repro.sim.core import Simulator
from repro.sim.network import Network
from repro.sim.rdma import (
    ACK_BYTES,
    READ_REQUEST_BYTES,
    RdmaEngine,
    RdmaOpType,
    uncontended_read_time,
    uncontended_write_time,
)


@pytest.fixture()
def fabric():
    sim = Simulator()
    net = Network(sim, n_nodes=3)
    return sim, net, RdmaEngine(sim, net)


class TestRead:
    def test_completion_time_matches_closed_form(self, fabric):
        sim, net, engine = fabric
        qp = engine.queue_pair(0, 1)
        op = qp.post_read(65536)
        sim.run()
        assert op.completion.fired
        assert op.elapsed == pytest.approx(uncontended_read_time(net, 65536), rel=1e-6)

    def test_request_travels_to_responder(self, fabric):
        sim, net, engine = fabric
        qp = engine.queue_pair(0, 1)
        qp.post_read(1000)
        sim.run()
        # initiator sent only the request packet; responder sent the payload
        assert net.nics[0].bytes_sent == READ_REQUEST_BYTES
        assert net.nics[1].bytes_sent == 1000

    def test_negative_payload_rejected(self, fabric):
        _, _, engine = fabric
        qp = engine.queue_pair(0, 1)
        with pytest.raises(ValueError):
            qp.post_read(-5)


class TestWrite:
    def test_completion_includes_ack(self, fabric):
        sim, net, engine = fabric
        qp = engine.queue_pair(0, 1)
        op = qp.post_write(65536)
        sim.run()
        assert op.elapsed == pytest.approx(uncontended_write_time(net, 65536), rel=1e-6)
        assert net.nics[1].bytes_sent == ACK_BYTES

    def test_read_write_similar_for_large_payloads(self, fabric):
        """Paper Section IV-E: read and write bandwidth nearly identical
        (corroborating Herd) for payloads above 256 B."""
        sim, net, engine = fabric
        t_read = uncontended_read_time(net, 262144)
        t_write = uncontended_write_time(net, 262144)
        assert abs(t_read - t_write) / t_read < 0.05


class TestPipelining:
    def test_pipelined_reads_overlap(self, fabric):
        """Posting a window of reads beats issuing them synchronously."""
        sim, net, engine = fabric
        qp = engine.queue_pair(0, 1)
        # Small payloads: latency dominates, so overlap wins big. (Large
        # payloads are serialization-bound and overlap only hides latency.)
        n, size = 16, 4096

        ops = [qp.post_read(size) for _ in range(n)]
        done = engine.batch(ops)
        sim.run()
        assert done.fired
        pipelined_time = sim.now
        sync_time = n * uncontended_read_time(net, size)
        assert pipelined_time < 0.8 * sync_time

    def test_batch_event_counts_all(self, fabric):
        sim, _, engine = fabric
        qp = engine.queue_pair(0, 2)
        ops = [qp.post_write(100) for _ in range(5)]
        done = engine.batch(ops)
        sim.run()
        assert len(done.value) == 5

    def test_sync_helpers(self, fabric):
        sim, net, engine = fabric
        sim.run_process(engine.read_sync(0, 1, 4096))
        t1 = sim.now
        assert t1 == pytest.approx(uncontended_read_time(net, 4096), rel=1e-6)
        sim.run_process(engine.write_sync(0, 1, 4096))
        assert sim.now - t1 == pytest.approx(uncontended_write_time(net, 4096), rel=1e-6)


class TestOpBookkeeping:
    def test_engine_counts_ops(self, fabric):
        sim, _, engine = fabric
        qp = engine.queue_pair(0, 1)
        qp.post_read(10)
        qp.post_write(10)
        assert engine.ops == 2
        assert qp.engine is engine

    def test_op_records_endpoints(self, fabric):
        sim, _, engine = fabric
        qp = engine.queue_pair(2, 0)
        op = qp.post_read(77)
        sim.run()
        assert (op.initiator, op.target, op.nbytes) == (2, 0, 77)
        assert op.op_type is RdmaOpType.READ
