"""Cost-model tests: Table III calibration and scaling shapes."""

from __future__ import annotations

import pytest

from repro.cluster.costmodel import CostModel, SingleNodeModel, WorkloadShape
from repro.cluster.spec import DAS5_NODE, HPC_CLOUD_NODE, das5
from repro.graph.datasets import DATASETS


def friendster_shape(k=12288, heldout=True):
    fr = DATASETS["com-Friendster"]
    return WorkloadShape(
        n_vertices=fr.n_vertices,
        n_edges=fr.n_edges,
        n_communities=k,
        mini_batch_vertices=16384,
        neighbor_sample_size=32,
        heldout_pairs=int(0.02 * fr.n_edges) if heldout else 0,
        perplexity_interval=144,
    )


class TestTableIIICalibration:
    """The model must land within ~15% of every Table III entry."""

    @pytest.fixture(scope="class")
    def times(self):
        cm = CostModel(das5(64))
        shape = friendster_shape()
        return cm.iteration(shape, pipelined=False), cm.iteration(shape, pipelined=True)

    @pytest.mark.parametrize(
        "field,paper_ms",
        [
            ("draw_deploy", 45.6),
            ("load_pi", 205.0),
            ("update_phi_compute", 74.0),
            ("update_phi", 285.0),
            ("update_pi", 3.8),
            ("update_beta_theta", 25.9),
            ("total", 450.0),
        ],
    )
    def test_non_pipelined_stages(self, times, field, paper_ms):
        got_ms = times[0].as_dict()[field] * 1e3
        assert got_ms == pytest.approx(paper_ms, rel=0.20), field

    def test_pipelined_total(self, times):
        assert times[1].total * 1e3 == pytest.approx(365.0, rel=0.10)

    def test_pipelined_update_phi(self, times):
        assert times[1].update_phi * 1e3 == pytest.approx(241.0, rel=0.10)

    def test_pipelined_beta_interference(self, times):
        assert times[1].update_beta_theta > times[0].update_beta_theta


class TestScalingShapes:
    def test_strong_scaling_monotone(self):
        shape = friendster_shape(k=1024)
        totals = [
            CostModel(das5(c)).iteration(shape, pipelined=True).total
            for c in (8, 16, 32, 64)
        ]
        assert totals == sorted(totals, reverse=True)

    def test_strong_scaling_sublinear_speedup(self):
        """Speedup 8->64 workers is well below the ideal 8x (paper Fig 1-b:
        'the speedup curve gradually slows down for larger cluster sizes')."""
        shape = friendster_shape(k=1024)
        t8 = CostModel(das5(8)).iteration(shape, pipelined=True).total
        t64 = CostModel(das5(64)).iteration(shape, pipelined=True).total
        speedup = t8 / t64
        assert 2.0 < speedup < 8.0

    def test_weak_scaling_flat(self):
        """K proportional to C keeps time/iteration within ~25% (Fig 2)."""
        fr = DATASETS["com-Friendster"]
        totals = []
        for c in (8, 16, 32, 64):
            shape = WorkloadShape(
                n_vertices=fr.n_vertices,
                n_edges=fr.n_edges,
                n_communities=128 * c,
                heldout_pairs=0,
            )
            totals.append(CostModel(das5(c)).iteration(shape, pipelined=True).total)
        assert max(totals) / min(totals) < 1.25

    def test_pipelining_gain_grows_with_k(self):
        """Fig 3: the single-vs-double-buffering gap widens with K."""
        gaps = []
        for k in (1024, 4096, 12288):
            cm = CostModel(das5(64))
            shape = friendster_shape(k=k, heldout=False)
            gap = cm.iteration(shape, False).total - cm.iteration(shape, True).total
            gaps.append(gap)
        assert gaps == sorted(gaps)

    def test_time_grows_with_k(self):
        cm = CostModel(das5(64))
        t1 = cm.iteration(friendster_shape(k=1024), True).total
        t2 = cm.iteration(friendster_shape(k=8192), True).total
        assert t2 > 3 * t1


class TestSingleNodeModel:
    def test_distributed_beats_single_node_on_friendster(self):
        """Fig 4-b: 64 DAS5 nodes vastly outperform the 40-core VM, and the
        gap widens with K."""
        ratios = []
        for k in (1024, 2048, 4096):
            shape = friendster_shape(k=k, heldout=False)
            t_dist = CostModel(das5(64)).iteration(shape, pipelined=True).total
            t_single = SingleNodeModel(HPC_CLOUD_NODE, 40).iteration(shape).total
            ratios.append(t_single / t_dist)
        assert all(r > 3 for r in ratios)
        assert ratios == sorted(ratios)

    def test_40_cores_beat_16_cores_on_dblp(self):
        """Fig 4-a: the VM's 40 cores beat both its own 16-core config and
        a 16-core DAS5 node."""
        dblp = DATASETS["com-DBLP"]
        shape = WorkloadShape(
            n_vertices=dblp.n_vertices,
            n_edges=dblp.n_edges,
            n_communities=4096,
            heldout_pairs=0,
        )
        t40 = SingleNodeModel(HPC_CLOUD_NODE, 40).iteration(shape).total
        t16_cloud = SingleNodeModel(HPC_CLOUD_NODE, 16).iteration(shape).total
        t16_das5 = SingleNodeModel(DAS5_NODE, 16).iteration(shape).total
        assert t40 < t16_cloud
        assert t40 < t16_das5


class TestWorkloadShape:
    def test_minibatch_edges_close_to_m(self):
        shape = friendster_shape()
        assert shape.minibatch_edges == pytest.approx(16384, rel=0.05)

    def test_value_bytes(self):
        assert friendster_shape(k=100).value_bytes() == 404

    def test_collectives_grow_with_cluster(self):
        small = CostModel(das5(4)).tree_collective_time(1024)
        big = CostModel(das5(64)).tree_collective_time(1024)
        assert big > small

    def test_barrier_positive(self):
        assert CostModel(das5(8)).barrier_time() > 0
