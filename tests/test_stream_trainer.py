"""Generation loop: warm starts, checkpoints, publishing, fault injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AMMSBConfig, StepSizeConfig
from repro.faults import PublishFailure, StreamFaultPlan
from repro.serve.artifact import load_artifact
from repro.stream import StreamTrainer, SyntheticArrivalSource


def _config(k=4, seed=11):
    return AMMSBConfig(
        n_communities=k,
        mini_batch_vertices=32,
        neighbor_sample_size=16,
        seed=seed,
        step_phi=StepSizeConfig(a=0.05),
        step_theta=StepSizeConfig(a=0.05),
    )


@pytest.fixture()
def stream(planted):
    graph, _ = planted
    source = SyntheticArrivalSource(graph, base_fraction=0.85, seed=3)
    return source.base_graph(), list(source.batches(2))


class TestGenerationLoop:
    def test_two_generations_grow_the_model(self, stream, tmp_path):
        base, batches = stream
        trainer = StreamTrainer(
            base, _config(), tmp_path, iterations_per_generation=30,
            publish_path=tmp_path / "artifact.npz",
        )
        rep0 = trainer.run_generation()
        assert rep0.generation == 0
        assert rep0.n_vertices == base.n_vertices
        assert trainer.state.pi.shape[0] == base.n_vertices
        assert rep0.published and rep0.checkpoint_path.exists()

        rep1 = trainer.run_generation(batches[0])
        assert rep1.generation == 1
        assert rep1.ingest.accepted > 0
        assert rep1.n_new_nodes > 0
        # Warm start: the state grew to cover the new vertices, and the
        # schedule clock kept running instead of restarting.
        assert trainer.state.pi.shape[0] == rep1.n_vertices
        assert trainer.iteration == 60
        assert np.isfinite(rep1.perplexity)
        # The published artifact covers the grown graph.
        art = load_artifact(tmp_path / "artifact.npz")
        assert art.n_nodes == rep1.n_vertices

    def test_publish_callback_fires_per_publish(self, stream, tmp_path):
        base, batches = stream
        calls = []
        trainer = StreamTrainer(
            base, _config(), tmp_path, iterations_per_generation=10,
            publish_path=tmp_path / "artifact.npz",
            publish_callback=lambda path, gen: calls.append((path, gen)),
        )
        trainer.run_generation()
        trainer.run_generation(batches[0])
        assert [g for _, g in calls] == [0, 1]

    def test_run_replays_batches(self, stream, tmp_path):
        base, batches = stream
        trainer = StreamTrainer(
            base, _config(), tmp_path, iterations_per_generation=10
        )
        reports = trainer.run(batches)
        assert [r.generation for r in reports] == [0, 1]
        assert trainer.generation == 2

    def test_no_publish_path_trains_without_artifacts(self, stream, tmp_path):
        base, _ = stream
        trainer = StreamTrainer(
            base, _config(), tmp_path, iterations_per_generation=10
        )
        rep = trainer.run_generation()
        assert not rep.published and rep.artifact_path is None

    def test_constructor_validation(self, stream, tmp_path):
        base, _ = stream
        with pytest.raises(ValueError, match="engine"):
            StreamTrainer(base, _config(), tmp_path, engine="gpu")
        with pytest.raises(ValueError, match="iterations"):
            StreamTrainer(base, _config(), tmp_path,
                          iterations_per_generation=0)


class TestFromCheckpoint:
    def test_resumes_state_and_clock(self, stream, tmp_path):
        base, batches = stream
        t1 = StreamTrainer(
            base, _config(), tmp_path / "a", iterations_per_generation=30
        )
        rep0 = t1.run_generation()

        t2 = StreamTrainer.from_checkpoint(
            rep0.checkpoint_path, base, tmp_path / "b",
            iterations_per_generation=15,
        )
        assert t2.iteration == 30
        np.testing.assert_array_equal(t2.state.pi, t1.state.pi)
        rep = t2.run_generation(batches[0])
        assert t2.iteration == 45
        assert rep.n_new_nodes > 0

    def test_vertex_mismatch_rejected(self, stream, tmp_path, tiny_graph):
        base, _ = stream
        t1 = StreamTrainer(
            base, _config(), tmp_path, iterations_per_generation=5
        )
        rep0 = t1.run_generation()
        with pytest.raises(ValueError, match="vertices"):
            StreamTrainer.from_checkpoint(
                rep0.checkpoint_path, tiny_graph, tmp_path
            )


class TestFaultInjection:
    def test_malformed_arrivals_quarantined_not_fatal(self, stream, tmp_path):
        base, batches = stream
        plan = StreamFaultPlan(seed=7, malformed_rate=0.4, out_of_order_rate=0.2)
        trainer = StreamTrainer(
            base, _config(), tmp_path, iterations_per_generation=10,
            publish_path=tmp_path / "artifact.npz", faults=plan,
        )
        trainer.run_generation()
        rep = trainer.run_generation(batches[0])
        assert rep.ingest.quarantined > 0
        assert rep.published  # a dirty stream never blocks training
        assert len(trainer.overlay.quarantined) == rep.ingest.quarantined

    def test_publish_failure_keeps_last_known_good(self, stream, tmp_path):
        base, batches = stream
        plan = StreamFaultPlan(seed=7, publish_failures=(PublishFailure(1),))
        trainer = StreamTrainer(
            base, _config(), tmp_path, iterations_per_generation=10,
            publish_path=tmp_path / "artifact.npz", faults=plan,
        )
        trainer.run_generation()
        v0 = load_artifact(tmp_path / "artifact.npz").version

        rep1 = trainer.run_generation(batches[0])
        assert not rep1.published
        assert "publish failure" in rep1.publish_error
        # Last-known-good artifact is untouched on disk.
        assert load_artifact(tmp_path / "artifact.npz").version == v0
        assert rep1.artifact_path == tmp_path / "artifact.npz"

        rep2 = trainer.run_generation(batches[1])
        assert rep2.published
        assert load_artifact(tmp_path / "artifact.npz").version != v0

    def test_empty_plan_is_dropped(self, stream, tmp_path):
        base, _ = stream
        trainer = StreamTrainer(
            base, _config(), tmp_path, faults=StreamFaultPlan(seed=1)
        )
        assert trainer.faults is None


class TestMultiprocessEngine:
    def test_mp_generation_publishes_via_hook(self, stream, tmp_path):
        base, batches = stream
        trainer = StreamTrainer(
            base, _config(), tmp_path, iterations_per_generation=8,
            publish_path=tmp_path / "artifact.npz", engine="mp", n_workers=2,
        )
        rep0 = trainer.run_generation()
        rep1 = trainer.run_generation(batches[0])
        assert rep0.published and rep1.published
        art = load_artifact(tmp_path / "artifact.npz")
        assert art.n_nodes == rep1.n_vertices
        assert trainer.state.pi.shape[0] == rep1.n_vertices
